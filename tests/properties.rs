//! Property-based tests (proptest) for the core data structures and
//! invariants.

use proptest::prelude::*;

use skyloft::builtin::GlobalFifo;
use skyloft::ops::{EnqueueFlags, Policy, SchedEnv};
use skyloft::task::{Task, TaskTable};
use skyloft_hw::uintr::UittEntry;
use skyloft_hw::UintrFabric;
use skyloft_kmod::Kmod;
use skyloft_metrics::Histogram;
use skyloft_policies::{Cfs, Eevdf, WorkStealing};
use skyloft_sim::{Distribution, EventQueue, Nanos, Rng};

proptest! {
    /// The event queue pops in non-decreasing time order under arbitrary
    /// interleavings of schedules and cancellations.
    #[test]
    fn event_queue_total_order(ops in prop::collection::vec((0u64..1_000, prop::bool::ANY), 1..200)) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut tokens = Vec::new();
        let mut live = 0usize;
        for (delay, cancel) in ops {
            let tok = q.schedule_after(Nanos(delay), delay);
            tokens.push(tok);
            live += 1;
            if cancel && !tokens.is_empty() {
                let t = tokens.swap_remove(tokens.len() / 2);
                if q.cancel(t).is_some() {
                    live -= 1;
                }
            }
        }
        prop_assert_eq!(q.len(), live);
        let mut prev = Nanos::ZERO;
        let mut popped = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= prev);
            prev = at;
            popped += 1;
        }
        prop_assert_eq!(popped, live);
    }

    /// Histogram percentiles are within the documented relative error of
    /// the exact order statistic.
    #[test]
    fn histogram_percentile_accuracy(mut values in prop::collection::vec(1u64..10_000_000, 10..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for p in [10.0, 50.0, 90.0, 99.0] {
            let rank = ((p / 100.0) * values.len() as f64).ceil() as usize;
            let exact = values[rank.clamp(1, values.len()) - 1] as f64;
            let got = h.percentile(p) as f64;
            prop_assert!(
                (got - exact).abs() <= exact * 0.04 + 1.0,
                "p{}: got {} exact {}", p, got, exact
            );
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.max(), *values.last().unwrap());
        prop_assert_eq!(h.min(), *values.first().unwrap());
    }

    /// Task slab: arbitrary insert/remove sequences never confuse handles.
    #[test]
    fn task_table_handles_stay_distinct(ops in prop::collection::vec(prop::bool::ANY, 1..300)) {
        let mut table = TaskTable::new();
        let mut live = Vec::new();
        for (i, insert) in ops.into_iter().enumerate() {
            if insert || live.is_empty() {
                let id = table.insert(|id| Task::bare(id, i % 7));
                live.push((id, i % 7));
            } else {
                let (id, _) = live.swap_remove(i % live.len());
                table.remove(id);
                prop_assert!(!table.contains(id));
            }
            for &(id, app) in &live {
                prop_assert!(table.contains(id));
                prop_assert_eq!(table.get(id).app, app);
            }
        }
        prop_assert_eq!(table.len(), live.len());
    }

    /// UINTR: posting any set of vectors and then receiving the
    /// notification delivers exactly the posted set, highest vector first.
    #[test]
    fn uintr_pir_round_trip(mut vectors in prop::collection::vec(0u8..64, 1..20)) {
        let mut f = UintrFabric::new(1);
        let upid = f.alloc_upid(0xe1, 0);
        f.bind_receiver(0, upid, 0xe1);
        f.set_user_mode(0, true);
        for &v in &vectors {
            f.senduipi(UittEntry { upid, user_vec: v });
        }
        f.on_interrupt_arrival(0, 0xe1);
        vectors.sort_unstable();
        vectors.dedup();
        let mut delivered = Vec::new();
        while f.deliverable(0) {
            delivered.push(f.begin_delivery(0));
            f.uiret(0);
        }
        let mut expect = vectors.clone();
        expect.reverse();
        prop_assert_eq!(delivered, expect);
    }

    /// Policies preserve the multiset of enqueued tasks: everything
    /// enqueued comes back out exactly once (FIFO, CFS, EEVDF, WS).
    #[test]
    fn policies_preserve_task_multiset(
        placements in prop::collection::vec((0usize..4, 0u64..1_000_000), 1..100),
        policy_sel in 0u8..4,
    ) {
        let mut policy: Box<dyn Policy> = match policy_sel {
            0 => Box::new(GlobalFifo::new()),
            1 => Box::new(Cfs::new(skyloft::SchedParams::SKYLOFT_CFS)),
            2 => Box::new(Eevdf::new(skyloft::SchedParams::SKYLOFT_EEVDF)),
            _ => Box::new(WorkStealing::new(Some(Nanos::from_us(5)))),
        };
        policy.sched_init(&SchedEnv { worker_cores: (0..4).collect(), dispatcher: None });
        let mut tasks = TaskTable::new();
        let mut ids = std::collections::HashSet::new();
        for (cpu, vr) in placements {
            let id = tasks.insert(|id| Task::bare(id, 0));
            policy.task_init(&mut tasks, id, Nanos::ZERO);
            tasks.get_mut(id).pd.vruntime = vr;
            policy.task_enqueue(&mut tasks, id, Some(cpu), EnqueueFlags::New, Nanos(vr));
            ids.insert(id);
        }
        let mut out = std::collections::HashSet::new();
        for cpu in 0..4usize {
            while let Some(t) = policy
                .task_dequeue(&mut tasks, cpu, Nanos(2_000_000))
                .or_else(|| policy.sched_balance(&mut tasks, cpu, Nanos(2_000_000)))
            {
                prop_assert!(out.insert(t), "task dequeued twice");
            }
        }
        prop_assert_eq!(out, ids);
    }

    /// The kernel-module model never violates the Single Binding Rule, no
    /// matter the op sequence (invalid ops must error, not corrupt).
    #[test]
    fn kmod_binding_rule_is_invariant(ops in prop::collection::vec((0u8..4, 0usize..6, 0usize..4), 1..200)) {
        let mut k = Kmod::new(8, &[0, 1, 2, 3]);
        let tids: Vec<_> = (0..6).map(|i| k.create_kthread(i % 3)).collect();
        for (op, t, core) in ops {
            let tid = tids[t];
            // Outcomes don't matter; the invariant must hold after every op.
            let _ = match op {
                0 => k.bind_active(tid, core).map(|_| Nanos::ZERO),
                1 => k.park_on_cpu(tid, core).map(|_| Nanos::ZERO),
                2 => k.wakeup(tid),
                _ => {
                    let other = tids[(t + 1) % tids.len()];
                    k.switch_to(tid, other)
                }
            };
            prop_assert!(k.check_binding_rule().is_ok());
        }
    }

    /// Sampled service times stay within the distribution's support, and
    /// slowdown is always at least 1.
    #[test]
    fn distribution_support_and_slowdown(seed in 0u64..u64::MAX) {
        let mut rng = Rng::seed_from_u64(seed);
        let d = Distribution::Bimodal {
            p_long: 0.5,
            short: Nanos(950),
            long: Nanos(591_000),
        };
        for _ in 0..100 {
            let s = d.sample(&mut rng);
            prop_assert!(s == Nanos(950) || s == Nanos(591_000));
            let resp = s + Nanos(rng.next_below(10_000));
            prop_assert!(skyloft_metrics::slowdown(resp.0, s.0) >= 1.0);
        }
    }

    /// A burst of requests through a real machine always completes exactly
    /// once each, regardless of sizes and pinning.
    #[test]
    fn machine_completes_every_request(
        reqs in prop::collection::vec((1u64..200_000, 0usize..3), 1..40),
        seed in 0u64..1_000,
    ) {
        use skyloft::machine::{AppKind, Machine, MachineConfig};
        use skyloft::Platform;
        let cfg = MachineConfig {
            plat: Platform::skyloft_percpu(skyloft_hw::Topology::single(3), 100_000),
            n_workers: 3,
            seed,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(cfg, Box::new(WorkStealing::new(Some(Nanos::from_us(20)))));
        m.add_app("p", AppKind::Lc);
        let mut q = EventQueue::new();
        m.start(&mut q);
        let n = reqs.len() as u64;
        for (svc, pin) in reqs {
            m.spawn_request(&mut q, 0, Nanos(svc), 0, Some(pin));
        }
        m.run(&mut q, Nanos::from_secs(1));
        prop_assert_eq!(m.stats.completed, n);
        prop_assert_eq!(m.apps[0].live_tasks, 0);
        prop_assert_eq!(m.stats.timer_lost, 0);
    }

    /// Random workloads across machine shapes (per-CPU user timers,
    /// centralized dispatch with the core allocator and a BE app, utimer
    /// emulation) run with the runtime invariant checker validating the
    /// machine after every event: zero violations, zero lost timer
    /// interrupts, and every request still completes exactly once.
    ///
    /// Arrivals are staggered across a 140 ms window and the run spans
    /// 150 ms of virtual time, so the event queue's timing wheel crosses
    /// many level-1/level-2 refills and a level-3 cascade boundary
    /// (2^24 granules span ≈ 8.6 s; level boundaries at ~33 μs, ~2.1 ms,
    /// ~134 ms) while the checker watches every event.
    #[test]
    fn machine_invariants_hold_on_random_workloads(
        reqs in prop::collection::vec((1u64..150_000, 0usize..4, 0u64..140_000_000), 1..30),
        shape in 0u8..4,
        seed in 0u64..1_000,
    ) {
        use skyloft::builtin::CentralizedFcfs;
        use skyloft::machine::{AppKind, Machine, MachineConfig};
        use skyloft::{CoreAllocConfig, Platform, PreemptMechanism};
        let workers = 3usize;
        let topo = skyloft_hw::Topology::single(workers + 1);
        let (plat, core_alloc, utimer, policy): (Platform, _, _, Box<dyn Policy>) = match shape {
            0 => (
                Platform::skyloft_percpu(topo, 100_000),
                None,
                None,
                Box::new(WorkStealing::new(Some(Nanos::from_us(20)))),
            ),
            1 => (
                Platform::skyloft_percpu(topo, 100_000),
                None,
                None,
                Box::new(Cfs::new(skyloft::SchedParams::SKYLOFT_CFS)),
            ),
            2 => (
                Platform::skyloft_centralized(topo),
                Some(CoreAllocConfig::default()),
                None,
                Box::new(CentralizedFcfs::new(Some(Nanos::from_us(30)))),
            ),
            _ => {
                let mut p = Platform::skyloft_percpu(topo, 100_000);
                p.mech = PreemptMechanism::UserIpi;
                (
                    p,
                    None,
                    Some(Nanos::from_us(5)),
                    Box::new(WorkStealing::new(Some(Nanos::from_us(20)))),
                )
            }
        };
        let cfg = MachineConfig {
            plat,
            n_workers: workers,
            seed,
            core_alloc,
            utimer_period: utimer,
        };
        let mut m = Machine::new(cfg, policy);
        m.add_app("lc", AppKind::Lc);
        if shape == 2 {
            m.add_app("batch", AppKind::Be);
        }
        let mut q = EventQueue::new();
        m.start(&mut q);
        let n = reqs.len() as u64;
        for (i, (svc, pin, arrive)) in reqs.into_iter().enumerate() {
            use skyloft::machine::Call;
            let pin = (pin < workers).then_some(pin);
            let class = (i % 4) as u8;
            q.schedule(
                Nanos(arrive),
                skyloft::machine::Event::Call(Call(Box::new(move |m: &mut Machine, q: &mut EventQueue<skyloft::machine::Event>| {
                    m.spawn_request(q, 0, Nanos(svc), class, pin);
                }))),
            );
        }
        m.run(&mut q, Nanos::from_ms(150));
        prop_assert_eq!(m.stats.completed, n);
        prop_assert_eq!(m.stats.timer_lost, 0);
        prop_assert!(m.tracer.checker.checks_run() > 0);
        prop_assert!(m.tracer.checker.violations().is_empty());
    }
}
