//! Cross-policy `queue_delay` conformance (the contract documented on
//! [`skyloft::ops::Policy::queue_delay`]).
//!
//! Every shipped policy — the six in `skyloft-policies`, their frozen
//! reference oracles, and the two built-ins — is driven through the same
//! scripted scenario and held to the same rules:
//!
//! 1. empty queues report `None`;
//! 2. with tasks queued, the report is `Some` and equals the sojourn
//!    (`now − runnable_since`) of the oldest waiting task across *all*
//!    runqueues — smoothing policies may report more, never less;
//! 3. after draining, a non-smoothing policy reports `None` again.
//!
//! Before this contract existed, Shinjuku kept a shadow enqueue timestamp
//! (ignoring its `TaskTable`) and the per-CPU policies reported nothing at
//! all, so the runqueue AQM and the core allocator saw differently-shaped
//! sojourns depending on the policy under test.

use skyloft::builtin::{CentralizedFcfs, GlobalFifo};
use skyloft::ops::{EnqueueFlags, Policy, SchedEnv};
use skyloft::task::{Task, TaskId, TaskTable};
use skyloft::SchedParams;
use skyloft_policies::{cfs, eevdf, reference, rr, shinjuku, shinjuku_shenango, work_stealing};
use skyloft_sim::Nanos;

/// Every policy under contract: (name-for-diagnostics, instance, smoothing).
/// `smoothing` relaxes the equality to ≥ and permits a post-drain residue.
fn all_policies() -> Vec<(&'static str, Box<dyn Policy>, bool)> {
    let q = Some(Nanos::from_us(20));
    vec![
        (
            "shinjuku",
            Box::new(shinjuku::Shinjuku::new(q)) as Box<dyn Policy>,
            false,
        ),
        (
            "shinjuku-shenango",
            Box::new(shinjuku_shenango::ShinjukuShenango::new(q)),
            true,
        ),
        ("rr", Box::new(rr::RoundRobin::new(q)), false),
        (
            "work-stealing",
            Box::new(work_stealing::WorkStealing::new(q)),
            false,
        ),
        (
            "cfs",
            Box::new(cfs::Cfs::new(SchedParams::SKYLOFT_CFS)),
            false,
        ),
        (
            "eevdf",
            Box::new(eevdf::Eevdf::new(SchedParams::SKYLOFT_EEVDF)),
            false,
        ),
        ("ref-shinjuku", Box::new(reference::Shinjuku::new(q)), false),
        (
            "ref-shinjuku-shenango",
            Box::new(reference::ShinjukuShenango::new(q)),
            true,
        ),
        ("ref-rr", Box::new(reference::RoundRobin::new(q)), false),
        (
            "ref-work-stealing",
            Box::new(reference::WorkStealing::new(q)),
            false,
        ),
        (
            "ref-cfs",
            Box::new(reference::Cfs::new(SchedParams::SKYLOFT_CFS)),
            false,
        ),
        (
            "ref-eevdf",
            Box::new(reference::Eevdf::new(SchedParams::SKYLOFT_EEVDF)),
            false,
        ),
        ("global-fifo", Box::new(GlobalFifo::new()), false),
        ("centralized-fcfs", Box::new(CentralizedFcfs::new(q)), false),
    ]
}

/// Spawns a task stamped runnable at `since` and enqueues it at `since`,
/// mimicking the machine's lifecycle (stamp, then enqueue, same instant).
fn spawn_at(
    p: &mut dyn Policy,
    tasks: &mut TaskTable,
    hint: Option<usize>,
    since: Nanos,
) -> TaskId {
    let t = tasks.insert(|id| Task::bare(id, 0));
    p.task_init(tasks, t, since);
    tasks.get_mut(t).runnable_since = since;
    p.task_enqueue(tasks, t, hint, EnqueueFlags::New, since);
    t
}

#[test]
fn queue_delay_reports_oldest_sojourn_across_all_runqueues() {
    for (name, mut p, smoothing) in all_policies() {
        p.sched_init(&SchedEnv {
            worker_cores: vec![0, 1, 2, 3],
            dispatcher: None,
        });
        let mut tasks = TaskTable::new();

        // Rule 1: empty → None.
        assert_eq!(p.queue_delay(&tasks, Nanos(1_000)), None, "{name}: empty");

        // Stagger arrivals across different cores; the *oldest* lives on
        // core 2, so a policy reporting only one runqueue (or the head of
        // the wrong one) fails here.
        spawn_at(p.as_mut(), &mut tasks, Some(0), Nanos(5_000));
        spawn_at(p.as_mut(), &mut tasks, Some(2), Nanos(1_000));
        spawn_at(p.as_mut(), &mut tasks, Some(1), Nanos(9_000));
        spawn_at(p.as_mut(), &mut tasks, None, Nanos(9_500));

        let now = Nanos(20_000);
        let want = Nanos(19_000); // sojourn of the Nanos(1_000) arrival
        let got = p.queue_delay(&tasks, now);
        let got = got.unwrap_or_else(|| panic!("{name}: queued tasks but reported None"));
        if smoothing {
            assert!(got >= want, "{name}: under-reported {got:?} < {want:?}");
        } else {
            assert_eq!(got, want, "{name}: oldest sojourn");
        }

        // Rule 2 continued: a fresh arrival never *lowers* the report.
        spawn_at(p.as_mut(), &mut tasks, Some(3), Nanos(19_999));
        let after = p.queue_delay(&tasks, now).unwrap();
        assert!(after >= want, "{name}: new arrival lowered the report");

        // Drain every queue (dequeue from each core, then steal).
        for _ in 0..64 {
            let mut progressed = false;
            for cpu in 0..4 {
                if let Some(t) = p
                    .task_dequeue(&mut tasks, cpu, now)
                    .or_else(|| p.sched_balance(&mut tasks, cpu, now))
                {
                    p.task_terminate(&mut tasks, t, now);
                    tasks.remove(t);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        assert_eq!(p.queue_len().unwrap_or(0), 0, "{name}: drain incomplete");

        // Rule 3: empty again → None (smoothing residue exempt).
        if !smoothing {
            assert_eq!(p.queue_delay(&tasks, now), None, "{name}: post-drain");
        }
    }
}

#[test]
fn queue_delay_tracks_requeue_stamps() {
    // Preemption re-stamps `runnable_since`; the report must follow the
    // fresh stamp, not the original arrival (the machine re-anchors the
    // wait on every preempt/yield requeue).
    for (name, mut p, smoothing) in all_policies() {
        if smoothing {
            continue; // the EWMA path is covered by the ≥ rule above
        }
        p.sched_init(&SchedEnv {
            worker_cores: vec![0],
            dispatcher: None,
        });
        let mut tasks = TaskTable::new();
        let t = spawn_at(p.as_mut(), &mut tasks, Some(0), Nanos(1_000));
        let got = p.task_dequeue(&mut tasks, 0, Nanos(2_000));
        assert_eq!(got, Some(t), "{name}: dequeue");
        assert_eq!(p.queue_delay(&tasks, Nanos(2_000)), None, "{name}");
        // Preempt at t=8_000: the wait anchor moves forward.
        tasks.get_mut(t).runnable_since = Nanos(8_000);
        p.task_enqueue(
            &mut tasks,
            t,
            Some(0),
            EnqueueFlags::Preempted,
            Nanos(8_000),
        );
        assert_eq!(
            p.queue_delay(&tasks, Nanos(10_000)),
            Some(Nanos(2_000)),
            "{name}: requeue stamp"
        );
    }
}
