//! Chaos-layer regression tests (DESIGN.md §9): recovery survives each
//! injected fault class, validated end to end through the invariant
//! checker (enabled and panicking by default in debug builds, so every
//! `m.run` below doubles as an invariant sweep through the faults).

use skyloft::machine::{AppKind, Call, Event, Machine, MachineConfig};
use skyloft::{CoreAllocConfig, FaultPlan, Platform, RecoveryConfig};
use skyloft_apps::synthetic::{dispersive, dispersive_threshold, install_open_loop, Placement};
use skyloft_hw::Topology;
use skyloft_net::OpenLoop;
use skyloft_policies::{RoundRobin, WorkStealing};
use skyloft_sim::{EventQueue, Nanos};

/// A per-CPU Skyloft machine (user timers at 100 kHz) with `apps`
/// latency-critical applications; the plan, if any, is installed before
/// start so the recovery machinery activates with it.
fn percpu(
    workers: usize,
    apps: usize,
    plan: Option<FaultPlan>,
    recovery_on: bool,
) -> (Machine, EventQueue<Event>) {
    let cfg = MachineConfig {
        plat: Platform::skyloft_percpu(Topology::single(workers + 1), 100_000),
        n_workers: workers,
        seed: 42,
        core_alloc: None,
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, Box::new(WorkStealing::new(Some(Nanos::from_us(30)))));
    for i in 0..apps {
        m.add_app(&format!("app{i}"), AppKind::Lc);
    }
    if !recovery_on {
        m.recovery = RecoveryConfig::disabled();
    }
    if let Some(p) = plan {
        m.install_fault_plan(p);
    }
    let mut q = EventQueue::new();
    m.start(&mut q);
    (m, q)
}

/// Keeps every worker core busy so user timers keep firing.
fn busy_all_cores(m: &mut Machine, q: &mut EventQueue<Event>, service: Nanos) {
    let cores: Vec<_> = m.worker_cores.clone();
    for core in cores {
        m.spawn_request(q, 0, service, 1, Some(core));
    }
}

#[test]
fn watchdog_rearms_lost_timer_armings() {
    // Every §3.2 re-arm self-IPI is dropped; the watchdog must restore
    // delivery within one period, keeping `timer_lost` inside the
    // checker's fault budget.
    let plan = FaultPlan::seeded(7).drop_arming(1.0);
    let (mut m, mut q) = percpu(2, 1, Some(plan), true);
    busy_all_cores(&mut m, &mut q, Nanos::from_ms(10));
    m.run(&mut q, Nanos::from_ms(5));
    assert!(m.stats.timer_rearms > 0, "watchdog never re-armed");
    // Far more deliveries than the one pre-drop fire per core: recovery
    // keeps the timer alive at roughly one fire per watchdog period.
    assert!(
        m.stats.timer_delivered > 2 * 10,
        "deliveries stopped: {}",
        m.stats.timer_delivered
    );
    assert!(
        m.stats.timer_lost <= m.tracer.checker.allowed_timer_lost,
        "lost {} exceeds the injected-fault budget {}",
        m.stats.timer_lost,
        m.tracer.checker.allowed_timer_lost
    );
    // Each drop is recovered within one watchdog period (25 us = 2.5 tick
    // periods), so losses are a bounded multiple of the drops.
    let dropped = m.chaos.as_ref().unwrap().stats.armings_dropped;
    assert!(
        m.stats.timer_lost <= 4 * dropped,
        "lost {} not bounded by one watchdog period per drop ({dropped} drops)",
        m.stats.timer_lost
    );
}

#[test]
fn without_recovery_a_lost_arming_is_permanent() {
    let plan = FaultPlan::seeded(7).drop_arming(1.0);
    let (mut m, mut q) = percpu(2, 1, Some(plan), false);
    busy_all_cores(&mut m, &mut q, Nanos::from_ms(10));
    m.run(&mut q, Nanos::from_ms(5));
    // One delivered fire per core, then silence: the handler's re-arm was
    // dropped and nothing ever restores it.
    assert_eq!(m.stats.timer_rearms, 0);
    assert_eq!(
        m.stats.timer_delivered, 2,
        "run-to-completion degradation should freeze deliveries"
    );
    assert!(m.worker_cores.iter().any(|&c| m.core_arming_lost(c)));
}

#[test]
fn fault_substitution_rotates_three_apps_on_one_core() {
    // Three applications share one worker core; page faults knock out the
    // active kernel thread three times. Each fault must wake a parked
    // substitute (§6) without ever violating the Single Binding Rule —
    // the debug-build invariant checker panics on any violation mid-run.
    let (mut m, mut q) = percpu(1, 3, Some(FaultPlan::seeded(3)), true);
    for app in 0..3 {
        for _ in 0..20 {
            m.spawn_request(&mut q, app, Nanos::from_us(20), 0, None);
        }
    }
    for t in [100, 300, 500] {
        q.schedule(
            Nanos::from_us(t),
            Event::Call(Call(Box::new(|m: &mut Machine, q| {
                let injected = m.inject_page_fault(q, 0, Nanos::from_us(50));
                assert!(injected, "core 0 had no active thread to fault");
            }))),
        );
    }
    m.run(&mut q, Nanos::from_ms(20));
    assert!(
        m.stats.fault_substitutions >= 3,
        "substitutions {}",
        m.stats.fault_substitutions
    );
    assert_eq!(m.stats.fault_blocks, 3);
    assert_eq!(m.stats.fault_resolves, 3);
    assert_eq!(m.stats.completed, 60, "all requests finish despite faults");
    m.kmod.check_binding_rule().unwrap();
}

#[test]
fn stalled_worker_runqueue_migrates_to_healthy_siblings() {
    // RoundRobin keeps strictly per-core queues (no stealing), so work
    // queued behind a stalled core is stuck unless the watchdog migrates
    // it.
    let cfg = MachineConfig {
        plat: Platform::skyloft_percpu(Topology::single(3), 100_000),
        n_workers: 2,
        seed: 42,
        core_alloc: None,
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, Box::new(RoundRobin::new(Some(Nanos::from_us(30)))));
    m.add_app("app0", AppKind::Lc);
    m.install_fault_plan(FaultPlan::seeded(5));
    let mut q = EventQueue::new();
    m.start(&mut q);
    m.spawn_request(&mut q, 0, Nanos::from_ms(3), 1, Some(0));
    m.spawn_request(&mut q, 0, Nanos::from_ms(3), 1, Some(1));
    for _ in 0..5 {
        m.spawn_request(&mut q, 0, Nanos::from_us(100), 0, Some(0));
    }
    q.schedule(
        Nanos::from_us(50),
        Event::Call(Call(Box::new(|m: &mut Machine, q| {
            assert!(m.inject_stall(q, 0, Nanos::from_ms(1)));
        }))),
    );
    m.run(&mut q, Nanos::from_ms(10));
    assert!(m.stats.stalls_detected >= 1, "stall never detected");
    assert!(
        m.stats.tasks_migrated >= 1,
        "queued work stayed behind the stalled core"
    );
    assert_eq!(m.stats.completed, 7);
}

#[test]
fn revoke_retries_survive_dropped_ipis() {
    // Centralized policy + core allocator: when the LC app floods after an
    // idle phase, the allocator revokes BE cores via IPIs — half of which
    // the plan drops. Bounded retries must still complete the revokes.
    let alloc = CoreAllocConfig {
        interval: Nanos::from_us(5),
        congestion_delay: Nanos::from_us(10),
        grant_after_idle_checks: 2,
    };
    let cfg = MachineConfig {
        plat: Platform::skyloft_centralized(Topology::single(3)),
        n_workers: 2,
        seed: 42,
        core_alloc: Some(alloc),
        utimer_period: None,
    };
    let mut m = Machine::new(
        cfg,
        Box::new(skyloft::builtin::CentralizedFcfs::new(Some(
            Nanos::from_us(30),
        ))),
    );
    m.add_app("lc", AppKind::Lc);
    m.add_app("batch", AppKind::Be);
    m.install_fault_plan(FaultPlan::seeded(9).drop_revoke(0.5));
    let mut q = EventQueue::new();
    m.start(&mut q);
    // Idle LC: cores flow to the BE app.
    m.run(&mut q, Nanos::from_ms(1));
    assert!(m.stats.be_grants >= 1, "grants {}", m.stats.be_grants);
    // Flood: cores must come back despite dropped revoke IPIs.
    for _ in 0..500 {
        m.spawn_request(&mut q, 0, Nanos::from_us(100), 0, None);
    }
    m.run(&mut q, Nanos::from_ms(60));
    let dropped = m.chaos.as_ref().unwrap().stats.revokes_dropped;
    assert!(dropped >= 1, "plan never dropped a revoke");
    assert!(m.stats.ipi_retries >= 1, "no retries despite drops");
    assert!(m.stats.be_revokes >= 1, "revokes never completed");
    assert!(m.stats.completed >= 500, "completed {}", m.stats.completed);
    m.kmod.check_binding_rule().unwrap();
}

/// Dispersive p99 of a short fig7a-shaped run; `faulty` installs the
/// acceptance plan (1% arming loss + page faults) with a standby app for
/// substitution.
fn dispersive_p99(faulty: bool, recovery_on: bool) -> Nanos {
    let plan = faulty.then(|| {
        FaultPlan::seeded(0xFA_1175)
            .drop_arming(0.01)
            .page_faults(Nanos::from_ms(2), Nanos::from_us(100))
    });
    let (mut m, mut q) = percpu(8, 2, plan, recovery_on);
    let warmup = Nanos::from_ms(10);
    let end = warmup + Nanos::from_ms(40);
    let gen = OpenLoop::new(100_000.0, dispersive(), dispersive_threshold(), 0x0D15);
    install_open_loop(&mut q, gen, 0, Placement::Queue, end);
    m.run(&mut q, warmup);
    m.reset_stats(q.now());
    m.run(&mut q, end);
    assert!(m.stats.completed > 1_000, "completed {}", m.stats.completed);
    Nanos(m.stats.resp_hist.percentile(99.0))
}

#[test]
fn recovered_p99_stays_within_2x_of_fault_free() {
    let base = dispersive_p99(false, true);
    let faulted = dispersive_p99(true, true);
    assert!(
        faulted <= Nanos(base.0 * 2),
        "p99 under recovered faults {} us vs fault-free {} us",
        faulted.as_us(),
        base.as_us()
    );
}

mod dataplane_plans {
    use super::*;
    use proptest::prelude::*;
    use skyloft_apps::synthetic::{install_open_loop_ctl, OverloadControl};
    use skyloft_net::{NetProfile, NicConfig};

    proptest! {
        /// Conservation invariant #8 (DESIGN.md §13): every datagram the
        /// client generated lands in exactly one terminal bucket —
        /// delivered, ring tail-drop, AQM shed, admission shed, or a
        /// retry replacing a lost attempt — no matter what the
        /// data-plane fault plan does to the polling core (dropped or
        /// delayed poll rounds) or the RSS indirection table (wedged
        /// entries), with or without the overload-control layers armed,
        /// and with or without wire loss feeding the retry client.
        #[test]
        fn net_ledger_balances_under_random_fault_plans(
            seed in 0u64..u64::MAX,
            drop_poll_bp in 0u32..2_000,
            delay_poll_bp in 0u32..3_000,
            sticks in prop::bool::ANY,
            wire_loss_bp in 0u32..1_500,
            rate_krps in 200u64..2_000,
            full_ctl in prop::bool::ANY,
        ) {
            let mut plan = FaultPlan::seeded(seed)
                .drop_rx_polls(drop_poll_bp as f64 / 10_000.0)
                .delay_rx_polls(delay_poll_bp as f64 / 10_000.0, Nanos::from_us(3));
            if sticks {
                plan = plan.stuck_indirections(Nanos::from_ms(1), Nanos::from_us(200));
            }
            // 3 workers x 2 us saturate at 1.5M rps; rates span 0.13x
            // to 1.33x so both regimes (drained and shedding) occur.
            let (mut m, mut q) = percpu(3, 1, Some(plan), true);
            let gen = OpenLoop::new(
                rate_krps as f64 * 1_000.0,
                skyloft_sim::Distribution::Constant(Nanos::from_us(2)),
                dispersive_threshold(),
                seed ^ 0x5EED,
            );
            let net = (wire_loss_bp > 0).then(|| NetProfile::lossy(
                seed ^ 9,
                wire_loss_bp as f64 / 10_000.0,
                0.0,
                Nanos::from_ms(1),
            ));
            let ctl = if full_ctl {
                OverloadControl::full()
            } else {
                OverloadControl::default()
            };
            let mut nic = NicConfig::for_workers(3);
            nic.client_timeout = Nanos::from_ms(1);
            install_open_loop_ctl(&mut q, gen, 0, nic, Nanos::from_ms(4), net, ctl);
            // Run far past the last timeout + backoff so every attempt
            // resolves: the ledger must balance with nothing in flight.
            m.run(&mut q, Nanos::from_ms(40));
            let s = &m.stats;
            prop_assert!(s.net_generated > 0, "generator never offered load");
            prop_assert_eq!(s.net_in_flight, 0, "datagrams still in flight after drain");
            prop_assert_eq!(
                s.net_generated,
                s.net_delivered + s.rx_ring_drops + s.aqm_drops
                    + s.admission_sheds + s.retries_spent,
                "ledger out of balance: generated {} != delivered {} + ring drops {} \
                 + aqm drops {} + admission sheds {} + retries {}",
                s.net_generated, s.net_delivered, s.rx_ring_drops,
                s.aqm_drops, s.admission_sheds, s.retries_spent
            );
            prop_assert!(m.tracer.checker.violations().is_empty());
        }
    }

    proptest! {
        /// Conservation invariant #9 (DESIGN.md §16): under multi-tenant
        /// load every per-class ledger balances on its own *and* the
        /// class arrays sum to the global counters, no matter what the
        /// data-plane fault plan injects. Classes are where overload
        /// *policy* differs (batch is shed first), so attribution, not
        /// just totals, must survive chaos — a shed billed to the wrong
        /// class would silently break every isolation claim downstream.
        #[test]
        fn class_ledgers_balance_under_random_fault_plans(
            seed in 0u64..u64::MAX,
            drop_poll_bp in 0u32..2_000,
            delay_poll_bp in 0u32..3_000,
            sticks in prop::bool::ANY,
            wire_loss_bp in 0u32..1_500,
            lc_krps in 100u64..900,
            batch_krps in 10u64..120,
            with_retry in prop::bool::ANY,
        ) {
            use skyloft_apps::synthetic::{install_tenants, Tenant};
            use skyloft_net::{AdmissionConfig, CodelConfig, RetryPolicy};

            let mut plan = FaultPlan::seeded(seed)
                .drop_rx_polls(drop_poll_bp as f64 / 10_000.0)
                .delay_rx_polls(delay_poll_bp as f64 / 10_000.0, Nanos::from_us(3));
            if sticks {
                plan = plan.stuck_indirections(Nanos::from_ms(1), Nanos::from_us(200));
            }
            let (mut m, mut q) = percpu(3, 2, Some(plan), true);
            let lc = Tenant {
                gen: OpenLoop::new(
                    lc_krps as f64 * 1_000.0,
                    skyloft_sim::Distribution::Constant(Nanos::from_us(2)),
                    dispersive_threshold(),
                    seed ^ 0x1C,
                ),
                app: 0,
                class: Some(0),
            };
            let batch = Tenant {
                gen: OpenLoop::new(
                    batch_krps as f64 * 1_000.0,
                    skyloft_sim::Distribution::Constant(Nanos::from_us(20)),
                    dispersive_threshold(),
                    seed ^ 0xBA,
                ),
                app: 1,
                class: Some(1),
            };
            let net = (wire_loss_bp > 0).then(|| NetProfile::lossy(
                seed ^ 9,
                wire_loss_bp as f64 / 10_000.0,
                0.0,
                Nanos::from_ms(1),
            ));
            let mut adm = AdmissionConfig::default();
            adm.class_slo[0] = Some(Nanos::from_us(200));
            adm.class_slo[1] = Some(Nanos::from_ms(2));
            let ctl = skyloft_apps::synthetic::OverloadControl {
                codel: Some(CodelConfig::default()),
                admission: Some(adm),
                retry: with_retry.then(RetryPolicy::default),
                retry_frac: with_retry.then(|| {
                    let mut f = [None; skyloft_net::overload::MAX_CLASSES];
                    f[0] = Some(80);
                    f[1] = Some(20);
                    f
                }),
            };
            let mut nic = NicConfig::for_workers(3);
            nic.client_timeout = Nanos::from_ms(1);
            install_tenants(&mut q, vec![lc, batch], nic, Nanos::from_ms(3), net, ctl);
            m.run(&mut q, Nanos::from_ms(30));
            let s = &m.stats;
            prop_assert!(s.net_generated > 0, "generators never offered load");
            prop_assert_eq!(s.net_in_flight, 0, "datagrams still in flight after drain");
            prop_assert!(s.in_flight_by_class.iter().all(|&c| c == 0));
            // The class arrays tile the global counters exactly.
            prop_assert_eq!(s.generated_by_class.iter().sum::<u64>(), s.net_generated);
            prop_assert_eq!(s.delivered_by_class.iter().sum::<u64>(), s.net_delivered);
            prop_assert_eq!(s.rx_drops_by_class.iter().sum::<u64>(), s.rx_ring_drops);
            prop_assert_eq!(s.aqm_drops_by_class.iter().sum::<u64>(), s.aqm_drops);
            prop_assert_eq!(s.sheds_by_class.iter().sum::<u64>(), s.admission_sheds);
            prop_assert_eq!(s.retries_by_class.iter().sum::<u64>(), s.retries_spent);
            // And each class's ledger balances independently: per-class
            // conservation is what proves one tenant's losses are never
            // laundered through another's counters.
            for c in 0..s.generated_by_class.len() {
                prop_assert_eq!(
                    s.generated_by_class[c],
                    s.delivered_by_class[c] + s.rx_drops_by_class[c]
                        + s.aqm_drops_by_class[c] + s.sheds_by_class[c]
                        + s.retries_by_class[c],
                    "class {} ledger out of balance: {:?}",
                    c,
                    s
                );
            }
            prop_assert!(m.tracer.checker.violations().is_empty());
        }
    }
}

mod scoped_plans {
    use super::*;

    /// The stats a fault plan can perturb, in one comparable bundle.
    fn fingerprint(m: &Machine) -> (u64, u64, u64, u64, u64) {
        (
            m.stats.completed,
            m.stats.timer_delivered,
            m.stats.timer_lost,
            m.stats.timer_rearms,
            m.stats.resp_hist.count(),
        )
    }

    /// Scoping a plan to an app that never runs suppresses every fault
    /// *effect* — the run must replay the fault-free twin exactly — while
    /// still consuming the injection RNG draw-then-filter style, so the
    /// suppressed schedule is the one a matching app would have seen.
    #[test]
    fn fault_scope_to_an_idle_app_replays_the_fault_free_run() {
        let run = |plan: Option<FaultPlan>| {
            let (mut m, mut q) = percpu(2, 2, plan, true);
            busy_all_cores(&mut m, &mut q, Nanos::from_us(400));
            for _ in 0..50 {
                m.spawn_request(&mut q, 0, Nanos::from_us(100), 0, None);
            }
            m.run(&mut q, Nanos::from_ms(5));
            m
        };
        // Probability faults only: they draw inside existing machine
        // paths without scheduling events of their own, so the replay
        // claim is exact, not approximate.
        let plan = FaultPlan::seeded(21)
            .drop_arming(1.0)
            .drop_preempt(0.8)
            .drop_revoke(0.8)
            .scope_to_app(1);
        let scoped = run(Some(plan));
        let clean = run(None);
        assert_eq!(fingerprint(&scoped), fingerprint(&clean));
        let cs = scoped.chaos.as_ref().unwrap().stats;
        assert_eq!(
            cs.armings_dropped, 0,
            "idle-app scope must suppress effects"
        );
        assert_eq!(cs.preempts_dropped + cs.revokes_dropped, 0);
        assert!(scoped
            .worker_cores
            .iter()
            .all(|&c| !scoped.core_arming_lost(c)));
        assert_eq!(scoped.stats.completed, 52, "all work finishes fault-free");
    }

    /// The other end of draw-then-filter: when the scope matches every
    /// core the faults would have hit anyway (one app, all cores busy on
    /// it), the scoped plan replays the unscoped plan bit-identically —
    /// adding a scope never re-seeds or re-orders the injection RNG.
    #[test]
    fn fault_scope_matching_every_active_core_replays_the_unscoped_run() {
        let run = |scoped: bool| {
            let mut plan = FaultPlan::seeded(77).drop_arming(0.5);
            if scoped {
                plan = plan.scope_to_app(0);
            }
            let (mut m, mut q) = percpu(2, 1, Some(plan), true);
            // Every core stays busy on app 0 for the whole run, so
            // `cur_app` always matches the scope and no draw is filtered.
            busy_all_cores(&mut m, &mut q, Nanos::from_ms(10));
            m.run(&mut q, Nanos::from_ms(5));
            m
        };
        let unscoped = run(false);
        let scoped = run(true);
        assert_eq!(fingerprint(&unscoped), fingerprint(&scoped));
        let (u, s) = (
            unscoped.chaos.as_ref().unwrap().stats,
            scoped.chaos.as_ref().unwrap().stats,
        );
        assert_eq!(u.armings_dropped, s.armings_dropped);
        assert!(
            u.armings_dropped > 0,
            "plan never fired; replay claim vacuous"
        );
    }
}

mod random_plans {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// With recovery on, any plan drawn from the fault space leaves the
        /// machine invariant-clean (the debug checker panics mid-run
        /// otherwise) and all work completes. Probabilities are drawn in
        /// basis points (the vendored proptest has integer strategies).
        #[test]
        fn machine_invariants_hold_under_random_fault_plans(
            seed in 0u64..u64::MAX,
            arming_bp in 0u32..500,
            preempt_bp in 0u32..3_000,
            revoke_bp in 0u32..3_000,
            page_faults in prop::bool::ANY,
            stalls in prop::bool::ANY,
            workers in 2usize..5,
            rate_krps in 40u64..120,
        ) {
            let mut plan = FaultPlan::seeded(seed)
                .drop_arming(arming_bp as f64 / 10_000.0)
                .drop_preempt(preempt_bp as f64 / 10_000.0)
                .delay_preempt(0.2, Nanos::from_us(5))
                .drop_revoke(revoke_bp as f64 / 10_000.0);
            if page_faults {
                plan = plan.page_faults(Nanos::from_ms(1), Nanos::from_us(80));
            }
            if stalls {
                plan = plan.stalls(Nanos::from_ms(2), Nanos::from_us(150));
            }
            let (mut m, mut q) = percpu(workers, 2, Some(plan), true);
            let end = Nanos::from_ms(6);
            let gen = OpenLoop::new(
                rate_krps as f64 * 1_000.0,
                skyloft_sim::Distribution::Constant(Nanos::from_us(15)),
                dispersive_threshold(),
                seed ^ 0xABCD,
            );
            install_open_loop(&mut q, gen, 0, Placement::Queue, end);
            m.run(&mut q, Nanos::from_ms(12));
            prop_assert!(m.tracer.checker.checks_run() > 0, "checker never ran");
            prop_assert!(m.tracer.checker.violations().is_empty());
            prop_assert!(m.stats.completed > 0);
            m.kmod.check_binding_rule().unwrap();
        }
    }
}
