//! Cross-crate integration tests: small-scale versions of the paper's
//! claims, run end to end through the full stack (workloads → framework →
//! policies → hardware model).

use skyloft::builtin::GlobalFifo;
use skyloft::machine::{AppKind, Event, Machine, MachineConfig};
use skyloft::{CoreAllocConfig, Platform, SchedParams};
use skyloft_apps::harness::{run_point, SweepSpec};
use skyloft_apps::synthetic::{dispersive, dispersive_threshold, Placement};
use skyloft_hw::Topology;
use skyloft_policies::{Cfs, RoundRobin, Shinjuku, WorkStealing};
use skyloft_sim::{Distribution, EventQueue, Nanos};

fn centralized(
    workers: usize,
    quantum: Option<Nanos>,
    core_alloc: Option<CoreAllocConfig>,
    be: bool,
) -> (Machine, EventQueue<Event>) {
    let cfg = MachineConfig {
        plat: Platform::skyloft_centralized(Topology::single(workers + 1)),
        n_workers: workers,
        seed: 7,
        core_alloc,
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, Box::new(Shinjuku::new(quantum)));
    m.add_app("lc", AppKind::Lc);
    if be {
        m.add_app("batch", AppKind::Be);
    }
    let mut q = EventQueue::new();
    m.start(&mut q);
    (m, q)
}

fn spec(rate: f64) -> SweepSpec {
    SweepSpec {
        class_threshold: dispersive_threshold(),
        placement: Placement::Queue,
        warmup: Nanos::from_ms(20),
        measure: Nanos::from_ms(120),
        ..SweepSpec::new("test", vec![rate], dispersive())
    }
}

/// §5.2's core claim at small scale: with the dispersive workload, the
/// preemptive Shinjuku policy keeps short-request p99 orders of magnitude
/// below non-preemptive FCFS.
#[test]
fn preemption_beats_fcfs_on_dispersive_load() {
    let rate = 120_000.0; // ~87% of an 8-worker machine's capacity
    let preemptive = run_point(&spec(rate), rate, &|| {
        centralized(8, Some(Nanos::from_us(30)), None, false)
    });
    let fcfs = run_point(&spec(rate), rate, &|| centralized(8, None, None, false));
    assert!(
        preemptive.p99_us * 5.0 < fcfs.p99_us,
        "preemptive p99 {:.0}us vs FCFS {:.0}us",
        preemptive.p99_us,
        fcfs.p99_us
    );
}

/// The Single Binding Rule (§3.3) holds through a full multi-application
/// run with the core allocator granting and revoking cores.
#[test]
fn binding_rule_survives_core_allocation_churn() {
    let (mut m, mut q) = centralized(
        4,
        Some(Nanos::from_us(30)),
        Some(CoreAllocConfig::default()),
        true,
    );
    // Alternate idle and busy phases to force grants and revokes.
    for phase in 0..4u64 {
        let start = Nanos::from_ms(phase * 20);
        if phase % 2 == 1 {
            for i in 0..600 {
                q.schedule(
                    start + Nanos(i * 30_000),
                    Event::Call(skyloft::Call(Box::new(|m, q| {
                        m.spawn_request(q, 0, Nanos::from_us(50), 0, None);
                    }))),
                );
            }
        }
    }
    m.run(&mut q, Nanos::from_ms(90));
    m.kmod.check_binding_rule().expect("binding rule intact");
    assert!(m.stats.be_grants > 0, "allocator granted cores");
    assert!(m.stats.be_revokes > 0, "allocator revoked cores");
    assert!(m.stats.completed >= 1000, "LC work completed");
}

/// Work conservation: at moderate load no task waits while a core idles
/// (throughput equals offered load, well below capacity).
#[test]
fn work_conserving_under_moderate_load() {
    let rate = 50_000.0;
    let p = run_point(&spec(rate), rate, &|| {
        centralized(8, Some(Nanos::from_us(30)), None, false)
    });
    assert!(
        (p.achieved_rps - rate).abs() / rate < 0.05,
        "achieved {:.0} vs offered {rate}",
        p.achieved_rps
    );
}

/// The user-timer delegation stays armed across a whole run: every timer
/// interrupt is recognized (no §3.2 losses) and preemption works.
#[test]
fn timer_delegation_never_loses_interrupts() {
    let cfg = MachineConfig {
        plat: Platform::skyloft_percpu(Topology::single(2), 100_000),
        n_workers: 2,
        seed: 3,
        core_alloc: None,
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, Box::new(RoundRobin::new(Some(Nanos::from_us(50)))));
    m.add_app("a", AppKind::Lc);
    let mut q = EventQueue::new();
    m.start(&mut q);
    for _ in 0..8 {
        m.spawn_request(&mut q, 0, Nanos::from_ms(2), 0, None);
    }
    m.run(&mut q, Nanos::from_ms(20));
    assert_eq!(m.stats.completed, 8);
    assert!(m.stats.timer_delivered > 1000);
    assert_eq!(m.stats.timer_lost, 0, "PIR re-arm must never be missed");
    assert!(m.stats.preemptions > 10);
    assert!(m.uintr.stats.sends_suppressed > 0, "SN self-posts happened");
}

/// Work stealing balances a skewed arrival pattern across cores.
#[test]
fn work_stealing_balances_skewed_arrivals() {
    let cfg = MachineConfig {
        plat: Platform::skyloft_percpu(Topology::single(4), 100_000),
        n_workers: 4,
        seed: 5,
        core_alloc: None,
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, Box::new(WorkStealing::new(None)));
    m.add_app("kv", AppKind::Lc);
    let mut q = EventQueue::new();
    m.start(&mut q);
    // All requests pinned to core 0's queue; thieves must spread them.
    for i in 0..400u64 {
        q.schedule(
            Nanos(i * 2_000),
            Event::Call(skyloft::Call(Box::new(|m, q| {
                m.spawn_request(q, 0, Nanos::from_us(30), 0, Some(0));
            }))),
        );
    }
    m.run(&mut q, Nanos::from_ms(20));
    assert_eq!(m.stats.completed, 400);
    // 400 x 30 us = 12 ms of work arriving within ~0.8 ms: one core alone
    // would need ~12 ms, four balanced cores ~3 ms. Stealing must finish
    // well under the single-core bound.
    assert!(
        m.stats.last_completion < Nanos::from_ms(6),
        "work did not spread: finished at {:?}",
        m.stats.last_completion
    );
}

/// Identical seeds give bit-identical experiment results (the determinism
/// the harness depends on).
#[test]
fn full_machine_runs_are_deterministic() {
    let run = || {
        let rate = 90_000.0;
        run_point(&spec(rate), rate, &|| {
            centralized(8, Some(Nanos::from_us(30)), None, false)
        })
    };
    assert_eq!(run(), run());
}

/// CFS gives a low-weight batch task a proportional share while LC
/// requests keep flowing (the per-CPU half of §5.2).
#[test]
fn cfs_weight_proportional_sharing() {
    let cfg = MachineConfig {
        plat: Platform::skyloft_percpu(Topology::single(2), 100_000),
        n_workers: 2,
        seed: 11,
        core_alloc: None,
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, Box::new(Cfs::new(SchedParams::SKYLOFT_CFS)));
    m.add_app("lc", AppKind::Lc);
    let be = m.add_app("batch", AppKind::Be);
    let mut q = EventQueue::new();
    m.start(&mut q);
    skyloft_apps::batch::spawn_percpu_batch(
        &mut m,
        &mut q,
        be,
        Nanos::from_us(50),
        skyloft_apps::batch::NICE19_WEIGHT,
    );
    for i in 0..500u64 {
        q.schedule(
            Nanos(i * 40_000),
            Event::Call(skyloft::Call(Box::new(|m, q| {
                m.spawn_request(q, 0, Nanos::from_us(25), 0, None);
            }))),
        );
    }
    m.run(&mut q, Nanos::from_ms(25));
    assert_eq!(m.stats.completed, 500);
    let lc_share = m.app_share(0, q.now());
    let be_share = m.app_share(be, q.now());
    // LC demand is ~25% of two cores; batch soaks most of the rest.
    assert!((0.15..=0.45).contains(&lc_share), "lc share {lc_share}");
    assert!(be_share > 0.5, "batch share {be_share}");
    // And the requests were not starved by the spinning batch.
    assert!(
        m.stats.resp_hist.percentile(99.0) < 3_000_000,
        "p99 {}",
        m.stats.resp_hist.percentile(99.0)
    );
}

/// The cross-application switch path charges the measured 1905 ns and the
/// kernel module sees every switch.
#[test]
fn inter_app_switching_cost_is_charged() {
    let cfg = MachineConfig {
        plat: Platform::skyloft_percpu(Topology::single(1), 100_000),
        n_workers: 1,
        seed: 13,
        core_alloc: None,
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, Box::new(GlobalFifo::new()));
    m.add_app("a", AppKind::Lc);
    m.add_app("b", AppKind::Lc);
    let mut q = EventQueue::new();
    m.start(&mut q);
    for i in 0..100 {
        m.spawn_request(&mut q, i % 2, Nanos::from_us(5), 0, Some(0));
    }
    m.run(&mut q, Nanos::from_ms(5));
    assert_eq!(m.stats.completed, 100);
    assert_eq!(m.stats.app_switches, 99);
    assert_eq!(m.kmod.stats.switches, 99);
    // End-to-end must include ~99 x 1868ns of kernel switching.
    let total = m.stats.last_completion;
    assert!(
        total > Nanos(100 * 5_000 + 99 * 1_800),
        "total {total:?} too fast for 99 inter-app switches"
    );
}

/// Shenango's model (no preemption) head-of-line blocks the bimodal
/// workload while Skyloft's 5 μs quantum does not — Figure 8b's mechanism
/// at unit-test scale.
#[test]
fn shenango_hol_blocks_bimodal_skyloft_does_not() {
    let bimodal = Distribution::Bimodal {
        p_long: 0.5,
        short: Nanos(950),
        long: Nanos::from_us(591),
    };
    let mut sp = SweepSpec {
        class_threshold: Nanos::from_us(10),
        placement: Placement::Rss { n: 4 },
        warmup: Nanos::from_ms(20),
        measure: Nanos::from_ms(150),
        ..SweepSpec::new("t", vec![10_000.0], bimodal)
    };
    sp.seed = 99;
    let sky = run_point(&sp, 10_000.0, &|| {
        let cfg = MachineConfig {
            plat: Platform::skyloft_percpu(Topology::single(4), 200_000),
            n_workers: 4,
            seed: 9,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(cfg, Box::new(WorkStealing::new(Some(Nanos::from_us(5)))));
        m.add_app("kv", AppKind::Lc);
        let mut q = EventQueue::new();
        m.start(&mut q);
        (m, q)
    });
    let shen = run_point(&sp, 10_000.0, &|| {
        let cfg = MachineConfig {
            plat: skyloft_baselines::shenango::platform(Topology::single(4)),
            n_workers: 4,
            seed: 9,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(cfg, Box::new(skyloft_baselines::shenango::work_stealing()));
        m.add_app("kv", AppKind::Lc);
        let mut q = EventQueue::new();
        m.start(&mut q);
        (m, q)
    });
    let sky_slow = sky.slowdown_p999.unwrap();
    let shen_slow = shen.slowdown_p999.unwrap();
    assert!(
        sky_slow * 2.0 < shen_slow,
        "skyloft p999 slowdown {sky_slow:.0}x vs shenango {shen_slow:.0}x"
    );
}
