//! Differential suite: the optimized policy implementations against the
//! frozen pre-optimization oracles in `skyloft_policies::reference`
//! (DESIGN.md §14).
//!
//! Each test drives two copies of the same policy — the optimized one via
//! its module path (module paths always name the optimized versions) and
//! the reference one — through an identical randomized trace of
//! enqueue/dequeue/tick/block/wakeup/balance/poll/terminate operations on
//! mirrored task tables, asserting *exact* decision equality at every
//! step: same picks (including `(vd, TaskId)` tie-breaks), same preempt
//! verdicts, same steal choices, same queue telemetry. This is what lets
//! the incremental EEVDF accumulators, the indexed runqueues, and the
//! compact core→rq map ship without moving a single golden.

use std::collections::HashMap;

use proptest::prelude::*;

use skyloft::ops::{CoreId, EnqueueFlags, Policy, SchedEnv};
use skyloft::task::{Task, TaskId, TaskTable};
use skyloft::SchedParams;
use skyloft_policies::{cfs, eevdf, reference, rr, shinjuku, shinjuku_shenango, work_stealing};
use skyloft_sim::Nanos;

/// Nice-level spread: nice 0, lighter, heavier, and the heaviest weight in
/// Linux's `sched_prio_to_weight` table (nice -20) to stress the weighted
/// accumulator math.
const WEIGHTS: [u32; 4] = [1024, 423, 2048, 88761];

/// Builds the (optimized, oracle) pair for a policy selector.
fn pair(which: u8) -> (Box<dyn Policy>, Box<dyn Policy>) {
    let q = Some(Nanos::from_us(20));
    match which % 6 {
        0 => (
            Box::new(eevdf::Eevdf::new(SchedParams::SKYLOFT_EEVDF)) as Box<dyn Policy>,
            Box::new(reference::Eevdf::new(SchedParams::SKYLOFT_EEVDF)) as Box<dyn Policy>,
        ),
        1 => (
            Box::new(cfs::Cfs::new(SchedParams::SKYLOFT_CFS)),
            Box::new(reference::Cfs::new(SchedParams::SKYLOFT_CFS)),
        ),
        2 => (
            Box::new(rr::RoundRobin::new(q)),
            Box::new(reference::RoundRobin::new(q)),
        ),
        3 => (
            Box::new(work_stealing::WorkStealing::new(q)),
            Box::new(reference::WorkStealing::new(q)),
        ),
        4 => (
            Box::new(shinjuku::Shinjuku::new(q)),
            Box::new(reference::Shinjuku::new(q)),
        ),
        _ => (
            Box::new(shinjuku_shenango::ShinjukuShenango::new(q)),
            Box::new(reference::ShinjukuShenango::new(q)),
        ),
    }
}

/// Worker-core layouts, including sparse two-socket-style id spreads (the
/// compact core→rq map must behave exactly like the old dense vectors).
fn core_set(sel: u8) -> Vec<CoreId> {
    match sel % 4 {
        0 => vec![0, 1, 2, 3],
        1 => vec![0, 1],
        2 => vec![3, 47],
        _ => vec![5, 6, 40, 63],
    }
}

/// Drives one `(op, sel, amt)` trace through both policies, asserting
/// decision equality after every step, then drains both to empty and
/// asserts the drain sequences match pick for pick.
fn run_trace(which: u8, cores_sel: u8, ops: Vec<(u8, usize, u64)>, seed_vruntime: Option<u64>) {
    let (mut opt, mut oracle) = pair(which);
    let cores = core_set(cores_sel);
    let env = SchedEnv {
        worker_cores: cores.clone(),
        dispatcher: None,
    };
    opt.sched_init(&env);
    oracle.sched_init(&env);
    let mut ta = TaskTable::new();
    let mut tb = TaskTable::new();
    // Which task runs on each core, and since when — identical on both
    // sides by construction (every divergence would trip an assert first).
    let mut running: HashMap<CoreId, (TaskId, Nanos)> = HashMap::new();
    let mut blocked: Vec<TaskId> = Vec::new();
    let mut now = Nanos::ZERO;
    for (op, sel, amt) in ops {
        now += Nanos(1 + amt % 9_973);
        let cpu = cores[sel % cores.len()];
        match op % 11 {
            // Spawn a fresh task and enqueue it (two opcodes: keep the
            // population growing faster than terminate shrinks it).
            0 | 1 => {
                let a = ta.insert(|id| Task::bare(id, 0));
                let b = tb.insert(|id| Task::bare(id, 0));
                prop_assert_eq!(a, b, "mirrored tables diverged on insert");
                opt.task_init(&mut ta, a, now);
                oracle.task_init(&mut tb, b, now);
                let w = WEIGHTS[sel % WEIGHTS.len()];
                ta.get_mut(a).pd.weight = w;
                tb.get_mut(b).pd.weight = w;
                if let Some(base) = seed_vruntime {
                    let vr = base + amt % 100_000;
                    ta.get_mut(a).pd.vruntime = vr;
                    tb.get_mut(b).pd.vruntime = vr;
                    ta.get_mut(a).pd.deadline = vr + 1 + amt % 50_000;
                    tb.get_mut(b).pd.deadline = ta.get(a).pd.deadline;
                }
                // Stamp the wait anchor as the machine would (queue_delay
                // contract: sojourns are measured from `runnable_since`).
                ta.get_mut(a).runnable_since = now;
                tb.get_mut(b).runnable_since = now;
                let hint = (amt % 4 != 0).then_some(cpu);
                opt.task_enqueue(&mut ta, a, hint, EnqueueFlags::New, now);
                oracle.task_enqueue(&mut tb, b, hint, EnqueueFlags::New, now);
            }
            // Pick the next task on an idle core.
            2 => {
                if running.contains_key(&cpu) {
                    continue;
                }
                let x = opt.task_dequeue(&mut ta, cpu, now);
                let y = oracle.task_dequeue(&mut tb, cpu, now);
                prop_assert_eq!(x, y, "dequeue diverged on core {}", cpu);
                if let Some(t) = x {
                    running.insert(cpu, (t, now));
                }
            }
            // Timer tick on a busy core; requeue on preempt.
            3 => {
                let Some(&(t, since)) = running.get(&cpu) else {
                    continue;
                };
                let ran = now.saturating_sub(since);
                let x = opt.sched_timer_tick(&mut ta, cpu, t, ran, now);
                let y = oracle.sched_timer_tick(&mut tb, cpu, t, ran, now);
                prop_assert_eq!(x, y, "tick verdict diverged on core {}", cpu);
                if x {
                    running.remove(&cpu);
                    ta.get_mut(t).runnable_since = now;
                    tb.get_mut(t).runnable_since = now;
                    opt.task_enqueue(&mut ta, t, Some(cpu), EnqueueFlags::Preempted, now);
                    oracle.task_enqueue(&mut tb, t, Some(cpu), EnqueueFlags::Preempted, now);
                }
            }
            // The running task blocks (or voluntarily yields).
            4 => {
                let Some((t, _)) = running.remove(&cpu) else {
                    continue;
                };
                if amt % 3 == 0 {
                    ta.get_mut(t).runnable_since = now;
                    tb.get_mut(t).runnable_since = now;
                    opt.task_enqueue(&mut ta, t, Some(cpu), EnqueueFlags::Yield, now);
                    oracle.task_enqueue(&mut tb, t, Some(cpu), EnqueueFlags::Yield, now);
                } else {
                    opt.task_block(&mut ta, t, cpu, now);
                    oracle.task_block(&mut tb, t, cpu, now);
                    blocked.push(t);
                }
            }
            // A blocked task wakes; compare the wakeup-preempt verdict
            // against whatever runs on the hint core.
            5 => {
                if blocked.is_empty() {
                    continue;
                }
                let t = blocked.swap_remove(amt as usize % blocked.len());
                let hint = (amt % 5 != 0).then_some(cpu);
                ta.get_mut(t).runnable_since = now;
                tb.get_mut(t).runnable_since = now;
                opt.task_wakeup(&mut ta, t, hint, now);
                oracle.task_wakeup(&mut tb, t, hint, now);
                if let Some(&(cur, since)) = running.get(&cpu) {
                    let ran = now.saturating_sub(since);
                    let x = opt.check_wakeup_preempt(&ta, t, cpu, cur, ran, now);
                    let y = oracle.check_wakeup_preempt(&tb, t, cpu, cur, ran, now);
                    prop_assert_eq!(x, y, "wakeup-preempt verdict diverged");
                }
            }
            // Work stealing / load balance from an idle core.
            6 => {
                if running.contains_key(&cpu) {
                    continue;
                }
                let x = opt.sched_balance(&mut ta, cpu, now);
                let y = oracle.sched_balance(&mut tb, cpu, now);
                prop_assert_eq!(x, y, "balance diverged on core {}", cpu);
                if let Some(t) = x {
                    running.insert(cpu, (t, now));
                }
            }
            // The running task completes.
            7 => {
                let Some((t, _)) = running.remove(&cpu) else {
                    continue;
                };
                opt.task_terminate(&mut ta, t, now);
                oracle.task_terminate(&mut tb, t, now);
                ta.remove(t);
                tb.remove(t);
            }
            // Burst spawn via `enqueue_batch`: the optimized policy's fused
            // batch path (single aggregate update) against the oracle's
            // loop-of-singles default. Hints vary per task so the
            // mixed-runqueue fallback is exercised too.
            8 => {
                let n = 1 + amt as usize % 5;
                let mut batch_a = Vec::new();
                let mut batch_b = Vec::new();
                for i in 0..n {
                    let a = ta.insert(|id| Task::bare(id, 0));
                    let b = tb.insert(|id| Task::bare(id, 0));
                    prop_assert_eq!(a, b, "mirrored tables diverged on insert");
                    opt.task_init(&mut ta, a, now);
                    oracle.task_init(&mut tb, b, now);
                    let w = WEIGHTS[(sel + i) % WEIGHTS.len()];
                    ta.get_mut(a).pd.weight = w;
                    tb.get_mut(b).pd.weight = w;
                    if let Some(base) = seed_vruntime {
                        let vr = base + (amt + i as u64) % 100_000;
                        ta.get_mut(a).pd.vruntime = vr;
                        tb.get_mut(b).pd.vruntime = vr;
                    }
                    let hint = match amt % 3 {
                        0 => Some(cpu),
                        1 => Some(cores[(sel + i) % cores.len()]),
                        _ => None,
                    };
                    let flags = if amt % 2 == 0 {
                        EnqueueFlags::New
                    } else {
                        EnqueueFlags::Wakeup
                    };
                    ta.get_mut(a).runnable_since = now;
                    tb.get_mut(b).runnable_since = now;
                    batch_a.push((a, hint, flags));
                    batch_b.push((b, hint, flags));
                }
                opt.enqueue_batch(&mut ta, &batch_a, now);
                oracle.enqueue_batch(&mut tb, &batch_b, now);
            }
            // Burst pick via `pick_batch` on an idle core: the optimized
            // deferred-rebase path against the oracle's repeated
            // `task_dequeue`. Picked tasks terminate (centralized-drain
            // shape) so both tables stay mirrored.
            9 => {
                if running.contains_key(&cpu) {
                    continue;
                }
                let max = 1 + amt as usize % 4;
                let mut out_a = Vec::new();
                let mut out_b = Vec::new();
                opt.pick_batch(&mut ta, cpu, max, now, &mut out_a);
                oracle.pick_batch(&mut tb, cpu, max, now, &mut out_b);
                prop_assert_eq!(&out_a, &out_b, "pick_batch diverged on core {}", cpu);
                for t in out_a {
                    opt.task_terminate(&mut ta, t, now);
                    oracle.task_terminate(&mut tb, t, now);
                    ta.remove(t);
                    tb.remove(t);
                }
            }
            // Centralized dispatch to every idle worker (a no-op default
            // for per-CPU policies — trivially equal there).
            _ => {
                let idle: Vec<CoreId> = cores
                    .iter()
                    .copied()
                    .filter(|c| !running.contains_key(c))
                    .collect();
                let mut out_a = Vec::new();
                let mut out_b = Vec::new();
                opt.sched_poll(&mut ta, &idle, now, &mut out_a);
                oracle.sched_poll(&mut tb, &idle, now, &mut out_b);
                prop_assert_eq!(&out_a, &out_b, "poll placements diverged");
                for (c, t) in out_a {
                    running.insert(c, (t, now));
                }
            }
        }
        prop_assert_eq!(opt.queue_len(), oracle.queue_len(), "queue_len diverged");
        prop_assert_eq!(
            opt.queue_delay(&ta, now),
            oracle.queue_delay(&tb, now),
            "queue_delay diverged"
        );
    }
    // Drain both sides to empty and require pick-for-pick identical
    // sequences (dequeue first, then steal/balance, per core in order).
    for _ in 0..4096 {
        now += Nanos(11);
        let mut progressed = false;
        for &cpu in &cores {
            let x = opt
                .task_dequeue(&mut ta, cpu, now)
                .or_else(|| opt.sched_balance(&mut ta, cpu, now));
            let y = oracle
                .task_dequeue(&mut tb, cpu, now)
                .or_else(|| oracle.sched_balance(&mut tb, cpu, now));
            prop_assert_eq!(x, y, "drain diverged on core {}", cpu);
            if let Some(t) = x {
                opt.task_terminate(&mut ta, t, now);
                oracle.task_terminate(&mut tb, t, now);
                ta.remove(t);
                tb.remove(t);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    prop_assert_eq!(opt.queue_len(), oracle.queue_len());
}

proptest! {
    /// All six policies, dense and sparse core layouts: every scheduling
    /// decision of the optimized implementation matches the frozen
    /// reference oracle over arbitrary operation traces.
    #[test]
    fn policies_match_reference_oracle(
        which in 0u8..6,
        cores_sel in 0u8..4,
        ops in prop::collection::vec((0u8..11, 0usize..64, 0u64..50_000), 1..300),
    ) {
        run_trace(which, cores_sel, ops, None);
    }

    /// EEVDF with vruntimes seeded near the `u64` limit: the rebased
    /// incremental accumulators must keep agreeing with the full-scan
    /// u128 reference right up against overflow territory.
    #[test]
    fn eevdf_matches_reference_near_u64_vruntime_limit(
        cores_sel in 0u8..4,
        ops in prop::collection::vec((0u8..11, 0usize..64, 0u64..50_000), 1..200),
    ) {
        // Headroom keeps per-tick vruntime charging from wrapping while
        // the *accumulator* math (sum of v·w over a queue) would overflow
        // u64 arithmetic many times over without the min_vruntime rebase.
        let base = u64::MAX - Nanos::from_secs(40).0;
        run_trace(0, cores_sel, ops, Some(base));
    }

    /// CFS across sparse core layouts with weight spread: the cached
    /// queue counter and compact core→rq map never change a decision.
    #[test]
    fn cfs_matches_reference_on_sparse_layouts(
        cores_sel in 2u8..4,
        ops in prop::collection::vec((0u8..11, 0usize..64, 0u64..50_000), 1..250),
    ) {
        run_trace(1, cores_sel, ops, None);
    }
}
