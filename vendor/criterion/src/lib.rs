//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use
//! (`bench_function`, `iter`, `iter_custom`, `iter_batched`, the
//! `criterion_group!`/`criterion_main!` macros) with a plain
//! measure-and-print loop instead of criterion's statistics. Good enough
//! to keep `cargo bench` compiling and producing indicative numbers
//! without network access to crates.io.

use std::time::{Duration, Instant};

/// Batch sizing hint (ignored by this stand-in).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warm up and find an iteration count that fills a sample.
        let warm_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_end {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed < Duration::from_micros(100) {
                b.iters = (b.iters * 2).min(1 << 24);
            }
        }
        let per_sample = self.measurement_time / self.sample_size as u32;
        if b.elapsed > Duration::ZERO && b.elapsed < per_sample {
            let scale = per_sample.as_nanos() / b.elapsed.as_nanos().max(1);
            b.iters = (b.iters.saturating_mul(scale as u64)).clamp(1, 1 << 24);
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            total += b.elapsed;
            iters += b.iters;
        }
        let per_iter = total.as_nanos() as f64 / iters.max(1) as f64;
        println!("{name:<44} {per_iter:>12.1} ns/iter ({iters} iters)");
        self
    }

    /// Criterion's config finalizer (no-op here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Criterion's report finalizer (no-op here).
    pub fn final_summary(&mut self) {}
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    /// Iterations the closure must perform per sample.
    pub iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed += t0.elapsed();
    }

    /// Lets the closure time itself over `iters` iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed += f(self.iters);
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += t0.elapsed();
        }
    }
}

/// Declares a benchmark group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
