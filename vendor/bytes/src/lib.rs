//! Offline stand-in for the `bytes` crate.
//!
//! The container has no network access to crates.io, so the workspace
//! vendors the small slice of the `bytes` API it actually uses: cheaply
//! cloneable immutable byte buffers ([`Bytes`]), a growable builder
//! ([`BytesMut`]), and the [`Buf`]/[`BufMut`] cursor traits. Semantics
//! match the real crate for this subset; performance characteristics are
//! close enough for a discrete-event simulator (clone is an `Arc` bump,
//! `slice` is zero-copy).

use std::borrow::Borrow;
use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice.
    pub fn from_static(b: &'static [u8]) -> Bytes {
        Bytes::from(b.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a zero-copy sub-view.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&s) => s,
            std::ops::Bound::Excluded(&s) => s + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&e) => e + 1,
            std::ops::Bound::Excluded(&e) => e,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }

    /// Recovers the backing `Vec` if this is the only view of it (no other
    /// `Bytes` clones alive), else returns the buffer unchanged. Lets
    /// buffer pools reclaim storage without copying.
    pub fn try_unwrap(self) -> Result<Vec<u8>, Bytes> {
        let Bytes { data, start, end } = self;
        match Arc::try_unwrap(data) {
            Ok(v) => Ok(v),
            Err(data) => Err(Bytes { data, start, end }),
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(b: &[u8]) -> Bytes {
        Bytes::from(b.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor for the [`Buf`] impl.
    read: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
            read: 0,
        }
    }

    /// Unread length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.read
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        let v = self.data.split_off(self.read);
        Bytes::from(v)
    }

    /// Empties the buffer, keeping its capacity (for buffer reuse).
    pub fn clear(&mut self) {
        self.data.clear();
        self.read = 0;
    }
}

impl From<&[u8]> for BytesMut {
    fn from(b: &[u8]) -> BytesMut {
        BytesMut {
            data: b.to_vec(),
            read: 0,
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> BytesMut {
        BytesMut { data, read: 0 }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.read..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.read..]
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&Bytes::from(self.data[self.read..].to_vec()), f)
    }
}

/// Read cursor over a byte buffer (big-endian accessors, as in `bytes`).
pub trait Buf {
    /// Remaining unread bytes.
    fn remaining(&self) -> usize;
    /// Returns the unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let mut b = [0u8; 8];
        b.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Copies the next `n` bytes out as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let v = self.chunk()[..n].to_vec();
        self.advance(n);
        Bytes::from(v)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        Bytes::advance(self, cnt);
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.read += cnt;
    }
}

/// Write cursor over a growable byte buffer (big-endian, as in `bytes`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u16(0xbeef);
        b.put_u64(42);
        b.put_u8(7);
        b.put_slice(b"xy");
        let mut f = b.freeze();
        assert_eq!(f.len(), 13);
        assert_eq!(f.get_u16(), 0xbeef);
        assert_eq!(f.get_u64(), 42);
        assert_eq!(f.get_u8(), 7);
        assert_eq!(&f.copy_to_bytes(2)[..], b"xy");
        assert!(f.is_empty());
    }

    #[test]
    fn slice_is_a_view() {
        let b = Bytes::from_static(b"hello world");
        let s = b.slice(6..);
        assert_eq!(&s[..], b"world");
        assert_eq!(b.slice(0..5), Bytes::from_static(b"hello"));
    }
}
