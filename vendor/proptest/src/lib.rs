//! Offline stand-in for `proptest`.
//!
//! The container has no network access to crates.io, so the workspace
//! vendors the slice of proptest it uses: the [`proptest!`] macro over
//! `pattern in strategy` arguments, integer-range / tuple / `vec` / bool
//! strategies, and the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberate for this repo:
//!
//! * **No shrinking.** A failing case panics with its case number; inputs
//!   are reproducible because every case is seeded deterministically from
//!   the test's module path, name, and case index.
//! * **Fixed case count** (64 by default) overridable with the
//!   `PROPTEST_CASES` environment variable.
//! * `prop_assert!`/`prop_assert_eq!` are plain `assert!` wrappers: there
//!   is no rejection/`TestCaseError` machinery.

/// Deterministic RNG and case plumbing used by the [`proptest!`] macro.
pub mod test_runner {
    /// A splitmix64-based RNG, seeded per test case.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for `(test, case)`, deterministically.
        pub fn for_case(test: &str, case: u32) -> TestRng {
            let mut h = 0xcbf29ce484222325u64; // FNV-1a
            for b in test.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            let mut rng = TestRng {
                state: h ^ ((case as u64 + 1) << 32),
            };
            rng.next_u64(); // Diffuse the seed.
            rng
        }

        /// Next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)` (modulo bias is irrelevant here).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sample range");
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates random values of an associated type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = ((self.end as i128) - (self.start as i128)) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = ((hi as i128) - (lo as i128) + 1) as u64;
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s of a given element strategy and length
    /// range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Vectors of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.new_value(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a proptest-based test file needs.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Number of cases to run per property (`PROPTEST_CASES` overrides).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::cases();
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ($($arg,)+) = (
                        $($crate::strategy::Strategy::new_value(&($strat), &mut __rng),)+
                    );
                    $body
                }
            }
        )*
    };
}

/// Proptest-style assertion (plain `assert!` here: no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Proptest-style equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Proptest-style inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, w in 0u8..4) {
            prop_assert!((10..20).contains(&v));
            prop_assert!(w < 4);
        }

        #[test]
        fn vec_lengths_respected(xs in prop::collection::vec((0u32..5, prop::bool::ANY), 3..7)) {
            prop_assert!((3..7).contains(&xs.len()));
            for (n, _b) in xs {
                prop_assert!(n < 5);
            }
        }
    }

    #[test]
    fn deterministic_per_case() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        let s = 0u64..1_000_000;
        assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
    }

    #[test]
    fn full_width_range_works() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::for_case("w", 0);
        let s = 0u64..u64::MAX;
        for _ in 0..100 {
            let _ = s.new_value(&mut rng);
        }
    }
}
