//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the `parking_lot` API shape this workspace uses: a [`Mutex`]
//! whose `lock()` returns the guard directly (no poisoning), and a
//! [`Condvar`] with `wait_for`. Poisoning is handled by unwrapping: a
//! panicked worker thread already aborts the test run.

use std::time::Duration;

/// Mutex with the `parking_lot` interface (no poison handling).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// Result of a timed wait: records whether the wait timed out.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with the `parking_lot` interface.
#[derive(Default, Debug)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.wait_for(guard, Duration::from_secs(u64::MAX >> 10));
    }

    /// Blocks until notified or the timeout elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        // std's condvar consumes and returns the guard; parking_lot's takes
        // it by `&mut`. Move the guard out and back in; sound because
        // `wait_timeout` always returns a guard (even on poison).
        let g = unsafe { std::ptr::read(guard) };
        match self.inner.wait_timeout(g, timeout) {
            Ok((g, to)) => {
                unsafe { std::ptr::write(guard, g) };
                WaitTimeoutResult(to.timed_out())
            }
            Err(p) => {
                let (g, to) = p.into_inner();
                unsafe { std::ptr::write(guard, g) };
                WaitTimeoutResult(to.timed_out())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_try_lock() {
        let m = Mutex::new(5);
        {
            let g = m.lock();
            assert_eq!(*g, 5);
            assert!(m.try_lock().is_none());
        }
        *m.try_lock().unwrap() = 6;
        assert_eq!(*m.lock(), 6);
    }

    /// `wait_for` with nobody notifying must come back with
    /// `timed_out() == true`, and only after the timeout actually
    /// elapsed. The uthread eventcount's parking backstop depends on
    /// this distinction being truthful.
    #[test]
    fn wait_for_reports_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let timeout = Duration::from_millis(20);
        let mut g = m.lock();
        let t0 = std::time::Instant::now();
        let res = cv.wait_for(&mut g, timeout);
        assert!(res.timed_out(), "no notifier, so the wait must time out");
        assert!(
            t0.elapsed() >= timeout,
            "timed-out wait returned before the timeout elapsed"
        );
    }

    /// `wait_for` woken by a real `notify_one` must come back with
    /// `timed_out() == false`, well before a generous timeout.
    #[test]
    fn wait_for_reports_notification() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let generous = Duration::from_secs(5);
        let t0 = std::time::Instant::now();
        let mut g = m.lock();
        let mut res = WaitTimeoutResult(true);
        while !*g {
            res = cv.wait_for(&mut g, generous);
        }
        h.join().unwrap();
        assert!(!res.timed_out(), "notified wait must not report a timeout");
        assert!(
            t0.elapsed() < generous,
            "notified wait must return well before the timeout"
        );
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait_for(&mut g, Duration::from_millis(50));
        }
        h.join().unwrap();
        assert!(*g);
    }
}
