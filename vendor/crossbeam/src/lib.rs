//! Offline stand-in for `crossbeam`, providing the `deque` module surface
//! the uthread runtime uses.
//!
//! The real crate's lock-free Chase-Lev deques are replaced with
//! mutex-guarded `VecDeque`s. Correctness (each task popped exactly once)
//! is identical; contention behaviour is coarser, which is acceptable for
//! the test workloads this workspace runs.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    pub enum Steal<T> {
        /// A task was stolen.
        Success(T),
        /// The queue was empty.
        Empty,
        /// A race was lost; try again (never produced by this stand-in).
        Retry,
    }

    impl<T> Steal<T> {
        /// Whether the attempt should be retried.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        /// Whether a task was obtained.
        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }
    }

    /// The owner side of a per-worker deque.
    pub struct Worker<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    /// The thief side of a per-worker deque.
    pub struct Stealer<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                q: Arc::clone(&self.q),
            }
        }
    }

    impl<T> Worker<T> {
        /// Creates a FIFO deque (push-back, pop-front).
        pub fn new_fifo() -> Worker<T> {
            Worker {
                q: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Creates the thief handle.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                q: Arc::clone(&self.q),
            }
        }

        /// Pushes a task onto the owner end.
        pub fn push(&self, t: T) {
            self.q.lock().unwrap().push_back(t);
        }

        /// Pops a task from the owner end.
        pub fn pop(&self) -> Option<T> {
            self.q.lock().unwrap().pop_front()
        }

        /// Whether the deque is empty.
        pub fn is_empty(&self) -> bool {
            self.q.lock().unwrap().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.q.lock().unwrap().len()
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the victim.
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    /// A shared injector queue feeding all workers.
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Injector<T> {
            Injector {
                q: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task.
        pub fn push(&self, t: T) {
            self.q.lock().unwrap().push_back(t);
        }

        /// Whether the injector is empty.
        pub fn is_empty(&self) -> bool {
            self.q.lock().unwrap().is_empty()
        }

        /// Moves a batch of tasks into `dest` and pops one for the caller.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = self.q.lock().unwrap();
            let Some(first) = q.pop_front() else {
                return Steal::Empty;
            };
            // Move up to half the remainder over, like the real crate.
            let take = q.len().div_ceil(2).min(16);
            if take > 0 {
                let mut dq = dest.q.lock().unwrap();
                dq.extend(q.drain(..take));
            }
            Steal::Success(first)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn steal_batch_pops_and_transfers() {
            let inj = Injector::new();
            for i in 0..10 {
                inj.push(i);
            }
            let w = Worker::new_fifo();
            let Steal::Success(first) = inj.steal_batch_and_pop(&w) else {
                panic!("expected success");
            };
            assert_eq!(first, 0);
            assert!(!w.is_empty());
            let mut seen = vec![first];
            while let Some(t) = w.pop() {
                seen.push(t);
            }
            while let Steal::Success(t) = inj.steal_batch_and_pop(&w) {
                seen.push(t);
                while let Some(t) = w.pop() {
                    seen.push(t);
                }
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn stealer_takes_from_worker() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            w.push(1);
            assert!(matches!(s.steal(), Steal::Success(1)));
            assert!(matches!(s.steal(), Steal::Empty));
        }
    }
}

pub mod thread {
    //! Scoped threads with the `crossbeam_utils::thread` API shape,
    //! backed by `std::thread::scope` (the std feature that superseded
    //! it). The spawn closure receives the scope, so spawned threads can
    //! spawn further siblings, and `scope` returns `Err` instead of
    //! unwinding when a child panics — both matching the real crate.

    /// Outcome of a scope or a joined thread; `Err` carries the panic
    /// payload of a panicked child.
    pub type Result<T> = std::thread::Result<T>;

    /// Handle to the scope, passed to the closure and to every spawned
    /// thread.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; it is joined before `scope` returns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let s = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&s)),
            }
        }
    }

    /// Owned permission to join a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (`Err`
        /// if it panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope: every thread spawned in it is joined (and its
    /// panic converted into the returned `Err`) before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total = super::scope(|s| {
                let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
            .unwrap();
            assert_eq!(total, 100);
        }

        #[test]
        fn child_panic_becomes_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
