//! Offline stand-in for `crossbeam`, providing the `deque` and `thread`
//! module surfaces the uthread runtime uses.
//!
//! Unlike the other vendored stand-ins, the [`deque`] module is *not* a
//! simplification: it carries a real lock-free substrate — a Chase–Lev
//! work-stealing deque and a sharded MPMC injector — because the uthread
//! runtime's Table 7 numbers (191 ns spawn, ~30 ns yield) depend on the
//! hot path never taking a lock. The original mutex-backed structures
//! live on in [`deque::reference`] as a differential-testing oracle; the
//! `reference-deque` cargo feature swaps them back in wholesale (see
//! DESIGN.md §11).

pub mod deque;
pub mod thread;
