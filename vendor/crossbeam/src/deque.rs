//! Work-stealing deques and a shared injector, in two substrates:
//!
//! * [`lockfree`] (the default) — a real Chase–Lev work-stealing deque
//!   (atomic `top`/`bottom`, growable circular buffer, the published
//!   SeqCst fence discipline) and a sharded MPMC injector whose push/pop
//!   hot paths are a single CAS each. This is what the uthread runtime's
//!   Table 7 claims rest on.
//! * [`reference`] — the original mutex-guarded `VecDeque` structures,
//!   kept as a differential-testing oracle: identical ownership semantics
//!   (every task observed exactly once), trivially correct, slow under
//!   contention.
//!
//! Both substrates are always compiled so tests and `thrbench` can drive
//! them side by side; the `reference-deque` cargo feature only selects
//! which one this module re-exports as `Worker`/`Stealer`/`Injector`.
//! The memory-ordering argument for the lock-free substrate is written
//! out in DESIGN.md §11.

/// Result of a steal attempt.
pub enum Steal<T> {
    /// A task was stolen.
    Success(T),
    /// The queue was empty.
    Empty,
    /// A race was lost; try again.
    Retry,
}

impl<T> Steal<T> {
    /// Whether the attempt should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// Whether a task was obtained.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }
}

#[cfg(not(feature = "reference-deque"))]
pub use lockfree::{Injector, Stealer, Worker};
#[cfg(feature = "reference-deque")]
pub use reference::{Injector, Stealer, Worker};

pub mod lockfree {
    //! The lock-free substrate: Chase–Lev deque + sharded MPMC injector.

    use std::cell::{Cell, UnsafeCell};
    use std::collections::VecDeque;
    use std::marker::PhantomData;
    use std::mem::{self, MaybeUninit};
    use std::ptr;
    use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    use super::Steal;

    /// Initial circular-buffer capacity (power of two).
    const MIN_CAP: usize = 64;

    /// A fixed-capacity circular buffer of possibly-uninitialized slots.
    /// Indexed by the *logical* deque index; the power-of-two capacity
    /// turns the modulo into a mask.
    struct Buffer<T> {
        ptr: *mut MaybeUninit<T>,
        cap: usize,
    }

    impl<T> Buffer<T> {
        fn alloc(cap: usize) -> *mut Buffer<T> {
            debug_assert!(cap.is_power_of_two());
            let mut v: Vec<MaybeUninit<T>> = Vec::with_capacity(cap);
            let ptr = v.as_mut_ptr();
            mem::forget(v);
            Box::into_raw(Box::new(Buffer { ptr, cap }))
        }

        /// Frees the buffer *without* dropping any slot contents.
        ///
        /// # Safety
        ///
        /// `b` must come from [`Buffer::alloc`] and not be freed twice.
        unsafe fn dealloc(b: *mut Buffer<T>) {
            // SAFETY: per contract, `b` is a live Box from `alloc`.
            let buf = unsafe { Box::from_raw(b) };
            // SAFETY: (ptr, cap) are the raw parts of the forgotten Vec;
            // length 0 skips dropping the (possibly uninit) slots.
            unsafe { drop(Vec::from_raw_parts(buf.ptr, 0, buf.cap)) };
        }

        /// Pointer to the slot for logical index `i`.
        ///
        /// # Safety
        ///
        /// The buffer must be live.
        unsafe fn at(&self, i: isize) -> *mut MaybeUninit<T> {
            // `cap` is a power of two, so the mask is the cheap modulo.
            // SAFETY: masked index is in-bounds.
            unsafe { self.ptr.offset(i & (self.cap as isize - 1)) }
        }

        /// Writes `value` into the slot for logical index `i`.
        ///
        /// # Safety
        ///
        /// Only the owner writes, and never to a slot in `[top, bottom)`.
        unsafe fn write(&self, i: isize, value: T) {
            // SAFETY: slot pointer is valid; the old contents (if any)
            // were already moved out, so a plain write is correct.
            unsafe { ptr::write((*self.at(i)).as_mut_ptr(), value) }
        }

        /// Reads a bitwise copy of the slot for logical index `i`.
        ///
        /// The caller must `mem::forget` the value if it subsequently
        /// loses the `top` CAS (the element still logically belongs to
        /// the deque in that case).
        ///
        /// # Safety
        ///
        /// `i` must have been observed inside `[top, bottom)`.
        unsafe fn read(&self, i: isize) -> T {
            // SAFETY: see above; this is the Chase–Lev "read, then
            // validate with a CAS" step.
            unsafe { ptr::read(self.at(i) as *const T) }
        }
    }

    /// Shared state of one Chase–Lev deque.
    struct ClInner<T> {
        /// Steal end. Only ever incremented, via CAS.
        top: AtomicIsize,
        /// Owner end. Written only by the owner.
        bottom: AtomicIsize,
        buffer: AtomicPtr<Buffer<T>>,
        /// Buffers replaced by a grow. In-flight steals may still read
        /// them, so they are only freed when the deque itself drops
        /// (total retired memory is bounded by ~2x the final buffer:
        /// capacities double). Locked only on grow and drop — never on
        /// the push/pop/steal hot path.
        retired: Mutex<Vec<*mut Buffer<T>>>,
    }

    // SAFETY: the algorithm's atomics provide the cross-thread ordering;
    // `T: Send` values move between threads by being stolen.
    unsafe impl<T: Send> Send for ClInner<T> {}
    unsafe impl<T: Send> Sync for ClInner<T> {}

    impl<T> ClInner<T> {
        fn new() -> Arc<ClInner<T>> {
            Arc::new(ClInner {
                top: AtomicIsize::new(0),
                bottom: AtomicIsize::new(0),
                buffer: AtomicPtr::new(Buffer::alloc(MIN_CAP)),
                retired: Mutex::new(Vec::new()),
            })
        }

        /// Steals the element at `top` (used by thieves, and by the
        /// owner in FIFO flavor). `owner` elides the SeqCst fence: the
        /// owner reads its own `bottom` exactly, so it never needs the
        /// fence that orders a thief's `top` load before its `bottom`
        /// load.
        fn steal_top(&self, owner: bool) -> Steal<T> {
            let t = self.top.load(Ordering::Acquire);
            if !owner {
                fence(Ordering::SeqCst);
            }
            let b = self.bottom.load(if owner {
                Ordering::Relaxed
            } else {
                Ordering::Acquire
            });
            if t >= b {
                return Steal::Empty;
            }
            let buf = self.buffer.load(Ordering::Acquire);
            // SAFETY: `t < b` was observed, so slot `t` was written (the
            // Release store of `bottom` orders the write before our
            // Acquire load of `bottom`); the buffer is live for the
            // deque's whole lifetime (grow retires, never frees).
            let value = unsafe { (*buf).read(t) };
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                Steal::Success(value)
            } else {
                // Lost the race: the bitwise copy must not be dropped —
                // the element still belongs to whoever won.
                mem::forget(value);
                Steal::Retry
            }
        }

        fn len(&self) -> usize {
            let b = self.bottom.load(Ordering::Relaxed);
            let t = self.top.load(Ordering::Relaxed);
            (b - t).max(0) as usize
        }
    }

    impl<T> Drop for ClInner<T> {
        fn drop(&mut self) {
            let t = *self.top.get_mut();
            let b = *self.bottom.get_mut();
            let buf = *self.buffer.get_mut();
            // SAFETY: exclusive access (last Arc dropping); `[t, b)` are
            // the live elements.
            unsafe {
                for i in t..b {
                    ptr::drop_in_place((*(*buf).at(i)).as_mut_ptr());
                }
                Buffer::dealloc(buf);
                for p in self.retired.get_mut().unwrap().drain(..) {
                    Buffer::dealloc(p);
                }
            }
        }
    }

    /// Which end the owner pops from.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Flavor {
        /// Owner pops the steal end (oldest first) — what the runtime
        /// uses, for yield fairness.
        Fifo,
        /// Owner pops its own end (classic Chase–Lev `take`).
        Lifo,
    }

    /// The owner side of a per-worker deque. `!Sync`: exactly one thread
    /// may push/pop.
    pub struct Worker<T> {
        inner: Arc<ClInner<T>>,
        flavor: Flavor,
        /// The single-owner discipline is what makes the unfenced
        /// `bottom` accesses sound.
        _not_sync: PhantomData<Cell<()>>,
    }

    // SAFETY: the Worker can move to another thread (the runtime spawns
    // workers with their deques); it just cannot be shared.
    unsafe impl<T: Send> Send for Worker<T> {}

    /// The thief side of a per-worker deque.
    pub struct Stealer<T> {
        inner: Arc<ClInner<T>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    // SAFETY: steals are fully synchronized by the algorithm.
    unsafe impl<T: Send> Send for Stealer<T> {}
    unsafe impl<T: Send> Sync for Stealer<T> {}

    impl<T> Worker<T> {
        /// Creates a FIFO deque (owner pops oldest-first, like the
        /// thieves).
        pub fn new_fifo() -> Worker<T> {
            Worker {
                inner: ClInner::new(),
                flavor: Flavor::Fifo,
                _not_sync: PhantomData,
            }
        }

        /// Creates a LIFO deque (owner pops newest-first; the classic
        /// Chase–Lev `take`).
        pub fn new_lifo() -> Worker<T> {
            Worker {
                inner: ClInner::new(),
                flavor: Flavor::Lifo,
                _not_sync: PhantomData,
            }
        }

        /// Creates the thief handle.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }

        /// Pushes a task onto the owner end. Lock-free and wait-free
        /// except when the buffer must double.
        pub fn push(&self, value: T) {
            let b = self.inner.bottom.load(Ordering::Relaxed);
            let t = self.inner.top.load(Ordering::Acquire);
            let mut buf = self.inner.buffer.load(Ordering::Relaxed);
            // SAFETY: only the owner loads `buffer` relaxed — it is the
            // only writer of it.
            if b - t >= unsafe { (*buf).cap } as isize {
                buf = self.grow(t, b, buf);
            }
            // SAFETY: slot `b` is outside `[t, b)`, so no thief reads it
            // until the Release store below publishes it.
            unsafe { (*buf).write(b, value) };
            self.inner.bottom.store(b + 1, Ordering::Release);
        }

        /// Doubles the buffer, copying the live window `[t, b)`.
        /// Owner-only; the old buffer is retired, not freed, because
        /// in-flight steals may still be reading it (they then fail
        /// their `top` CAS or read the identical bytes the copy
        /// preserved).
        fn grow(&self, t: isize, b: isize, old: *mut Buffer<T>) -> *mut Buffer<T> {
            // SAFETY: `old` is live; we are the only grower.
            let new = Buffer::alloc(unsafe { (*old).cap } * 2);
            unsafe {
                for i in t..b {
                    ptr::copy_nonoverlapping((*old).at(i), (*new).at(i), 1);
                }
            }
            self.inner.buffer.store(new, Ordering::Release);
            self.inner.retired.lock().unwrap().push(old);
            new
        }

        /// Pops a task from the owner end (per the deque's flavor).
        pub fn pop(&self) -> Option<T> {
            match self.flavor {
                Flavor::Fifo => loop {
                    match self.inner.steal_top(true) {
                        Steal::Success(v) => return Some(v),
                        Steal::Empty => return None,
                        Steal::Retry => continue,
                    }
                },
                Flavor::Lifo => self.pop_lifo(),
            }
        }

        /// The classic Chase–Lev `take`: decrement `bottom`, fence, then
        /// race thieves for the last element only.
        fn pop_lifo(&self) -> Option<T> {
            let b = self.inner.bottom.load(Ordering::Relaxed) - 1;
            let buf = self.inner.buffer.load(Ordering::Relaxed);
            self.inner.bottom.store(b, Ordering::Relaxed);
            // Order our `bottom` write before our `top` read against
            // thieves' `top` CAS / `bottom` read (the heart of the
            // algorithm — see DESIGN.md §11).
            fence(Ordering::SeqCst);
            let t = self.inner.top.load(Ordering::Relaxed);
            if t > b {
                // Deque was empty; undo.
                self.inner.bottom.store(b + 1, Ordering::Relaxed);
                return None;
            }
            if t == b {
                // Exactly one element left: settle with thieves via CAS.
                let won = self
                    .inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.inner.bottom.store(b + 1, Ordering::Relaxed);
                // SAFETY: winning the CAS grants exclusive ownership of
                // slot `b`.
                return won.then(|| unsafe { (*buf).read(b) });
            }
            // More than one element: slot `b` is unreachable by thieves
            // (they contend at `top` only).
            // SAFETY: exclusive ownership per the above.
            Some(unsafe { (*buf).read(b) })
        }

        /// Whether the deque is empty (advisory under concurrency).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Number of queued tasks (advisory under concurrency).
        pub fn len(&self) -> usize {
            self.inner.len()
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the victim's steal end.
        pub fn steal(&self) -> Steal<T> {
            self.inner.steal_top(false)
        }

        /// Number of queued tasks (advisory under concurrency).
        pub fn len(&self) -> usize {
            self.inner.len()
        }

        /// Whether the deque looks empty (advisory under concurrency).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    // ---------------------------------------------------------------
    // Injector: sharded bounded MPMC rings + mutexed overflow.
    // ---------------------------------------------------------------

    /// Number of independent shards (power of two). Pushers spread over
    /// shards by a per-thread rotating cursor, so concurrent spawners
    /// CAS on different cache lines instead of serializing.
    const SHARDS: usize = 8;
    /// Slots per shard ring (power of two): 2048 buffered tasks before
    /// the overflow list's mutex is ever touched.
    const RING_CAP: usize = 256;
    /// Max tasks moved to the caller's deque per `steal_batch_and_pop`.
    const BATCH: usize = 16;

    /// One slot of a bounded MPMC ring (Vyukov's scheme): `seq` encodes
    /// which lap the slot is on and whether it holds a value.
    struct RingSlot<T> {
        seq: AtomicUsize,
        value: UnsafeCell<MaybeUninit<T>>,
    }

    /// Bounded MPMC ring: per-push and per-pop cost is one CAS on the
    /// position counter plus a Release store on the slot's `seq`.
    struct Ring<T> {
        slots: Box<[RingSlot<T>]>,
        enq: AtomicUsize,
        deq: AtomicUsize,
    }

    // SAFETY: slots are handed off via the `seq` Acquire/Release
    // protocol; a value is written by exactly one producer and read by
    // exactly one consumer.
    unsafe impl<T: Send> Send for Ring<T> {}
    unsafe impl<T: Send> Sync for Ring<T> {}

    impl<T> Ring<T> {
        fn new() -> Ring<T> {
            let slots: Box<[RingSlot<T>]> = (0..RING_CAP)
                .map(|i| RingSlot {
                    seq: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect();
            Ring {
                slots,
                enq: AtomicUsize::new(0),
                deq: AtomicUsize::new(0),
            }
        }

        /// Attempts to enqueue; gives the value back when the ring is
        /// full (the caller then tries another shard or the overflow).
        fn push(&self, value: T) -> Result<(), T> {
            let mask = RING_CAP - 1;
            let mut pos = self.enq.load(Ordering::Relaxed);
            loop {
                let slot = &self.slots[pos & mask];
                let seq = slot.seq.load(Ordering::Acquire);
                let dif = seq as isize - pos as isize;
                if dif == 0 {
                    match self.enq.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS claimed this slot for this
                            // lap exclusively.
                            unsafe { (*slot.value.get()).write(value) };
                            slot.seq.store(pos + 1, Ordering::Release);
                            return Ok(());
                        }
                        Err(cur) => pos = cur,
                    }
                } else if dif < 0 {
                    // A full lap behind: ring is full.
                    return Err(value);
                } else {
                    pos = self.enq.load(Ordering::Relaxed);
                }
            }
        }

        /// Attempts to dequeue. `None` means "empty as far as completed
        /// pushes go" — an in-flight push that has claimed a slot but
        /// not yet published it reads as empty, which is fine for the
        /// runtime because the pusher always notifies *after* its push
        /// completes.
        fn pop(&self) -> Option<T> {
            let mask = RING_CAP - 1;
            let mut pos = self.deq.load(Ordering::Relaxed);
            loop {
                let slot = &self.slots[pos & mask];
                let seq = slot.seq.load(Ordering::Acquire);
                let dif = seq as isize - (pos + 1) as isize;
                if dif == 0 {
                    match self.deq.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS claimed this slot's value
                            // exclusively; `seq` Acquire saw the write.
                            let v = unsafe { (*slot.value.get()).assume_init_read() };
                            slot.seq.store(pos + mask + 1, Ordering::Release);
                            return Some(v);
                        }
                        Err(cur) => pos = cur,
                    }
                } else if dif < 0 {
                    return None;
                } else {
                    pos = self.deq.load(Ordering::Relaxed);
                }
            }
        }

        /// Advisory emptiness.
        fn is_empty(&self) -> bool {
            let deq = self.deq.load(Ordering::Acquire);
            let enq = self.enq.load(Ordering::Acquire);
            deq >= enq
        }
    }

    impl<T> Drop for Ring<T> {
        fn drop(&mut self) {
            while self.pop().is_some() {}
        }
    }

    /// Per-thread rotating shard cursor: seeds each thread at a
    /// different shard, then advances per push so bursts spread out.
    fn shard_cursor() -> usize {
        static SEED: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static CURSOR: Cell<usize> = const { Cell::new(usize::MAX) };
        }
        CURSOR.with(|c| {
            let mut v = c.get();
            if v == usize::MAX {
                v = SEED.fetch_add(1, Ordering::Relaxed).wrapping_mul(0x9e37);
            }
            c.set(v.wrapping_add(1));
            v
        })
    }

    /// A shared injector queue feeding all workers: `SHARDS` bounded
    /// MPMC rings (lock-free hot path, one CAS per push) with a mutexed
    /// overflow list that is only touched when every ring is full —
    /// i.e. with > `SHARDS * RING_CAP` tasks parked in the injector.
    pub struct Injector<T> {
        rings: [Ring<T>; SHARDS],
        overflow: Mutex<VecDeque<T>>,
        /// Mirror of `overflow.len()`, so the empty hot path never locks.
        overflow_len: AtomicUsize,
        /// Rotates consumers' scan start so they don't all hammer shard 0.
        scan: AtomicUsize,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Injector<T> {
            Injector {
                rings: std::array::from_fn(|_| Ring::new()),
                overflow: Mutex::new(VecDeque::new()),
                overflow_len: AtomicUsize::new(0),
                scan: AtomicUsize::new(0),
            }
        }

        /// Enqueues a task: one CAS into a shard ring; falls back to the
        /// next shard (then the overflow mutex) only when full.
        pub fn push(&self, value: T) {
            let start = shard_cursor();
            let mut v = value;
            for i in 0..SHARDS {
                match self.rings[(start + i) & (SHARDS - 1)].push(v) {
                    Ok(()) => return,
                    Err(back) => v = back,
                }
            }
            let mut g = self.overflow.lock().unwrap();
            g.push_back(v);
            self.overflow_len.store(g.len(), Ordering::Release);
        }

        /// Whether the injector looks empty (advisory under concurrency).
        pub fn is_empty(&self) -> bool {
            self.overflow_len.load(Ordering::Acquire) == 0
                && self.rings.iter().all(|r| r.is_empty())
        }

        /// Moves a batch of tasks into `dest` and pops one for the
        /// caller. The caller must be `dest`'s owner thread.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let start = self.scan.fetch_add(1, Ordering::Relaxed);
            for i in 0..SHARDS {
                let ring = &self.rings[(start + i) & (SHARDS - 1)];
                if let Some(first) = ring.pop() {
                    for _ in 1..BATCH {
                        match ring.pop() {
                            Some(v) => dest.push(v),
                            None => break,
                        }
                    }
                    return Steal::Success(first);
                }
            }
            if self.overflow_len.load(Ordering::Acquire) > 0 {
                let mut g = self.overflow.lock().unwrap();
                if let Some(first) = g.pop_front() {
                    for _ in 1..BATCH {
                        match g.pop_front() {
                            Some(v) => dest.push(v),
                            None => break,
                        }
                    }
                    self.overflow_len.store(g.len(), Ordering::Release);
                    return Steal::Success(first);
                }
            }
            Steal::Empty
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_owner_pop() {
            let w = Worker::new_fifo();
            for i in 0..10 {
                w.push(i);
            }
            assert_eq!(w.len(), 10);
            for i in 0..10 {
                assert_eq!(w.pop(), Some(i));
            }
            assert_eq!(w.pop(), None);
            assert!(w.is_empty());
        }

        #[test]
        fn lifo_order_owner_pop() {
            let w = Worker::new_lifo();
            for i in 0..10 {
                w.push(i);
            }
            for i in (0..10).rev() {
                assert_eq!(w.pop(), Some(i));
            }
            assert_eq!(w.pop(), None);
        }

        #[test]
        fn stealer_takes_oldest() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            assert!(matches!(s.steal(), Steal::Success(1)));
            assert_eq!(w.pop(), Some(2));
            assert!(matches!(s.steal(), Steal::Empty));
        }

        #[test]
        fn buffer_grows_past_min_cap() {
            let w = Worker::new_fifo();
            let n = (MIN_CAP * 5) as u64;
            for i in 0..n {
                w.push(i);
            }
            assert_eq!(w.len(), n as usize);
            for i in 0..n {
                assert_eq!(w.pop(), Some(i));
            }
        }

        #[test]
        fn grow_with_wrapped_window() {
            // Advance top/bottom so the live window wraps the buffer
            // boundary, then force a grow: the copy must preserve order.
            let w = Worker::new_lifo();
            for i in 0..(MIN_CAP as u64 / 2) {
                w.push(i);
                w.pop();
            }
            let n = (MIN_CAP * 3) as u64;
            for i in 0..n {
                w.push(i);
            }
            let s = w.stealer();
            for i in 0..n {
                let Steal::Success(v) = s.steal() else {
                    panic!("missing element {i}");
                };
                assert_eq!(v, i);
            }
        }

        #[test]
        fn drops_unconsumed_elements() {
            let x = Arc::new(());
            let w = Worker::new_fifo();
            for _ in 0..(MIN_CAP * 2 + 3) {
                w.push(Arc::clone(&x));
            }
            w.pop();
            drop(w);
            assert_eq!(Arc::strong_count(&x), 1);
        }

        #[test]
        fn injector_roundtrip_and_batch() {
            let inj = Injector::new();
            let n = 1000u64;
            for i in 0..n {
                inj.push(i);
            }
            assert!(!inj.is_empty());
            let w = Worker::new_fifo();
            let mut seen = Vec::new();
            loop {
                match inj.steal_batch_and_pop(&w) {
                    Steal::Success(v) => {
                        seen.push(v);
                        while let Some(v) = w.pop() {
                            seen.push(v);
                        }
                    }
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
            assert!(inj.is_empty());
            seen.sort_unstable();
            assert_eq!(seen, (0..n).collect::<Vec<_>>());
        }

        #[test]
        fn injector_overflow_spills_and_recovers() {
            let inj = Injector::new();
            // More than SHARDS * RING_CAP: must spill to overflow.
            let n = (SHARDS * RING_CAP + 500) as u64;
            for i in 0..n {
                inj.push(i);
            }
            assert!(inj.overflow_len.load(Ordering::Acquire) > 0);
            let w = Worker::new_fifo();
            let mut count = 0u64;
            loop {
                match inj.steal_batch_and_pop(&w) {
                    Steal::Success(_) => {
                        count += 1;
                        while w.pop().is_some() {
                            count += 1;
                        }
                    }
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
            assert_eq!(count, n);
            assert!(inj.is_empty());
        }

        #[test]
        fn concurrent_steal_exactly_once_smoke() {
            use std::sync::atomic::AtomicBool;
            let w = Worker::new_fifo();
            let s1 = w.stealer();
            let s2 = w.stealer();
            let n = 20_000u64;
            let done = AtomicBool::new(false);
            fn thief(s: Stealer<u64>, done: &AtomicBool) -> Vec<u64> {
                let mut got = Vec::new();
                loop {
                    match s.steal() {
                        Steal::Success(v) => got.push(v),
                        Steal::Retry => continue,
                        // No pushes happen after `done`, so an Empty
                        // observed then is final for this thief (the
                        // owner drains any remainder itself).
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
                got
            }
            let all = std::thread::scope(|scope| {
                let d = &done;
                let h1 = scope.spawn(move || thief(s1, d));
                let h2 = scope.spawn(move || thief(s2, d));
                let mut mine = Vec::new();
                for i in 0..n {
                    w.push(i);
                    if i % 3 == 0 {
                        if let Some(v) = w.pop() {
                            mine.push(v);
                        }
                    }
                }
                done.store(true, Ordering::Release);
                while let Some(v) = w.pop() {
                    mine.push(v);
                }
                mine.extend(h1.join().unwrap());
                mine.extend(h2.join().unwrap());
                mine
            });
            let mut all = all;
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), n as usize, "lost or duplicated elements");
        }
    }
}

pub mod reference {
    //! The original mutex-guarded substrate, kept as a differential
    //! oracle: correctness (each task popped exactly once) is identical
    //! to [`super::lockfree`]; contention behaviour is coarser.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    use super::Steal;

    /// The owner side of a per-worker deque.
    pub struct Worker<T> {
        q: Arc<Mutex<VecDeque<T>>>,
        lifo: bool,
    }

    /// The thief side of a per-worker deque.
    pub struct Stealer<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                q: Arc::clone(&self.q),
            }
        }
    }

    impl<T> Worker<T> {
        /// Creates a FIFO deque (push-back, pop-front).
        pub fn new_fifo() -> Worker<T> {
            Worker {
                q: Arc::new(Mutex::new(VecDeque::new())),
                lifo: false,
            }
        }

        /// Creates a LIFO deque (push-back, pop-back).
        pub fn new_lifo() -> Worker<T> {
            Worker {
                q: Arc::new(Mutex::new(VecDeque::new())),
                lifo: true,
            }
        }

        /// Creates the thief handle.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                q: Arc::clone(&self.q),
            }
        }

        /// Pushes a task onto the owner end.
        pub fn push(&self, t: T) {
            self.q.lock().unwrap().push_back(t);
        }

        /// Pops a task from the owner end.
        pub fn pop(&self) -> Option<T> {
            let mut q = self.q.lock().unwrap();
            if self.lifo {
                q.pop_back()
            } else {
                q.pop_front()
            }
        }

        /// Whether the deque is empty.
        pub fn is_empty(&self) -> bool {
            self.q.lock().unwrap().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.q.lock().unwrap().len()
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the victim (oldest first).
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.q.lock().unwrap().len()
        }

        /// Whether the deque is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// A shared injector queue feeding all workers.
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Injector<T> {
            Injector {
                q: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task.
        pub fn push(&self, t: T) {
            self.q.lock().unwrap().push_back(t);
        }

        /// Whether the injector is empty.
        pub fn is_empty(&self) -> bool {
            self.q.lock().unwrap().is_empty()
        }

        /// Moves a batch of tasks into `dest` and pops one for the caller.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = self.q.lock().unwrap();
            let Some(first) = q.pop_front() else {
                return Steal::Empty;
            };
            // Move up to half the remainder over, like the real crate.
            let take = q.len().div_ceil(2).min(16);
            if take > 0 {
                let mut dq = dest.q.lock().unwrap();
                dq.extend(q.drain(..take));
            }
            Steal::Success(first)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn steal_batch_pops_and_transfers() {
            let inj = Injector::new();
            for i in 0..10 {
                inj.push(i);
            }
            let w = Worker::new_fifo();
            let Steal::Success(first) = inj.steal_batch_and_pop(&w) else {
                panic!("expected success");
            };
            assert_eq!(first, 0);
            assert!(!w.is_empty());
            let mut seen = vec![first];
            while let Some(t) = w.pop() {
                seen.push(t);
            }
            while let Steal::Success(t) = inj.steal_batch_and_pop(&w) {
                seen.push(t);
                while let Some(t) = w.pop() {
                    seen.push(t);
                }
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn stealer_takes_from_worker() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            w.push(1);
            assert!(matches!(s.steal(), Steal::Success(1)));
            assert!(matches!(s.steal(), Steal::Empty));
        }
    }
}
