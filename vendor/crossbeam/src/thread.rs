//! Scoped threads with the `crossbeam_utils::thread` API shape,
//! backed by `std::thread::scope` (the std feature that superseded
//! it). The spawn closure receives the scope, so spawned threads can
//! spawn further siblings, and `scope` returns `Err` instead of
//! unwinding when a child panics — both matching the real crate.

/// Outcome of a scope or a joined thread; `Err` carries the panic
/// payload of a panicked child.
pub type Result<T> = std::thread::Result<T>;

/// Handle to the scope, passed to the closure and to every spawned
/// thread.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; it is joined before `scope` returns.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let s = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&s)),
        }
    }
}

/// Owned permission to join a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result (`Err`
    /// if it panicked).
    pub fn join(self) -> Result<T> {
        self.inner.join()
    }
}

/// Creates a scope: every thread spawned in it is joined (and its
/// panic converted into the returned `Err`) before this returns.
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = super::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
