//! Multi-application core sharing (§3.3 + §5.2 at example scale).
//!
//! ```sh
//! cargo run --release --example colocation
//! ```
//!
//! A latency-critical service and a best-effort batch application share
//! 8 cores. The Shenango-style allocator grants idle cores to the batch
//! app and revokes them with user IPIs when the LC queue congests; every
//! hand-off goes through the kernel-module model, which enforces the
//! Single Binding Rule. The load alternates between quiet and bursty
//! phases so both directions of the allocator are visible.

use skyloft::machine::{AppKind, Machine, MachineConfig};
use skyloft::{Call, CoreAllocConfig, Event, Platform};
use skyloft_hw::Topology;
use skyloft_policies::ShinjukuShenango;
use skyloft_sim::{EventQueue, Nanos, Rng};

const WORKERS: usize = 8;

fn main() {
    let cfg = MachineConfig {
        plat: Platform::skyloft_centralized(Topology::single(WORKERS + 1)),
        n_workers: WORKERS,
        seed: 4,
        core_alloc: Some(CoreAllocConfig::default()),
        utimer_period: None,
    };
    let mut m = Machine::new(
        cfg,
        Box::new(ShinjukuShenango::new(Some(Nanos::from_us(30)))),
    );
    let lc = m.add_app("latency-critical", AppKind::Lc);
    let be = m.add_app("batch", AppKind::Be);
    let mut q = EventQueue::new();
    m.start(&mut q);

    // Alternate 10 ms phases: quiet (5 kRPS) and bursty (100 kRPS) of
    // 40 us requests.
    let mut rng = Rng::seed_from_u64(9);
    let mut at = Nanos::ZERO;
    let horizon = Nanos::from_ms(100);
    while at < horizon {
        let phase = (at.0 / 10_000_000) % 2;
        let gap = if phase == 0 { 200_000 } else { 10_000 };
        at += Nanos(rng.next_below(2 * gap) + 1);
        q.schedule(
            at,
            Event::Call(Call(Box::new(|m, q| {
                m.spawn_request(q, 0, Nanos::from_us(40), 0, None);
            }))),
        );
    }
    m.run(&mut q, horizon);
    let now = q.now();
    println!("LC requests completed : {}", m.stats.completed);
    println!(
        "LC p99                : {:.1} us",
        m.stats.resp_hist.percentile(99.0) as f64 / 1e3
    );
    println!(
        "LC core share         : {:>5.1}%",
        m.app_share(lc, now) * 100.0
    );
    println!(
        "batch core share      : {:>5.1}%",
        m.app_share(be, now) * 100.0
    );
    println!("allocator grants      : {}", m.stats.be_grants);
    println!("allocator revokes     : {}", m.stats.be_revokes);
    println!("inter-app switches    : {}", m.stats.app_switches);
    m.kmod
        .check_binding_rule()
        .expect("single binding rule held");
    println!("single binding rule   : held for the whole run");
    assert!(m.stats.be_grants > 0 && m.stats.be_revokes > 0);
    assert!(
        m.app_share(be, now) > 0.2,
        "batch should reclaim idle capacity"
    );
}
