//! The real green-thread runtime (host execution, no simulation).
//!
//! ```sh
//! cargo run --release --example real_uthreads
//! ```
//!
//! `skyloft-uthread` is the host-executable slice of the reproduction: an
//! M:N runtime with an assembly context switch and pooled stacks, in the
//! style of the Skyloft LibOS threading layer (Table 7). This example
//! builds a small pipeline — producers and consumers coordinating through
//! user-space mutexes and condvars across several OS workers — and then
//! times the primitive operations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use skyloft_uthread::{spawn, yield_now, Condvar, Mutex, Runtime};

fn main() {
    // A bounded queue built purely from uthread primitives.
    struct Queue {
        buf: Mutex<Vec<u64>>,
        not_empty: Condvar,
        not_full: Condvar,
    }
    let produced = Arc::new(AtomicU64::new(0));
    let consumed = Arc::new(AtomicU64::new(0));
    let (p2, c2) = (produced.clone(), consumed.clone());

    Runtime::run(4, move || {
        let q = Arc::new(Queue {
            buf: Mutex::new(Vec::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        const ITEMS: u64 = 20_000;
        const CAP: usize = 64;
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let q = q.clone();
            let produced = p2.clone();
            handles.push(spawn(move || {
                for i in 0..ITEMS / 4 {
                    let mut buf = q.buf.lock();
                    while buf.len() >= CAP {
                        buf = q.not_full.wait(buf);
                    }
                    buf.push(p * 1_000_000 + i);
                    produced.fetch_add(1, Ordering::Relaxed);
                    drop(buf);
                    q.not_empty.notify_one();
                }
            }));
        }
        for _ in 0..4 {
            let q = q.clone();
            let consumed = c2.clone();
            handles.push(spawn(move || {
                for _ in 0..ITEMS / 4 {
                    let mut buf = q.buf.lock();
                    while buf.is_empty() {
                        buf = q.not_empty.wait(buf);
                    }
                    buf.pop().expect("non-empty");
                    consumed.fetch_add(1, Ordering::Relaxed);
                    drop(buf);
                    q.not_full.notify_one();
                }
            }));
        }
        for h in handles {
            h.join();
        }
    });
    println!(
        "pipeline: produced {} / consumed {} items across 4 OS workers",
        produced.load(Ordering::Relaxed),
        consumed.load(Ordering::Relaxed)
    );
    assert_eq!(
        produced.load(Ordering::Relaxed),
        consumed.load(Ordering::Relaxed)
    );

    // Primitive costs on this host (Table 7's operations).
    let yields = Arc::new(AtomicU64::new(0));
    let y2 = yields.clone();
    Runtime::run(1, move || {
        const N: u64 = 200_000;
        let t0 = Instant::now();
        for _ in 0..N {
            yield_now();
        }
        let yield_ns = t0.elapsed().as_nanos() as u64 / N;

        let t0 = Instant::now();
        let hs: Vec<_> = (0..50_000).map(|_| spawn(|| {})).collect();
        let spawn_ns = t0.elapsed().as_nanos() as u64 / 50_000;
        for h in hs {
            h.join();
        }

        let m = Mutex::new(0u64);
        let t0 = Instant::now();
        for _ in 0..1_000_000 {
            *m.lock() += 1;
        }
        let mutex_ns = t0.elapsed().as_nanos() as u64 / 1_000_000;

        println!("yield : {yield_ns:>5} ns   (paper: pthread 898, Go 108, Skyloft 37)");
        println!("spawn : {spawn_ns:>5} ns   (paper: pthread 15418, Go 503, Skyloft 191)");
        println!("mutex : {mutex_ns:>5} ns   (paper: pthread 28, Go 25, Skyloft 27)");
        y2.store(yield_ns, Ordering::Relaxed);
    });
    assert!(
        yields.load(Ordering::Relaxed) < 5_000,
        "yield should be far sub-us"
    );
}
