//! Writing a custom scheduler on Skyloft's operations (§3.4).
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```
//!
//! The paper's pitch is that the Table 2 operations make new schedulers a
//! few-hundred-line exercise. This example implements one from scratch —
//! a two-level *shortest-expected-class-first* policy: requests carry a
//! class hint (0 = interactive, 1 = batch), interactive requests always
//! dequeue first, and the timer handler preempts any batch request as
//! soon as an interactive one is waiting. The whole policy is ~60 lines;
//! everything else (timers, UINTR delegation, switching) comes from the
//! framework.

use std::collections::VecDeque;

use skyloft::machine::{AppKind, Machine, MachineConfig};
use skyloft::ops::{CoreId, EnqueueFlags, Policy, PolicyKind, SchedEnv};
use skyloft::task::{TaskId, TaskTable};
use skyloft::Platform;
use skyloft_hw::Topology;
use skyloft_sim::{EventQueue, Nanos, Rng};

/// Two priority bands with preemption of the lower band.
struct ClassFirst {
    interactive: Vec<VecDeque<TaskId>>,
    batch: Vec<VecDeque<TaskId>>,
}

impl ClassFirst {
    fn new() -> Self {
        ClassFirst {
            interactive: Vec::new(),
            batch: Vec::new(),
        }
    }
}

impl Policy for ClassFirst {
    fn name(&self) -> &'static str {
        "class-first"
    }
    fn kind(&self) -> PolicyKind {
        PolicyKind::PerCpu
    }
    fn sched_init(&mut self, env: &SchedEnv) {
        let n = env.worker_cores.iter().max().copied().unwrap_or(0) + 1;
        self.interactive = vec![VecDeque::new(); n];
        self.batch = vec![VecDeque::new(); n];
    }
    fn task_init(&mut self, _t: &mut TaskTable, _id: TaskId, _now: Nanos) {}
    fn task_terminate(&mut self, _t: &mut TaskTable, _id: TaskId, _now: Nanos) {}
    fn task_enqueue(
        &mut self,
        tasks: &mut TaskTable,
        id: TaskId,
        cpu: Option<CoreId>,
        _flags: EnqueueFlags,
        _now: Nanos,
    ) {
        let cpu = cpu.unwrap_or(0);
        // The request class rides in the shared request metadata.
        let class = tasks.get(id).req.map_or(0, |r| r.class);
        if class == 0 {
            self.interactive[cpu].push_back(id);
        } else {
            self.batch[cpu].push_back(id);
        }
    }
    fn task_dequeue(&mut self, _t: &mut TaskTable, cpu: CoreId, _now: Nanos) -> Option<TaskId> {
        self.interactive[cpu]
            .pop_front()
            .or_else(|| self.batch[cpu].pop_front())
    }
    fn sched_timer_tick(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CoreId,
        current: TaskId,
        _ran: Nanos,
        _now: Nanos,
    ) -> bool {
        // Preempt batch work the moment interactive work waits.
        let cur_class = tasks.get(current).req.map_or(0, |r| r.class);
        cur_class == 1 && !self.interactive[cpu].is_empty()
    }
    fn sched_balance(&mut self, _t: &mut TaskTable, cpu: CoreId, _now: Nanos) -> Option<TaskId> {
        let n = self.interactive.len();
        (0..n)
            .filter(|&c| c != cpu)
            .find_map(|c| self.interactive[c].pop_back())
            .or_else(|| {
                (0..n)
                    .filter(|&c| c != cpu)
                    .find_map(|c| self.batch[c].pop_back())
            })
    }
}

fn main() {
    let cfg = MachineConfig {
        plat: Platform::skyloft_percpu(Topology::single(2), 100_000),
        n_workers: 2,
        seed: 1,
        core_alloc: None,
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, Box::new(ClassFirst::new()));
    m.add_app("svc", AppKind::Lc);
    let mut q = EventQueue::new();
    m.start(&mut q);

    // 30% interactive 20 us requests mixed with 70% batch 1 ms requests.
    let mut rng = Rng::seed_from_u64(3);
    let mut at = Nanos::ZERO;
    for _ in 0..1_000 {
        at += Nanos(rng.next_below(150_000));
        let interactive = rng.chance(0.3);
        let (service, class) = if interactive {
            (Nanos::from_us(20), 0u8)
        } else {
            (Nanos::from_ms(1), 1u8)
        };
        q.schedule(
            at,
            skyloft::Event::Call(skyloft::Call(Box::new(move |m, q| {
                m.spawn_request(q, 0, service, class, None);
            }))),
        );
    }
    m.run(&mut q, Nanos::from_secs(2));
    let s = &m.stats;
    println!("completed            : {}", s.completed);
    println!(
        "interactive p99      : {:>9.1} us",
        s.resp_by_class[0].percentile(99.0) as f64 / 1e3
    );
    println!(
        "batch p99            : {:>9.1} us",
        s.resp_by_class[1].percentile(99.0) as f64 / 1e3
    );
    println!("preemptions          : {}", s.preemptions);
    println!();
    println!("Interactive requests hold μs-scale tails although 70% of the");
    println!("offered work is millisecond batch requests — a policy written");
    println!("in ~60 lines against the Table 2 operations.");
    assert!(s.resp_by_class[0].percentile(99.0) < 200_000);
}
