//! Quickstart: build a Skyloft machine, run a workload, read the results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This sets up the paper's per-CPU configuration — user-space timer
//! interrupts at 100 kHz driving a round-robin policy — fires a burst of
//! requests with a heavy-tailed mix at it, and prints latency percentiles.
//! Flip `PREEMPTIVE` to `false` to watch head-of-line blocking appear.

use skyloft::machine::{AppKind, Machine, MachineConfig};
use skyloft::{Platform, SchedParams};
use skyloft_hw::Topology;
use skyloft_policies::RoundRobin;
use skyloft_sim::{Distribution, EventQueue, Nanos, Rng};

const PREEMPTIVE: bool = true;

fn main() {
    // 1. A 4-core Skyloft machine with 100 kHz user-space timers.
    let cfg = MachineConfig {
        plat: Platform::skyloft_percpu(Topology::single(4), 100_000),
        n_workers: 4,
        seed: 42,
        core_alloc: None,
        utimer_period: None,
    };
    // 2. A policy from the paper: round-robin with a 50 us slice
    //    (Table 5). `None` would disable preemption entirely.
    let slice = PREEMPTIVE.then_some(SchedParams::SKYLOFT_RR.time_slice);
    let mut machine = Machine::new(cfg, Box::new(RoundRobin::new(slice)));
    machine.add_app("quickstart", AppKind::Lc);

    // 3. Start: this performs the §3.2 UINTR timer delegation (UINV set to
    //    the timer vector, PIR armed by an SN self-post) on every core.
    let mut q = EventQueue::new();
    machine.start(&mut q);

    // 4. Offer a bursty, heavy-tailed workload: 98% short (10 us), 2% long
    //    (2 ms) requests.
    let mix = Distribution::Bimodal {
        p_long: 0.02,
        short: Nanos::from_us(10),
        long: Nanos::from_ms(2),
    };
    let mut rng = Rng::seed_from_u64(7);
    let mut at = Nanos::ZERO;
    for _ in 0..2_000 {
        at += Nanos(rng.next_below(40_000)); // ~50 kRPS
        let service = mix.sample(&mut rng);
        let class = u8::from(service > Nanos::from_us(100));
        q.schedule(
            at,
            skyloft::Event::Call(skyloft::Call(Box::new(move |m, q| {
                m.spawn_request(q, 0, service, class, None);
            }))),
        );
    }

    // 5. Run and report.
    machine.run(&mut q, Nanos::from_secs(1));
    let s = &machine.stats;
    println!("requests completed : {}", s.completed);
    println!(
        "short-request p50  : {:>8.1} us",
        s.resp_by_class[0].percentile(50.0) as f64 / 1e3
    );
    println!(
        "short-request p99  : {:>8.1} us",
        s.resp_by_class[0].percentile(99.0) as f64 / 1e3
    );
    println!(
        "long-request  p99  : {:>8.1} us",
        s.resp_by_class[1].percentile(99.0) as f64 / 1e3
    );
    println!("preemptions        : {}", s.preemptions);
    println!(
        "timer interrupts   : {} delivered, {} lost",
        s.timer_delivered, s.timer_lost
    );
    println!();
    if PREEMPTIVE {
        println!("With the 50 us slice, short requests dodge the 2 ms longs.");
        println!("Set PREEMPTIVE = false and watch short p99 jump ~100x.");
    } else {
        println!("Without preemption, short requests queue behind 2 ms longs.");
    }
}
