//! A RocksDB-style KV server under the §5.3 bimodal workload, with and
//! without μs-scale preemption.
//!
//! ```sh
//! cargo run --release --example kv_server
//! ```
//!
//! The server pieces are real: requests are encoded as UDP datagrams,
//! RSS-hashed to per-core rings, decoded, and executed against a sorted
//! store; the simulated machine charges the paper's service times (GET
//! 0.95 μs, SCAN 591 μs) and schedules with work stealing. The comparison
//! shows why Figure 8b needs the 5 μs quantum.

use bytes::Bytes;
use skyloft::machine::{AppKind, Machine, MachineConfig};
use skyloft::Platform;
use skyloft_apps::rocksdb::{bimodal_distribution, bimodal_threshold, SortedStore};
use skyloft_apps::synthetic::{install_open_loop, Placement};
use skyloft_hw::Topology;
use skyloft_net::loadgen::OpenLoop;
use skyloft_net::packet::{KvOp, KvRequest};
use skyloft_policies::WorkStealing;
use skyloft_sim::{EventQueue, Nanos};

const WORKERS: usize = 4;
const RATE: f64 = 11_000.0; // ~81% of 4 cores at the 296 us mean

fn run(quantum: Option<Nanos>) -> (f64, f64) {
    let hz = quantum.map_or(100_000, |q| 1_000_000_000 / q.0);
    let cfg = MachineConfig {
        plat: Platform::skyloft_percpu(Topology::single(WORKERS), hz),
        n_workers: WORKERS,
        seed: 77,
        core_alloc: None,
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, Box::new(WorkStealing::new(quantum)));
    m.add_app("rocksdb", AppKind::Lc);
    let mut q = EventQueue::new();
    m.start(&mut q);
    let gen = OpenLoop::new(RATE, bimodal_distribution(), bimodal_threshold(), 5);
    install_open_loop(
        &mut q,
        gen,
        0,
        Placement::Rss { n: WORKERS },
        Nanos::from_secs(1),
    );
    m.run(&mut q, Nanos::from_secs(1) + Nanos::from_ms(50));
    let p999_slowdown = m.stats.slowdown_hist.percentile(99.9) as f64 / 1000.0;
    let get_p99 = m.stats.resp_by_class[0].percentile(99.0) as f64 / 1000.0;
    (p999_slowdown, get_p99)
}

fn main() {
    // First: exercise the actual wire + store path once, end to end.
    let mut store = SortedStore::new();
    store.populate(10_000);
    let get = KvRequest {
        id: 1,
        op: KvOp::Get,
        key: Bytes::from_static(b"key-004242"),
        value: Bytes::new(),
    };
    let dgram = get.encode_datagram(40_001, 6_379);
    let (_hdr, parsed) = KvRequest::decode_datagram(dgram).expect("valid datagram");
    assert_eq!(store.execute(&parsed), 1, "GET through the wire codec hit");
    let scan = KvRequest {
        id: 2,
        op: KvOp::Scan,
        key: Bytes::from_static(b"key-009000"),
        value: Bytes::new(),
    };
    assert_eq!(store.execute(&scan), 100, "SCAN returns a full range");
    println!("wire + store path OK ({} keys loaded)\n", store.len());

    // Then: the scheduling comparison at ~81% load.
    for (label, quantum) in [
        ("cooperative work stealing (Shenango-style)", None),
        (
            "preemptive, 5 us quantum (Skyloft, Fig. 8b)",
            Some(Nanos::from_us(5)),
        ),
    ] {
        let (p999_slowdown, get_p99) = run(quantum);
        println!("{label}:");
        println!("  GET p99            : {get_p99:>8.1} us");
        println!("  99.9% slowdown     : {p999_slowdown:>8.1}x\n");
    }
}
