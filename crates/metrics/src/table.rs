//! Plain-text and CSV table rendering for the benchmark harness output.

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// let mut t = skyloft_metrics::Table::new(&["system", "p99 (us)"]);
/// t.row(&["Skyloft", "12.5"]);
/// let s = t.render();
/// assert!(s.contains("Skyloft"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated to the header width.
    pub fn row(&mut self, cells: &[&str]) {
        let mut r: Vec<String> = cells
            .iter()
            .take(self.header.len())
            .map(|s| s.to_string())
            .collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        let mut r = cells;
        r.truncate(self.header.len());
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table with a header separator.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                for _ in c.len()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (no quoting: the harness never emits commas
    /// inside cells).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
        t.row(&["x", "y", "z-dropped"]);
        let csv = t.to_csv();
        assert!(csv.contains("only-one,\n"));
        assert!(!csv.contains("z-dropped"));
    }

    #[test]
    fn csv_format() {
        let mut t = Table::new(&["h1", "h2"]);
        t.row_owned(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "h1,h2\n1,2\n");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(&["x"]);
        assert!(t.is_empty());
        t.row(&["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
