//! Latency metrics for the Skyloft reproduction.
//!
//! This crate provides the measurement machinery used by every experiment in
//! the paper's evaluation (§5): a log-bucketed latency histogram with
//! bounded relative error (in the spirit of HdrHistogram), percentile and
//! slowdown computation, load/latency series used by the figures, and plain
//! text/CSV table rendering used by the bench harness.

#![warn(missing_docs)]

pub mod hist;
pub mod series;
pub mod table;

pub use hist::Histogram;
pub use series::{LoadPoint, Series};
pub use table::Table;

/// Computes the slowdown of a request: total response time divided by its
/// uninterrupted service time (§5.3 uses the 99.9th percentile of this).
///
/// Slowdown is clamped below at `1.0`: a response can never be faster than
/// its own service time, but integer rounding of virtual timestamps could
/// otherwise produce values slightly below one.
///
/// # Examples
///
/// ```
/// let s = skyloft_metrics::slowdown(200, 100);
/// assert_eq!(s, 2.0);
/// ```
pub fn slowdown(response_ns: u64, service_ns: u64) -> f64 {
    if service_ns == 0 {
        return 1.0;
    }
    let s = response_ns as f64 / service_ns as f64;
    if s < 1.0 {
        1.0
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_basic() {
        assert_eq!(slowdown(100, 100), 1.0);
        assert_eq!(slowdown(500, 100), 5.0);
    }

    #[test]
    fn slowdown_clamps_below_one() {
        assert_eq!(slowdown(50, 100), 1.0);
    }

    #[test]
    fn slowdown_zero_service_is_one() {
        assert_eq!(slowdown(100, 0), 1.0);
    }
}
