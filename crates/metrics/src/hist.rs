//! Log-bucketed latency histogram.
//!
//! The histogram stores `u64` values (nanoseconds in this project) in
//! buckets whose width grows geometrically, giving a bounded relative error
//! of `1 / SUB_BUCKETS` (≈ 1.6%) at any magnitude while using a fixed, small
//! amount of memory. This is the same design trade-off HdrHistogram makes;
//! it is implemented from scratch here because the experiments only need
//! recording, merging, and percentile queries.

/// Number of linear sub-buckets per power-of-two range. Must be a power of
/// two. 64 sub-buckets bound the relative quantization error to 1/64.
const SUB_BUCKETS: u64 = 64;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
/// Number of power-of-two ranges covered: values up to 2^(6 + RANGES) - 1.
/// 48 ranges cover > 10^16 ns, far beyond any simulated latency.
const RANGES: usize = 48;
const BUCKETS: usize = RANGES * SUB_BUCKETS as usize;

/// A fixed-memory histogram of `u64` samples with ~1.6% relative error.
///
/// # Examples
///
/// ```
/// let mut h = skyloft_metrics::Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.percentile(50.0);
/// assert!((450..=550).contains(&p50));
/// ```
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    #[inline]
    fn index_of(value: u64) -> usize {
        // Values below SUB_BUCKETS map linearly into the first range.
        if value < SUB_BUCKETS {
            return value as usize;
        }
        // The highest set bit selects the range; the next SUB_BITS bits
        // select the sub-bucket within it. Off-scale values (range out of
        // bounds) saturate into the last bucket up front, so the common
        // in-range case needs no clamp on the computed index.
        let msb = 63 - value.leading_zeros();
        let range = (msb - SUB_BITS + 1) as usize;
        if range >= RANGES {
            return BUCKETS - 1;
        }
        let sub = (value >> (msb - SUB_BITS)) & (SUB_BUCKETS - 1);
        range * SUB_BUCKETS as usize + sub as usize
    }

    /// Returns a representative (upper-bound) value for a bucket index,
    /// the largest value that maps into the bucket.
    fn value_of(index: usize) -> u64 {
        if index < SUB_BUCKETS as usize {
            return index as u64;
        }
        let range = (index / SUB_BUCKETS as usize) as u32;
        let sub = (index % SUB_BUCKETS as usize) as u64;
        let base = 1u64 << (range + SUB_BITS - 1);
        let width = base >> SUB_BITS;
        base + sub * width + (width - 1)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index_of(value)] += 1;
        self.total += 1;
        self.sum += value as u128;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Records `n` identical samples.
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::index_of(value)] += n;
        self.total += n;
        self.sum += value as u128 * n as u128;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Returns the value at percentile `p` (0.0..=100.0).
    ///
    /// The returned value is an upper bound of the bucket containing the
    /// requested rank, so it is within the histogram's relative error of the
    /// exact order statistic. Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=100.0`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil() as u64;
        let rank = rank.clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp the bucket upper bound by the true max for a tighter
                // tail estimate.
                return Self::value_of(i).min(self.max);
            }
        }
        self.max
    }

    /// Number of recorded samples less than or equal to `value`, within
    /// the histogram's relative error: every bucket whose upper bound is
    /// `<= value` is counted in full, so a sample can be misattributed
    /// only when it shares a bucket with `value` itself (≈1.6% of the
    /// magnitude). Used for SLO-style "how many met the deadline" queries
    /// (goodput accounting).
    pub fn count_le(&self, value: u64) -> u64 {
        let mut n = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if Self::value_of(i) <= value {
                n += c;
            } else {
                break;
            }
        }
        n
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Removes all samples.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.sum = 0;
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.total)
            .field("min", &self.min())
            .field("mean", &self.mean())
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.percentile(99.0))
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(0.0), 42);
        assert_eq!(h.percentile(50.0), 42);
        assert_eq!(h.percentile(100.0), 42);
        assert_eq!(h.mean(), 42.0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS - 1);
        // Values below SUB_BUCKETS are stored exactly.
        assert_eq!(h.percentile(100.0), SUB_BUCKETS - 1);
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = Histogram::new();
        for exp in 0..40u32 {
            let v = 1u64 << exp;
            h.clear();
            h.record(v);
            let got = h.percentile(50.0);
            let err = (got as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64 + 1e-9, "v={v} got={got}");
        }
    }

    #[test]
    fn uniform_percentiles() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9] {
            let got = h.percentile(p) as f64;
            let want = p / 100.0 * 100_000.0;
            assert!(
                (got - want).abs() / want < 0.05,
                "p{p}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in 1..=1000u64 {
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.percentile(50.0), c.percentile(50.0));
        assert_eq!(a.percentile(99.0), c.percentile(99.0));
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
    }

    #[test]
    fn record_n_matches_loop() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(777, 10);
        for _ in 0..10 {
            b.record(777);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.percentile(99.0), b.percentile(99.0));
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn count_le_exact_for_small_values() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        // Small values are stored exactly, so the query is exact too.
        assert_eq!(h.count_le(0), 1);
        assert_eq!(h.count_le(10), 11);
        assert_eq!(h.count_le(SUB_BUCKETS - 1), SUB_BUCKETS);
        assert_eq!(h.count_le(u64::MAX), SUB_BUCKETS);
    }

    #[test]
    fn count_le_bounded_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for cutoff in [100u64, 1_000, 25_000, 90_000] {
            let got = h.count_le(cutoff) as f64;
            let want = cutoff as f64;
            assert!(
                (got - want).abs() / want < 0.05,
                "count_le({cutoff}) = {got}, want ≈ {want}"
            );
        }
        assert_eq!(h.count_le(0), 0);
        assert_eq!(h.count_le(u64::MAX), 100_000);
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new();
        h.record(5);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(99.0), 0);
    }

    #[test]
    fn index_matches_clamped_reference() {
        // The saturating fast path must agree with the straightforward
        // compute-then-clamp formulation at every magnitude, including
        // range boundaries and off-scale values.
        let reference = |value: u64| -> usize {
            if value < SUB_BUCKETS {
                return value as usize;
            }
            let msb = 63 - value.leading_zeros();
            let range = (msb - SUB_BITS + 1) as usize;
            let sub = (value >> (msb - SUB_BITS)) & (SUB_BUCKETS - 1);
            (range * SUB_BUCKETS as usize + sub as usize).min(BUCKETS - 1)
        };
        for exp in 0..64u32 {
            let v = 1u64 << exp;
            for probe in [v.saturating_sub(1), v, v + 1, v + v / 3] {
                assert_eq!(
                    Histogram::index_of(probe),
                    reference(probe),
                    "probe={probe}"
                );
            }
        }
        assert_eq!(Histogram::index_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert!(h.percentile(100.0) > 0);
    }
}
