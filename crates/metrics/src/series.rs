//! Load/latency series: the data behind every figure in the evaluation.

use crate::Histogram;

/// One measured point of a latency-vs-load curve.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadPoint {
    /// Offered load in requests per second.
    pub offered_rps: f64,
    /// Achieved throughput in requests per second.
    pub achieved_rps: f64,
    /// Median response latency in microseconds.
    pub p50_us: f64,
    /// 99th percentile response latency in microseconds.
    pub p99_us: f64,
    /// 99.9th percentile response latency in microseconds.
    pub p999_us: f64,
    /// 99.9th percentile slowdown (response / service time), if tracked.
    pub slowdown_p999: Option<f64>,
    /// CPU share of a co-located best-effort application (0.0..=1.0),
    /// if tracked (Figure 7c).
    pub be_share: Option<f64>,
}

impl LoadPoint {
    /// Builds a point from a response-latency histogram (nanosecond samples).
    pub fn from_hist(offered_rps: f64, achieved_rps: f64, h: &Histogram) -> Self {
        LoadPoint {
            offered_rps,
            achieved_rps,
            p50_us: h.percentile(50.0) as f64 / 1000.0,
            p99_us: h.percentile(99.0) as f64 / 1000.0,
            p999_us: h.percentile(99.9) as f64 / 1000.0,
            slowdown_p999: None,
            be_share: None,
        }
    }
}

/// A named curve: one scheduler/system across a load sweep.
#[derive(Clone, Debug, Default)]
pub struct Series {
    /// Display name of the system (e.g. `"Skyloft-Shinjuku (30us)"`).
    pub name: String,
    /// Measured points, in sweep order.
    pub points: Vec<LoadPoint>,
}

impl Series {
    /// Creates an empty series with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, p: LoadPoint) {
        self.points.push(p);
    }

    /// The achieved throughput of the last point before the
    /// 99th-percentile latency first crosses `slo_us` — the paper's notion
    /// of "maximum throughput" for the Figure 7 experiments. Using the
    /// first crossing (rather than any later compliant point) keeps the
    /// metric monotone under measurement noise.
    pub fn max_tput_under_p99_slo(&self, slo_us: f64) -> f64 {
        let mut best = 0.0f64;
        for p in &self.points {
            if p.p99_us > slo_us {
                break;
            }
            best = best.max(p.achieved_rps);
        }
        best
    }

    /// The achieved throughput of the last point before the
    /// 99.9th-percentile slowdown first crosses `slo` (Figure 8b's metric).
    pub fn max_tput_under_slowdown_slo(&self, slo: f64) -> f64 {
        let mut best = 0.0f64;
        for p in &self.points {
            match p.slowdown_p999 {
                Some(s) if s <= slo => best = best.max(p.achieved_rps),
                _ => break,
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(tput: f64, p99: f64, slow: f64) -> LoadPoint {
        LoadPoint {
            offered_rps: tput,
            achieved_rps: tput,
            p50_us: p99 / 2.0,
            p99_us: p99,
            p999_us: p99 * 2.0,
            slowdown_p999: Some(slow),
            be_share: None,
        }
    }

    #[test]
    fn from_hist_converts_to_us() {
        let mut h = Histogram::new();
        h.record_n(10_000, 100); // 10 us
        let p = LoadPoint::from_hist(1000.0, 990.0, &h);
        assert!((p.p50_us - 10.0).abs() / 10.0 < 0.05);
        assert_eq!(p.offered_rps, 1000.0);
        assert_eq!(p.achieved_rps, 990.0);
    }

    #[test]
    fn max_tput_under_slo_picks_last_compliant() {
        let mut s = Series::new("x");
        s.push(pt(100.0, 10.0, 2.0));
        s.push(pt(200.0, 20.0, 5.0));
        s.push(pt(300.0, 900.0, 400.0));
        assert_eq!(s.max_tput_under_p99_slo(50.0), 200.0);
        assert_eq!(s.max_tput_under_slowdown_slo(3.0), 100.0);
    }

    #[test]
    fn max_tput_empty_is_zero() {
        let s = Series::new("x");
        assert_eq!(s.max_tput_under_p99_slo(50.0), 0.0);
    }

    #[test]
    fn series_clone_preserves_points() {
        let mut s = Series::new("sys");
        s.push(pt(1.0, 2.0, 3.0));
        let c = s.clone();
        assert_eq!(c.points.len(), 1);
        assert_eq!(c.name, "sys");
    }
}
