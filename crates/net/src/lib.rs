//! Kernel-bypass networking model (§3.5).
//!
//! Skyloft integrates DPDK: a polling core receives packets, RSS-hashes
//! them onto per-core shared rings, and a lightweight user-space UDP stack
//! parses them into requests; idle cores also poll the ingress rings. This
//! crate provides those pieces as host-side data structures driven by the
//! simulation:
//!
//! * [`packet`] — wire format: a real (serialized/parsed) UDP-like header
//!   and a key-value request codec, built on `bytes`.
//! * [`rss`] — Receive Side Scaling: Toeplitz hashing of flow tuples
//!   through the 128-entry indirection table onto rings.
//! * [`ring`] — bounded SPSC rings with drop accounting (NIC behaviour
//!   under overload).
//! * [`dataplane`] — the assembled multi-queue NIC: RSS steering into
//!   bounded per-core RX rings plus the polling core's serialization
//!   clock; what `Placement::Rss` sweeps route through.
//! * [`nic`] — per-packet cost constants for the DPDK RX/TX path.
//! * [`loadgen`] — the open-loop Poisson client of §5.3, plus (behind the
//!   `overload` feature) the retrying client: per-attempt timeouts,
//!   decorrelated-jitter backoff, and the global retry budget.
//! * [`overload`] (feature `overload`, default-on) — CoDel AQM on the RX
//!   rings and deadline-aware admission: shed early and cheap at the
//!   polling core instead of late and expensive at the client timeout.

#![warn(missing_docs)]

pub mod dataplane;
pub mod loadgen;
pub mod nic;
#[cfg(feature = "overload")]
pub mod overload;
pub mod packet;
pub mod ring;
pub mod rss;

pub use dataplane::{MultiQueueNic, NicConfig};
#[cfg(feature = "overload")]
pub use loadgen::{Backoff, ClassRetryBudgets, RetryBudget, RetryPolicy};
pub use loadgen::{NetProfile, OpenLoop};
pub use nic::{LossModel, PacketFate};
#[cfg(feature = "overload")]
pub use overload::{AdmissionConfig, AdmissionCtl, Codel, CodelConfig};
pub use packet::{KvOp, KvRequest, PacketPool, UdpHeader};
pub use ring::Ring;
pub use rss::{RssHasher, INDIRECTION_ENTRIES};
