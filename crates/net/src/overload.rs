//! Overload control for the RX path: CoDel-style active queue management
//! and deadline-aware admission.
//!
//! PR 5's rings tail-drop: a packet is rejected only when the ring is
//! physically full, so under sustained overload every *delivered* packet
//! has first aged through a full ring — at 256 slots and ~2 µs of service
//! that is hundreds of microseconds of sojourn, far past a ~200 µs SLO.
//! Goodput (completions within the SLO) collapses to zero even though
//! throughput looks healthy. The fix is the classic AQM insight: drop
//! *early and a little* instead of *late and in bulk*.
//!
//! Two mechanisms compose here, both exercised at the polling core:
//!
//! * [`Codel`] — the CoDel drop law (Nichols & Jacobson, CACM 2012) on
//!   each ring. Tracks the head packet's *sojourn time* (now − enqueue
//!   timestamp). While sojourn stays below `target` nothing happens; once
//!   it has exceeded `target` for a full `interval` the controller enters
//!   the dropping state and sheds packets at a rate that grows with the
//!   square root of the drop count (`drop_next = now + interval/√count`),
//!   which drives a standing queue back to `target` without reacting to
//!   transient bursts.
//! * [`AdmissionCtl`] — deadline-aware admission. Even a packet that
//!   survives the ring may be doomed: if the worker's backlog times the
//!   EWMA service estimate already exceeds the packet's remaining SLO
//!   budget, serving it wastes capacity that a younger request could have
//!   used. [`AdmissionCtl::should_shed`] makes that call at poll time —
//!   a cheap early drop instead of an expensive late timeout.
//!
//! Both are pure data structures (no RNG, no clock of their own), driven
//! with explicit `now` values, so they are directly property-testable and
//! deterministic under simulation.

use skyloft_sim::Nanos;

/// Number of distinct SLO classes the admission controller tracks.
/// Mirrors `skyloft_core::stats::MAX_CLASSES` — this crate deliberately
/// depends only on `skyloft-sim`, so the constant is duplicated rather
/// than imported; the cross-crate agreement is pinned by the ledger
/// invariants in the integration suites.
pub const MAX_CLASSES: usize = 4;

/// Folds a wire-format class byte into a tracked class slot (classes
/// past the last slot share it, same rule as the core stats ledgers).
pub fn class_slot(class: u8) -> usize {
    (class as usize).min(MAX_CLASSES - 1)
}

/// Parameters of the CoDel drop law.
///
/// The canonical internet defaults are 5 ms / 100 ms; a kernel-bypass
/// memcached server runs about three orders of magnitude faster, so the
/// defaults here scale the same ~1:20 ratio down to microseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodelConfig {
    /// Acceptable standing-queue sojourn. Below this the controller is
    /// quiescent.
    pub target: Nanos,
    /// How long sojourn must stay above `target` before dropping starts;
    /// also the initial spacing of drops.
    pub interval: Nanos,
}

impl Default for CodelConfig {
    fn default() -> Self {
        CodelConfig {
            target: Nanos::from_us(25),
            interval: Nanos::from_us(500),
        }
    }
}

/// Per-ring CoDel state machine. Feed every dequeued packet's sojourn
/// through [`Codel::on_packet`]; `true` means *shed this packet*.
#[derive(Clone, Debug)]
pub struct Codel {
    cfg: CodelConfig,
    /// When the sojourn first exceeded `target` plus one `interval`
    /// (i.e. the instant dropping may begin), if it is currently above.
    first_above: Option<Nanos>,
    /// Whether the controller is in the dropping state.
    dropping: bool,
    /// Next scheduled drop while in the dropping state.
    drop_next: Nanos,
    /// Drops in the current dropping episode (sets the √count rate).
    count: u32,
    /// `count` when the last episode ended, for the CoDel "resume at
    /// nearly the old rate" refinement on quick re-entry.
    last_count: u32,
}

impl Codel {
    /// A quiescent controller with the given law parameters.
    pub fn new(cfg: CodelConfig) -> Self {
        Codel {
            cfg,
            first_above: None,
            dropping: false,
            drop_next: Nanos::ZERO,
            count: 0,
            last_count: 0,
        }
    }

    /// The law parameters.
    pub fn cfg(&self) -> CodelConfig {
        self.cfg
    }

    /// Whether the controller is currently in the dropping state.
    pub fn dropping(&self) -> bool {
        self.dropping
    }

    /// `interval / sqrt(count)`: the control law spacing successive drops.
    fn control_law(&self, t: Nanos) -> Nanos {
        t + Nanos((self.cfg.interval.0 as f64 / (self.count.max(1) as f64).sqrt()) as u64)
    }

    /// Judges one dequeued packet: `sojourn` is how long it sat in the
    /// ring, `now` the dequeue instant. Returns `true` when the drop law
    /// says to shed it.
    pub fn on_packet(&mut self, now: Nanos, sojourn: Nanos) -> bool {
        if sojourn < self.cfg.target {
            // Queue is fine: leave the dropping state and forget the
            // above-target episode.
            self.first_above = None;
            self.dropping = false;
            return false;
        }
        match self.first_above {
            None => {
                // First packet above target: arm the interval timer.
                self.first_above = Some(now + self.cfg.interval);
                false
            }
            Some(fa) if !self.dropping => {
                if now < fa {
                    return false;
                }
                // Sojourn stayed above target for a whole interval:
                // enter the dropping state and shed this packet. Resume
                // near the previous rate when the last episode was
                // recent (we are oscillating around the operating
                // point), else restart gently.
                self.dropping = true;
                self.count = if self.last_count > 2 && now < self.drop_next + self.cfg.interval {
                    self.last_count - 2
                } else {
                    1
                };
                self.drop_next = self.control_law(now);
                true
            }
            Some(_) => {
                if now < self.drop_next {
                    return false;
                }
                self.count += 1;
                self.last_count = self.count;
                self.drop_next = self.control_law(self.drop_next);
                true
            }
        }
    }
}

/// Parameters of deadline-aware admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// End-to-end latency budget a request must finish within to count.
    /// Also the fallback budget for classes without a `class_slo` entry.
    pub slo: Nanos,
    /// EWMA weight as a right-shift: the estimate moves by
    /// `(sample − estimate) / 2^ewma_shift` per observation (3 → α = ⅛).
    pub ewma_shift: u32,
    /// Seed value of the service estimate before any observation.
    pub init_service: Nanos,
    /// Per-class SLO overrides: a request of class `c` is shed against
    /// `class_slo[class_slot(c)]` when set. All `None` (the default)
    /// keeps the controller in single-class mode — the legacy
    /// [`AdmissionCtl::observe`]/[`AdmissionCtl::should_shed`] paths are
    /// untouched, so existing single-app configs behave bit-identically.
    pub class_slo: [Option<Nanos>; MAX_CLASSES],
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            slo: Nanos::from_us(200),
            ewma_shift: 3,
            init_service: Nanos::from_us(2),
            class_slo: [None; MAX_CLASSES],
        }
    }
}

/// Deadline-aware admission controller: an integer EWMA of observed
/// per-request service (worker-side, stack overhead included) plus the
/// shed decision `now + (backlog+1) × estimate > sent + SLO`.
///
/// In multi-tenant mode (any `class_slo` entry set) the controller keeps
/// *per-class* cost and backlog estimates alongside the legacy global
/// ones: a 5 ms batch request must not inflate the service estimate a
/// 200 µs LC request is judged by, and each class is shed against its
/// own deadline, never a blended one.
#[derive(Clone, Debug)]
pub struct AdmissionCtl {
    cfg: AdmissionConfig,
    est: Nanos,
    /// Per-class service estimates (integer EWMA, same law as `est`).
    class_est: [Nanos; MAX_CLASSES],
    /// Per-class admitted-but-unfinished counts, maintained via
    /// [`AdmissionCtl::note_admitted`]/[`AdmissionCtl::note_done`].
    class_backlog: [u64; MAX_CLASSES],
}

impl AdmissionCtl {
    /// A controller seeded at `cfg.init_service`.
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionCtl {
            est: cfg.init_service,
            class_est: [cfg.init_service; MAX_CLASSES],
            class_backlog: [0; MAX_CLASSES],
            cfg,
        }
    }

    /// The configuration.
    pub fn cfg(&self) -> AdmissionConfig {
        self.cfg
    }

    /// The current service estimate.
    pub fn estimate(&self) -> Nanos {
        self.est
    }

    /// Whether any per-class SLO is registered (multi-tenant mode).
    pub fn has_classes(&self) -> bool {
        self.cfg.class_slo.iter().any(Option::is_some)
    }

    /// The registered deadline for one class (`None` when unregistered).
    pub fn class_slo(&self, class: u8) -> Option<Nanos> {
        self.cfg.class_slo[class_slot(class)]
    }

    /// The current service estimate for one class.
    pub fn class_estimate(&self, class: u8) -> Nanos {
        self.class_est[class_slot(class)]
    }

    /// The tracked backlog (admitted, not yet finished) for one class.
    pub fn class_backlog(&self, class: u8) -> u64 {
        self.class_backlog[class_slot(class)]
    }

    /// Folds one observed per-request service time into the estimate.
    pub fn observe(&mut self, service: Nanos) {
        let shift = self.cfg.ewma_shift;
        let est = self.est.0 as i128;
        let delta = service.0 as i128 - est;
        self.est = Nanos((est + (delta >> shift)) as u64);
    }

    /// Folds one observed service time into `class`'s estimate (and the
    /// global one, so single-class probes keep working under tenancy).
    pub fn observe_class(&mut self, class: u8, service: Nanos) {
        self.observe(service);
        let shift = self.cfg.ewma_shift;
        let slot = class_slot(class);
        let est = self.class_est[slot].0 as i128;
        let delta = service.0 as i128 - est;
        self.class_est[slot] = Nanos((est + (delta >> shift)) as u64);
    }

    /// Counts one admitted request of `class` toward its backlog.
    pub fn note_admitted(&mut self, class: u8) {
        self.class_backlog[class_slot(class)] += 1;
    }

    /// Retires one request of `class` from its backlog (delivered, timed
    /// out, or shed downstream — anything that stops occupying a worker).
    pub fn note_done(&mut self, class: u8) {
        let slot = class_slot(class);
        self.class_backlog[slot] = self.class_backlog[slot].saturating_sub(1);
    }

    /// Overwrites one class's backlog with an externally computed ground
    /// truth. Callers that can see both sides of the worker (the poller
    /// reads delivered and completed counters each round) resync with
    /// this instead of pairing every `note_admitted` with a `note_done`,
    /// which would require a completion callback they don't have.
    pub fn set_class_backlog(&mut self, class: u8, backlog: u64) {
        self.class_backlog[class_slot(class)] = backlog;
    }

    /// Whether to shed a request sent at `sent`, examined at `now` with
    /// `backlog` requests already ahead of it on its worker: shed when
    /// even an optimistic finish time (backlog drains at the estimated
    /// rate, then this request runs) already misses `sent + slo`.
    pub fn should_shed(&self, now: Nanos, sent: Nanos, backlog: usize) -> bool {
        let finish = now + Nanos(self.est.0.saturating_mul(backlog as u64 + 1));
        finish > sent + self.cfg.slo
    }

    /// Per-class shed decision: the same finish-time argument, but
    /// judged against `class`'s own deadline (falling back to the global
    /// `slo` for unregistered classes). The work-ahead term spans
    /// *every* class — the data plane hands all admitted requests to the
    /// same runqueues, so a tight-class arrival drains behind the
    /// loose-class backlog too; modeling only the request's own class
    /// would admit 200 µs requests into a multi-millisecond batch queue
    /// and deliver them all late. Per-class cost estimates keep the sum
    /// honest (60 queued batch requests cost 60 × 50 µs, not 60 × a
    /// blended mean).
    pub fn should_shed_class(&self, class: u8, now: Nanos, sent: Nanos) -> bool {
        let slot = class_slot(class);
        let slo = self.cfg.class_slo[slot].unwrap_or(self.cfg.slo);
        let mut ahead = 0u64;
        // Tightest deadline among classes with work in flight: a looser
        // request must not deepen the shared queue past what the most
        // demanding live tenant can drain through — its own 5 ms budget
        // would happily stack minutes of work in front of a 200 µs
        // neighbour.
        let mut tightest = slo;
        for c in 0..MAX_CLASSES {
            ahead = ahead.saturating_add(self.class_est[c].0.saturating_mul(self.class_backlog[c]));
            if self.class_backlog[c] > 0 {
                if let Some(s) = self.cfg.class_slo[c] {
                    tightest = tightest.min(s);
                }
            }
        }
        let work = ahead.saturating_add(self.class_est[slot].0);
        if now + Nanos(work) > sent + slo {
            return true;
        }
        // The cap only binds classes looser than the tightest live one
        // (the tight class is already governed by its own deadline), and
        // admits at most a quarter of that budget as queued work: the
        // remaining three quarters cover the tight class's ring wait,
        // own service, and scheduling jitter — a tail that a `slo / 2`
        // queue was measured to push just past the deadline.
        slo > tightest && work > tightest.0 / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn law() -> CodelConfig {
        CodelConfig {
            target: Nanos::from_us(25),
            interval: Nanos::from_us(500),
        }
    }

    #[test]
    fn below_target_never_drops() {
        let mut c = Codel::new(law());
        for i in 0..10_000u64 {
            let now = Nanos(i * 100);
            assert!(!c.on_packet(now, Nanos::from_us(24)), "dropped at {now:?}");
        }
        assert!(!c.dropping());
    }

    #[test]
    fn sustained_excess_enters_dropping_after_one_interval() {
        let mut c = Codel::new(law());
        let sojourn = Nanos::from_us(100);
        // Above target but within the first interval: no drops yet.
        assert!(!c.on_packet(Nanos::ZERO, sojourn));
        assert!(!c.on_packet(Nanos::from_us(499), sojourn));
        // One interval elapsed: the next above-target packet is shed.
        assert!(c.on_packet(Nanos::from_us(500), sojourn));
        assert!(c.dropping());
    }

    #[test]
    fn drop_rate_accelerates_with_sqrt_count() {
        let mut c = Codel::new(law());
        let sojourn = Nanos::from_us(100);
        let mut now = Nanos::ZERO;
        let mut drops = Vec::new();
        // Feed a packet every 10 µs with a stuck-high sojourn; record the
        // drop instants.
        for _ in 0..1_000 {
            if c.on_packet(now, sojourn) {
                drops.push(now);
            }
            now += Nanos::from_us(10);
        }
        assert!(drops.len() >= 4, "only {} drops", drops.len());
        // Successive inter-drop gaps shrink (interval/√count).
        let gap1 = drops[1] - drops[0];
        let last_gap = drops[drops.len() - 1] - drops[drops.len() - 2];
        assert!(
            last_gap < gap1,
            "drop rate did not accelerate: first gap {gap1:?}, last {last_gap:?}"
        );
    }

    #[test]
    fn recovery_leaves_dropping_state() {
        let mut c = Codel::new(law());
        let high = Nanos::from_us(100);
        let mut now = Nanos::ZERO;
        for _ in 0..200 {
            c.on_packet(now, high);
            now += Nanos::from_us(10);
        }
        assert!(c.dropping());
        // Queue drained: one below-target packet resets the controller.
        assert!(!c.on_packet(now, Nanos::from_us(1)));
        assert!(!c.dropping());
        // And the next above-target packet starts a fresh interval, not
        // an immediate drop.
        assert!(!c.on_packet(now + Nanos::from_us(10), high));
    }

    #[test]
    fn admission_ewma_converges() {
        let mut a = AdmissionCtl::new(AdmissionConfig {
            init_service: Nanos::from_us(2),
            ..AdmissionConfig::default()
        });
        for _ in 0..200 {
            a.observe(Nanos::from_us(6));
        }
        let est = a.estimate();
        assert!(
            (Nanos::from_us(5)..=Nanos::from_us(7)).contains(&est),
            "estimate {est:?} did not converge to ~6µs"
        );
    }

    #[test]
    fn admission_sheds_only_doomed_requests() {
        let a = AdmissionCtl::new(AdmissionConfig {
            slo: Nanos::from_us(200),
            ewma_shift: 3,
            init_service: Nanos::from_us(2),
            class_slo: [None; MAX_CLASSES],
        });
        let sent = Nanos::from_ms(1);
        // Fresh request, empty worker: plenty of budget left.
        assert!(!a.should_shed(sent + Nanos::from_us(10), sent, 0));
        // Same age but 120 requests ahead at ~2µs each = 242µs to go:
        // already past the 200µs budget.
        assert!(a.should_shed(sent + Nanos::from_us(10), sent, 120));
        // Old request: even an empty worker cannot save it.
        assert!(a.should_shed(sent + Nanos::from_us(199), sent, 1));
    }

    fn classed() -> AdmissionConfig {
        let mut class_slo = [None; MAX_CLASSES];
        class_slo[0] = Some(Nanos::from_us(200)); // LC
        class_slo[1] = Some(Nanos::from_ms(5)); // batch
        AdmissionConfig {
            slo: Nanos::from_us(200),
            ewma_shift: 3,
            init_service: Nanos::from_us(2),
            class_slo,
        }
    }

    #[test]
    fn per_class_shed_uses_own_deadline() {
        let mut a = AdmissionCtl::new(classed());
        assert!(a.has_classes());
        // 60 queued batch requests ≈ 122 µs to drain at the 2 µs initial
        // estimate.
        for _ in 0..60 {
            a.note_admitted(1);
        }
        let sent = Nanos::from_ms(1);
        let now = sent + Nanos::from_us(150);
        // The 200 µs LC request is doomed; the 5 ms batch one is fine.
        assert!(a.should_shed_class(0, now, sent));
        assert!(!a.should_shed_class(1, now, sent));
    }

    #[test]
    fn live_tight_class_caps_loose_admits() {
        let mut a = AdmissionCtl::new(classed());
        for _ in 0..200 {
            a.observe_class(1, Nanos::from_us(50));
        }
        // ~4 batch requests (~200 µs) queued: well inside batch's own
        // 5 ms budget, so with no tighter class in flight it is admitted.
        for _ in 0..4 {
            a.note_admitted(1);
        }
        let sent = Nanos::from_ms(1);
        let now = sent + Nanos::from_us(10);
        assert!(!a.should_shed_class(1, now, sent));
        // One LC request in flight makes the 200 µs class live: the
        // shared queue is now capped at half that deadline, and the same
        // batch request sheds.
        a.note_admitted(0);
        assert!(a.should_shed_class(1, now, sent));
    }

    #[test]
    fn per_class_estimates_are_independent() {
        let mut a = AdmissionCtl::new(classed());
        for _ in 0..200 {
            a.observe_class(0, Nanos::from_us(2));
            a.observe_class(1, Nanos::from_us(50));
        }
        assert!(a.class_estimate(0) < Nanos::from_us(4));
        assert!(a.class_estimate(1) > Nanos::from_us(40));
        // A batch-heavy tail must not poison the LC estimate: a fresh LC
        // request with an empty LC backlog survives even while class 1's
        // estimate sits at ~50 µs.
        let sent = Nanos::from_ms(1);
        assert!(!a.should_shed_class(0, sent + Nanos::from_us(10), sent));
    }

    #[test]
    fn cross_class_backlog_counts_against_a_tight_deadline() {
        let mut a = AdmissionCtl::new(classed());
        for _ in 0..200 {
            a.observe_class(0, Nanos::from_us(2));
            a.observe_class(1, Nanos::from_us(50));
        }
        // No LC backlog at all, but ~6 batch requests (~300 µs of work)
        // queued ahead in the shared runqueues: a fresh 200 µs request
        // cannot make it and must shed; the batch class itself has 5 ms
        // of budget and sails through.
        for _ in 0..6 {
            a.note_admitted(1);
        }
        let sent = Nanos::from_ms(1);
        assert!(a.should_shed_class(0, sent + Nanos::from_us(10), sent));
        assert!(!a.should_shed_class(1, sent + Nanos::from_us(10), sent));
    }

    #[test]
    fn per_class_backlog_tracks_admit_and_done() {
        let mut a = AdmissionCtl::new(classed());
        a.note_admitted(2);
        a.note_admitted(2);
        a.note_done(2);
        assert_eq!(a.class_backlog(2), 1);
        a.note_done(2);
        a.note_done(2); // extra retire saturates at zero
        assert_eq!(a.class_backlog(2), 0);
        // Classes past the last slot share it.
        a.note_admitted(9);
        assert_eq!(a.class_backlog(3), 1);
    }
}
