//! NIC / DPDK path cost constants.
//!
//! ESTIMATEs consistent with published DPDK figures on 10 GbE (82599ES,
//! the paper's NIC): tens of nanoseconds of per-packet poll cost and a few
//! hundred nanoseconds of stack processing. Both the Skyloft and Shenango
//! configurations use the same kernel-bypass path, so these constants
//! cancel in comparisons; they exist so absolute latencies stay plausible.

use skyloft_sim::Nanos;

/// Per-packet cost on the polling core (RX descriptor + mbuf handling).
pub const RX_POLL_COST: Nanos = Nanos(80);

/// UDP stack parse + request dispatch cost on the worker.
pub const STACK_RX_COST: Nanos = Nanos(250);

/// Response build + TX enqueue cost on the worker.
pub const STACK_TX_COST: Nanos = Nanos(200);

/// One-way wire + NIC latency between the client and the server (the
/// paper's client is one switch hop away). Charged symmetrically to every
/// request; identical across systems.
pub const WIRE_LATENCY: Nanos = Nanos(1_000);

/// The full per-request network overhead added to a request's measured
/// service: RX poll + stack RX + stack TX (wire latency is accounted by
/// the load generator on both directions).
pub fn per_request_overhead() -> Nanos {
    RX_POLL_COST + STACK_RX_COST + STACK_TX_COST
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_sub_microsecond() {
        let o = per_request_overhead();
        assert!(o < Nanos::from_us(1), "net overhead {o:?}");
        assert_eq!(o, Nanos(530));
    }
}
