//! NIC / DPDK path cost constants and the packet loss model.
//!
//! ESTIMATEs consistent with published DPDK figures on 10 GbE (82599ES,
//! the paper's NIC): tens of nanoseconds of per-packet poll cost and a few
//! hundred nanoseconds of stack processing. Both the Skyloft and Shenango
//! configurations use the same kernel-bypass path, so these constants
//! cancel in comparisons; they exist so absolute latencies stay plausible.
//!
//! [`LossModel`] is the seeded fault knob for the wire itself: real UDP
//! memcached traffic loses and duplicates datagrams, and a load generator
//! that silently forgets dropped requests *understates* tail latency (the
//! "coordinated omission" of the denominator). Harnesses draw a
//! [`PacketFate`] per request and account timed-out requests at their
//! timeout value instead of excluding them.

use skyloft_sim::{Nanos, Rng};

/// Per-packet cost on the polling core (RX descriptor + mbuf handling).
pub const RX_POLL_COST: Nanos = Nanos(80);

/// UDP stack parse + request dispatch cost on the worker.
pub const STACK_RX_COST: Nanos = Nanos(250);

/// Response build + TX enqueue cost on the worker.
pub const STACK_TX_COST: Nanos = Nanos(200);

/// One-way wire + NIC latency between the client and the server (the
/// paper's client is one switch hop away). Charged symmetrically to every
/// request; identical across systems. Per-datagram transit is drawn by
/// [`wire_draw`] with this mean.
pub const WIRE_LATENCY: Nanos = Nanos(1_000);

/// Peak-to-peak jitter of one wire transit: [`wire_draw`] samples
/// uniformly from `WIRE_LATENCY ± WIRE_JITTER/2`, so the mean stays at
/// [`WIRE_LATENCY`]. Nonzero so that two datagrams sent at the same
/// instant (a UDP duplicate and its original) arrive at distinct times.
pub const WIRE_JITTER: Nanos = Nanos(400);

/// Draws one wire transit time: `WIRE_LATENCY - WIRE_JITTER/2 + U[0,
/// WIRE_JITTER)`. Each datagram (duplicates included) gets an independent
/// draw, so copies contend with their originals realistically instead of
/// materializing at the same instant.
pub fn wire_draw(rng: &mut Rng) -> Nanos {
    WIRE_LATENCY - WIRE_JITTER / 2 + Nanos(rng.next_below(WIRE_JITTER.0))
}

/// The full per-request network overhead added to a request's measured
/// service on the legacy direct path: RX poll + stack RX + stack TX (wire
/// latency is accounted by the load generator on both directions). The
/// real data plane ([`crate::dataplane::MultiQueueNic`]) charges
/// [`RX_POLL_COST`] on the polling core instead, so its workers only pay
/// [`stack_overhead`].
pub fn per_request_overhead() -> Nanos {
    RX_POLL_COST + STACK_RX_COST + STACK_TX_COST
}

/// Worker-side UDP stack overhead per request (parse + response build);
/// what the data-plane path adds to the executed segment, the RX poll
/// cost having already been charged on the polling core.
pub fn stack_overhead() -> Nanos {
    STACK_RX_COST + STACK_TX_COST
}

/// What the wire did to one request datagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketFate {
    /// Delivered normally.
    Deliver,
    /// Lost; the client only learns via its timeout.
    Drop,
    /// Delivered twice (UDP duplication); the server does the work twice,
    /// the client keeps the first response.
    Duplicate,
}

/// Seeded drop/duplication model for the client↔server path.
///
/// The default NIC model delivers every packet ([`LossModel::lossless`]);
/// fault studies install per-packet drop/duplicate probabilities. The
/// model owns its RNG so a `(seed, drop_p, dup_p)` triple replays the
/// exact same fate sequence regardless of what else the machine draws.
#[derive(Clone, Debug)]
pub struct LossModel {
    drop_p: f64,
    dup_p: f64,
    rng: Rng,
}

impl LossModel {
    /// Creates a loss model drawing from `seed`. Probabilities are
    /// per-request; `drop_p + dup_p` must not exceed 1.
    pub fn new(seed: u64, drop_p: f64, dup_p: f64) -> Self {
        assert!((0.0..=1.0).contains(&drop_p), "drop_p out of range");
        assert!((0.0..=1.0).contains(&dup_p), "dup_p out of range");
        assert!(drop_p + dup_p <= 1.0, "drop_p + dup_p exceeds 1");
        LossModel {
            drop_p,
            dup_p,
            rng: Rng::seed_from_u64(seed ^ 0x001C_001C_001C_001C),
        }
    }

    /// The perfect wire: every packet delivered exactly once.
    pub fn lossless() -> Self {
        LossModel::new(0, 0.0, 0.0)
    }

    /// Whether this model can never drop or duplicate (no RNG is consumed
    /// per packet in that case, so a lossless model is also free).
    pub fn is_lossless(&self) -> bool {
        self.drop_p == 0.0 && self.dup_p == 0.0
    }

    /// Draws the fate of the next request datagram.
    pub fn fate(&mut self) -> PacketFate {
        if self.is_lossless() {
            return PacketFate::Deliver;
        }
        let x = self.rng.next_f64();
        if x < self.drop_p {
            PacketFate::Drop
        } else if x < self.drop_p + self.dup_p {
            PacketFate::Duplicate
        } else {
            PacketFate::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_sub_microsecond() {
        let o = per_request_overhead();
        assert!(o < Nanos::from_us(1), "net overhead {o:?}");
        assert_eq!(o, Nanos(530));
    }

    #[test]
    fn wire_draws_center_on_the_wire_latency() {
        let mut rng = Rng::seed_from_u64(11);
        let lo = WIRE_LATENCY - WIRE_JITTER / 2;
        let hi = WIRE_LATENCY + WIRE_JITTER / 2;
        let mut sum = 0u64;
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let d = wire_draw(&mut rng);
            assert!(d >= lo && d < hi, "draw {d:?} outside [{lo:?}, {hi:?})");
            sum += d.0;
            distinct.insert(d.0);
        }
        let mean = sum as f64 / 10_000.0;
        assert!((mean - WIRE_LATENCY.0 as f64).abs() < 10.0, "mean {mean}");
        assert!(
            distinct.len() > 100,
            "draws are a distribution, not a constant"
        );
    }

    #[test]
    fn lossless_model_always_delivers() {
        let mut m = LossModel::lossless();
        assert!(m.is_lossless());
        for _ in 0..1000 {
            assert_eq!(m.fate(), PacketFate::Deliver);
        }
    }

    #[test]
    fn fates_match_probabilities_and_seed() {
        let draw = |seed| -> Vec<PacketFate> {
            let mut m = LossModel::new(seed, 0.10, 0.05);
            (0..20_000).map(|_| m.fate()).collect()
        };
        let a = draw(7);
        assert_eq!(a, draw(7), "same seed, same fates");
        assert_ne!(a, draw(8), "different seed, different fates");
        let drops = a.iter().filter(|&&f| f == PacketFate::Drop).count();
        let dups = a.iter().filter(|&&f| f == PacketFate::Duplicate).count();
        assert!((1_600..2_400).contains(&drops), "drops {drops}/20000");
        assert!((700..1_300).contains(&dups), "dups {dups}/20000");
    }

    #[test]
    #[should_panic(expected = "exceeds 1")]
    fn rejects_impossible_probabilities() {
        LossModel::new(0, 0.7, 0.4);
    }
}
