//! Bounded rings with drop accounting.
//!
//! Models the shared ring buffers between the DPDK polling core and the
//! isolated worker cores (§3.5). Under overload a full ring tail-drops,
//! exactly as a NIC RX queue would. [`crate::dataplane::MultiQueueNic`]
//! owns one `Ring` per worker and is what the load sweeps route through
//! (`Placement::Rss`), so behaviour past saturation is bounded queues plus
//! counted drops rather than unbounded in-simulator spawn queues.

use std::collections::VecDeque;

/// A bounded FIFO ring of `T`.
#[derive(Clone, Debug)]
pub struct Ring<T> {
    buf: VecDeque<T>,
    capacity: usize,
    /// Items rejected because the ring was full.
    pub drops: u64,
}

impl<T> Ring<T> {
    /// Creates a ring holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Ring {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            drops: 0,
        }
    }

    /// Attempts to enqueue; returns `false` (and counts a drop) when full.
    pub fn push(&mut self, item: T) -> bool {
        if self.buf.len() == self.capacity {
            self.drops += 1;
            return false;
        }
        self.buf.push_back(item);
        true
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.buf.pop_front()
    }

    /// The oldest item, without dequeuing it. AQM reads the head's
    /// enqueue timestamp here to compute the sojourn time.
    pub fn front(&self) -> Option<&T> {
        self.buf.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the ring is full.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// The fixed capacity this ring was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut r = Ring::new(4);
        for i in 0..3 {
            assert!(r.push(i));
        }
        assert_eq!(r.pop(), Some(0));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn drops_when_full() {
        let mut r = Ring::new(2);
        assert!(r.push(1));
        assert!(r.push(2));
        assert!(r.is_full());
        assert!(!r.push(3));
        assert_eq!(r.drops, 1);
        r.pop();
        assert!(r.push(3));
        assert_eq!(r.drops, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        Ring::<u8>::new(0);
    }
}
