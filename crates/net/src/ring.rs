//! Bounded rings with drop accounting.
//!
//! Models the shared ring buffers between the DPDK polling core and the
//! isolated worker cores (§3.5). Under overload a full ring tail-drops,
//! exactly as a NIC RX queue would. [`crate::dataplane::MultiQueueNic`]
//! owns one `Ring` per worker and is what the load sweeps route through
//! (`Placement::Rss`), so behaviour past saturation is bounded queues plus
//! counted drops rather than unbounded in-simulator spawn queues.

use std::collections::VecDeque;

/// A bounded FIFO ring of `T`.
#[derive(Clone, Debug)]
pub struct Ring<T> {
    buf: VecDeque<T>,
    capacity: usize,
    /// Items rejected because the ring was full.
    pub drops: u64,
}

impl<T> Ring<T> {
    /// Creates a ring holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Ring {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            drops: 0,
        }
    }

    /// Attempts to enqueue; returns `false` (and counts a drop) when full.
    pub fn push(&mut self, item: T) -> bool {
        if self.buf.len() == self.capacity {
            self.drops += 1;
            return false;
        }
        self.buf.push_back(item);
        true
    }

    /// Enqueues a burst in order, filling the ring to capacity: returns
    /// how many items were accepted; the remainder tail-drop (counted),
    /// exactly as repeated [`Ring::push`] would decide. One capacity
    /// computation and one `VecDeque` bulk extend serve the whole burst —
    /// the DMA-engine analogue of writing descriptors until the ring is
    /// full.
    pub fn enqueue_burst<I>(&mut self, items: I) -> usize
    where
        I: IntoIterator<Item = T>,
    {
        let mut items = items.into_iter();
        let room = self.capacity - self.buf.len();
        let before = self.buf.len();
        self.buf.extend(items.by_ref().take(room));
        let accepted = self.buf.len() - before;
        // Anything still in the iterator found the ring full.
        self.drops += items.count() as u64;
        accepted
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.buf.pop_front()
    }

    /// The oldest item, without dequeuing it. AQM reads the head's
    /// enqueue timestamp here to compute the sojourn time.
    pub fn front(&self) -> Option<&T> {
        self.buf.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the ring is full.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// The fixed capacity this ring was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut r = Ring::new(4);
        for i in 0..3 {
            assert!(r.push(i));
        }
        assert_eq!(r.pop(), Some(0));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn drops_when_full() {
        let mut r = Ring::new(2);
        assert!(r.push(1));
        assert!(r.push(2));
        assert!(r.is_full());
        assert!(!r.push(3));
        assert_eq!(r.drops, 1);
        r.pop();
        assert!(r.push(3));
        assert_eq!(r.drops, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        Ring::<u8>::new(0);
    }

    #[test]
    fn burst_fills_then_tail_drops() {
        let mut r = Ring::new(4);
        assert!(r.push(0));
        // Room for 3 more; the burst of 5 loses its last 2.
        assert_eq!(r.enqueue_burst(1..6), 3);
        assert_eq!(r.drops, 2);
        assert!(r.is_full());
        assert_eq!(r.pop(), Some(0));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn burst_matches_repeated_push() {
        // Same decisions as a singles loop across every fill level.
        for preload in 0..=4usize {
            let mut burst = Ring::new(4);
            let mut singles = Ring::new(4);
            for i in 0..preload as u32 {
                burst.push(i);
                singles.push(i);
            }
            let accepted = burst.enqueue_burst(100..107);
            let mut accepted_singles = 0;
            for v in 100..107 {
                if singles.push(v) {
                    accepted_singles += 1;
                }
            }
            assert_eq!(accepted, accepted_singles);
            assert_eq!(burst.drops, singles.drops);
            while let Some(a) = burst.pop() {
                assert_eq!(Some(a), singles.pop());
            }
            assert!(singles.is_empty());
        }
    }

    #[test]
    fn empty_burst_is_noop() {
        let mut r = Ring::new(2);
        assert_eq!(r.enqueue_burst(std::iter::empty::<u8>()), 0);
        assert_eq!(r.drops, 0);
        assert!(r.is_empty());
    }
}
