//! Receive Side Scaling: Toeplitz hashing of flows onto RX rings (§3.5).

/// Toeplitz hasher over a 40-byte secret key, as NICs implement RSS.
#[derive(Clone, Debug)]
pub struct RssHasher {
    key: [u8; 40],
    n_rings: usize,
}

impl RssHasher {
    /// The Microsoft-documented default RSS key (also DPDK's default).
    pub const DEFAULT_KEY: [u8; 40] = [
        0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f,
        0xb0, 0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
        0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
    ];

    /// Creates a hasher distributing flows over `n_rings` rings.
    ///
    /// # Panics
    ///
    /// Panics if `n_rings` is zero.
    pub fn new(n_rings: usize) -> Self {
        assert!(n_rings > 0, "RSS needs at least one ring");
        RssHasher {
            key: Self::DEFAULT_KEY,
            n_rings,
        }
    }

    /// The Toeplitz hash of `input` (the flow tuple bytes).
    pub fn toeplitz(&self, input: &[u8]) -> u32 {
        let mut result: u32 = 0;
        // The key is consumed as a sliding 32-bit window, one bit per input
        // bit.
        let mut window: u32 =
            u32::from_be_bytes([self.key[0], self.key[1], self.key[2], self.key[3]]);
        let mut next_key_bit = 32;
        for &byte in input {
            for bit in (0..8).rev() {
                if (byte >> bit) & 1 == 1 {
                    result ^= window;
                }
                // Slide the window by one bit.
                let next = if next_key_bit / 8 < self.key.len() {
                    (self.key[next_key_bit / 8] >> (7 - (next_key_bit % 8))) & 1
                } else {
                    0
                };
                window = (window << 1) | next as u32;
                next_key_bit += 1;
            }
        }
        result
    }

    /// Maps a UDP flow (source ip/port, destination ip/port) to a ring.
    pub fn ring_for_flow(&self, src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16) -> usize {
        let mut tuple = [0u8; 12];
        tuple[0..4].copy_from_slice(&src_ip.to_be_bytes());
        tuple[4..8].copy_from_slice(&dst_ip.to_be_bytes());
        tuple[8..10].copy_from_slice(&src_port.to_be_bytes());
        tuple[10..12].copy_from_slice(&dst_port.to_be_bytes());
        (self.toeplitz(&tuple) as usize) % self.n_rings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let h = RssHasher::new(4);
        let a = h.ring_for_flow(0x0a000001, 0x0a000002, 40000, 11211);
        let b = h.ring_for_flow(0x0a000001, 0x0a000002, 40000, 11211);
        assert_eq!(a, b);
    }

    #[test]
    fn known_toeplitz_vector() {
        // Verification vector from the Microsoft RSS specification:
        // IPv4 3-tuple 66.9.149.187:2794 -> 161.142.100.80:1766 hashes to
        // 0x51ccc178 over (dst_ip, src_ip, dst_port, src_port)?  The spec
        // orders input as (src addr, dst addr, src port, dst port) from the
        // *receiver's* perspective; this implementation is validated for
        // self-consistency and spread rather than byte-order conformance,
        // so here we only pin the value to detect regressions.
        let h = RssHasher::new(1);
        let mut tuple = [0u8; 12];
        tuple[0..4].copy_from_slice(&[66, 9, 149, 187]);
        tuple[4..8].copy_from_slice(&[161, 142, 100, 80]);
        tuple[8..10].copy_from_slice(&2794u16.to_be_bytes());
        tuple[10..12].copy_from_slice(&1766u16.to_be_bytes());
        let v = h.toeplitz(&tuple);
        assert_eq!(v, h.toeplitz(&tuple));
        assert_ne!(v, 0);
    }

    #[test]
    fn spreads_across_rings() {
        let h = RssHasher::new(8);
        let mut counts = [0u32; 8];
        for port in 0..4000u16 {
            counts[h.ring_for_flow(0x0a000001, 0x0a000002, 30000 + port, 11211)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (300..700).contains(c),
                "ring {i} got {c} of 4000 flows — bad spread: {counts:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one ring")]
    fn zero_rings_rejected() {
        RssHasher::new(0);
    }
}
