//! Receive Side Scaling: Toeplitz hashing of flows onto RX rings (§3.5).
//!
//! Real NICs (the paper's 82599ES included) do not reduce the Toeplitz
//! hash modulo the queue count: they index a small *indirection table*
//! with the low bits of the hash, and each table entry names a queue. The
//! table is what drivers rewrite to rebalance flows — a rewrite moves only
//! the flows whose table entry changed, without rehashing anything.
//! [`RssHasher`] models exactly that: a 128-entry table (the 82599's
//! size) indexed by the low 7 bits of the hash.

/// Number of entries in the RSS indirection table (82599-class NICs).
pub const INDIRECTION_ENTRIES: usize = 128;

/// Longest flow tuple covered by the per-byte lookup tables (an IPv4
/// 4-tuple: two addresses plus two ports). Longer inputs fall back to the
/// bit-serial reference.
const MAX_TUPLE_BYTES: usize = 12;

/// Builds the DPDK-style per-byte-position lookup tables for `key`.
///
/// The Toeplitz hash is GF(2)-linear in the input bits: each set input
/// bit XORs a 32-bit window of the key into the result, and windows
/// depend only on the bit's absolute position. So the contribution of a
/// whole byte value at a given byte position is a constant, and
/// `lut[pos][b]` precomputes it — hashing a tuple becomes one table XOR
/// per byte instead of eight window shifts per byte.
fn build_lut(key: &[u8; 40]) -> Box<[[u32; 256]; MAX_TUPLE_BYTES]> {
    // The 32 key bits starting at absolute bit offset `bit`, zero-padded
    // past the end of the key (matching the serial implementation).
    let key_window = |bit: usize| -> u32 {
        let mut w = 0u32;
        for k in bit..bit + 32 {
            let b = if k / 8 < key.len() {
                (key[k / 8] >> (7 - (k % 8))) & 1
            } else {
                0
            };
            w = (w << 1) | b as u32;
        }
        w
    };
    let mut lut = Box::new([[0u32; 256]; MAX_TUPLE_BYTES]);
    for (pos, table) in lut.iter_mut().enumerate() {
        let mut windows = [0u32; 8];
        for (j, w) in windows.iter_mut().enumerate() {
            *w = key_window(pos * 8 + j);
        }
        for (b, entry) in table.iter_mut().enumerate() {
            let mut h = 0u32;
            for (j, &w) in windows.iter().enumerate() {
                if (b >> (7 - j)) & 1 == 1 {
                    h ^= w;
                }
            }
            *entry = h;
        }
    }
    lut
}

/// Toeplitz hasher over a 40-byte secret key plus the 128-entry
/// indirection table, as NICs implement RSS.
#[derive(Clone, Debug)]
pub struct RssHasher {
    key: [u8; 40],
    n_rings: usize,
    /// `table[hash & 0x7f]` is the ring receiving the flow.
    table: [u16; INDIRECTION_ENTRIES],
    /// Per-byte-position hash contributions (see [`build_lut`]), rebuilt
    /// only when the key changes.
    lut: Box<[[u32; 256]; MAX_TUPLE_BYTES]>,
}

impl RssHasher {
    /// The Microsoft-documented default RSS key (also DPDK's default).
    pub const DEFAULT_KEY: [u8; 40] = [
        0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f,
        0xb0, 0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
        0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
    ];

    /// Creates a hasher distributing flows over `n_rings` rings, with the
    /// default round-robin indirection table (`table[i] = i % n_rings`,
    /// how drivers initialize it).
    ///
    /// # Panics
    ///
    /// Panics if `n_rings` is zero or exceeds `u16::MAX`.
    pub fn new(n_rings: usize) -> Self {
        assert!(n_rings > 0, "RSS needs at least one ring");
        assert!(n_rings <= u16::MAX as usize, "too many rings");
        let mut table = [0u16; INDIRECTION_ENTRIES];
        for (i, e) in table.iter_mut().enumerate() {
            *e = (i % n_rings) as u16;
        }
        RssHasher {
            key: Self::DEFAULT_KEY,
            n_rings,
            table,
            lut: build_lut(&Self::DEFAULT_KEY),
        }
    }

    /// The current 40-byte RSS secret key.
    pub fn key(&self) -> &[u8; 40] {
        &self.key
    }

    /// Replaces the secret key and rebuilds the per-byte lookup tables
    /// (the one-time cost that buys table-XOR hashing on every packet).
    /// Existing flows will rehash — on hardware, drivers only do this
    /// before bringing the interface up.
    pub fn set_key(&mut self, key: [u8; 40]) {
        self.key = key;
        self.lut = build_lut(&key);
    }

    /// Number of rings the indirection table spreads over.
    pub fn n_rings(&self) -> usize {
        self.n_rings
    }

    /// The current indirection table.
    pub fn indirection(&self) -> &[u16; INDIRECTION_ENTRIES] {
        &self.table
    }

    /// Replaces the indirection table (the driver's rebalancing knob).
    /// Flows whose entry is unchanged keep their ring; only remapped
    /// entries move.
    ///
    /// # Panics
    ///
    /// Panics if any entry names a ring `>= n_rings`.
    pub fn set_indirection(&mut self, table: [u16; INDIRECTION_ENTRIES]) {
        for (i, &e) in table.iter().enumerate() {
            assert!(
                (e as usize) < self.n_rings,
                "indirection entry {i} names ring {e} of {}",
                self.n_rings
            );
        }
        self.table = table;
    }

    /// The Toeplitz hash of `input` (the flow tuple bytes), conformant to
    /// the Microsoft RSS verification suite (see the pinned vectors in the
    /// tests below).
    ///
    /// Flow tuples up to 12 bytes (every IPv4 case) take the per-byte
    /// lookup-table path: one XOR per input byte. Longer inputs fall back
    /// to [`RssHasher::toeplitz_serial`]; both produce identical hashes
    /// (pinned by the differential test below).
    pub fn toeplitz(&self, input: &[u8]) -> u32 {
        if input.len() > MAX_TUPLE_BYTES {
            return self.toeplitz_serial(input);
        }
        let mut result = 0u32;
        for (pos, &byte) in input.iter().enumerate() {
            result ^= self.lut[pos][byte as usize];
        }
        result
    }

    /// Bit-serial reference Toeplitz: the textbook sliding-window
    /// formulation. Kept as the specification the lookup-table fast path
    /// is tested against, and as the fallback for inputs longer than the
    /// precomputed tables.
    pub fn toeplitz_serial(&self, input: &[u8]) -> u32 {
        let mut result: u32 = 0;
        // The key is consumed as a sliding 32-bit window, one bit per input
        // bit.
        let mut window: u32 =
            u32::from_be_bytes([self.key[0], self.key[1], self.key[2], self.key[3]]);
        let mut next_key_bit = 32;
        for &byte in input {
            for bit in (0..8).rev() {
                if (byte >> bit) & 1 == 1 {
                    result ^= window;
                }
                // Slide the window by one bit.
                let next = if next_key_bit / 8 < self.key.len() {
                    (self.key[next_key_bit / 8] >> (7 - (next_key_bit % 8))) & 1
                } else {
                    0
                };
                window = (window << 1) | next as u32;
                next_key_bit += 1;
            }
        }
        result
    }

    /// The Toeplitz hash of a UDP/TCP 4-tuple, input ordered as the
    /// Microsoft specification requires: source address, destination
    /// address, source port, destination port, all big-endian.
    pub fn hash_flow(&self, src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16) -> u32 {
        let mut tuple = [0u8; 12];
        tuple[0..4].copy_from_slice(&src_ip.to_be_bytes());
        tuple[4..8].copy_from_slice(&dst_ip.to_be_bytes());
        tuple[8..10].copy_from_slice(&src_port.to_be_bytes());
        tuple[10..12].copy_from_slice(&dst_port.to_be_bytes());
        self.toeplitz(&tuple)
    }

    /// The ring a hash value steers to: the indirection table entry named
    /// by the low 7 bits (as the 82599 does; no modulo).
    pub fn ring_for_hash(&self, hash: u32) -> usize {
        self.table[(hash as usize) & (INDIRECTION_ENTRIES - 1)] as usize
    }

    /// Maps a UDP flow (source ip/port, destination ip/port) to a ring.
    pub fn ring_for_flow(&self, src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16) -> usize {
        self.ring_for_hash(self.hash_flow(src_ip, dst_ip, src_port, dst_port))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let h = RssHasher::new(4);
        let a = h.ring_for_flow(0x0a000001, 0x0a000002, 40000, 11211);
        let b = h.ring_for_flow(0x0a000001, 0x0a000002, 40000, 11211);
        assert_eq!(a, b);
    }

    /// The five IPv4 vectors of the Microsoft RSS verification suite, for
    /// both the 2-tuple (addresses only) and the 4-tuple (with ports)
    /// input. Input order is (src addr, dst addr, src port, dst port),
    /// big-endian, over the default key.
    #[test]
    fn microsoft_verification_suite() {
        // (src, src port, dst, dst port, 2-tuple hash, 4-tuple hash)
        type Vector = ([u8; 4], u16, [u8; 4], u16, u32, u32);
        #[rustfmt::skip]
        let cases: [Vector; 5] = [
            ([66, 9, 149, 187],   2794,  [161, 142, 100, 80], 1766,  0x323e_8fc2, 0x51cc_c178),
            ([199, 92, 111, 2],   14230, [65, 69, 140, 83],   4739,  0xd718_262a, 0xc626_b0ea),
            ([24, 19, 198, 95],   12898, [12, 22, 207, 184],  38024, 0xd2d0_a5de, 0x5c2b_394a),
            ([38, 27, 205, 30],   48228, [209, 142, 163, 6],  2217,  0x8298_9176, 0xafc7_327f),
            ([153, 39, 163, 191], 44251, [202, 188, 127, 2],  1303,  0x5d18_09c5, 0x10e8_28a2),
        ];
        let h = RssHasher::new(1);
        for (src, sp, dst, dp, h2, h4) in cases {
            let mut two = [0u8; 8];
            two[0..4].copy_from_slice(&src);
            two[4..8].copy_from_slice(&dst);
            assert_eq!(h.toeplitz(&two), h2, "2-tuple {src:?} -> {dst:?}");
            assert_eq!(
                h.hash_flow(u32::from_be_bytes(src), u32::from_be_bytes(dst), sp, dp),
                h4,
                "4-tuple {src:?}:{sp} -> {dst:?}:{dp}"
            );
        }
    }

    #[test]
    fn default_indirection_is_round_robin() {
        let h = RssHasher::new(6);
        for (i, &e) in h.indirection().iter().enumerate() {
            assert_eq!(e as usize, i % 6);
        }
    }

    #[test]
    fn ring_comes_from_low_seven_bits() {
        let mut h = RssHasher::new(4);
        // A table that maps entry 0x23 to ring 3 and everything else to 0.
        let mut table = [0u16; INDIRECTION_ENTRIES];
        table[0x23] = 3;
        h.set_indirection(table);
        assert_eq!(h.ring_for_hash(0x0000_0023), 3);
        assert_eq!(h.ring_for_hash(0xffff_ff23 & !0x80), 3, "high bits ignored");
        assert_eq!(h.ring_for_hash(0x0000_0024), 0);
    }

    #[test]
    fn spreads_across_rings() {
        let h = RssHasher::new(8);
        let mut counts = [0u32; 8];
        for port in 0..4000u16 {
            counts[h.ring_for_flow(0x0a000001, 0x0a000002, 30000 + port, 11211)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (300..700).contains(c),
                "ring {i} got {c} of 4000 flows — bad spread: {counts:?}"
            );
        }
    }

    #[test]
    fn lut_matches_bit_serial_reference() {
        // The lookup-table fast path must agree with the bit-serial
        // reference for every input length it covers, under the default
        // and a rotated key. Inputs sweep all byte positions and values.
        let mut h = RssHasher::new(4);
        let mut rotated = RssHasher::DEFAULT_KEY;
        rotated.rotate_left(7);
        for key in [RssHasher::DEFAULT_KEY, rotated] {
            h.set_key(key);
            let mut state = 0x1234_5678_9abc_def0u64;
            for len in 0..=MAX_TUPLE_BYTES {
                for _ in 0..32 {
                    let mut input = [0u8; MAX_TUPLE_BYTES];
                    for b in input.iter_mut() {
                        // xorshift64 keeps the sweep deterministic.
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        *b = state as u8;
                    }
                    assert_eq!(
                        h.toeplitz(&input[..len]),
                        h.toeplitz_serial(&input[..len]),
                        "len {len} input {input:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn long_inputs_use_serial_fallback() {
        // An IPv6 4-tuple (36 bytes) exceeds the table span; the public
        // entry point must still hash it (via the serial path).
        let h = RssHasher::new(2);
        let input = [0xabu8; 36];
        assert_eq!(h.toeplitz(&input), h.toeplitz_serial(&input));
    }

    #[test]
    fn set_key_rebuilds_tables() {
        let mut h = RssHasher::new(4);
        let before = h.hash_flow(0x0a000001, 0x0a000002, 40000, 11211);
        let mut key = RssHasher::DEFAULT_KEY;
        key[0] ^= 0xff;
        h.set_key(key);
        assert_eq!(h.key(), &key);
        let after = h.hash_flow(0x0a000001, 0x0a000002, 40000, 11211);
        assert_ne!(before, after, "new key must change hashes");
        h.set_key(RssHasher::DEFAULT_KEY);
        assert_eq!(
            h.hash_flow(0x0a000001, 0x0a000002, 40000, 11211),
            before,
            "restoring the key restores the hash"
        );
    }

    #[test]
    #[should_panic(expected = "names ring")]
    fn rejects_out_of_range_entries() {
        let mut h = RssHasher::new(2);
        let mut table = [0u16; INDIRECTION_ENTRIES];
        table[7] = 2;
        h.set_indirection(table);
    }

    #[test]
    #[should_panic(expected = "at least one ring")]
    fn zero_rings_rejected() {
        RssHasher::new(0);
    }
}
