//! Wire format: UDP-like header plus a key-value request codec.
//!
//! The stack is deliberately small (the paper's is "a lightweight
//! user-space TCP and UDP stack", §3.5) but real: headers and requests are
//! byte-serialized and parsed, not passed as structs, so the simulated
//! servers exercise an actual encode/decode path.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A UDP header (RFC 768 layout, 8 bytes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header + payload.
    pub length: u16,
    /// Checksum (optional in IPv4; the model computes a simple sum).
    pub checksum: u16,
}

impl UdpHeader {
    /// Encoded size in bytes.
    pub const SIZE: usize = 8;

    /// Serializes the header.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(self.length);
        buf.put_u16(self.checksum);
    }

    /// Parses a header; returns `None` if the buffer is too short.
    pub fn decode(buf: &mut Bytes) -> Option<UdpHeader> {
        if buf.len() < Self::SIZE {
            return None;
        }
        Some(UdpHeader {
            src_port: buf.get_u16(),
            dst_port: buf.get_u16(),
            length: buf.get_u16(),
            checksum: buf.get_u16(),
        })
    }
}

/// Key-value operation kinds used by the §5.3 workloads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum KvOp {
    /// Point read (Memcached/RocksDB GET).
    Get = 0,
    /// Write (Memcached SET).
    Set = 1,
    /// Range scan (RocksDB SCAN).
    Scan = 2,
}

impl KvOp {
    fn from_u8(v: u8) -> Option<KvOp> {
        match v {
            0 => Some(KvOp::Get),
            1 => Some(KvOp::Set),
            2 => Some(KvOp::Scan),
            _ => None,
        }
    }
}

/// A key-value request as carried in a UDP payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KvRequest {
    /// Client-assigned request id (echoed in the response).
    pub id: u64,
    /// Operation.
    pub op: KvOp,
    /// Key bytes.
    pub key: Bytes,
    /// Value bytes (SET only).
    pub value: Bytes,
}

impl KvRequest {
    /// Serializes a full datagram: UDP header + request body.
    pub fn encode_datagram(&self, src_port: u16, dst_port: u16) -> Bytes {
        let mut buf = BytesMut::with_capacity(UdpHeader::SIZE + self.body_len());
        self.encode_datagram_into(src_port, dst_port, &mut buf);
        buf.freeze()
    }

    /// [`Self::encode_datagram`] into a caller-owned buffer: clears `buf`
    /// and writes the datagram, so a pooled buffer is reused instead of
    /// allocating per packet (see [`crate::PacketPool`]).
    pub fn encode_datagram_into(&self, src_port: u16, dst_port: u16, buf: &mut BytesMut) {
        buf.clear();
        let hdr = UdpHeader {
            src_port,
            dst_port,
            length: (UdpHeader::SIZE + self.body_len()) as u16,
            checksum: 0,
        };
        hdr.encode(buf);
        buf.put_u64(self.id);
        buf.put_u8(self.op as u8);
        buf.put_u16(self.key.len() as u16);
        buf.put_slice(&self.key);
        buf.put_u16(self.value.len() as u16);
        buf.put_slice(&self.value);
    }

    fn body_len(&self) -> usize {
        8 + 1 + 2 + self.key.len() + 2 + self.value.len()
    }

    /// Parses a datagram produced by [`Self::encode_datagram`]. Returns the
    /// header and the request, or `None` on any truncation or bad opcode.
    pub fn decode_datagram(mut data: Bytes) -> Option<(UdpHeader, KvRequest)> {
        let hdr = UdpHeader::decode(&mut data)?;
        if data.len() < 13 {
            return None;
        }
        let id = data.get_u64();
        let op = KvOp::from_u8(data.get_u8())?;
        let klen = data.get_u16() as usize;
        if data.len() < klen + 2 {
            return None;
        }
        let key = data.copy_to_bytes(klen);
        let vlen = data.get_u16() as usize;
        if data.len() < vlen {
            return None;
        }
        let value = data.copy_to_bytes(vlen);
        Some((hdr, KvRequest { id, op, key, value }))
    }
}

/// A free list of datagram buffers.
///
/// `buffer()` hands out a cleared [`BytesMut`] (recycled when one is
/// available); after the consumer is done with the frozen [`Bytes`],
/// `reclaim()` recovers the backing storage if no other view holds it.
/// Steady-state encode/decode traffic then runs without per-packet
/// allocation.
#[derive(Default)]
pub struct PacketPool {
    free: Vec<BytesMut>,
    capacity: usize,
}

impl PacketPool {
    /// Default MTU-ish size for fresh buffers.
    const BUF_SIZE: usize = 256;

    /// Creates a pool that retains at most `capacity` idle buffers.
    pub fn new(capacity: usize) -> PacketPool {
        PacketPool {
            free: Vec::new(),
            capacity,
        }
    }

    /// Returns an empty buffer, reusing a reclaimed one when possible.
    pub fn buffer(&mut self) -> BytesMut {
        match self.free.pop() {
            Some(mut b) => {
                b.clear();
                b
            }
            None => BytesMut::with_capacity(Self::BUF_SIZE),
        }
    }

    /// Encodes `req` as a datagram using a pooled buffer.
    pub fn encode(&mut self, req: &KvRequest, src_port: u16, dst_port: u16) -> Bytes {
        let mut buf = self.buffer();
        req.encode_datagram_into(src_port, dst_port, &mut buf);
        buf.freeze()
    }

    /// Returns a spent datagram's storage to the pool. A no-op (the buffer
    /// is simply dropped) if other `Bytes` views are still alive or the
    /// pool is full.
    pub fn reclaim(&mut self, b: Bytes) {
        if self.free.len() >= self.capacity {
            return;
        }
        if let Ok(mut v) = b.try_unwrap() {
            v.clear();
            self.free.push(BytesMut::from(v));
        }
    }

    /// Number of idle buffers currently held.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let h = UdpHeader {
            src_port: 1234,
            dst_port: 11211,
            length: 42,
            checksum: 7,
        };
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), UdpHeader::SIZE);
        let mut bytes = buf.freeze();
        assert_eq!(UdpHeader::decode(&mut bytes), Some(h));
    }

    #[test]
    fn short_header_rejected() {
        let mut b = Bytes::from_static(&[1, 2, 3]);
        assert_eq!(UdpHeader::decode(&mut b), None);
    }

    #[test]
    fn request_round_trip() {
        let req = KvRequest {
            id: 99,
            op: KvOp::Set,
            key: Bytes::from_static(b"user:42"),
            value: Bytes::from_static(b"hello"),
        };
        let dgram = req.encode_datagram(40000, 11211);
        let (hdr, parsed) = KvRequest::decode_datagram(dgram.clone()).unwrap();
        assert_eq!(hdr.dst_port, 11211);
        assert_eq!(hdr.length as usize, dgram.len());
        assert_eq!(parsed, req);
    }

    #[test]
    fn scan_round_trip_empty_value() {
        let req = KvRequest {
            id: 1,
            op: KvOp::Scan,
            key: Bytes::from_static(b"range-start"),
            value: Bytes::new(),
        };
        let (_, parsed) = KvRequest::decode_datagram(req.encode_datagram(1, 2)).unwrap();
        assert_eq!(parsed.op, KvOp::Scan);
        assert!(parsed.value.is_empty());
    }

    #[test]
    fn pool_reuses_buffers() {
        let mut pool = PacketPool::new(4);
        let req = KvRequest {
            id: 7,
            op: KvOp::Get,
            key: Bytes::from_static(b"user:7"),
            value: Bytes::new(),
        };
        let d1 = pool.encode(&req, 9, 11211);
        assert_eq!(
            KvRequest::decode_datagram(d1.clone()).unwrap().1,
            req,
            "pooled encoding must match the allocating path"
        );
        // A second view keeps the storage alive: reclaim must not steal it.
        let alias = d1.clone();
        pool.reclaim(d1);
        assert_eq!(pool.idle(), 0);
        drop(alias);

        let d2 = pool.encode(&req, 9, 11211);
        pool.reclaim(d2);
        assert_eq!(pool.idle(), 1);
        // The recycled buffer round-trips identically.
        let d3 = pool.encode(&req, 9, 11211);
        assert_eq!(pool.idle(), 0);
        assert_eq!(KvRequest::decode_datagram(d3).unwrap().1, req);
    }

    #[test]
    fn encode_into_matches_encode() {
        let req = KvRequest {
            id: 3,
            op: KvOp::Set,
            key: Bytes::from_static(b"k"),
            value: Bytes::from_static(b"v"),
        };
        let mut buf = BytesMut::new();
        req.encode_datagram_into(1, 2, &mut buf);
        assert_eq!(&buf[..], &req.encode_datagram(1, 2)[..]);
    }

    #[test]
    fn truncated_and_garbage_rejected() {
        let req = KvRequest {
            id: 5,
            op: KvOp::Get,
            key: Bytes::from_static(b"k"),
            value: Bytes::new(),
        };
        let dgram = req.encode_datagram(1, 2);
        for cut in [0, 9, 12, dgram.len() - 1] {
            let sliced = dgram.slice(0..cut);
            assert!(
                KvRequest::decode_datagram(sliced).is_none(),
                "cut at {cut} should fail"
            );
        }
        // Bad opcode.
        let mut raw = BytesMut::from(&dgram[..]);
        raw[UdpHeader::SIZE + 8] = 99;
        assert!(KvRequest::decode_datagram(raw.freeze()).is_none());
    }
}
