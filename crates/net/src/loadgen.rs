//! Open-loop Poisson load generator (§5.3's client machine).
//!
//! An open-loop generator emits requests at the offered rate regardless of
//! completions — the correct methodology for tail-latency studies (a
//! closed-loop client self-throttles and hides queueing collapse). The
//! generator is an iterator of `(arrival_time, service_time, class)`
//! tuples; harnesses turn them into simulation events.

use skyloft_sim::rng::PoissonArrivals;
use skyloft_sim::{Distribution, Nanos, Rng};

use crate::nic::LossModel;

/// Client-side network behavior for a load-generation run: what the wire
/// does to request datagrams, and when the client gives up on a response.
///
/// Timed-out requests must be *recorded at the timeout value* in the
/// latency histograms, not dropped from the denominator — forgetting them
/// understates the tail exactly when the system is misbehaving.
#[derive(Clone, Debug)]
pub struct NetProfile {
    /// Drop/duplication model applied per request.
    pub loss: LossModel,
    /// Client retransmission/abandon timeout: a dropped request surfaces
    /// as a response-time sample of exactly this value.
    pub timeout: Nanos,
}

impl NetProfile {
    /// A lossy profile with the given seed, probabilities and timeout.
    pub fn lossy(seed: u64, drop_p: f64, dup_p: f64, timeout: Nanos) -> Self {
        NetProfile {
            loss: LossModel::new(seed, drop_p, dup_p),
            timeout,
        }
    }
}

/// A generated request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenRequest {
    /// Absolute arrival time.
    pub at: Nanos,
    /// Service demand.
    pub service: Nanos,
    /// Workload class (0 = short/GET, 1 = long/SCAN or SET).
    pub class: u8,
}

/// Open-loop Poisson generator over a service-time distribution.
///
/// A zero (or non-finite) rate is a legal degenerate point — sweeps
/// routinely hit it when a co-located tenant's share of the total load
/// rounds to nothing — and yields an *empty* generator rather than a
/// panic: `next` returns `None` immediately and [`OpenLoop::schedule`]
/// returns an empty vector. Callers must therefore not assume a schedule
/// is non-empty (the old `reqs.last().unwrap()` idiom).
#[derive(Clone, Debug)]
pub struct OpenLoop {
    /// `None` for a degenerate (zero-rate) generator that never fires.
    arrivals: Option<PoissonArrivals>,
    service: Distribution,
    /// Classifies a sampled service time (e.g. long vs short).
    class_threshold: Nanos,
    rng: Rng,
    now: Nanos,
}

impl OpenLoop {
    /// Creates a generator at `rate_rps` with the given service
    /// distribution; samples at or above `class_threshold` are class 1.
    /// A rate that is zero, negative, or non-finite produces an empty
    /// generator.
    pub fn new(rate_rps: f64, service: Distribution, class_threshold: Nanos, seed: u64) -> Self {
        let arrivals =
            (rate_rps.is_finite() && rate_rps > 0.0).then(|| PoissonArrivals::new(rate_rps));
        OpenLoop {
            arrivals,
            service,
            class_threshold,
            rng: Rng::seed_from_u64(seed),
            now: Nanos::ZERO,
        }
    }

    /// The mean service time of the configured distribution.
    pub fn mean_service(&self) -> f64 {
        self.service.mean()
    }

    /// Collects the full request schedule for a run of `duration`:
    /// every arrival at or before `duration`, in order. Empty when the
    /// rate is degenerate or the duration is zero — never panics.
    pub fn schedule(self, duration: Nanos) -> Vec<GenRequest> {
        let mut reqs = Vec::new();
        if duration == Nanos::ZERO {
            return reqs;
        }
        for r in self {
            if r.at > duration {
                break;
            }
            reqs.push(r);
        }
        reqs
    }
}

impl Iterator for OpenLoop {
    type Item = GenRequest;

    fn next(&mut self) -> Option<GenRequest> {
        self.now += self.arrivals.as_ref()?.next_gap(&mut self.rng);
        let service = self.service.sample(&mut self.rng);
        let class = u8::from(service >= self.class_threshold);
        Some(GenRequest {
            at: self.now,
            service,
            class,
        })
    }
}

/// The retrying client's knobs: when to give up on one attempt, how many
/// attempts to make, how to space them, and how many retries the client
/// population may spend in aggregate.
#[cfg(feature = "overload")]
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Per-attempt timeout: an attempt with no response by then is
    /// presumed lost and eligible for retry.
    pub timeout: Nanos,
    /// Total attempts per request (1 = no retries).
    pub max_attempts: u8,
    /// Retry budget as milli-tokens accrued per original request: 100
    /// means the client may retry at most ~10% of offered load.
    pub budget_permille: u32,
    /// Token-bucket burst cap, in whole retries.
    pub budget_burst: u32,
    /// Backoff floor (first retry waits at least this long past the
    /// timeout).
    pub backoff_base: Nanos,
    /// Backoff ceiling.
    pub backoff_cap: Nanos,
}

#[cfg(feature = "overload")]
impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: Nanos::from_ms(1),
            max_attempts: 3,
            budget_permille: 100,
            budget_burst: 16,
            backoff_base: Nanos::from_us(100),
            backoff_cap: Nanos::from_ms(5),
        }
    }
}

/// Global retry *budget*: a token bucket that accrues a fixed fraction of
/// a token per original request and charges one whole token per retry.
/// Caps aggregate retry volume at ~`budget_permille/1000` of offered load
/// no matter how adversarial the timeout pattern — the defense against
/// retry storms (retries amplifying the very overload that caused them).
///
/// Integer milli-token arithmetic, so the bound is exact and
/// property-testable: `spent() * 1000 ≤ requests × budget_permille +
/// burst × 1000` always.
#[cfg(feature = "overload")]
#[derive(Clone, Debug)]
pub struct RetryBudget {
    fill_millitokens: u64,
    burst_millitokens: u64,
    tokens: u64,
    spent: u64,
}

#[cfg(feature = "overload")]
impl RetryBudget {
    /// A bucket accruing `permille/1000` tokens per request, holding at
    /// most `burst` whole tokens.
    pub fn new(permille: u32, burst: u32) -> Self {
        RetryBudget {
            fill_millitokens: permille as u64,
            burst_millitokens: burst as u64 * 1000,
            tokens: 0,
            spent: 0,
        }
    }

    /// Accrues budget for one original (non-retry) request.
    pub fn on_request(&mut self) {
        self.tokens = (self.tokens + self.fill_millitokens).min(self.burst_millitokens);
    }

    /// Attempts to spend one retry token; `false` means the budget is
    /// exhausted and the client must give up instead of retrying.
    pub fn try_spend(&mut self) -> bool {
        if self.tokens >= 1000 {
            self.tokens -= 1000;
            self.spent += 1;
            true
        } else {
            false
        }
    }

    /// Retries spent so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }
}

/// Per-class retry budgets: one [`RetryBudget`] token bucket per SLO
/// class, so a batch tenant's timeout storm cannot drain the retry
/// capacity a latency-critical tenant was provisioned (the multi-tenant
/// generalization of the single global bucket).
///
/// Each class accrues budget only from *its own* original requests, at
/// its own permille rate — the `retry_frac` of the application's
/// registered SLO class (`SloClass` in `skyloft-core`). Classes left at
/// the default inherit the policy-wide `budget_permille`, so a
/// single-class run through this type is behaviorally identical to one
/// `RetryBudget`.
#[cfg(feature = "overload")]
#[derive(Clone, Debug)]
pub struct ClassRetryBudgets {
    buckets: [RetryBudget; crate::overload::MAX_CLASSES],
}

#[cfg(feature = "overload")]
impl ClassRetryBudgets {
    /// Buckets all filling at `permille` with burst `burst` (the
    /// single-class baseline); scale individual classes afterwards with
    /// [`ClassRetryBudgets::set_class`].
    pub fn new(permille: u32, burst: u32) -> Self {
        ClassRetryBudgets {
            buckets: core::array::from_fn(|_| RetryBudget::new(permille, burst)),
        }
    }

    /// Re-provisions one class's bucket to fill at `permille` (its SLO
    /// class's `retry_frac`). Resets that bucket's accrual and spend.
    pub fn set_class(&mut self, class: u8, permille: u32, burst: u32) {
        self.buckets[crate::overload::class_slot(class)] = RetryBudget::new(permille, burst);
    }

    /// Accrues budget for one original (non-retry) request of `class`.
    pub fn on_request(&mut self, class: u8) {
        self.buckets[crate::overload::class_slot(class)].on_request();
    }

    /// Attempts to spend one retry token from `class`'s own bucket.
    pub fn try_spend(&mut self, class: u8) -> bool {
        self.buckets[crate::overload::class_slot(class)].try_spend()
    }

    /// Retries spent by `class` so far.
    pub fn spent(&self, class: u8) -> u64 {
        self.buckets[crate::overload::class_slot(class)].spent()
    }

    /// Retries spent across all classes.
    pub fn spent_total(&self) -> u64 {
        self.buckets.iter().map(|b| b.spent()).sum()
    }
}

/// Capped exponential backoff with decorrelated jitter (the AWS
/// architecture-blog variant): each delay is drawn uniformly from
/// `[base, prev × 3)` and capped, which decorrelates colliding clients
/// faster than plain `base × 2^n` jitter while keeping the cap.
#[cfg(feature = "overload")]
#[derive(Clone, Debug)]
pub struct Backoff {
    base: Nanos,
    cap: Nanos,
    prev: Nanos,
    rng: Rng,
}

#[cfg(feature = "overload")]
impl Backoff {
    /// A backoff sequence drawing from `seed`, bounded to `[base, cap]`.
    pub fn new(base: Nanos, cap: Nanos, seed: u64) -> Self {
        assert!(base.0 > 0, "backoff base must be positive");
        assert!(cap >= base, "backoff cap below base");
        Backoff {
            base,
            cap,
            prev: base,
            rng: Rng::seed_from_u64(seed ^ 0xBAC0_FF01_BAC0_FF01),
        }
    }

    /// Draws the next delay: `min(cap, uniform[base, prev × 3))`.
    pub fn next_delay(&mut self) -> Nanos {
        let hi = self.prev.0.saturating_mul(3).max(self.base.0 + 1);
        let d = self.base.0 + self.rng.next_below(hi - self.base.0);
        let d = d.min(self.cap.0);
        self.prev = Nanos(d);
        Nanos(d)
    }

    /// Resets the sequence to its floor (a fresh request's first retry).
    pub fn reset(&mut self) {
        self.prev = self.base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_respected() {
        let g = OpenLoop::new(
            100_000.0,
            Distribution::Constant(Nanos(1_000)),
            Nanos(10_000),
            7,
        );
        let reqs: Vec<GenRequest> = g.take(10_000).collect();
        let span = reqs.last().unwrap().at.as_secs();
        let rate = 10_000.0 / span;
        assert!((rate - 100_000.0).abs() / 100_000.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn zero_rate_yields_empty_schedule() {
        // Regression: a zero-rate sweep point (e.g. a co-located tenant
        // allotted none of the total load) used to panic inside
        // `PoissonArrivals::new`; and callers then unwrapped
        // `reqs.last()`. Both degenerate axes now produce an empty
        // schedule.
        let g = OpenLoop::new(0.0, Distribution::Constant(Nanos(1_000)), Nanos(10_000), 7);
        assert_eq!(g.clone().next(), None);
        assert!(g.schedule(Nanos::from_ms(100)).is_empty());

        // Non-finite rates are equally degenerate, not panics.
        let g = OpenLoop::new(
            f64::NAN,
            Distribution::Constant(Nanos(1_000)),
            Nanos(10_000),
            7,
        );
        assert!(g.schedule(Nanos::from_ms(1)).is_empty());

        // Zero duration: a real rate, but no room for any arrival.
        let g = OpenLoop::new(
            100_000.0,
            Distribution::Constant(Nanos(1_000)),
            Nanos(10_000),
            7,
        );
        assert!(g.schedule(Nanos::ZERO).is_empty());
    }

    #[test]
    fn schedule_is_bounded_and_ordered() {
        let g = OpenLoop::new(
            100_000.0,
            Distribution::Constant(Nanos(1_000)),
            Nanos(10_000),
            7,
        );
        let dur = Nanos::from_ms(10);
        let reqs = g.schedule(dur);
        assert!(!reqs.is_empty());
        let mut prev = Nanos::ZERO;
        for r in &reqs {
            assert!(r.at >= prev && r.at <= dur);
            prev = r.at;
        }
        // ~100k rps over 10 ms ≈ 1000 requests.
        assert!((800..1200).contains(&reqs.len()), "{}", reqs.len());
    }

    #[test]
    fn arrivals_are_monotone() {
        let g = OpenLoop::new(1_000_000.0, Distribution::Constant(Nanos(100)), Nanos(1), 3);
        let mut prev = Nanos::ZERO;
        for r in g.take(1000) {
            assert!(r.at >= prev);
            prev = r.at;
        }
    }

    #[test]
    fn classes_follow_threshold() {
        let g = OpenLoop::new(
            10_000.0,
            Distribution::Bimodal {
                p_long: 0.5,
                short: Nanos(950),
                long: Nanos(591_000),
            },
            Nanos(10_000),
            11,
        );
        let reqs: Vec<GenRequest> = g.take(10_000).collect();
        let longs = reqs.iter().filter(|r| r.class == 1).count();
        assert!(
            (4_000..6_000).contains(&longs),
            "long fraction off: {longs}/10000"
        );
        for r in &reqs {
            if r.class == 1 {
                assert_eq!(r.service, Nanos(591_000));
            } else {
                assert_eq!(r.service, Nanos(950));
            }
        }
    }

    #[cfg(feature = "overload")]
    #[test]
    fn retry_budget_caps_aggregate_retries() {
        // 10% budget, burst 2: 1000 requests accrue ≤ 100 + 2 tokens.
        let mut b = RetryBudget::new(100, 2);
        let mut granted = 0u64;
        for _ in 0..1000 {
            b.on_request();
            // Adversarial client: tries to retry after every request.
            if b.try_spend() {
                granted += 1;
            }
        }
        assert_eq!(granted, b.spent());
        assert!(granted <= 102, "budget leaked: {granted} retries granted");
        assert!(granted >= 90, "budget too stingy: {granted}");
    }

    #[cfg(feature = "overload")]
    #[test]
    fn retry_budget_burst_bounds_idle_accrual() {
        let mut b = RetryBudget::new(100, 3);
        for _ in 0..10_000 {
            b.on_request();
        }
        // However long the quiet spell, at most `burst` retries fire
        // back-to-back.
        let mut burst = 0;
        while b.try_spend() {
            burst += 1;
        }
        assert_eq!(burst, 3);
    }

    #[cfg(feature = "overload")]
    #[test]
    fn class_budgets_are_isolated_and_scaled() {
        let mut b = ClassRetryBudgets::new(100, 2);
        // Class 1 is a batch tenant provisioned at 20‰ with no burst
        // headroom beyond one token.
        b.set_class(1, 20, 1);
        let mut granted = [0u64; 2];
        for _ in 0..1000 {
            for class in 0..2u8 {
                b.on_request(class);
                if b.try_spend(class) {
                    granted[usize::from(class)] += 1;
                }
            }
        }
        // Class 0 keeps its full 10% budget even while class 1 hammers
        // its own bucket dry; class 1 is capped by its 2% fill.
        assert!(granted[0] >= 90 && granted[0] <= 102, "{granted:?}");
        assert!(granted[1] <= 21, "{granted:?}");
        assert_eq!(b.spent(0), granted[0]);
        assert_eq!(b.spent(1), granted[1]);
        assert_eq!(b.spent_total(), granted[0] + granted[1]);
    }

    #[cfg(feature = "overload")]
    #[test]
    fn class_budgets_share_slot_for_out_of_range_classes() {
        use crate::overload::{class_slot, MAX_CLASSES};
        let mut b = ClassRetryBudgets::new(1000, 4);
        // Classes beyond the table clamp to the last slot and therefore
        // share one bucket.
        assert_eq!(class_slot(9), MAX_CLASSES - 1);
        b.on_request(9);
        assert!(b.try_spend(200));
        assert_eq!(b.spent(MAX_CLASSES as u8 - 1), 1);
    }

    #[cfg(feature = "overload")]
    #[test]
    fn backoff_stays_within_bounds_and_grows() {
        let base = Nanos::from_us(100);
        let cap = Nanos::from_ms(5);
        let mut bo = Backoff::new(base, cap, 42);
        let mut prev_max = Nanos::ZERO;
        for _ in 0..50 {
            let d = bo.next_delay();
            assert!(
                d >= base && d <= cap,
                "delay {d:?} out of [{base:?}, {cap:?}]"
            );
            prev_max = prev_max.max(d);
        }
        // With 50 draws the sequence has explored well past the floor.
        assert!(prev_max > base * 2, "backoff never grew: max {prev_max:?}");
        bo.reset();
        assert!(bo.next_delay() < base * 3 + Nanos(1), "reset did not floor");
    }

    #[cfg(feature = "overload")]
    #[test]
    fn backoff_is_deterministic_per_seed() {
        let draw = |seed| {
            let mut bo = Backoff::new(Nanos(500), Nanos::from_us(50), seed);
            (0..20).map(|_| bo.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<GenRequest> = OpenLoop::new(
            50_000.0,
            Distribution::Exponential(Nanos(2_000)),
            Nanos(5_000),
            42,
        )
        .take(100)
        .collect();
        let b: Vec<GenRequest> = OpenLoop::new(
            50_000.0,
            Distribution::Exponential(Nanos(2_000)),
            Nanos(5_000),
            42,
        )
        .take(100)
        .collect();
        assert_eq!(a, b);
    }
}
