//! Open-loop Poisson load generator (§5.3's client machine).
//!
//! An open-loop generator emits requests at the offered rate regardless of
//! completions — the correct methodology for tail-latency studies (a
//! closed-loop client self-throttles and hides queueing collapse). The
//! generator is an iterator of `(arrival_time, service_time, class)`
//! tuples; harnesses turn them into simulation events.

use skyloft_sim::rng::PoissonArrivals;
use skyloft_sim::{Distribution, Nanos, Rng};

use crate::nic::LossModel;

/// Client-side network behavior for a load-generation run: what the wire
/// does to request datagrams, and when the client gives up on a response.
///
/// Timed-out requests must be *recorded at the timeout value* in the
/// latency histograms, not dropped from the denominator — forgetting them
/// understates the tail exactly when the system is misbehaving.
#[derive(Clone, Debug)]
pub struct NetProfile {
    /// Drop/duplication model applied per request.
    pub loss: LossModel,
    /// Client retransmission/abandon timeout: a dropped request surfaces
    /// as a response-time sample of exactly this value.
    pub timeout: Nanos,
}

impl NetProfile {
    /// A lossy profile with the given seed, probabilities and timeout.
    pub fn lossy(seed: u64, drop_p: f64, dup_p: f64, timeout: Nanos) -> Self {
        NetProfile {
            loss: LossModel::new(seed, drop_p, dup_p),
            timeout,
        }
    }
}

/// A generated request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenRequest {
    /// Absolute arrival time.
    pub at: Nanos,
    /// Service demand.
    pub service: Nanos,
    /// Workload class (0 = short/GET, 1 = long/SCAN or SET).
    pub class: u8,
}

/// Open-loop Poisson generator over a service-time distribution.
#[derive(Clone, Debug)]
pub struct OpenLoop {
    arrivals: PoissonArrivals,
    service: Distribution,
    /// Classifies a sampled service time (e.g. long vs short).
    class_threshold: Nanos,
    rng: Rng,
    now: Nanos,
}

impl OpenLoop {
    /// Creates a generator at `rate_rps` with the given service
    /// distribution; samples at or above `class_threshold` are class 1.
    pub fn new(rate_rps: f64, service: Distribution, class_threshold: Nanos, seed: u64) -> Self {
        OpenLoop {
            arrivals: PoissonArrivals::new(rate_rps),
            service,
            class_threshold,
            rng: Rng::seed_from_u64(seed),
            now: Nanos::ZERO,
        }
    }

    /// The mean service time of the configured distribution.
    pub fn mean_service(&self) -> f64 {
        self.service.mean()
    }
}

impl Iterator for OpenLoop {
    type Item = GenRequest;

    fn next(&mut self) -> Option<GenRequest> {
        self.now += self.arrivals.next_gap(&mut self.rng);
        let service = self.service.sample(&mut self.rng);
        let class = u8::from(service >= self.class_threshold);
        Some(GenRequest {
            at: self.now,
            service,
            class,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_respected() {
        let g = OpenLoop::new(
            100_000.0,
            Distribution::Constant(Nanos(1_000)),
            Nanos(10_000),
            7,
        );
        let reqs: Vec<GenRequest> = g.take(10_000).collect();
        let span = reqs.last().unwrap().at.as_secs();
        let rate = 10_000.0 / span;
        assert!((rate - 100_000.0).abs() / 100_000.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn arrivals_are_monotone() {
        let g = OpenLoop::new(1_000_000.0, Distribution::Constant(Nanos(100)), Nanos(1), 3);
        let mut prev = Nanos::ZERO;
        for r in g.take(1000) {
            assert!(r.at >= prev);
            prev = r.at;
        }
    }

    #[test]
    fn classes_follow_threshold() {
        let g = OpenLoop::new(
            10_000.0,
            Distribution::Bimodal {
                p_long: 0.5,
                short: Nanos(950),
                long: Nanos(591_000),
            },
            Nanos(10_000),
            11,
        );
        let reqs: Vec<GenRequest> = g.take(10_000).collect();
        let longs = reqs.iter().filter(|r| r.class == 1).count();
        assert!(
            (4_000..6_000).contains(&longs),
            "long fraction off: {longs}/10000"
        );
        for r in &reqs {
            if r.class == 1 {
                assert_eq!(r.service, Nanos(591_000));
            } else {
                assert_eq!(r.service, Nanos(950));
            }
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<GenRequest> = OpenLoop::new(
            50_000.0,
            Distribution::Exponential(Nanos(2_000)),
            Nanos(5_000),
            42,
        )
        .take(100)
        .collect();
        let b: Vec<GenRequest> = OpenLoop::new(
            50_000.0,
            Distribution::Exponential(Nanos(2_000)),
            Nanos(5_000),
            42,
        )
        .take(100)
        .collect();
        assert_eq!(a, b);
    }
}
