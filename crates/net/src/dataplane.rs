//! The §3.5 multi-queue NIC data plane.
//!
//! Skyloft's evaluation runs memcached-style traffic through DPDK: the
//! NIC RSS-hashes each arriving datagram through the indirection table
//! onto one of N bounded RX descriptor rings (one per worker core), and a
//! dedicated polling core drains the rings in bursts, handing each packet
//! to its worker. Two properties of that pipeline dominate behaviour near
//! saturation, and both exist only because the rings are *bounded*:
//!
//! * **Tail drop.** A full ring rejects the datagram — the client learns
//!   via its timeout. Past saturation the server's queues therefore stay
//!   bounded and p99 is capped near the client timeout, instead of
//!   queueing delay growing without limit for as long as the overload
//!   lasts.
//! * **Backpressure.** The polling core only moves a packet to a worker
//!   that has room in its bounded in-service window; otherwise the packet
//!   waits in the ring and, under sustained overload, the ring fills and
//!   drops. Work the server cannot absorb is shed at the NIC, where it is
//!   cheap, not accumulated in scheduler queues, where it is not.
//!
//! [`MultiQueueNic`] is the host-side state machine for all of that:
//! rings, indirection table, per-ring drop/occupancy accounting, and the
//! polling core's serialization clock ([`MultiQueueNic::poller_admit`])
//! charging [`crate::nic::RX_POLL_COST`] per packet. It is driven from
//! the simulation by the arrival installer in `skyloft-apps` (events in,
//! spawned tasks out); this module itself is pure data structure, so it
//! is directly property-testable.

use skyloft_sim::Nanos;

use crate::nic::RX_POLL_COST;
#[cfg(feature = "overload")]
use crate::overload::{Codel, CodelConfig};
use crate::ring::Ring;
use crate::rss::RssHasher;

/// Configuration of the NIC model and its polling core.
#[derive(Clone, Debug)]
pub struct NicConfig {
    /// RX rings (one per worker core the NIC steers to).
    pub n_rings: usize,
    /// Descriptor slots per ring; a full ring tail-drops.
    pub ring_capacity: usize,
    /// Max packets the polling core takes from one ring per poll visit
    /// (DPDK `rx_burst` size).
    pub poll_batch: usize,
    /// Period of the polling core's visit to the rings. Real DPDK
    /// busy-polls; the interval is the simulation's discretization of that
    /// loop and bounds the extra latency an uncontended packet sees.
    pub poll_interval: Nanos,
    /// Per-worker in-service window: the poller hands a worker at most
    /// this many not-yet-finished requests before leaving further packets
    /// in the ring (backpressure; without it overload would simply move
    /// the unbounded queue from the NIC into the scheduler).
    pub worker_depth: usize,
    /// Client abandon timeout for a tail-dropped datagram when no
    /// explicit [`crate::loadgen::NetProfile`] provides one: the request
    /// enters the latency histograms at this value.
    pub client_timeout: Nanos,
}

impl NicConfig {
    /// The default §3.5 configuration for `n` worker cores: 256-slot
    /// rings, 32-packet bursts, 500 ns poll discretization, a 32-request
    /// in-service window, and a 10 ms client timeout.
    pub fn for_workers(n: usize) -> Self {
        NicConfig {
            n_rings: n,
            ring_capacity: 256,
            poll_batch: 32,
            poll_interval: Nanos(500),
            worker_depth: 32,
            client_timeout: Nanos::from_ms(10),
        }
    }
}

/// A multi-queue NIC: RSS steering into bounded per-core RX rings, plus
/// the polling core's serialization clock.
#[derive(Clone, Debug)]
pub struct MultiQueueNic<T> {
    cfg: NicConfig,
    hasher: RssHasher,
    /// Ring entries carry their enqueue timestamp so AQM can measure the
    /// sojourn time at dequeue.
    rings: Vec<Ring<(Nanos, T)>>,
    /// Datagrams accepted into a ring, total.
    pub enqueued: u64,
    /// Datagrams drained by the polling core, total.
    pub polled: u64,
    /// Per-ring packets shed by the CoDel drop law (0 when AQM is off).
    aqm_dropped: Vec<u64>,
    /// Per-ring CoDel state when AQM is enabled; `None` keeps the PR 5
    /// pure tail-drop behaviour bit-for-bit.
    #[cfg(feature = "overload")]
    codel: Option<Vec<Codel>>,
    /// The polling core is busy with earlier packets until this instant.
    poller_free_at: Nanos,
    /// Per-ring adaptive estimate of the per-packet poll cost, seeded at
    /// [`RX_POLL_COST`] and folded toward the observed handoff cost by an
    /// integer EWMA (`est += (sample - est) >> 3`). Stays exactly at the
    /// seed while observed bursts cost the nominal amount, so runs without
    /// poller perturbation reproduce the fixed-cost clock bit-for-bit.
    poll_cost_est: Vec<Nanos>,
}

impl<T> MultiQueueNic<T> {
    /// Builds the NIC from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no rings, zero-capacity
    /// rings, empty bursts, or a zero in-service window).
    pub fn new(cfg: NicConfig) -> Self {
        assert!(cfg.poll_batch > 0, "poll batch must be positive");
        assert!(cfg.worker_depth > 0, "worker depth must be positive");
        MultiQueueNic {
            hasher: RssHasher::new(cfg.n_rings),
            rings: (0..cfg.n_rings)
                .map(|_| Ring::new(cfg.ring_capacity))
                .collect(),
            enqueued: 0,
            polled: 0,
            aqm_dropped: vec![0; cfg.n_rings],
            #[cfg(feature = "overload")]
            codel: None,
            poller_free_at: Nanos::ZERO,
            poll_cost_est: vec![RX_POLL_COST; cfg.n_rings],
            cfg,
        }
    }

    /// Enables the CoDel drop law on every ring (one independent
    /// controller per ring, as real per-queue AQM runs). Until this is
    /// called the NIC tail-drops only, exactly as PR 5 shipped it.
    #[cfg(feature = "overload")]
    pub fn set_codel(&mut self, law: CodelConfig) {
        self.codel = Some((0..self.rings.len()).map(|_| Codel::new(law)).collect());
    }

    /// The configuration this NIC was built with.
    pub fn cfg(&self) -> &NicConfig {
        &self.cfg
    }

    /// Number of RX rings.
    pub fn n_rings(&self) -> usize {
        self.rings.len()
    }

    /// The RSS hasher (Toeplitz + indirection table).
    pub fn hasher(&self) -> &RssHasher {
        &self.hasher
    }

    /// Mutable access to the hasher, for indirection-table rewrites.
    pub fn hasher_mut(&mut self) -> &mut RssHasher {
        &mut self.hasher
    }

    /// Steers a datagram of flow `(src_ip, dst_ip, src_port, dst_port)`
    /// into its RSS ring, stamped with its arrival instant `now` (the
    /// sojourn clock AQM reads at dequeue). Returns `Ok(ring)` when
    /// queued; on a full ring the datagram is tail-dropped (counted on
    /// the ring) and the target ring comes back as `Err(ring)`.
    pub fn enqueue_flow(
        &mut self,
        now: Nanos,
        src_ip: u32,
        dst_ip: u32,
        src_port: u16,
        dst_port: u16,
        item: T,
    ) -> Result<usize, usize> {
        let ring = self
            .hasher
            .ring_for_flow(src_ip, dst_ip, src_port, dst_port);
        if self.rings[ring].push((now, item)) {
            self.enqueued += 1;
            Ok(ring)
        } else {
            Err(ring)
        }
    }

    /// Steers a datagram whose Toeplitz hash is already known. Steering,
    /// stamping, and drop accounting are identical to
    /// [`MultiQueueNic::enqueue_flow`]; only the hash computation is
    /// skipped. This is the steady-state path for callers that cache the
    /// per-flow hash (e.g. the load generator, whose flows are fixed for
    /// a connection's lifetime), so the 12-byte Toeplitz walk runs once
    /// per flow instead of once per packet.
    pub fn enqueue_hashed(&mut self, now: Nanos, hash: u32, item: T) -> Result<usize, usize> {
        let ring = self.hasher.ring_for_hash(hash);
        if self.rings[ring].push((now, item)) {
            self.enqueued += 1;
            Ok(ring)
        } else {
            Err(ring)
        }
    }

    /// Enqueues a burst of same-flow datagrams arriving together at
    /// `now`: one RSS lookup steers the whole burst, every packet is
    /// stamped with the shared arrival instant (the sojourn clock CoDel
    /// reads at dequeue), and [`Ring::enqueue_burst`] moves them with one
    /// capacity check. Acceptance and tail-drop decisions are exactly
    /// those of packet-at-a-time [`MultiQueueNic::enqueue_hashed`] calls.
    /// Returns `(ring, accepted)`; `burst_len - accepted` tail-dropped.
    pub fn enqueue_hashed_burst<I>(&mut self, now: Nanos, hash: u32, items: I) -> (usize, usize)
    where
        I: IntoIterator<Item = T>,
    {
        let ring = self.hasher.ring_for_hash(hash);
        let accepted = self.rings[ring].enqueue_burst(items.into_iter().map(|p| (now, p)));
        self.enqueued += accepted as u64;
        (ring, accepted)
    }

    /// Asks the ring's CoDel controller about a packet dequeued at `now`
    /// that was enqueued at `ts`; `true` means shed it. Always `false`
    /// when AQM is off (or compiled out).
    fn aqm_verdict(&mut self, ring: usize, now: Nanos, ts: Nanos) -> bool {
        #[cfg(feature = "overload")]
        if let Some(codel) = &mut self.codel {
            return codel[ring].on_packet(now, now.saturating_sub(ts));
        }
        let _ = (ring, now, ts);
        false
    }

    /// Drains up to `max` packets from `ring` at instant `now`, FIFO.
    /// Kept packets append to `out` as `(enqueue_time, packet)`; packets
    /// the CoDel drop law sheds append to `shed` instead (and count in
    /// [`MultiQueueNic::aqm_drops`], not toward `max` — shedding is how
    /// the poller catches up, so it must not eat the burst). Returns how
    /// many were kept.
    pub fn drain(
        &mut self,
        now: Nanos,
        ring: usize,
        max: usize,
        out: &mut Vec<(Nanos, T)>,
        shed: &mut Vec<T>,
    ) -> usize {
        let mut taken = 0;
        while taken < max {
            match self.rings[ring].pop() {
                Some((ts, p)) => {
                    if self.aqm_verdict(ring, now, ts) {
                        self.aqm_dropped[ring] += 1;
                        shed.push(p);
                    } else {
                        out.push((ts, p));
                        taken += 1;
                    }
                }
                None => break,
            }
        }
        self.polled += taken as u64;
        taken
    }

    /// Sojourn time of the oldest packet waiting in `ring` (`None` when
    /// empty) — the brownout controller's congestion signal.
    pub fn oldest_sojourn(&self, ring: usize, now: Nanos) -> Option<Nanos> {
        self.rings[ring]
            .front()
            .map(|&(ts, _)| now.saturating_sub(ts))
    }

    /// Advances the polling core's serialization clock over a burst of
    /// `n` packets starting no earlier than `now`: each packet costs
    /// [`RX_POLL_COST`], and the burst is handed to the worker when the
    /// last packet of the burst has been processed. Returns that handoff
    /// instant. The clock is what bounds the poller at `1/RX_POLL_COST`
    /// packets per second machine-wide.
    pub fn poller_admit(&mut self, now: Nanos, n: usize) -> Nanos {
        let start = now.max(self.poller_free_at);
        let done = start + RX_POLL_COST * n as u64;
        self.poller_free_at = done;
        done
    }

    /// The ring's current per-packet poll-cost estimate. Starts at
    /// [`RX_POLL_COST`] and tracks the observed cost as
    /// [`MultiQueueNic::poller_admit_on`] folds samples in — the honest
    /// per-packet figure admission control should charge for NIC-side
    /// delay, rather than the nominal constant.
    pub fn poll_cost(&self, ring: usize) -> Nanos {
        self.poll_cost_est[ring]
    }

    /// Ring-aware variant of [`MultiQueueNic::poller_admit`]: advances
    /// the serialization clock exactly as that method does (nominal
    /// [`RX_POLL_COST`] per packet), then delays the handoff by `extra`
    /// (stall time the poll visit itself suffered — fault injection, IRQ
    /// steals — which holds up this burst's delivery but does not occupy
    /// the poll loop for later bursts). The burst's *observed* per-packet
    /// cost, stall included, is folded back into the ring's estimate by
    /// an integer EWMA with a 1/8 gain, so sustained perturbation raises
    /// the per-packet figure admission control charges for NIC-side
    /// delay. With `extra` zero the sample equals the nominal cost and
    /// nothing drifts; the returned handoff always matches
    /// `poller_admit(now, n) + extra`.
    pub fn poller_admit_on(&mut self, now: Nanos, ring: usize, n: usize, extra: Nanos) -> Nanos {
        let start = now.max(self.poller_free_at);
        let done = start + RX_POLL_COST * n as u64;
        self.poller_free_at = done;
        let handoff = done + extra;
        if n > 0 {
            let sample = (handoff.0 - start.0) / n as u64;
            let est = self.poll_cost_est[ring].0 as i64;
            let next = est + ((sample as i64 - est) >> 3);
            self.poll_cost_est[ring] = Nanos(next.max(0) as u64);
        }
        handoff
    }

    /// Current occupancy of `ring`.
    pub fn occupancy(&self, ring: usize) -> usize {
        self.rings[ring].len()
    }

    /// Packets currently queued across all rings.
    pub fn total_occupancy(&self) -> usize {
        self.rings.iter().map(|r| r.len()).sum()
    }

    /// Tail drops recorded on `ring`.
    pub fn drops(&self, ring: usize) -> u64 {
        self.rings[ring].drops
    }

    /// Tail drops across all rings.
    pub fn total_drops(&self) -> u64 {
        self.rings.iter().map(|r| r.drops).sum()
    }

    /// Packets shed by the CoDel drop law on `ring`.
    pub fn aqm_drops(&self, ring: usize) -> u64 {
        self.aqm_dropped[ring]
    }

    /// Packets shed by the CoDel drop law across all rings.
    pub fn total_aqm_drops(&self) -> u64 {
        self.aqm_dropped.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nic(n: usize, cap: usize) -> MultiQueueNic<u64> {
        MultiQueueNic::new(NicConfig {
            ring_capacity: cap,
            ..NicConfig::for_workers(n)
        })
    }

    #[test]
    fn steers_by_rss_and_counts() {
        let mut n = nic(4, 64);
        let mut seen = [0u64; 4];
        for port in 0..64u16 {
            let r = n
                .enqueue_flow(
                    Nanos::ZERO,
                    0x0a00_0001,
                    0x0a00_0002,
                    20_000 + port,
                    11_211,
                    port as u64,
                )
                .expect("rings not full");
            assert_eq!(
                r,
                n.hasher()
                    .ring_for_flow(0x0a00_0001, 0x0a00_0002, 20_000 + port, 11_211)
            );
            seen[r] += 1;
        }
        assert_eq!(n.enqueued, 64);
        assert_eq!(seen.iter().sum::<u64>(), 64);
        assert_eq!(n.total_occupancy(), 64 - n.total_drops() as usize);
    }

    #[test]
    fn hashed_enqueue_matches_flow_enqueue() {
        let mut by_flow = nic(4, 8);
        let mut by_hash = nic(4, 8);
        for port in 0..40u16 {
            let flow = (0x0a00_0001, 0x0a00_0002, 20_000 + port, 11_211u16);
            let hash = by_hash.hasher().hash_flow(flow.0, flow.1, flow.2, flow.3);
            let a = by_flow.enqueue_flow(
                Nanos(port as u64),
                flow.0,
                flow.1,
                flow.2,
                flow.3,
                port as u64,
            );
            let b = by_hash.enqueue_hashed(Nanos(port as u64), hash, port as u64);
            assert_eq!(a, b, "port {port} steered differently");
        }
        assert_eq!(by_flow.enqueued, by_hash.enqueued);
        for r in 0..4 {
            assert_eq!(by_flow.occupancy(r), by_hash.occupancy(r));
            assert_eq!(by_flow.drops(r), by_hash.drops(r));
            let (mut oa, mut ob) = (Vec::new(), Vec::new());
            let mut shed = Vec::new();
            by_flow.drain(Nanos(100), r, 64, &mut oa, &mut shed);
            by_hash.drain(Nanos(100), r, 64, &mut ob, &mut shed);
            assert_eq!(oa, ob, "ring {r} contents diverged");
        }
    }

    #[test]
    fn hashed_burst_matches_singles() {
        let mut burst = nic(2, 6);
        let mut singles = nic(2, 6);
        let hash = burst.hasher().hash_flow(1, 2, 3, 4);
        let t = Nanos(42);
        // 9 packets into a 6-slot ring: 6 accepted, 3 tail-dropped.
        let (ring, accepted) = burst.enqueue_hashed_burst(t, hash, 0..9u64);
        let mut accepted_singles = 0;
        let mut ring_singles = 0;
        for p in 0..9u64 {
            match singles.enqueue_hashed(t, hash, p) {
                Ok(r) => {
                    ring_singles = r;
                    accepted_singles += 1;
                }
                Err(r) => ring_singles = r,
            }
        }
        assert_eq!((ring, accepted), (ring_singles, accepted_singles));
        assert_eq!(accepted, 6);
        assert_eq!(burst.enqueued, singles.enqueued);
        assert_eq!(burst.drops(ring), singles.drops(ring));
        assert_eq!(burst.drops(ring), 3);
        // Shared arrival stamp on every packet of the burst, FIFO order.
        let (mut out, mut shed) = (Vec::new(), Vec::new());
        burst.drain(Nanos(100), ring, 16, &mut out, &mut shed);
        assert_eq!(out, (0..6u64).map(|p| (t, p)).collect::<Vec<_>>());
    }

    #[test]
    fn full_ring_tail_drops_and_reports_the_ring() {
        let mut n = nic(1, 2);
        let t = Nanos::ZERO;
        assert!(n.enqueue_flow(t, 1, 2, 3, 4, 10).is_ok());
        assert!(n.enqueue_flow(t, 1, 2, 3, 4, 11).is_ok());
        assert_eq!(n.enqueue_flow(t, 1, 2, 3, 4, 12), Err(0));
        assert_eq!(n.total_drops(), 1);
        assert_eq!(n.enqueued, 2);
        // FIFO drain skips the dropped datagram entirely.
        let (mut out, mut shed) = (Vec::new(), Vec::new());
        assert_eq!(n.drain(t, 0, 8, &mut out, &mut shed), 2);
        assert_eq!(out, vec![(t, 10), (t, 11)]);
        assert!(shed.is_empty());
        assert_eq!(n.polled, 2);
    }

    #[test]
    fn drain_respects_burst_size() {
        let mut n = nic(1, 16);
        for i in 0..10 {
            n.enqueue_flow(Nanos(i), 1, 2, 3, 4, i).unwrap();
        }
        let (mut out, mut shed) = (Vec::new(), Vec::new());
        assert_eq!(n.drain(Nanos(100), 0, 4, &mut out, &mut shed), 4);
        assert_eq!(n.occupancy(0), 6);
        let vals: Vec<u64> = out.iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![0, 1, 2, 3]);
        // Timestamps come back exactly as stamped at enqueue.
        assert_eq!(out[2].0, Nanos(2));
    }

    #[cfg(feature = "overload")]
    #[test]
    fn codel_sheds_aged_packets_without_eating_the_burst() {
        use crate::overload::CodelConfig;
        let mut n = nic(1, 64);
        n.set_codel(CodelConfig {
            target: Nanos::from_us(25),
            interval: Nanos::from_us(100),
        });
        // 40 packets enqueued at t=0, drained in bursts of 8 far later:
        // every sojourn is way above target, so once the first interval
        // has passed the drop law starts shedding.
        for i in 0..40u64 {
            n.enqueue_flow(Nanos::ZERO, 1, 2, 3, 4, i).unwrap();
        }
        let (mut out, mut shed) = (Vec::new(), Vec::new());
        let mut now = Nanos::from_us(500);
        while n.occupancy(0) > 0 {
            n.drain(now, 0, 8, &mut out, &mut shed);
            now += Nanos::from_us(50);
        }
        assert!(!shed.is_empty(), "sustained overload never shed");
        assert_eq!(n.total_aqm_drops(), shed.len() as u64);
        // Every packet is accounted exactly once, in arrival order.
        assert_eq!(out.len() + shed.len(), 40);
        assert_eq!(n.polled, out.len() as u64);
        let mut all: Vec<u64> = out.iter().map(|&(_, v)| v).collect();
        all.extend_from_slice(&shed);
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>());
    }

    #[cfg(feature = "overload")]
    #[test]
    fn codel_quiet_below_target() {
        use crate::overload::CodelConfig;
        let mut n = nic(1, 64);
        n.set_codel(CodelConfig::default());
        let (mut out, mut shed) = (Vec::new(), Vec::new());
        let mut now = Nanos::ZERO;
        for i in 0..500u64 {
            n.enqueue_flow(now, 1, 2, 3, 4, i).unwrap();
            // Drained almost immediately: sojourn 1µs, far below target.
            now += Nanos::from_us(1);
            n.drain(now, 0, 8, &mut out, &mut shed);
        }
        assert!(
            shed.is_empty(),
            "AQM shed {} uncongested packets",
            shed.len()
        );
        assert_eq!(n.total_aqm_drops(), 0);
    }

    #[test]
    fn oldest_sojourn_tracks_the_head() {
        let mut n = nic(1, 8);
        assert_eq!(n.oldest_sojourn(0, Nanos(100)), None);
        n.enqueue_flow(Nanos(100), 1, 2, 3, 4, 1).unwrap();
        n.enqueue_flow(Nanos(400), 1, 2, 3, 4, 2).unwrap();
        assert_eq!(n.oldest_sojourn(0, Nanos(600)), Some(Nanos(500)));
        let (mut out, mut shed) = (Vec::new(), Vec::new());
        n.drain(Nanos(600), 0, 1, &mut out, &mut shed);
        assert_eq!(n.oldest_sojourn(0, Nanos(600)), Some(Nanos(200)));
    }

    #[test]
    fn poller_clock_serializes_bursts() {
        let mut n = nic(1, 16);
        // First burst of 4 from t=0: done at 4 * RX_POLL_COST.
        let d1 = n.poller_admit(Nanos::ZERO, 4);
        assert_eq!(d1, RX_POLL_COST * 4);
        // A burst requested at an earlier time still queues behind it.
        let d2 = n.poller_admit(Nanos(10), 2);
        assert_eq!(d2, d1 + RX_POLL_COST * 2);
        // After the poller goes idle, the clock restarts at `now`.
        let late = d2 + Nanos::from_us(5);
        assert_eq!(n.poller_admit(late, 1), late + RX_POLL_COST);
    }

    #[test]
    fn adaptive_poll_cost_is_inert_without_perturbation() {
        let mut n = nic(2, 16);
        assert_eq!(n.poll_cost(0), RX_POLL_COST);
        // With no extra stall the sample equals the estimate, the
        // estimate never drifts, and the clock matches the fixed-cost
        // variant burst for burst.
        let mut fixed = nic(2, 16);
        let mut now = Nanos::ZERO;
        for i in 0..50usize {
            let k = 1 + i % 7;
            let a = n.poller_admit_on(now, i % 2, k, Nanos::ZERO);
            let b = fixed.poller_admit(now, k);
            assert_eq!(a, b, "burst {i} diverged");
            now += Nanos(130);
        }
        assert_eq!(n.poll_cost(0), RX_POLL_COST);
        assert_eq!(n.poll_cost(1), RX_POLL_COST);
    }

    #[test]
    fn adaptive_poll_cost_tracks_sustained_stalls() {
        let mut n = nic(2, 16);
        // Every 4-packet burst on ring 0 suffers a 400 ns stall: the true
        // per-packet cost is RX_POLL_COST + 100. The EWMA converges
        // toward it from the seed, monotonically, without overshooting.
        let mut now = Nanos::ZERO;
        let mut prev = n.poll_cost(0);
        for _ in 0..200 {
            let handoff = n.poller_admit_on(now, 0, 4, Nanos(400));
            now = handoff + Nanos::from_us(2);
            let est = n.poll_cost(0);
            assert!(est >= prev, "estimate regressed: {est:?} < {prev:?}");
            prev = est;
        }
        let est = n.poll_cost(0);
        assert!(
            est > RX_POLL_COST && est <= RX_POLL_COST + Nanos(100),
            "estimate {est:?} outside (seed, seed+100]"
        );
        // Convergence should get within EWMA quantization of the truth.
        assert!(est >= RX_POLL_COST + Nanos(90), "estimate {est:?} stalled");
        // The untouched ring keeps the seed.
        assert_eq!(n.poll_cost(1), RX_POLL_COST);
    }

    #[test]
    fn adaptive_poll_cost_recovers_after_stalls_stop() {
        let mut n = nic(1, 16);
        let mut now = Nanos::ZERO;
        for _ in 0..200 {
            now = n.poller_admit_on(now, 0, 4, Nanos(400)) + Nanos::from_us(2);
        }
        let inflated = n.poll_cost(0);
        assert!(inflated > RX_POLL_COST);
        for _ in 0..200 {
            now = n.poller_admit_on(now, 0, 4, Nanos::ZERO) + Nanos::from_us(2);
        }
        let recovered = n.poll_cost(0);
        assert!(
            recovered < inflated && recovered <= RX_POLL_COST + Nanos(1),
            "estimate {recovered:?} failed to decay from {inflated:?}"
        );
    }
}
