//! Property tests for the NIC data-plane building blocks (§3.5):
//! the bounded RX ring and the RSS indirection table.
//!
//! The ring's contract is what the conservation invariant leans on —
//! every offered item is either delivered in FIFO order or counted as a
//! drop, never both, never neither. The indirection table's contract is
//! what keeps flow-to-core steering stable: hashes map to valid rings,
//! and a table rewrite moves only the entries that were actually
//! remapped.

use proptest::prelude::*;

use skyloft_net::{Ring, RssHasher, INDIRECTION_ENTRIES};

proptest! {
    /// Offered = delivered + dropped, delivery preserves FIFO order, and
    /// occupancy never exceeds capacity, for any interleaving of pushes
    /// and pops.
    #[test]
    fn ring_conserves_and_stays_fifo(
        capacity in 1usize..64,
        ops in prop::collection::vec((0u8..3, 0u64..1_000_000), 1..400),
    ) {
        let mut r: Ring<u64> = Ring::new(capacity);
        let mut offered: Vec<u64> = Vec::new();
        let mut accepted: Vec<u64> = Vec::new();
        let mut popped: Vec<u64> = Vec::new();
        for (op, val) in ops {
            match op {
                // Pushes are twice as likely as pops so full rings occur.
                0 | 1 => {
                    offered.push(val);
                    let was_full = r.is_full();
                    let ok = r.push(val);
                    prop_assert_eq!(ok, !was_full, "push must fail iff full");
                    if ok {
                        accepted.push(val);
                    }
                }
                _ => {
                    if let Some(v) = r.pop() {
                        popped.push(v);
                    } else {
                        prop_assert!(r.is_empty());
                    }
                }
            }
            prop_assert!(r.len() <= capacity, "occupancy above capacity");
            // Conservation at every step: everything offered is either
            // still queued, already delivered, or a counted drop.
            prop_assert_eq!(
                offered.len() as u64,
                (r.len() + popped.len()) as u64 + r.drops,
                "offered != queued + delivered + dropped"
            );
        }
        // Drain: what comes out is exactly the accepted sequence, in order.
        while let Some(v) = r.pop() {
            popped.push(v);
        }
        prop_assert_eq!(popped, accepted, "delivery must be FIFO over accepted items");
        prop_assert_eq!(offered.len() as u64, accepted.len() as u64 + r.drops);
    }

    /// Every hash maps to a ring the hasher was built for, via an
    /// indirection entry the hash's low bits select.
    #[test]
    fn indirection_maps_every_hash_to_a_valid_ring(
        n_rings in 1usize..64,
        hashes in prop::collection::vec(0u32..=u32::MAX, 1..200),
    ) {
        let h = RssHasher::new(n_rings);
        for hash in hashes {
            let ring = h.ring_for_hash(hash);
            prop_assert!(ring < n_rings, "ring {} out of range for {} rings", ring, n_rings);
            prop_assert_eq!(
                ring,
                h.indirection()[(hash as usize) & (INDIRECTION_ENTRIES - 1)] as usize,
                "steering must go through the indirection table"
            );
        }
    }

    /// Rewriting the indirection table moves exactly the remapped
    /// entries: hashes whose entry kept its value keep their ring, hashes
    /// whose entry changed follow the new value.
    #[test]
    fn rewrite_moves_only_remapped_entries(
        n_rings in 2usize..32,
        remap in prop::collection::vec((0usize..INDIRECTION_ENTRIES, 0u16..32), 0..64),
        hashes in prop::collection::vec(0u32..=u32::MAX, 1..200),
    ) {
        let mut h = RssHasher::new(n_rings);
        let before = *h.indirection();
        let mut table = before;
        for (slot, ring) in remap {
            table[slot] = ring % n_rings as u16;
        }
        let mapped_before: Vec<usize> = hashes.iter().map(|&x| h.ring_for_hash(x)).collect();
        h.set_indirection(table);
        for (&hash, &was) in hashes.iter().zip(&mapped_before) {
            let slot = (hash as usize) & (INDIRECTION_ENTRIES - 1);
            let now = h.ring_for_hash(hash);
            if table[slot] == before[slot] {
                prop_assert_eq!(now, was, "unremapped entry {} moved", slot);
            } else {
                prop_assert_eq!(now, table[slot] as usize, "remapped entry {} ignored", slot);
            }
        }
    }
}
