//! Property tests for the NIC data-plane building blocks (§3.5):
//! the bounded RX ring and the RSS indirection table.
//!
//! The ring's contract is what the conservation invariant leans on —
//! every offered item is either delivered in FIFO order or counted as a
//! drop, never both, never neither. The indirection table's contract is
//! what keeps flow-to-core steering stable: hashes map to valid rings,
//! and a table rewrite moves only the entries that were actually
//! remapped.

use proptest::prelude::*;

use skyloft_net::{Ring, RssHasher, INDIRECTION_ENTRIES};

proptest! {
    /// Offered = delivered + dropped, delivery preserves FIFO order, and
    /// occupancy never exceeds capacity, for any interleaving of pushes
    /// and pops.
    #[test]
    fn ring_conserves_and_stays_fifo(
        capacity in 1usize..64,
        ops in prop::collection::vec((0u8..3, 0u64..1_000_000), 1..400),
    ) {
        let mut r: Ring<u64> = Ring::new(capacity);
        let mut offered: Vec<u64> = Vec::new();
        let mut accepted: Vec<u64> = Vec::new();
        let mut popped: Vec<u64> = Vec::new();
        for (op, val) in ops {
            match op {
                // Pushes are twice as likely as pops so full rings occur.
                0 | 1 => {
                    offered.push(val);
                    let was_full = r.is_full();
                    let ok = r.push(val);
                    prop_assert_eq!(ok, !was_full, "push must fail iff full");
                    if ok {
                        accepted.push(val);
                    }
                }
                _ => {
                    if let Some(v) = r.pop() {
                        popped.push(v);
                    } else {
                        prop_assert!(r.is_empty());
                    }
                }
            }
            prop_assert!(r.len() <= capacity, "occupancy above capacity");
            // Conservation at every step: everything offered is either
            // still queued, already delivered, or a counted drop.
            prop_assert_eq!(
                offered.len() as u64,
                (r.len() + popped.len()) as u64 + r.drops,
                "offered != queued + delivered + dropped"
            );
        }
        // Drain: what comes out is exactly the accepted sequence, in order.
        while let Some(v) = r.pop() {
            popped.push(v);
        }
        prop_assert_eq!(popped, accepted, "delivery must be FIFO over accepted items");
        prop_assert_eq!(offered.len() as u64, accepted.len() as u64 + r.drops);
    }

    /// Every hash maps to a ring the hasher was built for, via an
    /// indirection entry the hash's low bits select.
    #[test]
    fn indirection_maps_every_hash_to_a_valid_ring(
        n_rings in 1usize..64,
        hashes in prop::collection::vec(0u32..=u32::MAX, 1..200),
    ) {
        let h = RssHasher::new(n_rings);
        for hash in hashes {
            let ring = h.ring_for_hash(hash);
            prop_assert!(ring < n_rings, "ring {} out of range for {} rings", ring, n_rings);
            prop_assert_eq!(
                ring,
                h.indirection()[(hash as usize) & (INDIRECTION_ENTRIES - 1)] as usize,
                "steering must go through the indirection table"
            );
        }
    }

    /// Rewriting the indirection table moves exactly the remapped
    /// entries: hashes whose entry kept its value keep their ring, hashes
    /// whose entry changed follow the new value.
    #[test]
    fn rewrite_moves_only_remapped_entries(
        n_rings in 2usize..32,
        remap in prop::collection::vec((0usize..INDIRECTION_ENTRIES, 0u16..32), 0..64),
        hashes in prop::collection::vec(0u32..=u32::MAX, 1..200),
    ) {
        let mut h = RssHasher::new(n_rings);
        let before = *h.indirection();
        let mut table = before;
        for (slot, ring) in remap {
            table[slot] = ring % n_rings as u16;
        }
        let mapped_before: Vec<usize> = hashes.iter().map(|&x| h.ring_for_hash(x)).collect();
        h.set_indirection(table);
        for (&hash, &was) in hashes.iter().zip(&mapped_before) {
            let slot = (hash as usize) & (INDIRECTION_ENTRIES - 1);
            let now = h.ring_for_hash(hash);
            if table[slot] == before[slot] {
                prop_assert_eq!(now, was, "unremapped entry {} moved", slot);
            } else {
                prop_assert_eq!(now, table[slot] as usize, "remapped entry {} ignored", slot);
            }
        }
    }
}

#[cfg(feature = "overload")]
mod overload_props {
    use proptest::prelude::*;

    proptest! {
        /// The retry token bucket is a hard budget: under ANY interleaving of
        /// offered requests and adversarial spend attempts (bursts, droughts,
        /// spend-every-chance), retries spent never exceed
        /// `requests * permille / 1000 + burst`.
        #[test]
        fn retry_budget_never_exceeds_bound(
            permille in 0u32..=1000,
            burst in 1u32..64,
            // true = offer a request, false = attempt a retry spend.
            ops in prop::collection::vec(prop::bool::ANY, 1..2000),
        ) {
            use skyloft_net::RetryBudget;
            let mut b = RetryBudget::new(permille, burst);
            let mut requests = 0u64;
            for offer in ops {
                if offer {
                    b.on_request();
                    requests += 1;
                } else {
                    b.try_spend();
                }
                let bound = (requests * u64::from(permille)) / 1000 + u64::from(burst);
                prop_assert!(
                    b.spent() <= bound,
                    "spent {} > bound {} after {} requests",
                    b.spent(), bound, requests
                );
            }
        }

        /// Decorrelated-jitter backoff never leaves its [base, cap] envelope,
        /// for any policy shape and however long the retry storm runs.
        #[test]
        fn backoff_delays_stay_in_envelope(
            base in 1u64..1_000_000,
            extra in 0u64..100_000_000,
            seed in 0u64..=u64::MAX,
            draws in 1usize..200,
        ) {
            use skyloft_net::Backoff;
            use skyloft_sim::Nanos;
            let cap = Nanos(base + extra);
            let mut bo = Backoff::new(Nanos(base), cap, seed);
            for _ in 0..draws {
                let d = bo.next_delay();
                prop_assert!(d >= Nanos(base) && d <= cap, "delay {:?} outside [{}, {:?}]", d, base, cap);
            }
        }

        /// The AQM-equipped NIC conserves datagrams under any interleaving of
        /// enqueues and drains at arbitrary (monotone) times: everything
        /// accepted is delivered, CoDel-shed, or still queued — exactly once,
        /// and in FIFO order within each ring.
        #[test]
        fn codel_nic_conserves_datagrams(
            cap in 2usize..64,
            target_us in 1u64..100,
            interval_us in 10u64..1000,
            ops in prop::collection::vec((prop::bool::ANY, 0u16..4096, 1u64..50_000), 1..500),
        ) {
            use skyloft_net::dataplane::{MultiQueueNic, NicConfig};
            use skyloft_net::{CodelConfig};
            use skyloft_sim::Nanos;
            let mut nic: MultiQueueNic<u64> = MultiQueueNic::new(NicConfig {
                ring_capacity: cap,
                ..NicConfig::for_workers(2)
            });
            nic.set_codel(CodelConfig {
                target: Nanos::from_us(target_us),
                interval: Nanos::from_us(interval_us),
            });
            let mut now = Nanos::ZERO;
            let mut seq = 0u64;
            let (mut out, mut shed) = (Vec::new(), Vec::new());
            let mut tail_dropped = 0u64;
            for (is_enq, port, dt) in ops {
                now += Nanos(dt);
                if is_enq {
                    if nic.enqueue_flow(now, 1, 2, port, 9, seq).is_err() {
                        tail_dropped += 1;
                    }
                    seq += 1;
                } else {
                    for ring in 0..nic.n_rings() {
                        nic.drain(now, ring, 8, &mut out, &mut shed);
                    }
                }
                prop_assert_eq!(
                    seq,
                    out.len() as u64 + shed.len() as u64 + tail_dropped
                        + nic.total_occupancy() as u64,
                    "offered != kept + aqm-shed + tail-dropped + queued"
                );
                prop_assert_eq!(nic.total_aqm_drops(), shed.len() as u64);
            }
            // Final drain far in the future: everything left comes out (kept
            // or shed), and each datagram appears exactly once overall.
            now += Nanos::from_ms(100);
            while nic.total_occupancy() > 0 {
                for ring in 0..nic.n_rings() {
                    nic.drain(now, ring, 8, &mut out, &mut shed);
                }
                now += Nanos::from_us(100);
            }
            let mut all: Vec<u64> = out.iter().map(|&(_, v)| v).collect();
            all.extend_from_slice(&shed);
            all.sort_unstable();
            all.dedup();
            prop_assert_eq!(all.len() as u64, seq - tail_dropped, "lost or duplicated datagrams");
        }
    }
}
