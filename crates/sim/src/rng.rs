//! Seeded pseudo-randomness and the service-time distributions used by the
//! paper's workloads.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — implemented
//! here (rather than pulled from a crate) so that experiment reproducibility
//! does not depend on an external crate's stream stability.

use crate::time::Nanos;

/// Deterministic PRNG (xoshiro256**).
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next_sm(), next_sm(), next_sm(), next_sm()];
        Rng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `(0, 1]` — safe as a log() argument.
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Uniform integer in `[0, bound)` using Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        // Multiply-shift with rejection for exact uniformity.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent child generator (for per-component streams).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

/// A sampling distribution over nanosecond durations.
#[derive(Clone, Debug, PartialEq)]
pub enum Distribution {
    /// Always the same value.
    Constant(Nanos),
    /// Exponential with the given mean (memoryless; used for Poisson
    /// inter-arrival gaps).
    Exponential(Nanos),
    /// Two-point distribution: with probability `p_long` sample `long`,
    /// otherwise `short`. This is the paper's dispersive (§5.2) and
    /// RocksDB bimodal (§5.3) workload shape.
    Bimodal {
        /// Probability of the long value.
        p_long: f64,
        /// The common, short duration.
        short: Nanos,
        /// The rare, long duration.
        long: Nanos,
    },
    /// Uniform over `[lo, hi]`.
    Uniform(Nanos, Nanos),
    /// Lognormal with the given median and sigma of the underlying normal
    /// (used for heavy-tailed sensitivity studies).
    Lognormal {
        /// Median of the distribution.
        median: Nanos,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
}

impl Distribution {
    /// Draws one sample.
    pub fn sample(&self, rng: &mut Rng) -> Nanos {
        match *self {
            Distribution::Constant(v) => v,
            Distribution::Exponential(mean) => {
                let u = rng.next_f64_open();
                Nanos((-(u.ln()) * mean.0 as f64).round() as u64)
            }
            Distribution::Bimodal {
                p_long,
                short,
                long,
            } => {
                if rng.chance(p_long) {
                    long
                } else {
                    short
                }
            }
            Distribution::Uniform(lo, hi) => {
                debug_assert!(hi >= lo);
                Nanos(lo.0 + rng.next_below(hi.0 - lo.0 + 1))
            }
            Distribution::Lognormal { median, sigma } => {
                // Box-Muller.
                let u1 = rng.next_f64_open();
                let u2 = rng.next_f64();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                Nanos((median.0 as f64 * (sigma * z).exp()).round() as u64)
            }
        }
    }

    /// The distribution's exact mean, used for offered-load arithmetic.
    pub fn mean(&self) -> f64 {
        match *self {
            Distribution::Constant(v) => v.0 as f64,
            Distribution::Exponential(mean) => mean.0 as f64,
            Distribution::Bimodal {
                p_long,
                short,
                long,
            } => p_long * long.0 as f64 + (1.0 - p_long) * short.0 as f64,
            Distribution::Uniform(lo, hi) => (lo.0 + hi.0) as f64 / 2.0,
            Distribution::Lognormal { median, sigma } => {
                median.0 as f64 * (sigma * sigma / 2.0).exp()
            }
        }
    }
}

/// An open-loop Poisson arrival process at a given rate.
#[derive(Clone, Debug)]
pub struct PoissonArrivals {
    gap: Distribution,
}

impl PoissonArrivals {
    /// Creates a process with `rate_rps` arrivals per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_rps` is not positive.
    pub fn new(rate_rps: f64) -> Self {
        assert!(rate_rps > 0.0, "arrival rate must be positive");
        let mean = Nanos((1e9 / rate_rps).round() as u64);
        PoissonArrivals {
            gap: Distribution::Exponential(mean),
        }
    }

    /// Samples the gap to the next arrival.
    pub fn next_gap(&self, rng: &mut Rng) -> Nanos {
        self.gap.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_range() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            let o = r.next_f64_open();
            assert!(o > 0.0 && o <= 1.0);
        }
    }

    #[test]
    fn next_below_uniform() {
        let mut r = Rng::seed_from_u64(4);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::seed_from_u64(5);
        let d = Distribution::Exponential(Nanos(1_000));
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| d.sample(&mut r).0).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 1000.0).abs() < 20.0, "mean {mean}");
    }

    #[test]
    fn bimodal_fraction_and_mean() {
        let mut r = Rng::seed_from_u64(6);
        let d = Distribution::Bimodal {
            p_long: 0.005,
            short: Nanos(4_000),
            long: Nanos(10_000_000),
        };
        let n = 400_000;
        let mut longs = 0u32;
        for _ in 0..n {
            if d.sample(&mut r) == Nanos(10_000_000) {
                longs += 1;
            }
        }
        let frac = longs as f64 / n as f64;
        assert!((frac - 0.005).abs() < 0.001, "long fraction {frac}");
        // Mean of the paper's dispersive workload: ~54 us.
        assert!((d.mean() - 53_980.0).abs() < 1.0);
    }

    #[test]
    fn uniform_bounds() {
        let mut r = Rng::seed_from_u64(8);
        let d = Distribution::Uniform(Nanos(10), Nanos(20));
        for _ in 0..10_000 {
            let v = d.sample(&mut r);
            assert!((10..=20).contains(&v.0));
        }
    }

    #[test]
    fn lognormal_median() {
        let mut r = Rng::seed_from_u64(9);
        let d = Distribution::Lognormal {
            median: Nanos(1_000),
            sigma: 1.0,
        };
        let mut samples: Vec<u64> = (0..50_001).map(|_| d.sample(&mut r).0).collect();
        samples.sort_unstable();
        let med = samples[25_000] as f64;
        assert!((med - 1000.0).abs() / 1000.0 < 0.05, "median {med}");
    }

    #[test]
    fn poisson_rate() {
        let mut r = Rng::seed_from_u64(10);
        let p = PoissonArrivals::new(1_000_000.0); // 1M rps -> 1 us mean gap
        let n = 100_000;
        let total: u64 = (0..n).map(|_| p.next_gap(&mut r).0).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1_000.0).abs() < 20.0, "gap mean {mean}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::seed_from_u64(11);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn next_below_zero_panics() {
        Rng::seed_from_u64(1).next_below(0);
    }
}
