//! Virtual time: nanoseconds and CPU cycles.
//!
//! The paper's testbed runs at 2.0 GHz (Xeon Gold 5418Y, TurboBoost off), so
//! its cycle-denominated measurements (Table 6) convert at 2 cycles per
//! nanosecond. All simulation timestamps are [`Nanos`]; cost constants
//! calibrated from the paper are [`Cycles`] and converted at that frequency.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Simulated CPU frequency in GHz, matching the paper's testbed.
pub const CPU_GHZ: u64 = 2;

/// A point in (or span of) virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Zero nanoseconds.
    pub const ZERO: Nanos = Nanos(0);

    /// Constructs from microseconds.
    pub const fn from_us(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_ms(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// Value as (fractional) microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value as (fractional) seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two times.
    pub fn min(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.min(rhs.0))
    }

    /// The larger of two times.
    pub fn max(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.max(rhs.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        Nanos(iter.map(|n| n.0).sum())
    }
}

/// Shared human-readable formatting for [`Nanos`].
macro_rules! fmt_nanos_body {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let v = self.0;
            if v >= 1_000_000_000 {
                write!(f, "{:.3}s", v as f64 / 1e9)
            } else if v >= 1_000_000 {
                write!(f, "{:.3}ms", v as f64 / 1e6)
            } else if v >= 1_000 {
                write!(f, "{:.3}us", v as f64 / 1e3)
            } else {
                write!(f, "{v}ns")
            }
        }
    };
}

impl fmt::Debug for Nanos {
    fmt_nanos_body!();
}

impl fmt::Display for Nanos {
    fmt_nanos_body!();
}

/// A span of CPU cycles at [`CPU_GHZ`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Converts to nanoseconds at the simulated 2.0 GHz clock, rounding up
    /// so that nonzero costs never vanish.
    pub const fn to_nanos(self) -> Nanos {
        Nanos(self.0.div_ceil(CPU_GHZ))
    }

    /// Converts a nanosecond span to cycles.
    pub const fn from_nanos(ns: Nanos) -> Cycles {
        Cycles(ns.0 * CPU_GHZ)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl From<Cycles> for Nanos {
    fn from(c: Cycles) -> Nanos {
        c.to_nanos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Nanos::from_us(3), Nanos(3_000));
        assert_eq!(Nanos::from_ms(2), Nanos(2_000_000));
        assert_eq!(Nanos::from_secs(1), Nanos(1_000_000_000));
    }

    #[test]
    fn arithmetic() {
        let a = Nanos(100);
        let b = Nanos(40);
        assert_eq!(a + b, Nanos(140));
        assert_eq!(a - b, Nanos(60));
        assert_eq!(a * 3, Nanos(300));
        assert_eq!(a / 4, Nanos(25));
        assert_eq!(b.saturating_sub(a), Nanos(0));
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn cycles_round_up() {
        // 3 cycles at 2 GHz is 1.5 ns; the conversion must not drop to 1 ns
        // of work costing zero.
        assert_eq!(Cycles(3).to_nanos(), Nanos(2));
        assert_eq!(Cycles(4).to_nanos(), Nanos(2));
        assert_eq!(Cycles(0).to_nanos(), Nanos(0));
        assert_eq!(Cycles::from_nanos(Nanos(5)), Cycles(10));
    }

    #[test]
    fn table6_examples() {
        // User IPI send: 167 cycles -> 84 ns (rounded up from 83.5).
        assert_eq!(Cycles(167).to_nanos(), Nanos(84));
        // Signal receive: 6359 cycles -> 3180 ns.
        assert_eq!(Cycles(6359).to_nanos(), Nanos(3180));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Nanos(5)), "5ns");
        assert_eq!(format!("{}", Nanos(1_500)), "1.500us");
        assert_eq!(format!("{}", Nanos(2_000_000)), "2.000ms");
        assert_eq!(format!("{}", Nanos(3_000_000_000)), "3.000s");
    }

    #[test]
    fn sum_iterates() {
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
    }
}
