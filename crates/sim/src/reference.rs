//! The original `BinaryHeap`-backed event queue, kept as a differential
//! oracle for the timing-wheel [`crate::EventQueue`].
//!
//! This is the seed implementation, bit-for-bit: events are totally
//! ordered by `(time, seq)`, cancellation marks a generation-checked slot
//! dead, and dead heap entries are skipped on pop. It is compiled only for
//! tests and under the `reference-queue` feature, where property tests
//! drive identical operation sequences through both queues and assert the
//! observable streams match (see `crates/sim` unit tests and the CI
//! feature matrix).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Nanos;

/// Handle to an event scheduled on a [`ReferenceQueue`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct RefToken {
    slot: u32,
    generation: u32,
}

struct Slot<E> {
    generation: u32,
    payload: Option<E>,
}

/// A time-ordered queue of events of type `E`, heap-backed.
pub struct ReferenceQueue<E> {
    now: Nanos,
    seq: u64,
    heap: BinaryHeap<Reverse<(Nanos, u64, u32)>>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    live: usize,
}

impl<E> Default for ReferenceQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        ReferenceQueue {
            now: Nanos::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of live (non-cancelled) scheduled events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub fn schedule(&mut self, at: Nanos, event: E) -> RefToken {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at:?} now={:?}",
            self.now
        );
        let slot = match self.free.pop() {
            Some(s) => {
                let sl = &mut self.slots[s as usize];
                sl.payload = Some(event);
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot {
                    generation: 0,
                    payload: Some(event),
                });
                s
            }
        };
        let generation = self.slots[slot as usize].generation;
        self.heap.push(Reverse((at, self.seq, slot)));
        self.seq += 1;
        self.live += 1;
        RefToken { slot, generation }
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: Nanos, event: E) -> RefToken {
        let at = self.now + delay;
        self.schedule(at, event)
    }

    /// Cancels a scheduled event; `None` if already fired/cancelled/stale.
    pub fn cancel(&mut self, token: RefToken) -> Option<E> {
        let sl = self.slots.get_mut(token.slot as usize)?;
        if sl.generation != token.generation {
            return None;
        }
        let payload = sl.payload.take()?;
        self.live -= 1;
        Some(payload)
    }

    /// Returns the timestamp of the next live event without removing it.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        self.skim_dead();
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Removes and returns the next live event, advancing the clock.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        loop {
            let Reverse((t, _, slot)) = self.heap.pop()?;
            let sl = &mut self.slots[slot as usize];
            if let Some(ev) = sl.payload.take() {
                sl.generation = sl.generation.wrapping_add(1);
                self.free.push(slot);
                self.live -= 1;
                debug_assert!(t >= self.now);
                self.now = t;
                return Some((t, ev));
            }
            // Cancelled entry: recycle its slot and keep looking.
            sl.generation = sl.generation.wrapping_add(1);
            self.free.push(slot);
        }
    }

    /// [`ReferenceQueue::pop`], but only if the next live event fires
    /// strictly before `deadline` (mirrors
    /// [`crate::EventQueue::pop_before`]).
    pub fn pop_before(&mut self, deadline: Nanos) -> Option<(Nanos, E)> {
        match self.peek_time() {
            Some(t) if t < deadline => self.pop(),
            _ => None,
        }
    }

    /// Serial definition of [`crate::EventQueue::pop_batch`]: repeated
    /// [`ReferenceQueue::pop_before`] while the timestamp stays constant.
    /// This *is* the batch-path specification — the wheel's bucket-walk
    /// fast path is held to this loop by the differential proptests.
    pub fn pop_batch(&mut self, deadline: Nanos, out: &mut Vec<E>) -> Option<Nanos> {
        out.clear();
        let (at, first) = self.pop_before(deadline)?;
        out.push(first);
        while self.peek_time() == Some(at) {
            let (_, ev) = self.pop().expect("peeked live event");
            out.push(ev);
        }
        Some(at)
    }

    /// Advances the clock to `t` if it is in the future.
    pub fn advance_to(&mut self, t: Nanos) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Drops cancelled entries from the top of the heap so `peek_time` sees
    /// a live event.
    fn skim_dead(&mut self) {
        while let Some(Reverse((_, _, slot))) = self.heap.peek() {
            let sl = &mut self.slots[*slot as usize];
            if sl.payload.is_some() {
                break;
            }
            sl.generation = sl.generation.wrapping_add(1);
            self.free.push(*slot);
            self.heap.pop();
        }
    }
}

#[cfg(test)]
mod differential_tests {
    //! Differential property tests: the timing-wheel
    //! [`crate::EventQueue`] must be observationally identical to this
    //! reference queue under arbitrary interleavings of `schedule`,
    //! `schedule_after`, `cancel`, `pop`, `pop_before` and `peek_time` —
    //! same `(time, payload)` stream, same `len`, same clock, same cancel
    //! results (token semantics included).

    use super::*;
    use crate::{BatchSlot, EventQueue, Token};
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn wheel_matches_reference_heap(
            ops in prop::collection::vec(
                (0u64..9, 0u64..30_000_000_000, 0usize..1024),
                1..250,
            ),
        ) {
            let mut wheel: EventQueue<u64> = EventQueue::new();
            let mut heap: ReferenceQueue<u64> = ReferenceQueue::new();
            let mut tokens: Vec<(Token, RefToken)> = Vec::new();
            let mut payload = 0u64;
            let mut claims: Vec<BatchSlot> = Vec::new();
            let mut batch_w: Vec<u64> = Vec::new();
            let mut batch_h: Vec<u64> = Vec::new();

            for &(kind, delta, k) in &ops {
                match kind {
                    // Absolute schedule; deltas span every wheel level
                    // plus the overflow heap.
                    0 => {
                        let at = Nanos(wheel.now().0 + delta);
                        let tw = wheel.schedule(at, payload);
                        let th = heap.schedule(at, payload);
                        tokens.push((tw, th));
                        payload += 1;
                    }
                    // Near-future absolute schedule (the common case).
                    1 => {
                        let at = Nanos(wheel.now().0 + delta % 100_000);
                        let tw = wheel.schedule(at, payload);
                        let th = heap.schedule(at, payload);
                        tokens.push((tw, th));
                        payload += 1;
                    }
                    // Quantized schedule: heavy same-timestamp collisions
                    // so `pop_batch` regularly sees multi-event batches.
                    2 => {
                        let at = Nanos(wheel.now().0 + (delta % 8) * 1_000);
                        let tw = wheel.schedule(at, payload);
                        let th = heap.schedule(at, payload);
                        tokens.push((tw, th));
                        payload += 1;
                    }
                    // Relative schedule.
                    3 => {
                        let d = Nanos(delta % 5_000);
                        let tw = wheel.schedule_after(d, payload);
                        let th = heap.schedule_after(d, payload);
                        tokens.push((tw, th));
                        payload += 1;
                    }
                    // Cancel an arbitrary issued token, possibly stale.
                    4 => {
                        if tokens.is_empty() {
                            continue;
                        }
                        let (tw, th) = tokens[k % tokens.len()];
                        prop_assert_eq!(wheel.cancel(tw), heap.cancel(th));
                    }
                    5 => {
                        prop_assert_eq!(wheel.pop(), heap.pop());
                    }
                    // Deadline-bounded pop.
                    6 => {
                        let deadline = Nanos(wheel.now().0 + 1 + delta % 1_000_000);
                        prop_assert_eq!(
                            wheel.pop_before(deadline),
                            heap.pop_before(deadline)
                        );
                    }
                    // Same-timestamp batch drain: the wheel's bucket-walk
                    // fast path against the oracle's loop of serial pops.
                    7 => {
                        let deadline = Nanos(wheel.now().0 + 1 + delta % 1_000_000);
                        prop_assert_eq!(
                            wheel.pop_batch(deadline, &mut claims),
                            heap.pop_batch(deadline, &mut batch_h)
                        );
                        batch_w.clear();
                        batch_w.extend(
                            claims.drain(..).filter_map(|c| wheel.take_batched(c)),
                        );
                        prop_assert_eq!(&batch_w, &batch_h);
                    }
                    _ => {
                        prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                    }
                }
                prop_assert_eq!(wheel.len(), heap.len());
                prop_assert_eq!(wheel.now(), heap.now());
            }

            // Drain both to the end: the remaining streams must match.
            loop {
                let a = wheel.pop();
                let b = heap.pop();
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert!(wheel.is_empty());
        }

        #[test]
        fn wheel_stream_is_sorted_and_complete(
            times in prop::collection::vec(0u64..20_000_000_000, 1..300),
        ) {
            let mut q: EventQueue<usize> = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(Nanos(t), i);
            }
            let mut got = Vec::new();
            let mut prev: Option<(Nanos, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((pt, pi)) = prev {
                    // Total (time, seq) order; payload == schedule seq here.
                    prop_assert!(t > pt || (t == pt && i > pi));
                }
                prev = Some((t, i));
                got.push(i);
            }
            got.sort_unstable();
            prop_assert_eq!(got, (0..times.len()).collect::<Vec<_>>());
        }
    }
}
