//! Cancellable, deterministic event queue.
//!
//! Events are ordered by `(time, sequence)`. The sequence number is a
//! monotonically increasing counter assigned at scheduling time, so two
//! events at the same timestamp fire in scheduling order — this makes every
//! run with the same seed bit-identical, which the experiment harness relies
//! on.
//!
//! Cancellation is O(1): [`EventQueue::cancel`] marks the event's slot dead;
//! dead heap entries are skipped on pop. Slots are recycled with a
//! generation counter so a stale [`Token`] can never cancel a later event.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Nanos;

/// Handle to a scheduled event, used for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Token {
    slot: u32,
    generation: u32,
}

struct Slot<E> {
    generation: u32,
    payload: Option<E>,
}

/// A time-ordered queue of events of type `E`.
pub struct EventQueue<E> {
    now: Nanos,
    seq: u64,
    heap: BinaryHeap<Reverse<(Nanos, u64, u32)>>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            now: Nanos::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of live (non-cancelled) scheduled events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time: the simulation cannot
    /// travel backwards.
    pub fn schedule(&mut self, at: Nanos, event: E) -> Token {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at:?} now={:?}",
            self.now
        );
        let slot = match self.free.pop() {
            Some(s) => {
                let sl = &mut self.slots[s as usize];
                sl.payload = Some(event);
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot {
                    generation: 0,
                    payload: Some(event),
                });
                s
            }
        };
        let generation = self.slots[slot as usize].generation;
        self.heap.push(Reverse((at, self.seq, slot)));
        self.seq += 1;
        self.live += 1;
        Token { slot, generation }
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: Nanos, event: E) -> Token {
        let at = self.now + delay;
        self.schedule(at, event)
    }

    /// Cancels a scheduled event. Returns the payload if the event was still
    /// pending, or `None` if it already fired, was already cancelled, or the
    /// token is stale.
    pub fn cancel(&mut self, token: Token) -> Option<E> {
        let sl = self.slots.get_mut(token.slot as usize)?;
        if sl.generation != token.generation {
            return None;
        }
        let payload = sl.payload.take()?;
        self.live -= 1;
        Some(payload)
    }

    /// Returns the timestamp of the next live event without removing it.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        self.skim_dead();
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Removes and returns the next live event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        loop {
            let Reverse((t, _, slot)) = self.heap.pop()?;
            let sl = &mut self.slots[slot as usize];
            if let Some(ev) = sl.payload.take() {
                sl.generation = sl.generation.wrapping_add(1);
                self.free.push(slot);
                self.live -= 1;
                debug_assert!(t >= self.now);
                self.now = t;
                return Some((t, ev));
            }
            // Cancelled entry: recycle its slot and keep looking.
            sl.generation = sl.generation.wrapping_add(1);
            self.free.push(slot);
        }
    }

    /// Advances the clock to `t` if it is in the future (used by drivers
    /// when a deadline passes with no event).
    pub fn advance_to(&mut self, t: Nanos) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Drops cancelled entries from the top of the heap so `peek_time` sees
    /// a live event.
    fn skim_dead(&mut self) {
        while let Some(Reverse((_, _, slot))) = self.heap.peek() {
            let sl = &mut self.slots[*slot as usize];
            if sl.payload.is_some() {
                break;
            }
            sl.generation = sl.generation.wrapping_add(1);
            self.free.push(*slot);
            self.heap.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(30), 'c');
        q.schedule(Nanos(10), 'a');
        q.schedule(Nanos(20), 'b');
        let mut out = String::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, "abc");
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Nanos(5), i);
        }
        let mut prev = -1i64;
        while let Some((_, e)) = q.pop() {
            assert!(e as i64 > prev);
            prev = e as i64;
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(42), ());
        assert_eq!(q.now(), Nanos(0));
        q.pop();
        assert_eq!(q.now(), Nanos(42));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn cannot_schedule_into_past() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(10), ());
        q.pop();
        q.schedule(Nanos(5), ());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let t1 = q.schedule(Nanos(10), 1);
        q.schedule(Nanos(20), 2);
        assert_eq!(q.cancel(t1), Some(1));
        assert_eq!(q.len(), 1);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_twice_is_none() {
        let mut q = EventQueue::new();
        let t = q.schedule(Nanos(10), 7);
        assert_eq!(q.cancel(t), Some(7));
        assert_eq!(q.cancel(t), None);
    }

    #[test]
    fn stale_token_cannot_cancel_recycled_slot() {
        let mut q = EventQueue::new();
        let t1 = q.schedule(Nanos(10), 1);
        q.pop(); // t1 fires; slot recycled.
        let _t2 = q.schedule(Nanos(20), 2);
        // t1's token points at the recycled slot but the generation differs.
        assert_eq!(q.cancel(t1), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn schedule_after_uses_now() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(100), 0);
        q.pop();
        q.schedule_after(Nanos(5), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Nanos(105));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let t = q.schedule(Nanos(10), 1);
        q.schedule(Nanos(20), 2);
        q.cancel(t);
        assert_eq!(q.peek_time(), Some(Nanos(20)));
    }

    #[test]
    fn many_slots_recycled() {
        let mut q = EventQueue::new();
        for round in 0..10 {
            let toks: Vec<_> = (0..100)
                .map(|i| q.schedule(Nanos(round * 1000 + i), i))
                .collect();
            for t in toks.iter().step_by(2) {
                q.cancel(*t);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            assert_eq!(n, 50);
        }
        // Slot storage should be bounded by the max in-flight count.
        assert!(q.slots.len() <= 128);
    }
}
