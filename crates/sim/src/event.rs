//! Cancellable, deterministic event queue backed by a hierarchical timing
//! wheel.
//!
//! Events are ordered by `(time, sequence)`. The sequence number is a
//! monotonically increasing counter assigned at scheduling time, so two
//! events at the same timestamp fire in scheduling order — this makes every
//! run with the same seed bit-identical, which the experiment harness relies
//! on.
//!
//! # Why a wheel
//!
//! Almost every event a Skyloft machine schedules is near-future: quantum
//! checks and §3.2 self-IPI re-arms land ~30 μs out, NIC arrivals a few μs
//! out, timer ticks 10 μs out. A binary heap pays `O(log n)` twice per
//! event for what is effectively insertion into a short sliding window. The
//! wheel makes `schedule` an `O(1)` bucket push and amortizes ordering into
//! one small sort per bucket drain:
//!
//! * time is divided into **granules** of 2^[`GSHIFT`] ns (512 ns);
//! * [`LEVELS`] levels of [`SLOTS`] buckets each cover granule deltas of
//!   `64^(l+1)`, giving the wheel a total span of 2^24 granules (~8.6 s of
//!   virtual time) — events beyond the span park in an overflow heap;
//! * a drained bucket is sorted by the unique `(time, seq)` key into `cur`
//!   (descending, so popping from the back yields ascending order), which
//!   makes the pop order independent of bucket insertion order and keeps
//!   the old heap's deterministic contract bit-for-bit.
//!
//! Cancellation is O(1): [`EventQueue::cancel`] marks the event's slot dead;
//! dead wheel entries are skipped (and their slots recycled) when their
//! bucket drains. Slots are recycled with a generation counter so a stale
//! [`Token`] can never cancel a later event.
//!
//! The previous `BinaryHeap` implementation survives as
//! [`crate::reference::ReferenceQueue`] (test builds and the
//! `reference-queue` feature) and serves as the differential oracle for the
//! wheel's property tests.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Nanos;

/// log2 of the granule size in nanoseconds (512 ns granules).
const GSHIFT: u32 = 9;
/// log2 of the slot count per level.
const LSHIFT: u32 = 6;
/// Buckets per level.
const SLOTS: u64 = 1 << LSHIFT;
/// Wheel levels; level `l` buckets granule deltas below `64^(l+1)`.
const LEVELS: usize = 4;
/// Total wheel span in granules; events further out go to the overflow
/// heap.
const SPAN: u64 = 1 << (LSHIFT * LEVELS as u32);

#[inline]
fn granule(at: Nanos) -> u64 {
    at.0 >> GSHIFT
}

/// Handle to a scheduled event, used for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Token {
    slot: u32,
    generation: u32,
}

struct Slot<E> {
    generation: u32,
    payload: Option<E>,
}

/// A claim on one event drained by [`EventQueue::pop_batch`].
///
/// The underlying payload slot stays live (and cancellable through its
/// [`Token`]) until the claim is redeemed with
/// [`EventQueue::take_batched`]. Deliberately not `Copy`/`Clone`: each
/// claim must be redeemed exactly once, and move semantics make
/// double-redemption a compile error.
#[derive(Debug)]
pub struct BatchSlot(u32);

/// A parked `(time, seq)` key plus the payload slot it refers to.
#[derive(Clone, Copy, Debug)]
struct Entry {
    at: Nanos,
    seq: u64,
    slot: u32,
}

impl Entry {
    #[inline]
    fn key(&self) -> (Nanos, u64) {
        (self.at, self.seq)
    }
}

/// A time-ordered queue of events of type `E`.
pub struct EventQueue<E> {
    now: Nanos,
    seq: u64,
    /// Granule watermark: every pending entry with `granule < focus` has
    /// been moved into `cur`. The focus only ever advances; it may run
    /// ahead of `now` (peeking materializes the next bucket), which is why
    /// `schedule` must accept times below the focus and sort them into
    /// `cur` directly.
    focus: u64,
    /// The materialized near-future window, sorted by `(time, seq)`
    /// descending so `pop` is a `Vec::pop` from the back.
    cur: Vec<Entry>,
    /// `LEVELS × SLOTS` buckets, flattened level-major.
    buckets: Vec<Vec<Entry>>,
    /// Entries parked per level (including cancelled ones not yet
    /// reclaimed).
    counts: [usize; LEVELS],
    /// Events beyond the wheel span.
    overflow: BinaryHeap<Reverse<(Nanos, u64, u32)>>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            now: Nanos::ZERO,
            seq: 0,
            focus: 0,
            cur: Vec::new(),
            buckets: (0..LEVELS * SLOTS as usize).map(|_| Vec::new()).collect(),
            counts: [0; LEVELS],
            overflow: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of live (non-cancelled) scheduled events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time: the simulation cannot
    /// travel backwards.
    pub fn schedule(&mut self, at: Nanos, event: E) -> Token {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at:?} now={:?}",
            self.now
        );
        let slot = match self.free.pop() {
            Some(s) => {
                let sl = &mut self.slots[s as usize];
                sl.payload = Some(event);
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot {
                    generation: 0,
                    payload: Some(event),
                });
                s
            }
        };
        let generation = self.slots[slot as usize].generation;
        let entry = Entry {
            at,
            seq: self.seq,
            slot,
        };
        self.seq += 1;
        self.live += 1;
        self.insert_entry(entry);
        Token { slot, generation }
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: Nanos, event: E) -> Token {
        let at = self.now + delay;
        self.schedule(at, event)
    }

    /// Cancels a scheduled event. Returns the payload if the event was still
    /// pending, or `None` if it already fired, was already cancelled, or the
    /// token is stale.
    pub fn cancel(&mut self, token: Token) -> Option<E> {
        let sl = self.slots.get_mut(token.slot as usize)?;
        if sl.generation != token.generation {
            return None;
        }
        let payload = sl.payload.take()?;
        self.live -= 1;
        Some(payload)
    }

    /// Returns the timestamp of the next live event without removing it.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        loop {
            while let Some(e) = self.cur.last().copied() {
                if self.slots[e.slot as usize].payload.is_some() {
                    return Some(e.at);
                }
                self.cur.pop();
                self.recycle(e.slot);
            }
            if !self.refill() {
                return None;
            }
        }
    }

    /// Removes and returns the next live event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        loop {
            while let Some(e) = self.cur.pop() {
                let payload = self.slots[e.slot as usize].payload.take();
                self.recycle(e.slot);
                if let Some(ev) = payload {
                    self.live -= 1;
                    debug_assert!(e.at >= self.now);
                    self.now = e.at;
                    return Some((e.at, ev));
                }
            }
            if !self.refill() {
                return None;
            }
        }
    }

    /// [`EventQueue::pop`], but only if the next live event fires strictly
    /// before `deadline` — the single-pass form of peek-compare-pop that
    /// the [`crate::run_until`] driver loop runs per event.
    pub fn pop_before(&mut self, deadline: Nanos) -> Option<(Nanos, E)> {
        loop {
            while let Some(e) = self.cur.last().copied() {
                if self.slots[e.slot as usize].payload.is_some() {
                    if e.at >= deadline {
                        return None;
                    }
                    self.cur.pop();
                    let ev = self.slots[e.slot as usize].payload.take().expect("live");
                    self.recycle(e.slot);
                    self.live -= 1;
                    debug_assert!(e.at >= self.now);
                    self.now = e.at;
                    return Some((e.at, ev));
                }
                self.cur.pop();
                self.recycle(e.slot);
            }
            if !self.refill() {
                return None;
            }
        }
    }

    /// Drains *every* pending entry sharing the minimum live timestamp
    /// (strictly before `deadline`) into `out`, in `(time, seq)` order,
    /// advances the clock to that timestamp, and returns it. `out` is
    /// cleared first — callers keep one scratch buffer alive across calls
    /// so the batch path never allocates in steady state.
    ///
    /// The drained [`BatchSlot`]s are *claims*, not payloads: each must be
    /// redeemed exactly once with [`EventQueue::take_batched`], which
    /// yields the event — or `None` if it was cancelled in the meantime.
    /// This indirection is what makes batching decision-identical to a
    /// serial [`EventQueue::pop_before`] loop: a handler that cancels a
    /// later event *of the same timestamp* (a preemption cancelling the
    /// pending segment completion) still hits a live, cancellable slot,
    /// exactly as it would were the event still parked in the wheel.
    ///
    /// Cost-wise the batch pays the deadline compare, wheel re-probe, and
    /// refill check once per *batch* instead of once per event: same
    /// timestamp ⇒ same granule ⇒ same level-0 bucket, so after the head
    /// probe the remaining batch entries are contiguous at the tail of the
    /// materialized window and the drain is a straight run of `Vec::pop`s.
    /// Equivalence with the serial loop is pinned by the `reference-queue`
    /// differential proptests.
    pub fn pop_batch(&mut self, deadline: Nanos, out: &mut Vec<BatchSlot>) -> Option<Nanos> {
        out.clear();
        // Head probe inlined (rather than `peek_time` + a second probe):
        // the first live entry is claimed by the same pass that finds it,
        // so a singleton batch — the common case on workloads without
        // timestamp ties — costs one probe, like the serial `pop_before`.
        let at = 'head: loop {
            while let Some(e) = self.cur.last().copied() {
                if self.slots[e.slot as usize].payload.is_some() {
                    if e.at >= deadline {
                        return None;
                    }
                    self.cur.pop();
                    out.push(BatchSlot(e.slot));
                    break 'head e.at;
                }
                self.cur.pop();
                self.recycle(e.slot);
            }
            if !self.refill() {
                return None;
            }
        };
        debug_assert!(at >= self.now);
        self.now = at;
        loop {
            while let Some(e) = self.cur.last().copied() {
                if e.at != at {
                    return Some(at);
                }
                self.cur.pop();
                if self.slots[e.slot as usize].payload.is_some() {
                    out.push(BatchSlot(e.slot));
                } else {
                    self.recycle(e.slot);
                }
            }
            // The window emptied on a batch boundary. A refill cannot
            // surface an earlier key (the head probe saw the global
            // minimum), so continue only while the next granule still
            // holds entries at exactly `at`.
            if !self.refill() {
                return Some(at);
            }
        }
    }

    /// Redeems one [`BatchSlot`] drained by [`EventQueue::pop_batch`]:
    /// returns the event, or `None` if it was cancelled after the batch
    /// was drained. Each slot must be redeemed exactly once (enforced by
    /// move semantics — [`BatchSlot`] is not `Copy`); the payload slot is
    /// recycled here either way.
    pub fn take_batched(&mut self, claim: BatchSlot) -> Option<E> {
        let payload = self.slots[claim.0 as usize].payload.take();
        self.recycle(claim.0);
        if payload.is_some() {
            self.live -= 1;
        }
        payload
    }

    /// Advances the clock to `t` if it is in the future (used by drivers
    /// when a deadline passes with no event).
    pub fn advance_to(&mut self, t: Nanos) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Bumps a slot's generation and returns it to the free list.
    #[inline]
    fn recycle(&mut self, slot: u32) {
        let sl = &mut self.slots[slot as usize];
        sl.generation = sl.generation.wrapping_add(1);
        self.free.push(slot);
    }

    /// Parks an entry at the right place for its distance from the focus:
    /// into `cur` (sorted) when its granule is already below the focus,
    /// into the wheel level whose span covers the delta, or into the
    /// overflow heap beyond the wheel span.
    fn insert_entry(&mut self, e: Entry) {
        let g = granule(e.at);
        if g < self.focus {
            let key = e.key();
            let idx = self.cur.partition_point(|x| x.key() > key);
            self.cur.insert(idx, e);
            return;
        }
        let delta = g - self.focus;
        if delta >= SPAN {
            self.overflow.push(Reverse((e.at, e.seq, e.slot)));
            return;
        }
        let level = match delta {
            d if d < SLOTS => 0,
            d if d < SLOTS * SLOTS => 1,
            d if d < SLOTS * SLOTS * SLOTS => 2,
            _ => 3,
        };
        let idx = ((g >> (LSHIFT * level as u32)) & (SLOTS - 1)) as usize;
        self.buckets[level * SLOTS as usize + idx].push(e);
        self.counts[level] += 1;
    }

    /// Drains level-0 bucket `b` into `cur` and sorts it descending by
    /// `(time, seq)`, recycling cancelled entries on the way.
    fn drain_level0(&mut self, b: usize) {
        let mut bucket = std::mem::take(&mut self.buckets[b]);
        self.counts[0] -= bucket.len();
        for e in bucket.drain(..) {
            if self.slots[e.slot as usize].payload.is_some() {
                self.cur.push(e);
            } else {
                self.recycle(e.slot);
            }
        }
        self.buckets[b] = bucket;
        self.cur
            .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
    }

    /// Re-places every entry parked in bucket `b` of `level` relative to
    /// the (just advanced) focus.
    fn cascade(&mut self, level: usize, idx: usize) {
        let b = level * SLOTS as usize + idx;
        if self.buckets[b].is_empty() {
            return;
        }
        let mut bucket = std::mem::take(&mut self.buckets[b]);
        self.counts[level] -= bucket.len();
        for e in bucket.drain(..) {
            if self.slots[e.slot as usize].payload.is_some() {
                self.insert_entry(e);
            } else {
                self.recycle(e.slot);
            }
        }
        self.buckets[b] = bucket;
    }

    /// Moves the focus forward to `new`, cascading the destination's
    /// higher-level buckets (top level first, so re-placed entries land in
    /// buckets that are themselves cascaded next).
    fn enter(&mut self, new: u64) {
        let old = self.focus;
        debug_assert!(new > old);
        self.focus = new;
        for level in (1..LEVELS).rev() {
            let sh = LSHIFT * level as u32;
            if (old >> sh) != (new >> sh) {
                self.cascade(level, ((new >> sh) & (SLOTS - 1)) as usize);
            }
        }
    }

    /// Scans `level`'s buckets within its parent window, strictly after the
    /// bucket holding the focus (that one was cascaded on entry). On a hit
    /// the focus enters the found window; returns whether anything was
    /// found.
    fn scan_upper(&mut self, level: usize) -> bool {
        let sh = LSHIFT * level as u32;
        let cur_slot = self.focus >> sh;
        let end = cur_slot | (SLOTS - 1);
        for s in (cur_slot + 1)..=end {
            let b = level * SLOTS as usize + (s & (SLOTS - 1)) as usize;
            if !self.buckets[b].is_empty() {
                self.enter(s << sh);
                return true;
            }
        }
        false
    }

    /// Refills `cur` with the next non-empty granule's entries, advancing
    /// the focus across wheel levels and the overflow heap as needed.
    /// Returns `false` when nothing is pending anywhere.
    fn refill(&mut self) -> bool {
        debug_assert!(self.cur.is_empty());
        loop {
            // Overflow entries the advancing focus has brought within the
            // wheel span must re-enter the wheel *before* any same-range
            // wheel entry is chosen, or they would fire out of order.
            while let Some(&Reverse((at, _, _))) = self.overflow.peek() {
                if granule(at) >= self.focus.saturating_add(SPAN) {
                    break;
                }
                let Reverse((at, seq, slot)) = self.overflow.pop().expect("peeked");
                self.insert_entry(Entry { at, seq, slot });
            }
            if !self.cur.is_empty() {
                // An overflow entry landed below the focus.
                return true;
            }
            if self.counts[0] > 0 {
                let end = self.focus | (SLOTS - 1);
                let mut g = self.focus;
                while g <= end {
                    let b = (g & (SLOTS - 1)) as usize;
                    if !self.buckets[b].is_empty() {
                        // Drain before advancing: `enter(g + 1)` may cross
                        // into the next l1 window and cascade next-window
                        // entries into this same bucket index.
                        self.drain_level0(b);
                        self.enter(g + 1);
                        if !self.cur.is_empty() {
                            return true;
                        }
                        // Bucket held only cancelled entries; keep looking.
                        if self.counts[0] == 0 {
                            break;
                        }
                    }
                    g += 1;
                }
                if self.counts[0] > 0 {
                    // Level-0 entries can sit at most one window ahead of
                    // the focus that placed them (delta < 64).
                    if self.focus <= end {
                        self.enter(end + 1);
                    }
                    continue;
                }
            }
            let mut advanced = false;
            for level in 1..LEVELS {
                if self.counts[level] == 0 {
                    continue;
                }
                if !self.scan_upper(level) {
                    // All of this level's entries are past the parent
                    // window; step into the next one (the entry cascade
                    // will pull them down).
                    let sh = LSHIFT * (level + 1) as u32;
                    self.enter(((self.focus >> sh) + 1) << sh);
                }
                advanced = true;
                break;
            }
            if advanced {
                continue;
            }
            // Wheel fully empty: jump to the overflow's horizon, if any.
            match self.overflow.peek() {
                Some(&Reverse((at, _, _))) => {
                    // No cascade needed: every wheel bucket is empty.
                    self.focus = granule(at).max(self.focus);
                    debug_assert!(self.counts.iter().all(|&c| c == 0));
                }
                None => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(30), 'c');
        q.schedule(Nanos(10), 'a');
        q.schedule(Nanos(20), 'b');
        let mut out = String::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, "abc");
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Nanos(5), i);
        }
        let mut prev = -1i64;
        while let Some((_, e)) = q.pop() {
            assert!(e as i64 > prev);
            prev = e as i64;
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(42), ());
        assert_eq!(q.now(), Nanos(0));
        q.pop();
        assert_eq!(q.now(), Nanos(42));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn cannot_schedule_into_past() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(10), ());
        q.pop();
        q.schedule(Nanos(5), ());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let t1 = q.schedule(Nanos(10), 1);
        q.schedule(Nanos(20), 2);
        assert_eq!(q.cancel(t1), Some(1));
        assert_eq!(q.len(), 1);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_twice_is_none() {
        let mut q = EventQueue::new();
        let t = q.schedule(Nanos(10), 7);
        assert_eq!(q.cancel(t), Some(7));
        assert_eq!(q.cancel(t), None);
    }

    #[test]
    fn stale_token_cannot_cancel_recycled_slot() {
        let mut q = EventQueue::new();
        let t1 = q.schedule(Nanos(10), 1);
        q.pop(); // t1 fires; slot recycled.
        let _t2 = q.schedule(Nanos(20), 2);
        // t1's token points at the recycled slot but the generation differs.
        assert_eq!(q.cancel(t1), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn schedule_after_uses_now() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(100), 0);
        q.pop();
        q.schedule_after(Nanos(5), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Nanos(105));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let t = q.schedule(Nanos(10), 1);
        q.schedule(Nanos(20), 2);
        q.cancel(t);
        assert_eq!(q.peek_time(), Some(Nanos(20)));
    }

    #[test]
    fn many_slots_recycled() {
        let mut q = EventQueue::new();
        for round in 0..10 {
            let toks: Vec<_> = (0..100)
                .map(|i| q.schedule(Nanos(round * 1000 + i), i))
                .collect();
            for t in toks.iter().step_by(2) {
                q.cancel(*t);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            assert_eq!(n, 50);
        }
        // Slot storage should be bounded by the max in-flight count.
        assert!(q.slots.len() <= 128);
    }

    #[test]
    fn pop_before_stops_at_deadline() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(10), 1);
        q.schedule(Nanos(20), 2);
        q.schedule(Nanos(30), 3);
        assert_eq!(q.pop_before(Nanos(25)), Some((Nanos(10), 1)));
        assert_eq!(q.pop_before(Nanos(25)), Some((Nanos(20), 2)));
        assert_eq!(q.pop_before(Nanos(25)), None);
        // The deadline event is untouched and the clock did not jump.
        assert_eq!(q.now(), Nanos(20));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Nanos(30), 3)));
    }

    #[test]
    fn pop_before_skips_cancelled_at_head() {
        let mut q = EventQueue::new();
        let t = q.schedule(Nanos(10), 1);
        q.schedule(Nanos(20), 2);
        q.cancel(t);
        assert_eq!(q.pop_before(Nanos(100)), Some((Nanos(20), 2)));
        assert_eq!(q.pop_before(Nanos(100)), None);
    }

    #[test]
    fn order_holds_across_wheel_levels_and_overflow() {
        // One event per decade from 1 μs to ~20 s: levels 0–3 plus the
        // overflow heap all participate.
        let times: Vec<u64> = vec![
            1_000,          // level 0
            100_000,        // level 0/1
            1_000_000,      // level 1
            40_000_000,     // level 2
            1_000_000_000,  // level 3
            8_000_000_000,  // level 3 (near span edge)
            20_000_000_000, // overflow
            30_000_000_000, // overflow
        ];
        let mut q = EventQueue::new();
        // Schedule in reverse so wheel placement happens far from pop
        // order.
        for (i, &t) in times.iter().enumerate().rev() {
            q.schedule(Nanos(t), i);
        }
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.0, i));
        }
        let want: Vec<(u64, usize)> = times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn schedule_below_advanced_focus_still_fires_in_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(1_000_000), 'z');
        // Peeking materializes the far event, advancing the focus well
        // past granule 0 while `now` stays 0.
        assert_eq!(q.peek_time(), Some(Nanos(1_000_000)));
        assert_eq!(q.now(), Nanos(0));
        // New near events must still fire first.
        q.schedule(Nanos(500), 'a');
        q.schedule(Nanos(800), 'b');
        let mut out = String::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, "abz");
    }

    #[test]
    fn cancel_while_parked_in_high_level_bucket() {
        let mut q = EventQueue::new();
        let far = q.schedule(Nanos(50_000_000), 1); // level 2/3
        q.schedule(Nanos(60_000_000), 2);
        assert_eq!(q.cancel(far), Some(1));
        assert_eq!(q.pop(), Some((Nanos(60_000_000), 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_pop_and_reschedule_chain() {
        // The self-rescheduling pattern every periodic timer uses.
        let mut q = EventQueue::new();
        q.schedule(Nanos(10_000), 0u64);
        let mut fired = 0u64;
        while let Some((t, n)) = q.pop() {
            fired += 1;
            if fired < 1000 {
                q.schedule(t + Nanos(10_000), n + 1);
            }
        }
        assert_eq!(fired, 1000);
        assert_eq!(q.now(), Nanos(10_000_000));
    }

    /// Drains one batch and redeems every claim, returning the payloads.
    fn redeem_all<E>(q: &mut EventQueue<E>, deadline: Nanos) -> Option<(Nanos, Vec<E>)> {
        let mut batch = Vec::new();
        let at = q.pop_batch(deadline, &mut batch)?;
        let evs = batch.drain(..).filter_map(|s| q.take_batched(s)).collect();
        Some((at, evs))
    }

    #[test]
    fn pop_batch_drains_exactly_the_tied_timestamp() {
        let mut q = EventQueue::new();
        for i in 0..8 {
            q.schedule(Nanos(100), i);
        }
        q.schedule(Nanos(101), 100); // same granule, later timestamp
        q.schedule(Nanos(900), 200);
        let (at, evs) = redeem_all(&mut q, Nanos(1_000)).unwrap();
        assert_eq!(at, Nanos(100));
        assert_eq!(evs, (0..8).collect::<Vec<_>>());
        assert_eq!(q.now(), Nanos(100));
        assert_eq!(
            redeem_all(&mut q, Nanos(1_000)),
            Some((Nanos(101), vec![100]))
        );
        assert_eq!(
            redeem_all(&mut q, Nanos(1_000)),
            Some((Nanos(900), vec![200]))
        );
        assert_eq!(redeem_all(&mut q, Nanos(1_000)), None);
    }

    #[test]
    fn pop_batch_respects_deadline_and_skips_cancelled() {
        let mut q = EventQueue::new();
        let t = q.schedule(Nanos(10), 1);
        q.schedule(Nanos(10), 2);
        q.schedule(Nanos(10), 3);
        q.schedule(Nanos(25), 4);
        q.cancel(t);
        assert_eq!(redeem_all(&mut q, Nanos(20)), Some((Nanos(10), vec![2, 3])));
        // The event at the deadline stays put, exactly like `pop_before`.
        assert_eq!(redeem_all(&mut q, Nanos(20)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Nanos(25), 4)));
    }

    #[test]
    fn batched_entries_stay_cancellable_until_taken() {
        // The property that makes batching safe for the machine: a handler
        // running mid-batch can still cancel a later event of the *same*
        // timestamp (preemption cancelling a pending segment completion),
        // exactly as if the event were still parked in the wheel.
        let mut q = EventQueue::new();
        let t1 = q.schedule(Nanos(10), 1);
        let t2 = q.schedule(Nanos(10), 2);
        let t3 = q.schedule(Nanos(10), 3);
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(Nanos(100), &mut batch), Some(Nanos(10)));
        assert_eq!(batch.len(), 3);
        // Cancel the middle event after the batch was drained but before
        // it was redeemed: the cancel must succeed and return the payload.
        assert_eq!(q.cancel(t2), Some(2));
        let got: Vec<_> = batch.drain(..).filter_map(|s| q.take_batched(s)).collect();
        assert_eq!(got, vec![1, 3]);
        // Redeemed slots are recycled, so the original tokens go stale.
        assert_eq!(q.cancel(t1), None);
        assert_eq!(q.cancel(t3), None);
        assert_eq!(q.len(), 0);
        // The queue stays fully usable afterwards (slots were recycled).
        q.schedule(Nanos(20), 9);
        assert_eq!(q.pop(), Some((Nanos(20), 9)));
    }

    #[test]
    fn pop_batch_matches_repeated_pop_across_levels() {
        // Ties scattered over wheel levels and the overflow heap: the
        // concatenation of batches must equal the serial pop sequence.
        let build = || {
            let mut q = EventQueue::new();
            for i in 0..200u64 {
                let t = match i % 5 {
                    0 => 1_000,
                    1 => 1_000_000,
                    2 => 40_000_000,
                    3 => 1_000_000_000,
                    _ => 20_000_000_000,
                };
                q.schedule(Nanos(t + (i % 3) * 512), i);
            }
            q
        };
        let mut serial = build();
        let mut want = Vec::new();
        while let Some((t, e)) = serial.pop() {
            want.push((t, e));
        }
        let mut batched = build();
        let mut got = Vec::new();
        while let Some((at, evs)) = redeem_all(&mut batched, Nanos(u64::MAX)) {
            for e in evs {
                got.push((at, e));
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn dense_same_granule_ties_across_refills() {
        let mut q = EventQueue::new();
        // Two dense batches in distinct granules plus a far batch that
        // cascades down later.
        for i in 0..50 {
            q.schedule(Nanos(100 + i % 3), i);
            q.schedule(Nanos(700_000 + i % 3), 100 + i);
        }
        let mut prev = (Nanos(0), -1i64);
        let mut n = 0;
        while let Some((t, e)) = q.pop() {
            // (time, schedule order) must be strictly increasing within a
            // timestamp.
            if t == prev.0 {
                assert!((e as i64) > prev.1, "tie broken out of order");
            }
            assert!(t >= prev.0);
            prev = (t, e as i64);
            n += 1;
        }
        assert_eq!(n, 100);
    }
}
