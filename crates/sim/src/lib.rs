//! Deterministic discrete-event simulation engine.
//!
//! Every Skyloft experiment runs on this engine: virtual time is an integer
//! nanosecond counter, events are totally ordered by `(time, sequence)`, and
//! all randomness flows from a seeded PRNG, so a run is reproducible from
//! its seed.
//!
//! The engine is deliberately minimal: an [`EventQueue`] of typed events and
//! a driver loop ([`run_until`]) that hands each event to a user-supplied
//! handler together with the mutable world state. Higher layers (the
//! hardware model, the scheduling framework, the workloads) define the event
//! type and the world.

#![warn(missing_docs)]

pub mod event;
#[cfg(any(test, feature = "reference-queue"))]
pub mod reference;
pub mod rng;
pub mod time;

pub use event::{EventQueue, Token};
pub use rng::{Distribution, Rng};
pub use time::{Cycles, Nanos, CPU_GHZ};

/// Drives the simulation until `deadline` (exclusive) or until the queue is
/// empty, whichever comes first.
///
/// `handle` is called for each event in timestamp order with the world
/// state, the event, and the queue (so handlers can schedule more events).
/// Returns the number of events processed.
pub fn run_until<S, E>(
    state: &mut S,
    q: &mut EventQueue<E>,
    deadline: Nanos,
    mut handle: impl FnMut(&mut S, E, &mut EventQueue<E>),
) -> u64 {
    let mut n = 0;
    while let Some((_, ev)) = q.pop_before(deadline) {
        handle(state, ev, q);
        n += 1;
    }
    q.advance_to(deadline);
    n
}

/// Drives the simulation until the queue is empty or `max_events` have been
/// processed. Returns the number of events processed.
pub fn run_to_completion<S, E>(
    state: &mut S,
    q: &mut EventQueue<E>,
    max_events: u64,
    mut handle: impl FnMut(&mut S, E, &mut EventQueue<E>),
) -> u64 {
    let mut n = 0;
    while n < max_events {
        let Some((_, ev)) = q.pop() else { break };
        handle(state, ev, q);
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_until_stops_at_deadline() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule(Nanos(10), 1);
        q.schedule(Nanos(20), 2);
        q.schedule(Nanos(30), 3);
        let mut seen = Vec::new();
        let n = run_until(&mut seen, &mut q, Nanos(25), |s, e, _| s.push(e));
        assert_eq!(n, 2);
        assert_eq!(seen, vec![1, 2]);
        assert_eq!(q.now(), Nanos(25));
        // The remaining event is still there.
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn handlers_can_schedule() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule(Nanos(1), 0);
        let mut count = 0u32;
        run_until(&mut count, &mut q, Nanos(100), |c, e, q| {
            *c += 1;
            if e < 5 {
                let at = q.now() + Nanos(1);
                q.schedule(at, e + 1);
            }
        });
        assert_eq!(count, 6);
    }

    #[test]
    fn run_to_completion_respects_budget() {
        let mut q: EventQueue<()> = EventQueue::new();
        for i in 0..10 {
            q.schedule(Nanos(i), ());
        }
        let mut s = ();
        let n = run_to_completion(&mut s, &mut q, 4, |_, _, _| {});
        assert_eq!(n, 4);
        assert_eq!(q.len(), 6);
    }
}
