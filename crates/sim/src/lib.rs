//! Deterministic discrete-event simulation engine.
//!
//! Every Skyloft experiment runs on this engine: virtual time is an integer
//! nanosecond counter, events are totally ordered by `(time, sequence)`, and
//! all randomness flows from a seeded PRNG, so a run is reproducible from
//! its seed.
//!
//! The engine is deliberately minimal: an [`EventQueue`] of typed events and
//! a driver loop ([`run_until`]) that hands each event to a user-supplied
//! handler together with the mutable world state. Higher layers (the
//! hardware model, the scheduling framework, the workloads) define the event
//! type and the world.

#![warn(missing_docs)]

pub mod event;
#[cfg(any(test, feature = "reference-queue"))]
pub mod reference;
pub mod rng;
pub mod time;

pub use event::{BatchSlot, EventQueue, Token};
pub use rng::{Distribution, Rng};
pub use time::{Cycles, Nanos, CPU_GHZ};

/// Drives the simulation until `deadline` (exclusive) or until the queue is
/// empty, whichever comes first.
///
/// `handle` is called for each event in timestamp order with the world
/// state, the event, and the queue (so handlers can schedule more events).
/// Returns the number of events processed.
pub fn run_until<S, E>(
    state: &mut S,
    q: &mut EventQueue<E>,
    deadline: Nanos,
    mut handle: impl FnMut(&mut S, E, &mut EventQueue<E>),
) -> u64 {
    let mut n = 0;
    while let Some((_, ev)) = q.pop_before(deadline) {
        handle(state, ev, q);
        n += 1;
    }
    q.advance_to(deadline);
    n
}

/// Batched form of [`run_until`]: drains events in same-timestamp batches
/// via [`EventQueue::pop_batch`] and hands each batch of [`BatchSlot`]
/// claims to `handle_batch` together with the shared timestamp, so
/// per-event fixed costs (deadline compare, wheel re-probe,
/// trace/invariant prologues in the caller) are paid once per batch.
///
/// `handle_batch` must drain the batch buffer, redeeming each claim with
/// [`EventQueue::take_batched`] (which returns `None` for events cancelled
/// by an earlier handler of the same batch — skip those, exactly as the
/// serial loop never pops a cancelled event). Events scheduled *by* a
/// handler at the batch's own timestamp land in a fresh batch on the next
/// iteration — their `(time, seq)` keys are larger than everything drained,
/// so the processing order is identical to [`run_until`]'s event-at-a-time
/// order. The buffer is reused across iterations so the steady-state loop
/// never allocates. Returns the number of batch entries drained (an upper
/// bound on events handled; the two differ only when a handler cancels a
/// same-timestamp event).
pub fn run_batched_until<S, E>(
    state: &mut S,
    q: &mut EventQueue<E>,
    deadline: Nanos,
    batch: &mut Vec<BatchSlot>,
    mut handle_batch: impl FnMut(&mut S, Nanos, &mut Vec<BatchSlot>, &mut EventQueue<E>),
) -> u64 {
    let mut n = 0;
    while let Some(at) = q.pop_batch(deadline, batch) {
        n += batch.len() as u64;
        handle_batch(state, at, batch, q);
        debug_assert!(batch.is_empty(), "handle_batch must drain the batch");
    }
    q.advance_to(deadline);
    n
}

/// Drives the simulation until the queue is empty or `max_events` have been
/// processed. Returns the number of events processed.
pub fn run_to_completion<S, E>(
    state: &mut S,
    q: &mut EventQueue<E>,
    max_events: u64,
    mut handle: impl FnMut(&mut S, E, &mut EventQueue<E>),
) -> u64 {
    let mut n = 0;
    while n < max_events {
        let Some((_, ev)) = q.pop() else { break };
        handle(state, ev, q);
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_until_stops_at_deadline() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule(Nanos(10), 1);
        q.schedule(Nanos(20), 2);
        q.schedule(Nanos(30), 3);
        let mut seen = Vec::new();
        let n = run_until(&mut seen, &mut q, Nanos(25), |s, e, _| s.push(e));
        assert_eq!(n, 2);
        assert_eq!(seen, vec![1, 2]);
        assert_eq!(q.now(), Nanos(25));
        // The remaining event is still there.
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn handlers_can_schedule() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule(Nanos(1), 0);
        let mut count = 0u32;
        run_until(&mut count, &mut q, Nanos(100), |c, e, q| {
            *c += 1;
            if e < 5 {
                let at = q.now() + Nanos(1);
                q.schedule(at, e + 1);
            }
        });
        assert_eq!(count, 6);
    }

    #[test]
    fn run_batched_until_matches_serial_order() {
        let build = || {
            let mut q: EventQueue<u32> = EventQueue::new();
            for i in 0..30u32 {
                q.schedule(Nanos(10 * (i as u64 / 3)), i);
            }
            q
        };
        let mut serial = build();
        let mut want = Vec::new();
        run_until(&mut want, &mut serial, Nanos(75), |s, e, _| s.push(e));
        let mut batched = build();
        let mut got = Vec::new();
        let mut scratch = Vec::new();
        let n = run_batched_until(
            &mut got,
            &mut batched,
            Nanos(75),
            &mut scratch,
            |s: &mut Vec<u32>, _, b, q| s.extend(b.drain(..).filter_map(|c| q.take_batched(c))),
        );
        assert_eq!(got, want);
        assert_eq!(n, want.len() as u64);
        assert_eq!(batched.now(), serial.now());
        assert_eq!(batched.len(), serial.len());
    }

    #[test]
    fn run_batched_handlers_schedule_at_own_timestamp() {
        // A handler scheduling at the batch's own timestamp must see that
        // event in a *later* batch, preserving (time, seq) order.
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule(Nanos(5), 0);
        q.schedule(Nanos(5), 1);
        let mut batches: Vec<Vec<u32>> = Vec::new();
        let mut scratch = Vec::new();
        run_batched_until(
            &mut batches,
            &mut q,
            Nanos(100),
            &mut scratch,
            |s, _, b, q| {
                let mut evs: Vec<u32> = Vec::new();
                for c in b.drain(..) {
                    if let Some(e) = q.take_batched(c) {
                        evs.push(e);
                    }
                }
                if evs.contains(&0) {
                    q.schedule(q.now(), 7);
                }
                s.push(evs);
            },
        );
        assert_eq!(batches, vec![vec![0, 1], vec![7]]);
    }

    #[test]
    fn run_to_completion_respects_budget() {
        let mut q: EventQueue<()> = EventQueue::new();
        for i in 0..10 {
            q.schedule(Nanos(i), ());
        }
        let mut s = ();
        let n = run_to_completion(&mut s, &mut q, 4, |_, _, _| {});
        assert_eq!(n, 4);
        assert_eq!(q.len(), 6);
    }
}
