//! Mechanistic model of the hardware Skyloft depends on.
//!
//! The paper's key enabling feature is Intel *User Interrupts* (UINTR,
//! Sapphire Rapids). This crate models the architectural state and the state
//! transitions of UINTR (§3.2 of the paper, chapter 7 of the Intel SDM
//! volume 3A) together with the per-core local APIC timer, a two-socket NUMA
//! topology, and a cost model calibrated from the paper's own measurements
//! (Table 6, Table 7, §5.4).
//!
//! Real silicon is unavailable in this environment (the reproduction's
//! hardware gate), so these models are driven by the discrete-event engine
//! in `skyloft-sim`; see DESIGN.md §2 for the substitution argument. The
//! models are *semantic*, not just cost tables: e.g. configuring `UINV` with
//! the timer vector without arming the PIR loses the interrupt, exactly the
//! pitfall §3.2 describes.

#![warn(missing_docs)]

pub mod apic;
pub mod costs;
pub mod ioapic;
pub mod mpk;
pub mod topo;
pub mod uintr;

pub use apic::{Apic, TimerConfig};
pub use costs::{CostModel, MechCost};
pub use topo::Topology;
pub use uintr::{Recognition, SendOutcome, UintrFabric, UpidId};

/// Identifies a logical CPU core.
pub type CoreId = usize;
