//! Calibrated cost model.
//!
//! Every latency constant in the simulation comes from a measurement
//! published in the paper, or, where the paper gives none, from the cited
//! system's own publication — each such estimate is marked `ESTIMATE` with
//! its provenance. Mechanism costs are in cycles at the testbed's 2.0 GHz
//! (Table 6); switching and threading costs are in nanoseconds (Table 7,
//! §5.4).
//!
//! A mechanism cost has three components, matching Table 6's columns:
//!
//! * `send` — cycles the *sender* spends issuing the notification,
//! * `receive` — cycles the *receiver* spends around the handler (context
//!   save/restore, kernel entries where applicable),
//! * `delivery` — latency from the send completing to the receiver's
//!   handler starting.

use skyloft_sim::{Cycles, Nanos};

use crate::{CoreId, Topology};

/// Cost triple of a preemption/notification mechanism (Table 6 columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MechCost {
    /// Sender-side cycles.
    pub send: Cycles,
    /// Receiver-side handling cycles (context save/restore included).
    pub receive: Cycles,
    /// Wire latency from send to handler start, in cycles.
    pub delivery: Cycles,
}

impl MechCost {
    /// Sender-side time.
    pub fn send_ns(&self) -> Nanos {
        self.send.to_nanos()
    }

    /// Receiver-side handling time.
    pub fn receive_ns(&self) -> Nanos {
        self.receive.to_nanos()
    }

    /// Delivery latency.
    pub fn delivery_ns(&self) -> Nanos {
        self.delivery.to_nanos()
    }

    /// Total time from the sender issuing the notification to the
    /// receiver's handler having completed its entry overhead.
    pub fn end_to_end_ns(&self) -> Nanos {
        self.delivery.to_nanos() + self.receive.to_nanos()
    }
}

/// Linux signal (Table 6 row 1).
pub const SIGNAL: MechCost = MechCost {
    send: Cycles(1_224),
    receive: Cycles(6_359),
    delivery: Cycles(5_274),
};

/// Kernel IPI, e.g. ghOSt's preemption path (Table 6 row 2).
pub const KERNEL_IPI: MechCost = MechCost {
    send: Cycles(437),
    receive: Cycles(1_582),
    delivery: Cycles(1_345),
};

/// User IPI within a socket (Table 6 row 3).
pub const USER_IPI: MechCost = MechCost {
    send: Cycles(167),
    receive: Cycles(661),
    delivery: Cycles(1_211),
};

/// User IPI across NUMA nodes (Table 6 row 4).
pub const USER_IPI_XNUMA: MechCost = MechCost {
    send: Cycles(178),
    receive: Cycles(883),
    delivery: Cycles(1_782),
};

/// Receiver cost of a `setitimer` signal-based timer (Table 6 row 5).
pub const SETITIMER_RECEIVE: Cycles = Cycles(5_057);

/// Receiver cost of a delegated user timer interrupt (Table 6 row 6).
pub const USER_TIMER_RECEIVE: Cycles = Cycles(642);

/// Cost of the `SENDUIPI` with `UPID.SN = 1` the handler executes to re-arm
/// timer delegation (§5.4: "approximately 123 cycles").
pub const SENDUIPI_SN: Cycles = Cycles(123);

/// ESTIMATE — Shinjuku-style posted interrupt via VT-x (Dune). The paper
/// only states Shinjuku's mechanism is "low-overhead" and performs close to
/// user IPIs (§5.2); the Shinjuku paper (NSDI'19 §5.1) reports a ~1.2 μs
/// preemption overhead. We model it as slightly costlier than a user IPI.
pub const POSTED_IPI: MechCost = MechCost {
    send: Cycles(250),
    receive: Cycles(900),
    delivery: Cycles(1_500),
};

/// Switching and scheduling-path costs (nanoseconds).
#[derive(Clone, Copy, Debug)]
pub struct SwitchCost;

impl SwitchCost {
    /// User-level thread switch within one application — the Skyloft yield
    /// fast path (Table 7: 37 ns).
    pub const UTHREAD_SWITCH: Nanos = Nanos(37);
    /// Skyloft user-level thread creation (Table 7: 191 ns).
    pub const UTHREAD_SPAWN: Nanos = Nanos(191);
    /// Skyloft condvar wake (Table 7: 86 ns); doubles as the user-space
    /// wakeup fast path.
    pub const UTHREAD_WAKE: Nanos = Nanos(86);
    /// Skyloft inter-application switch through the kernel module
    /// (§5.4: 1905 ns).
    pub const INTER_APP_SWITCH: Nanos = Nanos(1_905);
    /// Linux kernel-thread switch, both runnable (§5.4: 1124 ns).
    pub const LINUX_SWITCH_RUNNABLE: Nanos = Nanos(1_124);
    /// Linux switch where one thread wakes another (§5.4: 2471 ns).
    pub const LINUX_SWITCH_WAKEUP: Nanos = Nanos(2_471);
    /// pthread context switch / yield (Table 7: 898 ns).
    pub const PTHREAD_YIELD: Nanos = Nanos(898);
    /// pthread spawn (Table 7: 15418 ns).
    pub const PTHREAD_SPAWN: Nanos = Nanos(15_418);
    /// pthread condvar signal+wake path (Table 7: 2532 ns).
    pub const PTHREAD_CONDVAR: Nanos = Nanos(2_532);
}

/// ESTIMATE — ghOSt scheduling-path costs, calibrated from the ghOSt paper
/// (SOSP'21 §4: ~5 μs global-agent scheduling latency, kernel↔agent message
/// queues, transaction commits) and from this paper's observation that
/// ghOSt's low-load p99 is ~3× Skyloft's (§5.2).
#[derive(Clone, Copy, Debug)]
pub struct GhostCost;

impl GhostCost {
    /// Latency for a kernel message (task wakeup/new) to reach the agent.
    pub const MESSAGE_TO_AGENT: Nanos = Nanos(1_800);
    /// Agent decision + transaction commit for one placement. This is
    /// serialized on the global agent core, making it ghOSt's throughput
    /// ceiling under Shinjuku-style redispatching (§5.2's 80.1%).
    pub const TXN_COMMIT: Nanos = Nanos(1_050);
    /// Kernel-side context-switch work to install the chosen thread,
    /// in addition to the `KERNEL_IPI` mechanism cost.
    pub const INSTALL_THREAD: Nanos = Nanos(2_000);
}

/// Cost model façade: picks the right mechanism variant for a core pair.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    topo: Topology,
}

impl CostModel {
    /// Creates a cost model over a topology.
    pub fn new(topo: Topology) -> Self {
        CostModel { topo }
    }

    /// The topology this model uses.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// User-IPI cost between two cores (NUMA-aware, Table 6 rows 3–4).
    pub fn user_ipi(&self, from: CoreId, to: CoreId) -> MechCost {
        if self.topo.cross_numa(from, to) {
            USER_IPI_XNUMA
        } else {
            USER_IPI
        }
    }

    /// Kernel-IPI cost between two cores. Table 6 measured same-socket
    /// kernel IPIs; we apply the same cross-NUMA delivery inflation ratio
    /// observed for user IPIs (~1.47×) to the delivery component.
    pub fn kernel_ipi(&self, from: CoreId, to: CoreId) -> MechCost {
        if self.topo.cross_numa(from, to) {
            MechCost {
                delivery: Cycles(KERNEL_IPI.delivery.0 * 147 / 100),
                ..KERNEL_IPI
            }
        } else {
            KERNEL_IPI
        }
    }

    /// Signal cost between two cores (NUMA effects are dwarfed by the
    /// kernel path, so a single row is used, as in Table 6).
    pub fn signal(&self, _from: CoreId, _to: CoreId) -> MechCost {
        SIGNAL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_values_in_ns() {
        // Cross-check the cycle→ns conversion against the paper's clock.
        assert_eq!(USER_IPI.send_ns(), Nanos(84)); // 167 cy @ 2 GHz
        assert_eq!(SIGNAL.receive_ns(), Nanos(3_180));
        assert_eq!(KERNEL_IPI.delivery_ns(), Nanos(673));
        assert_eq!(USER_TIMER_RECEIVE.to_nanos(), Nanos(321));
    }

    #[test]
    fn mechanism_ordering_matches_table6() {
        // Signal is the most expensive on every column; user IPI the
        // cheapest to send and receive.
        assert!(SIGNAL.send > KERNEL_IPI.send);
        assert!(KERNEL_IPI.send > USER_IPI.send);
        assert!(SIGNAL.receive > KERNEL_IPI.receive);
        assert!(KERNEL_IPI.receive > USER_IPI.receive);
        assert!(SIGNAL.delivery > KERNEL_IPI.delivery);
        assert!(KERNEL_IPI.delivery > USER_IPI.delivery);
        // Timers: user timer receive beats even the user-IPI receive path
        // (§5.4), and setitimer is close to the signal path.
        assert!(USER_TIMER_RECEIVE < USER_IPI.receive);
        assert!(SETITIMER_RECEIVE > KERNEL_IPI.receive);
    }

    #[test]
    fn numa_selects_cross_socket_costs() {
        let m = CostModel::new(Topology::PAPER_SERVER);
        assert_eq!(m.user_ipi(0, 1), USER_IPI);
        assert_eq!(m.user_ipi(0, 24), USER_IPI_XNUMA);
        assert!(m.kernel_ipi(0, 24).delivery > m.kernel_ipi(0, 1).delivery);
    }

    #[test]
    fn end_to_end_is_delivery_plus_receive() {
        let c = USER_IPI;
        assert_eq!(c.end_to_end_ns(), c.delivery_ns() + c.receive_ns());
        // Paper §1: "preemption overhead is 0.6 μs from sending an interrupt
        // on one core to handling the interrupt on another" — delivery (606
        // ns) matches.
        assert_eq!(c.delivery_ns(), Nanos(606));
    }
}
