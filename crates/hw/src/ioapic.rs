//! Peripheral-interrupt delegation (§6 "Peripheral interrupts").
//!
//! Skyloft's timer-delegation mechanism generalizes: any interrupt whose
//! vector is programmed into a core's `UINV` — an external interrupt
//! routed through the I/O APIC, or a device MSI targeting the local APIC —
//! is recognized as a user interrupt, provided the PIR is kept armed with
//! the SN-self-post trick. That enables interrupt-driven kernel-bypass
//! drivers with neither polling nor kernel signaling.
//!
//! This module models the routing half: redirection-table entries for
//! IRQ lines (I/O APIC) and MSI vectors (device → LAPIC), both resolving
//! to `(core, vector)` deliveries that feed
//! [`crate::UintrFabric::on_interrupt_arrival`].

use crate::CoreId;

/// One redirection-table entry of the I/O APIC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RedirectionEntry {
    /// Destination core.
    pub dest: CoreId,
    /// Vector raised at the destination.
    pub vector: u8,
    /// Masked entries deliver nothing.
    pub masked: bool,
}

/// A delivery produced by a device event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Destination core.
    pub core: CoreId,
    /// Interrupt vector.
    pub vector: u8,
}

/// I/O APIC with 24 IRQ lines (the classic count) plus an MSI table.
#[derive(Clone, Debug)]
pub struct IoApic {
    redirection: Vec<Option<RedirectionEntry>>,
    msi: Vec<Delivery>,
}

/// Number of IRQ lines.
pub const N_IRQ_LINES: usize = 24;

impl Default for IoApic {
    fn default() -> Self {
        Self::new()
    }
}

impl IoApic {
    /// Creates an I/O APIC with all lines masked and no MSI vectors.
    pub fn new() -> Self {
        IoApic {
            redirection: vec![None; N_IRQ_LINES],
            msi: Vec::new(),
        }
    }

    /// Programs a redirection entry for an IRQ line.
    ///
    /// # Panics
    ///
    /// Panics if the line index is out of range.
    pub fn set_redirection(&mut self, line: usize, entry: RedirectionEntry) {
        assert!(line < N_IRQ_LINES, "IRQ line out of range");
        self.redirection[line] = Some(entry);
    }

    /// A device asserts an IRQ line; returns the delivery, if unmasked.
    pub fn assert_irq(&self, line: usize) -> Option<Delivery> {
        let e = self.redirection.get(line).copied().flatten()?;
        if e.masked {
            return None;
        }
        Some(Delivery {
            core: e.dest,
            vector: e.vector,
        })
    }

    /// Allocates an MSI vector for a device (returns the MSI id).
    pub fn alloc_msi(&mut self, core: CoreId, vector: u8) -> usize {
        self.msi.push(Delivery { core, vector });
        self.msi.len() - 1
    }

    /// A device signals its MSI.
    pub fn signal_msi(&self, msi: usize) -> Delivery {
        self.msi[msi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uintr::{Recognition, UittEntry};
    use crate::UintrFabric;

    const NIC_VECTOR: u8 = 0x31;

    /// End-to-end §6 scenario: a NIC RX interrupt delegated to a
    /// user-space driver through the same PIR-arming discipline as the
    /// timer, with no polling and no kernel signal.
    #[test]
    fn nic_msi_delivered_to_user_space_driver() {
        let mut ioapic = IoApic::new();
        let mut fabric = UintrFabric::new(2);
        // Driver thread on core 1 registers for the NIC vector.
        let upid = fabric.alloc_upid(NIC_VECTOR, 1);
        fabric.bind_receiver(1, upid, NIC_VECTOR);
        fabric.set_user_mode(1, true);
        fabric.set_sn(upid, true);
        fabric.senduipi(UittEntry { upid, user_vec: 2 }); // arm the PIR
        let msi = ioapic.alloc_msi(1, NIC_VECTOR);

        // Packet arrives: the device signals its MSI.
        let d = ioapic.signal_msi(msi);
        assert_eq!(
            d,
            Delivery {
                core: 1,
                vector: NIC_VECTOR
            }
        );
        assert_eq!(
            fabric.on_interrupt_arrival(d.core, d.vector),
            Recognition::Pending
        );
        assert!(fabric.deliverable(1));
        let v = fabric.begin_delivery(1);
        assert_eq!(v, 2);
        // Handler re-arms for the next packet, as with timers.
        fabric.senduipi(UittEntry { upid, user_vec: 2 });
        fabric.uiret(1);
        let d2 = ioapic.signal_msi(msi);
        assert_eq!(
            fabric.on_interrupt_arrival(d2.core, d2.vector),
            Recognition::Pending
        );
    }

    #[test]
    fn unarmed_peripheral_interrupt_is_lost_like_timers() {
        let mut ioapic = IoApic::new();
        let mut fabric = UintrFabric::new(1);
        let upid = fabric.alloc_upid(NIC_VECTOR, 0);
        fabric.bind_receiver(0, upid, NIC_VECTOR);
        fabric.set_user_mode(0, true);
        ioapic.set_redirection(
            5,
            RedirectionEntry {
                dest: 0,
                vector: NIC_VECTOR,
                masked: false,
            },
        );
        let d = ioapic.assert_irq(5).expect("unmasked line");
        // No SN-armed PIR: the device interrupt is lost, exactly the §3.2
        // pitfall applied to peripherals.
        assert_eq!(
            fabric.on_interrupt_arrival(d.core, d.vector),
            Recognition::Lost
        );
    }

    #[test]
    fn masked_lines_deliver_nothing() {
        let mut ioapic = IoApic::new();
        ioapic.set_redirection(
            3,
            RedirectionEntry {
                dest: 0,
                vector: 0x40,
                masked: true,
            },
        );
        assert_eq!(ioapic.assert_irq(3), None);
        assert_eq!(ioapic.assert_irq(4), None, "unprogrammed line");
    }

    #[test]
    #[should_panic(expected = "IRQ line out of range")]
    fn bad_line_rejected() {
        IoApic::new().set_redirection(
            N_IRQ_LINES,
            RedirectionEntry {
                dest: 0,
                vector: 1,
                masked: false,
            },
        );
    }
}
