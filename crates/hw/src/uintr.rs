//! Architectural model of Intel User Interrupts (UINTR).
//!
//! State modelled per the Intel SDM and §3.2 of the paper:
//!
//! * **UPID** (User Posted-Interrupt Descriptor), one per receiver thread:
//!   the `PIR` (Posted-Interrupt Requests, a 64-bit bitmap), the `ON`
//!   (Outstanding Notification) and `SN` (Suppress Notification) control
//!   bits, the notification vector `NV`, and the notification destination
//!   `NDST` (the APIC id of the core the receiver runs on).
//! * **UITT** (User-Interrupt Target Table), one per sender: each entry
//!   names a receiver's UPID and a user vector (0..64).
//! * Per-core receiver state: `UINV` (the vector the core recognizes as a
//!   user-interrupt notification), `UIRR` (User-Interrupt Request Register,
//!   the 64-bit pending bitmap), `UIF` (User-Interrupt Flag, the maskable
//!   enable bit), the registered handler, and whether the core currently
//!   executes in user mode.
//!
//! The three-phase pipeline of §3.2 — *identification* (vector == UINV),
//! *processing* (PIR drained into UIRR), *delivery* (user mode and UIF set)
//! — maps to [`UintrFabric::on_interrupt_arrival`],
//! [`UintrFabric::deliverable`] and [`UintrFabric::begin_delivery`].
//!
//! The model reproduces the paper's central discovery mechanistically:
//! pointing `UINV` at the LAPIC timer vector is *not* enough to get timer
//! interrupts in user space, because a timer event does not write the PIR.
//! The receiver must first execute `SENDUIPI` to itself with `SN` set so
//! the PIR is non-empty when the timer fires, and the handler must re-arm
//! the PIR the same way before returning (Listing 1 line 5). Tests at the
//! bottom of this file pin down both the failure and the success path.

use crate::CoreId;

/// Handle to an allocated UPID.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct UpidId(pub usize);

/// User Posted-Interrupt Descriptor.
#[derive(Clone, Debug)]
pub struct Upid {
    /// Posted-Interrupt Requests: one bit per user vector.
    pub pir: u64,
    /// Outstanding Notification: a notification IPI is in flight or pending.
    pub on: bool,
    /// Suppress Notification: posting sets PIR but sends no IPI.
    pub sn: bool,
    /// Notification vector delivered to the destination core.
    pub nv: u8,
    /// Notification destination: core the receiver thread runs on.
    pub ndst: CoreId,
}

/// One entry of a sender's User-Interrupt Target Table.
#[derive(Clone, Copy, Debug)]
pub struct UittEntry {
    /// The receiver's UPID.
    pub upid: UpidId,
    /// User vector (0..64) to post.
    pub user_vec: u8,
}

/// Per-core receiver-side state.
#[derive(Clone, Debug, Default)]
struct CoreUintr {
    /// UINV: which notification vector this core treats as a user interrupt.
    uinv: Option<u8>,
    /// UIRR: pending user-interrupt vectors.
    uirr: u64,
    /// UIF: user interrupts enabled (STUI/CLUI; cleared during delivery).
    uif: bool,
    /// Whether a user-interrupt handler is registered (UIHANDLER MSR).
    handler: bool,
    /// UPID of the receiver context currently active on this core.
    upid: Option<UpidId>,
    /// Whether the core currently executes user code (delivery requires it).
    user_mode: bool,
}

/// Result of executing `SENDUIPI`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SendOutcome {
    /// The PIR bit was set and a notification IPI must be delivered to the
    /// destination core with the given vector.
    Notify {
        /// Destination core of the notification IPI.
        dest: CoreId,
        /// Notification vector (the receiver's `NV`).
        vector: u8,
    },
    /// The PIR bit was set but no IPI is generated (`SN` set, or a
    /// notification is already outstanding).
    Suppressed,
}

/// Result of an interrupt arriving at a core.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Recognition {
    /// Vector did not match `UINV`: handled as a legacy (kernel) interrupt.
    Legacy,
    /// Vector matched `UINV` and draining the PIR left user interrupts
    /// pending in the UIRR.
    Pending,
    /// Vector matched `UINV` but the PIR was empty, so no user interrupt is
    /// recognized — the event is lost. This is the §3.2 pitfall for
    /// hardware timer interrupts before the SN-self-IPI arming trick.
    Lost,
}

/// Counters exposed for tests and the microbenchmark harness.
#[derive(Clone, Debug, Default)]
pub struct UintrStats {
    /// `SENDUIPI` executions that generated a notification IPI.
    pub notifications_sent: u64,
    /// `SENDUIPI` executions that were suppressed (SN or ON).
    pub sends_suppressed: u64,
    /// Interrupts recognized with pending user vectors.
    pub recognized: u64,
    /// Interrupts that matched UINV but found an empty PIR (lost).
    pub lost: u64,
    /// User interrupts delivered to handlers.
    pub delivered: u64,
}

/// The machine-wide UINTR state: all UPIDs plus per-core receiver state.
#[derive(Clone, Debug)]
pub struct UintrFabric {
    upids: Vec<Upid>,
    cores: Vec<CoreUintr>,
    /// Event counters.
    pub stats: UintrStats,
}

impl UintrFabric {
    /// Creates the fabric for `n_cores` cores with no UPIDs allocated.
    pub fn new(n_cores: usize) -> Self {
        UintrFabric {
            upids: Vec::new(),
            cores: vec![CoreUintr::default(); n_cores],
            stats: UintrStats::default(),
        }
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Allocates a UPID for a receiver thread whose notifications target
    /// `ndst` with vector `nv`.
    pub fn alloc_upid(&mut self, nv: u8, ndst: CoreId) -> UpidId {
        self.upids.push(Upid {
            pir: 0,
            on: false,
            sn: false,
            nv,
            ndst,
        });
        UpidId(self.upids.len() - 1)
    }

    /// Read access to a UPID (tests, harness).
    pub fn upid(&self, id: UpidId) -> &Upid {
        &self.upids[id.0]
    }

    /// Whether the UPID's PIR holds any pending vector — i.e. the §3.2
    /// arming is in place and the next timer interrupt will be recognized.
    /// Watchdog-style monitors poll this to detect a lost arming.
    pub fn pir_armed(&self, id: UpidId) -> bool {
        self.upids[id.0].pir != 0
    }

    /// UPID of the receiver context currently bound to `core`, if any
    /// (invariant checkers verify bindings stay intact across events).
    pub fn receiver_upid(&self, core: CoreId) -> Option<UpidId> {
        self.cores[core].upid
    }

    /// Sets or clears the Suppress-Notification bit of a UPID.
    pub fn set_sn(&mut self, id: UpidId, sn: bool) {
        self.upids[id.0].sn = sn;
    }

    /// Updates the notification destination when the receiver migrates.
    pub fn set_ndst(&mut self, id: UpidId, ndst: CoreId) {
        self.upids[id.0].ndst = ndst;
    }

    /// Binds a receiver context to a core: programs `UINV`, registers the
    /// handler, attaches the UPID, and sets `UIF`.
    pub fn bind_receiver(&mut self, core: CoreId, upid: UpidId, uinv: u8) {
        let c = &mut self.cores[core];
        c.uinv = Some(uinv);
        c.handler = true;
        c.upid = Some(upid);
        c.uif = true;
        self.upids[upid.0].ndst = core;
    }

    /// Detaches the receiver context from a core (e.g. application switch).
    pub fn unbind_receiver(&mut self, core: CoreId) {
        let c = &mut self.cores[core];
        c.uinv = None;
        c.handler = false;
        c.upid = None;
        c.uirr = 0;
    }

    /// Sets whether the core currently runs user code.
    pub fn set_user_mode(&mut self, core: CoreId, user: bool) {
        self.cores[core].user_mode = user;
    }

    /// STUI/CLUI: sets the User-Interrupt Flag.
    pub fn set_uif(&mut self, core: CoreId, uif: bool) {
        self.cores[core].uif = uif;
    }

    /// Returns the core's UIF.
    pub fn uif(&self, core: CoreId) -> bool {
        self.cores[core].uif
    }

    /// Returns the core's pending UIRR bitmap.
    pub fn uirr(&self, core: CoreId) -> u64 {
        self.cores[core].uirr
    }

    /// Executes `SENDUIPI` against a UITT entry.
    ///
    /// Sets the `user_vec` bit in the target UPID's PIR. If neither `SN` nor
    /// `ON` is set, marks a notification outstanding and returns
    /// [`SendOutcome::Notify`]; the caller (the event orchestrator) is
    /// responsible for delivering the IPI to `dest` after the modelled wire
    /// latency.
    ///
    /// # Panics
    ///
    /// Panics if `user_vec` is 64 or larger (the UIRR holds 64 vectors).
    pub fn senduipi(&mut self, entry: UittEntry) -> SendOutcome {
        assert!(entry.user_vec < 64, "user vector out of range");
        let upid = &mut self.upids[entry.upid.0];
        upid.pir |= 1u64 << entry.user_vec;
        if !upid.sn && !upid.on {
            upid.on = true;
            self.stats.notifications_sent += 1;
            SendOutcome::Notify {
                dest: upid.ndst,
                vector: upid.nv,
            }
        } else {
            self.stats.sends_suppressed += 1;
            SendOutcome::Suppressed
        }
    }

    /// An interrupt with `vector` arrives at `core` (notification IPI or a
    /// hardware event such as the LAPIC timer).
    ///
    /// Implements identification and processing (§3.2): when the vector
    /// matches `UINV`, the PIR of the core's active UPID is drained into the
    /// UIRR and the outstanding-notification bit is cleared. When the PIR
    /// was empty the event is **lost** — user-interrupt recognition found
    /// nothing to post. Delivery is a separate step because it can only
    /// happen once the core executes user code with `UIF` set.
    pub fn on_interrupt_arrival(&mut self, core: CoreId, vector: u8) -> Recognition {
        let c = &mut self.cores[core];
        if c.uinv != Some(vector) || !c.handler {
            return Recognition::Legacy;
        }
        let Some(upid_id) = c.upid else {
            return Recognition::Legacy;
        };
        let upid = &mut self.upids[upid_id.0];
        upid.on = false;
        let pir = std::mem::take(&mut upid.pir);
        if pir == 0 {
            self.stats.lost += 1;
            return Recognition::Lost;
        }
        c.uirr |= pir;
        self.stats.recognized += 1;
        Recognition::Pending
    }

    /// Whether a user interrupt can be delivered on `core` right now
    /// (pending UIRR bits, user mode, and UIF set).
    pub fn deliverable(&self, core: CoreId) -> bool {
        let c = &self.cores[core];
        c.uirr != 0 && c.user_mode && c.uif && c.handler
    }

    /// Delivers the highest-priority pending user interrupt: clears its UIRR
    /// bit, clears `UIF` (the handler runs with user interrupts masked), and
    /// returns the vector.
    ///
    /// # Panics
    ///
    /// Panics if nothing is deliverable; callers must check
    /// [`Self::deliverable`] first.
    pub fn begin_delivery(&mut self, core: CoreId) -> u8 {
        assert!(self.deliverable(core), "no deliverable user interrupt");
        let c = &mut self.cores[core];
        let vec = 63 - c.uirr.leading_zeros() as u8;
        c.uirr &= !(1u64 << vec);
        c.uif = false;
        self.stats.delivered += 1;
        vec
    }

    /// `UIRET`: the handler returns; user interrupts are re-enabled.
    pub fn uiret(&mut self, core: CoreId) {
        self.cores[core].uif = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TIMER_VEC: u8 = 0xec;
    const NV: u8 = 0xe1;

    fn fabric_with_receiver(core: CoreId) -> (UintrFabric, UpidId) {
        let mut f = UintrFabric::new(4);
        let upid = f.alloc_upid(NV, core);
        f.bind_receiver(core, upid, NV);
        f.set_user_mode(core, true);
        (f, upid)
    }

    #[test]
    fn senduipi_notifies_once() {
        let (mut f, upid) = fabric_with_receiver(1);
        let e = UittEntry { upid, user_vec: 3 };
        assert_eq!(
            f.senduipi(e),
            SendOutcome::Notify {
                dest: 1,
                vector: NV
            }
        );
        // Second post while the first notification is outstanding: PIR
        // updated, no second IPI.
        assert_eq!(
            f.senduipi(UittEntry { upid, user_vec: 5 }),
            SendOutcome::Suppressed
        );
        assert_eq!(f.upid(upid).pir, (1 << 3) | (1 << 5));
    }

    #[test]
    fn sn_suppresses_notification() {
        let (mut f, upid) = fabric_with_receiver(0);
        f.set_sn(upid, true);
        assert_eq!(
            f.senduipi(UittEntry { upid, user_vec: 0 }),
            SendOutcome::Suppressed
        );
        assert_eq!(f.upid(upid).pir, 1);
        assert!(!f.upid(upid).on, "SN posting must not mark ON");
    }

    #[test]
    fn arrival_drains_pir_into_uirr() {
        let (mut f, upid) = fabric_with_receiver(2);
        f.senduipi(UittEntry { upid, user_vec: 7 });
        assert_eq!(f.on_interrupt_arrival(2, NV), Recognition::Pending);
        assert_eq!(f.uirr(2), 1 << 7);
        assert_eq!(f.upid(upid).pir, 0);
        assert!(!f.upid(upid).on);
    }

    #[test]
    fn wrong_vector_is_legacy() {
        let (mut f, upid) = fabric_with_receiver(2);
        f.senduipi(UittEntry { upid, user_vec: 7 });
        assert_eq!(f.on_interrupt_arrival(2, 0x20), Recognition::Legacy);
        assert_eq!(f.uirr(2), 0);
    }

    #[test]
    fn delivery_requires_user_mode_and_uif() {
        let (mut f, upid) = fabric_with_receiver(0);
        f.senduipi(UittEntry { upid, user_vec: 1 });
        f.on_interrupt_arrival(0, NV);
        assert!(f.deliverable(0));
        f.set_user_mode(0, false);
        assert!(!f.deliverable(0), "kernel mode blocks delivery");
        f.set_user_mode(0, true);
        f.set_uif(0, false);
        assert!(!f.deliverable(0), "UIF clear blocks delivery");
        f.set_uif(0, true);
        let v = f.begin_delivery(0);
        assert_eq!(v, 1);
        assert!(!f.uif(0), "handler runs with UIF cleared");
        f.uiret(0);
        assert!(f.uif(0));
    }

    #[test]
    fn delivery_priority_is_highest_vector() {
        let (mut f, upid) = fabric_with_receiver(0);
        for v in [2u8, 9, 5] {
            f.senduipi(UittEntry { upid, user_vec: v });
        }
        f.on_interrupt_arrival(0, NV);
        assert_eq!(f.begin_delivery(0), 9);
        f.uiret(0);
        assert_eq!(f.begin_delivery(0), 5);
        f.uiret(0);
        assert_eq!(f.begin_delivery(0), 2);
    }

    /// §3.2 pitfall: pointing UINV at the timer vector without arming the
    /// PIR loses the timer interrupt.
    #[test]
    fn timer_without_sn_arming_is_lost() {
        let mut f = UintrFabric::new(1);
        let upid = f.alloc_upid(TIMER_VEC, 0);
        f.bind_receiver(0, upid, TIMER_VEC);
        f.set_user_mode(0, true);
        // The LAPIC timer fires: vector matches UINV but the PIR is empty.
        assert_eq!(f.on_interrupt_arrival(0, TIMER_VEC), Recognition::Lost);
        assert!(!f.deliverable(0));
        assert_eq!(f.stats.lost, 1);
    }

    /// §3.2 trick: a self-SENDUIPI with SN set arms the PIR without
    /// generating an IPI; the next timer interrupt is then recognized and
    /// delivered in user space, and the handler re-arms.
    #[test]
    fn timer_with_sn_arming_is_delivered_and_rearmed() {
        let mut f = UintrFabric::new(1);
        let upid = f.alloc_upid(TIMER_VEC, 0);
        f.bind_receiver(0, upid, TIMER_VEC);
        f.set_user_mode(0, true);
        f.set_sn(upid, true);
        // Step (2) of the configuration: populate the PIR.
        let arm = UittEntry { upid, user_vec: 0 };
        assert_eq!(f.senduipi(arm), SendOutcome::Suppressed);
        assert_eq!(f.stats.notifications_sent, 0, "no real IPI generated");

        // First timer interrupt: recognized and deliverable.
        assert_eq!(f.on_interrupt_arrival(0, TIMER_VEC), Recognition::Pending);
        assert!(f.deliverable(0));
        let _v = f.begin_delivery(0);
        // Step (3): handler re-arms before returning (Listing 1 line 5).
        assert_eq!(f.senduipi(arm), SendOutcome::Suppressed);
        f.uiret(0);

        // Second timer interrupt is also recognized.
        assert_eq!(f.on_interrupt_arrival(0, TIMER_VEC), Recognition::Pending);
        assert_eq!(f.stats.recognized, 2);
        assert_eq!(f.stats.lost, 0);
    }

    /// Without the handler re-arm, the *second* timer interrupt is lost.
    #[test]
    fn missing_rearm_loses_next_timer() {
        let mut f = UintrFabric::new(1);
        let upid = f.alloc_upid(TIMER_VEC, 0);
        f.bind_receiver(0, upid, TIMER_VEC);
        f.set_user_mode(0, true);
        f.set_sn(upid, true);
        f.senduipi(UittEntry { upid, user_vec: 0 });
        assert_eq!(f.on_interrupt_arrival(0, TIMER_VEC), Recognition::Pending);
        f.begin_delivery(0);
        f.uiret(0); // Handler "forgot" the re-arm.
        assert_eq!(f.on_interrupt_arrival(0, TIMER_VEC), Recognition::Lost);
    }

    #[test]
    fn unbind_clears_receiver_state() {
        let (mut f, upid) = fabric_with_receiver(0);
        f.senduipi(UittEntry { upid, user_vec: 0 });
        f.on_interrupt_arrival(0, NV);
        f.unbind_receiver(0);
        assert!(!f.deliverable(0));
        assert_eq!(f.on_interrupt_arrival(0, NV), Recognition::Legacy);
    }

    #[test]
    fn receiver_upid_tracks_bind_and_unbind() {
        let (mut f, upid) = fabric_with_receiver(1);
        assert_eq!(f.receiver_upid(1), Some(upid));
        assert_eq!(f.receiver_upid(0), None);
        f.unbind_receiver(1);
        assert_eq!(f.receiver_upid(1), None);
    }

    #[test]
    fn ndst_migration_redirects_notification() {
        let (mut f, upid) = fabric_with_receiver(1);
        f.set_ndst(upid, 3);
        match f.senduipi(UittEntry { upid, user_vec: 0 }) {
            SendOutcome::Notify { dest, .. } => assert_eq!(dest, 3),
            other => panic!("expected Notify, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "user vector out of range")]
    fn vector_64_rejected() {
        let (mut f, upid) = fabric_with_receiver(0);
        f.senduipi(UittEntry { upid, user_vec: 64 });
    }
}
