//! Intel Memory Protection Keys (MPK) model — the §6 "shared memory
//! protection" discussion.
//!
//! Skyloft's multi-application design shares scheduler state (runqueues,
//! task metadata) across address spaces, which §6 identifies as a safety
//! concern: a buggy or malicious application could tamper with scheduling
//! decisions. The proposed mitigation is MPK: tag the shared scheduler
//! pages with a protection key, and have a *guardian* trampoline set the
//! PKRU access rights to read-only before entering application code and
//! back to read-write when the scheduler runs.
//!
//! This module models the architecture: 16 keys, a per-core `PKRU`
//! register with two bits per key (AD = access disable, WD = write
//! disable), page→key tagging, and the `WRPKRU` instruction — including
//! the §6 caveat that `WRPKRU` is unprivileged, so an application that
//! *executes it* can lift the protection (the paper points at
//! Hodor/ERIM-style binary scanning for that residual risk).

use crate::CoreId;

/// Number of protection keys (x86 MPK).
pub const N_KEYS: usize = 16;

/// Access rights for one key, as encoded in PKRU.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KeyRights {
    /// AD=0, WD=0: full access.
    ReadWrite,
    /// AD=0, WD=1: read-only.
    ReadOnly,
    /// AD=1: no access.
    None,
}

/// Outcome of a modelled memory access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessOutcome {
    /// Access permitted.
    Ok,
    /// Protection-key fault (SIGSEGV with PKUERR on real hardware).
    PkFault,
}

/// A per-core PKRU register.
#[derive(Clone, Copy, Debug)]
pub struct Pkru {
    bits: u32,
}

impl Pkru {
    /// All keys fully accessible (PKRU = 0).
    pub const fn permissive() -> Pkru {
        Pkru { bits: 0 }
    }

    /// Reads the rights for `key`.
    pub fn rights(&self, key: usize) -> KeyRights {
        assert!(key < N_KEYS, "protection key out of range");
        let ad = self.bits >> (2 * key) & 1;
        let wd = self.bits >> (2 * key + 1) & 1;
        match (ad, wd) {
            (1, _) => KeyRights::None,
            (0, 1) => KeyRights::ReadOnly,
            _ => KeyRights::ReadWrite,
        }
    }

    /// `WRPKRU`: sets the rights for `key`. Unprivileged on real hardware —
    /// which is exactly the residual risk §6 describes.
    pub fn wrpkru(&mut self, key: usize, rights: KeyRights) {
        assert!(key < N_KEYS, "protection key out of range");
        let (ad, wd) = match rights {
            KeyRights::ReadWrite => (0u32, 0u32),
            KeyRights::ReadOnly => (0, 1),
            KeyRights::None => (1, 0),
        };
        self.bits &= !(0b11 << (2 * key));
        self.bits |= (wd << (2 * key + 1)) | (ad << (2 * key));
    }

    /// Raw register value.
    pub fn bits(&self) -> u32 {
        self.bits
    }
}

/// Machine MPK state: per-core PKRU plus page→key tags. Pages are modelled
/// as abstract region ids rather than addresses.
#[derive(Clone, Debug)]
pub struct MpkDomain {
    pkru: Vec<Pkru>,
    region_keys: Vec<usize>,
}

/// The protection key Skyloft's guardian assigns to the shared scheduler
/// region in this model.
pub const SCHED_KEY: usize = 1;

impl MpkDomain {
    /// Creates state for `n_cores` cores and `n_regions` tagged regions
    /// (all initially key 0 = default).
    pub fn new(n_cores: usize, n_regions: usize) -> Self {
        MpkDomain {
            pkru: vec![Pkru::permissive(); n_cores],
            region_keys: vec![0; n_regions],
        }
    }

    /// Tags a region with a key (`pkey_mprotect`).
    pub fn tag_region(&mut self, region: usize, key: usize) {
        assert!(key < N_KEYS, "protection key out of range");
        self.region_keys[region] = key;
    }

    /// The core executes `WRPKRU` to change its rights for `key`.
    pub fn wrpkru(&mut self, core: CoreId, key: usize, rights: KeyRights) {
        self.pkru[core].wrpkru(key, rights);
    }

    /// Checks a read of `region` from `core`.
    pub fn read(&self, core: CoreId, region: usize) -> AccessOutcome {
        match self.pkru[core].rights(self.region_keys[region]) {
            KeyRights::None => AccessOutcome::PkFault,
            _ => AccessOutcome::Ok,
        }
    }

    /// Checks a write to `region` from `core`.
    pub fn write(&self, core: CoreId, region: usize) -> AccessOutcome {
        match self.pkru[core].rights(self.region_keys[region]) {
            KeyRights::ReadWrite => AccessOutcome::Ok,
            _ => AccessOutcome::PkFault,
        }
    }

    /// The guardian entry sequence (§6): before jumping into application
    /// code, drop the scheduler region to read-only.
    pub fn guardian_enter_app(&mut self, core: CoreId) {
        self.wrpkru(core, SCHED_KEY, KeyRights::ReadOnly);
    }

    /// The guardian exit sequence: back in scheduler code, restore write
    /// access.
    pub fn guardian_enter_sched(&mut self, core: CoreId) {
        self.wrpkru(core, SCHED_KEY, KeyRights::ReadWrite);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHARED_RQ: usize = 0;
    const APP_HEAP: usize = 1;

    fn domain() -> MpkDomain {
        let mut d = MpkDomain::new(2, 2);
        d.tag_region(SHARED_RQ, SCHED_KEY);
        d
    }

    #[test]
    fn pkru_encoding_round_trips() {
        let mut p = Pkru::permissive();
        for key in 0..N_KEYS {
            for r in [KeyRights::ReadOnly, KeyRights::None, KeyRights::ReadWrite] {
                p.wrpkru(key, r);
                assert_eq!(p.rights(key), r, "key {key}");
            }
        }
        assert_eq!(p.bits(), 0);
    }

    #[test]
    fn guardian_blocks_app_writes_to_shared_runqueue() {
        let mut d = domain();
        // Scheduler context: full access.
        assert_eq!(d.write(0, SHARED_RQ), AccessOutcome::Ok);
        // Enter application: runqueue becomes read-only, app heap untouched.
        d.guardian_enter_app(0);
        assert_eq!(d.read(0, SHARED_RQ), AccessOutcome::Ok);
        assert_eq!(d.write(0, SHARED_RQ), AccessOutcome::PkFault);
        assert_eq!(d.write(0, APP_HEAP), AccessOutcome::Ok);
        // Back in the scheduler: writes work again.
        d.guardian_enter_sched(0);
        assert_eq!(d.write(0, SHARED_RQ), AccessOutcome::Ok);
    }

    #[test]
    fn protection_is_per_core() {
        let mut d = domain();
        d.guardian_enter_app(0);
        // Core 1 is still in scheduler context.
        assert_eq!(d.write(0, SHARED_RQ), AccessOutcome::PkFault);
        assert_eq!(d.write(1, SHARED_RQ), AccessOutcome::Ok);
    }

    #[test]
    fn wrpkru_is_unprivileged_the_residual_risk() {
        // §6: "the application could potentially modify permissions using
        // the WRPKRU instruction" — the model reflects that the protection
        // is advisory against code that executes WRPKRU itself.
        let mut d = domain();
        d.guardian_enter_app(0);
        assert_eq!(d.write(0, SHARED_RQ), AccessOutcome::PkFault);
        d.wrpkru(0, SCHED_KEY, KeyRights::ReadWrite); // malicious app
        assert_eq!(d.write(0, SHARED_RQ), AccessOutcome::Ok);
    }

    #[test]
    fn access_disable_blocks_reads_too() {
        let mut d = domain();
        d.wrpkru(0, SCHED_KEY, KeyRights::None);
        assert_eq!(d.read(0, SHARED_RQ), AccessOutcome::PkFault);
        assert_eq!(d.write(0, SHARED_RQ), AccessOutcome::PkFault);
    }
}
