//! Per-core local APIC model: the periodic timer and IPI bookkeeping.
//!
//! Skyloft programs the LAPIC timer at up to 100 kHz (Table 5) and receives
//! the resulting interrupts in user space via the UINTR delegation of §3.2.
//! The APIC model only holds configuration; the event orchestrator in
//! `skyloft-core` schedules the actual timer-fire events from
//! [`TimerConfig::period`].

use skyloft_sim::Nanos;

use crate::CoreId;

/// Configuration of one core's LAPIC timer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerConfig {
    /// Periodic frequency in Hz; 0 disables the timer.
    pub hz: u64,
    /// Interrupt vector raised on expiry.
    pub vector: u8,
    /// Whether the timer is running.
    pub enabled: bool,
}

impl TimerConfig {
    /// A disabled timer.
    pub const fn disabled(vector: u8) -> Self {
        TimerConfig {
            hz: 0,
            vector,
            enabled: false,
        }
    }

    /// The timer period.
    ///
    /// # Panics
    ///
    /// Panics if the timer frequency is zero.
    pub fn period(&self) -> Nanos {
        assert!(self.hz > 0, "period of a disabled timer");
        Nanos(1_000_000_000 / self.hz)
    }
}

/// The machine's local APICs (one timer per core).
#[derive(Clone, Debug)]
pub struct Apic {
    timers: Vec<TimerConfig>,
}

/// Default timer vector used by the Skyloft configuration (arbitrary high
/// vector, matching the style of the Linux LAPIC timer vector 0xec).
pub const TIMER_VECTOR: u8 = 0xec;

impl Apic {
    /// Creates APICs for `n_cores` cores with disabled timers.
    pub fn new(n_cores: usize) -> Self {
        Apic {
            timers: vec![TimerConfig::disabled(TIMER_VECTOR); n_cores],
        }
    }

    /// The timer configuration of a core.
    pub fn timer(&self, core: CoreId) -> TimerConfig {
        self.timers[core]
    }

    /// Sets the timer frequency of a core (the kernel-module
    /// `skyloft_timer_set_hz` lands here).
    pub fn set_hz(&mut self, core: CoreId, hz: u64) {
        self.timers[core].hz = hz;
    }

    /// Enables or disables the periodic timer of a core.
    pub fn set_enabled(&mut self, core: CoreId, enabled: bool) {
        self.timers[core].enabled = enabled;
    }

    /// Whether the core's timer is enabled with a nonzero frequency.
    pub fn timer_active(&self, core: CoreId) -> bool {
        let t = self.timers[core];
        t.enabled && t.hz > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_of_100khz_is_10us() {
        let t = TimerConfig {
            hz: 100_000,
            vector: TIMER_VECTOR,
            enabled: true,
        };
        assert_eq!(t.period(), Nanos::from_us(10));
    }

    #[test]
    fn period_of_linux_250hz() {
        let t = TimerConfig {
            hz: 250,
            vector: TIMER_VECTOR,
            enabled: true,
        };
        assert_eq!(t.period(), Nanos::from_ms(4));
    }

    #[test]
    #[should_panic(expected = "period of a disabled timer")]
    fn zero_hz_period_panics() {
        TimerConfig::disabled(0).period();
    }

    #[test]
    fn enable_and_configure() {
        let mut a = Apic::new(2);
        assert!(!a.timer_active(0));
        a.set_hz(0, 1000);
        assert!(!a.timer_active(0), "hz alone does not enable");
        a.set_enabled(0, true);
        assert!(a.timer_active(0));
        assert!(!a.timer_active(1));
        assert_eq!(a.timer(0).period(), Nanos::from_ms(1));
    }
}
