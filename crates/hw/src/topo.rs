//! Machine topology: sockets and core placement.
//!
//! The paper's testbed is a dual-socket machine with 24 cores per socket
//! (Xeon Gold 5418Y). Cross-socket user IPIs have measurably higher
//! delivery latency (Table 6), which the cost model keys off this topology.

use crate::CoreId;

/// A two-level topology: `sockets × cores_per_socket` cores, numbered
/// socket-major (cores 0..cps on socket 0, and so on).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Number of sockets (NUMA nodes).
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
}

impl Topology {
    /// The paper's testbed: 2 sockets × 24 cores.
    pub const PAPER_SERVER: Topology = Topology {
        sockets: 2,
        cores_per_socket: 24,
    };

    /// A single-socket topology with `n` cores (unit tests, examples).
    pub const fn single(n: usize) -> Topology {
        Topology {
            sockets: 1,
            cores_per_socket: n,
        }
    }

    /// Total core count.
    pub const fn n_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Socket a core belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn socket_of(&self, core: CoreId) -> usize {
        assert!(core < self.n_cores(), "core {core} out of range");
        core / self.cores_per_socket
    }

    /// Whether two cores are on different sockets.
    pub fn cross_numa(&self, a: CoreId, b: CoreId) -> bool {
        self.socket_of(a) != self.socket_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_server_counts() {
        let t = Topology::PAPER_SERVER;
        assert_eq!(t.n_cores(), 48);
        assert_eq!(t.socket_of(0), 0);
        assert_eq!(t.socket_of(23), 0);
        assert_eq!(t.socket_of(24), 1);
        assert_eq!(t.socket_of(47), 1);
    }

    #[test]
    fn cross_numa_detection() {
        let t = Topology::PAPER_SERVER;
        assert!(!t.cross_numa(0, 23));
        assert!(t.cross_numa(0, 24));
        assert!(!t.cross_numa(30, 40));
    }

    #[test]
    fn single_socket_never_cross() {
        let t = Topology::single(8);
        assert_eq!(t.n_cores(), 8);
        assert!(!t.cross_numa(0, 7));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_core_panics() {
        Topology::single(4).socket_of(4);
    }
}
