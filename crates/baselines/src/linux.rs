//! Native Linux scheduling model (SCHED_RR / CFS / EEVDF, §5.1).
//!
//! The algorithms are the same `skyloft-policies` implementations; what
//! makes Linux slow at μs scale is the machinery (§2.2): kernel-thread
//! context switches (§5.4: 1124 ns runnable / 2471 ns wakeup), kernel wake
//! paths, and a scheduler tick capped at `CONFIG_HZ = 1000` (Table 5 note),
//! versus Skyloft's 100 kHz user-space timer.

use skyloft::{Platform, PreemptMechanism, SchedParams};
use skyloft_hw::costs::SwitchCost;
use skyloft_hw::Topology;
use skyloft_policies::{Cfs, Eevdf, RoundRobin};
use skyloft_sim::Nanos;

/// The Linux platform at the given `CONFIG_HZ`.
///
/// The measured 2471 ns wake-another-thread switch (§5.4) is split into the
/// waker's syscall-side cost and the wakee-side latency; the split is an
/// ESTIMATE (the paper measures only the sum).
pub fn platform(topo: Topology, hz: u64) -> Platform {
    assert!(hz <= 1_000, "Linux timer frequency is capped at 1000 Hz");
    Platform {
        name: "Linux",
        topo,
        mech: PreemptMechanism::KernelTick { hz },
        same_app_switch: SwitchCost::LINUX_SWITCH_RUNNABLE,
        // The kernel switches mm either way; same cost.
        cross_app_switch: SwitchCost::LINUX_SWITCH_RUNNABLE,
        wake_cost: Nanos(1_000),
        wake_latency: SwitchCost::LINUX_SWITCH_WAKEUP - Nanos(1_000),
        dispatch_cost: Nanos::ZERO,
        dispatch_latency: Nanos::ZERO,
        dedicated_dispatcher: false,
    }
}

/// `chrt -r` SCHED_RR with Table 5's default 100 ms slice at 250 Hz.
pub fn rr_default() -> RoundRobin {
    RoundRobin::new(Some(SchedParams::LINUX_RR_DEFAULT.time_slice))
}

/// CFS with Table 5 default parameters (3 ms granularity, 24 ms latency).
pub fn cfs_default() -> Cfs {
    Cfs::new(SchedParams::LINUX_CFS_DEFAULT)
}

/// CFS tuned for wakeup latency (Table 5: 12.5 μs granularity, 50 μs
/// latency at 1000 Hz) — still tick-limited.
pub fn cfs_tuned() -> Cfs {
    Cfs::new(SchedParams::LINUX_CFS_TUNED)
}

/// EEVDF with Table 5 default parameters (Linux v6.8).
pub fn eevdf_default() -> Eevdf {
    Eevdf::new(SchedParams::LINUX_EEVDF_DEFAULT)
}

/// EEVDF tuned (Table 5: 12.5 μs base slice).
pub fn eevdf_tuned() -> Eevdf {
    Eevdf::new(SchedParams::LINUX_EEVDF_TUNED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_period_at_least_1ms() {
        let p = platform(Topology::single(4), 1_000);
        match p.mech {
            PreemptMechanism::KernelTick { hz } => assert_eq!(hz, 1_000),
            other => panic!("unexpected mechanism {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "capped at 1000 Hz")]
    fn rejects_untunable_hz() {
        platform(Topology::single(4), 100_000);
    }

    #[test]
    fn wake_path_sums_to_measured_cost() {
        let p = platform(Topology::single(4), 250);
        assert_eq!(
            p.wake_cost + p.wake_latency,
            SwitchCost::LINUX_SWITCH_WAKEUP
        );
    }
}
