//! ghOSt model (SOSP'21): user-space *delegation* of kernel scheduling.
//!
//! ghOSt keeps scheduling decisions in a user-space agent but the scheduled
//! entities are kernel threads: every wakeup/new-task event travels from
//! the kernel to the agent through message queues, every placement is a
//! transaction committed back into the kernel, and every preemption is a
//! kernel IPI followed by a kernel context switch (Figure 1 ①). That
//! round-trip is why the paper measures ghOSt at 80.1% of Skyloft's
//! throughput with ~3× the low-load tail latency (§5.2).

use skyloft::{Platform, PreemptMechanism};
use skyloft_hw::costs::{GhostCost, SwitchCost};
use skyloft_hw::Topology;
use skyloft_policies::Shinjuku;
use skyloft_sim::Nanos;

/// The ghOSt platform: a dedicated global-agent core, kernel-IPI
/// preemption, kernel-thread switching.
pub fn platform(topo: Topology) -> Platform {
    Platform {
        name: "ghOSt",
        topo,
        mech: PreemptMechanism::KernelIpi,
        // ghOSt schedules kthreads: every switch is a kernel switch.
        same_app_switch: SwitchCost::LINUX_SWITCH_RUNNABLE,
        cross_app_switch: SwitchCost::LINUX_SWITCH_RUNNABLE,
        wake_cost: Nanos(500),
        // A wakeup must reach the agent as a kernel message before the
        // agent can react.
        wake_latency: GhostCost::MESSAGE_TO_AGENT,
        // Each placement costs an agent decision plus a transaction
        // commit, serialized on the agent core.
        dispatch_cost: GhostCost::TXN_COMMIT,
        // The committed thread is installed via the kernel scheduler.
        dispatch_latency: GhostCost::INSTALL_THREAD + SwitchCost::LINUX_SWITCH_WAKEUP,
        dedicated_dispatcher: true,
    }
}

/// The ghOSt-Shinjuku global agent of §5.2: the same centralized policy,
/// running on the ghOSt machinery.
pub fn shinjuku_agent(quantum: Option<Nanos>) -> Shinjuku {
    Shinjuku::new(quantum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_dominates_low_load_latency() {
        let p = platform(Topology::PAPER_SERVER);
        // One request's scheduling overhead at idle: wake → agent →
        // commit → install. Must be several microseconds — the source of
        // the 3× low-load tail gap in Figure 7a.
        let overhead = p.wake_latency + p.dispatch_cost + p.dispatch_latency;
        assert!(
            overhead > Nanos::from_us(6),
            "ghOSt path too cheap: {overhead:?}"
        );
        assert!(
            overhead < Nanos::from_us(20),
            "ghOSt path unreasonably slow: {overhead:?}"
        );
    }

    #[test]
    fn agent_policy_is_shinjuku() {
        use skyloft::Policy;
        let a = shinjuku_agent(Some(Nanos::from_us(30)));
        assert_eq!(a.quantum(), Some(Nanos::from_us(30)));
        assert_eq!(a.kind(), skyloft::PolicyKind::Centralized);
    }
}
