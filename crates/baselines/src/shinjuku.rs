//! Original Shinjuku model (NSDI'19): centralized preemptive scheduling on
//! Dune, preemption via VT-x posted interrupts.
//!
//! Shinjuku's mechanism costs are close to Skyloft's (the paper finds the
//! two "show similar performance", §5.2); its structural limitation is
//! exclusivity — cores are dedicated to the one application, so a
//! co-located batch application gets **zero** CPU share (Figure 7c ❶).
//! Harnesses express that by never attaching a BE application to this
//! platform.

use skyloft::{Platform, PreemptMechanism};
use skyloft_hw::Topology;
use skyloft_policies::Shinjuku;
use skyloft_sim::Nanos;

/// The Shinjuku platform.
pub fn platform(topo: Topology) -> Platform {
    Platform {
        name: "Shinjuku",
        topo,
        mech: PreemptMechanism::PostedIpi,
        // Shinjuku's lightweight contexts are in the same class as
        // Skyloft's uthreads; Dune adds minor overhead. ESTIMATE from the
        // Shinjuku paper's context-switch figures.
        same_app_switch: Nanos(80),
        // No multi-application support; unreachable in valid harnesses.
        cross_app_switch: Nanos(80),
        wake_cost: Nanos(100),
        wake_latency: Nanos(150),
        // Dispatcher queue pop + worker slot write, per the Shinjuku paper.
        dispatch_cost: Nanos(150),
        dispatch_latency: Nanos(120),
        dedicated_dispatcher: true,
    }
}

/// The original Shinjuku policy (identical algorithm to
/// `skyloft_policies::Shinjuku`).
pub fn policy(quantum: Option<Nanos>) -> Shinjuku {
    Shinjuku::new(quantum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_to_skyloft_costs() {
        let shinjuku = platform(Topology::PAPER_SERVER);
        let sky = skyloft::Platform::skyloft_centralized(Topology::PAPER_SERVER);
        // Same order of magnitude on the dispatch path (within ~3x).
        assert!(shinjuku.dispatch_cost.0 < 3 * sky.dispatch_cost.0 + 200);
        assert!(shinjuku.dedicated_dispatcher);
    }
}
