//! Shenango model (NSDI'19): fast core reallocation, no μs-scale
//! preemption.
//!
//! Shenango's IOKernel re-evaluates core allocations every 5 μs and parks
//! idle kthreads; waking a parked core goes through the kernel, which is
//! why Skyloft's spin-polling workers show slightly lower tails at low
//! load (Figure 8a). Within an application Shenango work-steals but cannot
//! preempt a running request — under the bimodal RocksDB workload, GETs
//! stuck behind a 591 μs SCAN blow through the slowdown SLO early
//! (Figure 8b).

use skyloft::{Platform, PreemptMechanism};
use skyloft_hw::Topology;
use skyloft_policies::WorkStealing;
use skyloft_sim::Nanos;

/// The Shenango platform.
pub fn platform(topo: Topology) -> Platform {
    Platform {
        name: "Shenango",
        topo,
        // No in-application preemption mechanism at all.
        mech: PreemptMechanism::None,
        // Shenango's green threads: light, slightly heavier than
        // Skyloft's measured 37 ns. ESTIMATE from the Shenango paper.
        same_app_switch: Nanos(60),
        cross_app_switch: Nanos(2_500),
        wake_cost: Nanos(300),
        // Parked kthreads are woken by the IOKernel through the kernel
        // (~the §5.4 Linux wakeup path), amortized by its 5 μs cadence.
        // ESTIMATE consistent with Shenango's reported wakeup overheads.
        wake_latency: Nanos(2_400),
        dispatch_cost: Nanos::ZERO,
        dispatch_latency: Nanos::ZERO,
        dedicated_dispatcher: false,
    }
}

/// Shenango's scheduler: cooperative work stealing.
pub fn work_stealing() -> WorkStealing {
    WorkStealing::new(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyloft::Policy;

    #[test]
    fn no_preemption_mechanism() {
        let p = platform(Topology::PAPER_SERVER);
        assert!(matches!(p.mech, PreemptMechanism::None));
        let mut ws = work_stealing();
        ws.sched_init(&skyloft::SchedEnv {
            worker_cores: vec![0, 1],
            dispatcher: None,
        });
        assert_eq!(ws.name(), "skyloft-ws");
    }

    #[test]
    fn wake_latency_slower_than_skyloft() {
        let shen = platform(Topology::PAPER_SERVER);
        let sky = skyloft::Platform::skyloft_percpu(Topology::PAPER_SERVER, 100_000);
        assert!(shen.wake_latency.0 > 10 * sky.wake_latency.0);
    }
}
