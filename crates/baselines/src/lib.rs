//! Mechanistic models of the comparator systems the paper evaluates
//! against: native Linux schedulers, ghOSt, the original Shinjuku, and
//! Shenango.
//!
//! Each comparator is expressed as a [`skyloft::Platform`] — the mechanism
//! costs and structural properties that distinguish it — plus a policy from
//! `skyloft-policies` (all systems implement the same scheduling
//! *algorithms*; what differs is the machinery those algorithms run on).
//! This mirrors how the paper frames its comparisons:
//!
//! * Linux pays kernel-thread switch costs and is preemption-limited to
//!   the kernel tick (at most 1000 Hz, Table 5).
//! * ghOSt routes every placement through kernel→agent messages and
//!   transaction commits, and preempts via kernel IPIs plus a kernel-thread
//!   context switch (Figure 1 ①).
//! * Shinjuku preempts via VT-x posted interrupts from a dedicated
//!   dispatcher but cannot share cores with other applications.
//! * Shenango reallocates cores every 5 μs but has no in-application
//!   preemption, so heavy-tailed workloads head-of-line block (Figure 8b).
//!
//! Constants not measured by the Skyloft paper are marked `ESTIMATE` with
//! their provenance.

#![warn(missing_docs)]

pub mod ghost;
pub mod linux;
pub mod shenango;
pub mod shinjuku;

#[cfg(test)]
mod tests {
    use skyloft::PreemptMechanism;
    use skyloft_hw::Topology;

    #[test]
    fn platform_mechanisms_match_systems() {
        let topo = Topology::PAPER_SERVER;
        assert!(matches!(
            crate::linux::platform(topo, 250).mech,
            PreemptMechanism::KernelTick { hz: 250 }
        ));
        assert!(matches!(
            crate::ghost::platform(topo).mech,
            PreemptMechanism::KernelIpi
        ));
        assert!(matches!(
            crate::shinjuku::platform(topo).mech,
            PreemptMechanism::PostedIpi
        ));
        assert!(matches!(
            crate::shenango::platform(topo).mech,
            PreemptMechanism::None
        ));
    }

    #[test]
    fn structural_properties() {
        let topo = Topology::PAPER_SERVER;
        // Dedicated dispatcher cores: ghOSt agent and Shinjuku dispatcher.
        assert!(crate::ghost::platform(topo).dedicated_dispatcher);
        assert!(crate::shinjuku::platform(topo).dedicated_dispatcher);
        assert!(!crate::linux::platform(topo, 1000).dedicated_dispatcher);
        assert!(!crate::shenango::platform(topo).dedicated_dispatcher);
    }

    #[test]
    fn cost_ordering_linux_vs_skyloft() {
        let topo = Topology::PAPER_SERVER;
        let linux = crate::linux::platform(topo, 1000);
        let sky = skyloft::Platform::skyloft_percpu(topo, 100_000);
        // Kernel-thread switches are ~30x the uthread fast path (Table 7).
        assert!(linux.same_app_switch.0 > 20 * sky.same_app_switch.0);
        // Kernel wake paths are far slower than a spinning poller.
        assert!(linux.wake_latency > sky.wake_latency);
    }

    #[test]
    fn ghost_dispatch_is_expensive() {
        let topo = Topology::PAPER_SERVER;
        let ghost = crate::ghost::platform(topo);
        let sky = skyloft::Platform::skyloft_centralized(topo);
        assert!(ghost.dispatch_cost.0 > 5 * sky.dispatch_cost.0);
    }
}
