//! Integration tests for the NIC data plane under the sweep harness
//! (§3.5): determinism across host threads, datagram conservation
//! through the warmup-reset boundary, and the bounded-tail contrast
//! against the direct (ringless) placement past saturation.

use skyloft_apps::harness::{run_point, run_sweep_threaded, SweepSpec};
use skyloft_apps::memcached::{usr_distribution, usr_threshold};
use skyloft_apps::synthetic::{install_open_loop_net, Placement};
use skyloft_bench::build;
use skyloft_net::loadgen::{NetProfile, OpenLoop};
use skyloft_sim::Nanos;

const WORKERS: usize = 4;

fn spec(name: &str, rates: Vec<f64>, placement: Placement) -> SweepSpec {
    SweepSpec {
        class_threshold: usr_threshold(),
        placement,
        warmup: Nanos::from_ms(5),
        measure: Nanos::from_ms(40),
        net: Some(NetProfile::lossy(0, 0.0, 0.0, Nanos::from_ms(1))),
        ..SweepSpec::new(name, rates, usr_distribution())
    }
}

/// A `Placement::Rss` sweep is bit-identical whether its points run on
/// one host thread or eight: the data plane's wire RNG and poller are
/// seeded per point, never per thread.
#[test]
fn threaded_rss_sweep_is_bit_identical_to_serial() {
    let s = spec(
        "nic",
        vec![400_000.0, 1_200_000.0, 2_400_000.0],
        Placement::Rss { n: WORKERS },
    );
    let build = &|| build::skyloft_ws(WORKERS, Some(Nanos::from_us(30)));
    let serial = run_sweep_threaded(&s, build, 1);
    let par = run_sweep_threaded(&s, build, 8);
    assert_eq!(serial.points, par.points);
}

/// The conservation ledger survives the harness's warmup `reset_stats`:
/// after the post-reset measurement window drains, generated still equals
/// delivered + ring-dropped, with nothing left in flight.
#[test]
fn conservation_holds_across_warmup_reset() {
    for &rate in &[800_000.0, 2_600_000.0] {
        let (mut m, mut q) = build::skyloft_ws(WORKERS, Some(Nanos::from_us(30)));
        let gen = OpenLoop::new(rate, usr_distribution(), usr_threshold(), 0x9e37);
        let warmup = Nanos::from_ms(5);
        let end = warmup + Nanos::from_ms(40);
        let net = NetProfile::lossy(0, 0.0, 0.0, Nanos::from_ms(1));
        install_open_loop_net(
            &mut q,
            gen,
            0,
            Placement::Rss { n: WORKERS },
            end,
            Some(net),
        );
        m.run(&mut q, warmup);
        m.reset_stats(q.now());
        // Run past the arrival horizon until the queue drains, so every
        // packet has settled into delivered or dropped.
        m.run(&mut q, end + Nanos::from_ms(20));
        assert!(m.stats.net_generated > 0, "plane saw no traffic at {rate}");
        assert_eq!(
            m.stats.net_generated,
            m.stats.net_delivered + m.stats.rx_ring_drops,
            "conservation broken at {rate} rps"
        );
        assert_eq!(m.stats.net_in_flight, 0, "packets stranded at {rate} rps");
    }
}

/// Past saturation the ring-backed plane bounds the tail at the client
/// timeout via tail-drops, while the direct path's tail grows with the
/// backlog — the bug this PR's data plane fixes.
#[test]
fn rings_bound_the_overload_tail_where_direct_does_not() {
    let overload = 2_600_000.0; // ~1.3x the 4-worker USR capacity
    let nic = run_point(
        &spec("nic", vec![overload], Placement::Rss { n: WORKERS }),
        overload,
        &|| build::skyloft_ws(WORKERS, Some(Nanos::from_us(30))),
    );
    let direct = run_point(
        &spec(
            "direct",
            vec![overload],
            Placement::RssDirect { n: WORKERS },
        ),
        overload,
        &|| build::skyloft_ws(WORKERS, Some(Nanos::from_us(30))),
    );
    // NIC path: p99 pinned at the 1 ms timeout (plus measurement slack).
    assert!(
        nic.p99_us <= 1_150.0,
        "NIC overload p99 must be timeout-bounded: {:.1} us",
        nic.p99_us
    );
    // Direct path: even this short window accumulates a multi-ms backlog.
    assert!(
        direct.p99_us > 2.0 * nic.p99_us,
        "direct overload p99 ({:.1} us) should dwarf the NIC path's ({:.1} us)",
        direct.p99_us,
        nic.p99_us
    );
}
