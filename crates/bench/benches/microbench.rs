//! Criterion microbenchmarks for the hot paths of the reproduction:
//! event-queue operations, the UINTR fabric, histogram recording, RSS
//! hashing, policy runqueue operations, an end-to-end machine step, and
//! the real uthread runtime's switch/spawn (Table 7's operations under
//! Criterion's statistics).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use skyloft::builtin::GlobalFifo;
use skyloft::machine::{AppKind, Machine, MachineConfig};
use skyloft::ops::{EnqueueFlags, Policy, SchedEnv};
use skyloft::task::{Task, TaskTable};
use skyloft::{Platform, SchedParams};
use skyloft_hw::uintr::UittEntry;
use skyloft_hw::{Topology, UintrFabric};
use skyloft_metrics::Histogram;
use skyloft_net::RssHasher;
use skyloft_policies::{Cfs, WorkStealing};
use skyloft_sim::{EventQueue, Nanos};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let tok = q.schedule(Nanos(t), t);
            black_box(tok);
            black_box(q.pop());
        });
    });
    c.bench_function("event_queue/schedule_cancel", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let tok = q.schedule(Nanos(t), t);
            black_box(q.cancel(tok));
        });
    });
}

fn bench_uintr(c: &mut Criterion) {
    c.bench_function("uintr/senduipi_recognize_deliver", |b| {
        let mut f = UintrFabric::new(2);
        let upid = f.alloc_upid(0xe1, 1);
        f.bind_receiver(1, upid, 0xe1);
        f.set_user_mode(1, true);
        let e = UittEntry { upid, user_vec: 3 };
        b.iter(|| {
            black_box(f.senduipi(e));
            black_box(f.on_interrupt_arrival(1, 0xe1));
            if f.deliverable(1) {
                black_box(f.begin_delivery(1));
                f.uiret(1);
            }
        });
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram/record", |b| {
        let mut h = Histogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(v >> 40));
        });
    });
    c.bench_function("histogram/p99", |b| {
        let mut h = Histogram::new();
        for v in 0..100_000u64 {
            h.record(v);
        }
        b.iter(|| black_box(h.percentile(99.0)));
    });
}

fn bench_rss(c: &mut Criterion) {
    c.bench_function("rss/toeplitz_flow", |b| {
        let h = RssHasher::new(16);
        let mut port = 0u16;
        b.iter(|| {
            port = port.wrapping_add(1);
            black_box(h.ring_for_flow(0x0a000001, 0x0a000002, port, 11211))
        });
    });
}

fn bench_policies(c: &mut Criterion) {
    c.bench_function("policy/cfs_enqueue_dequeue", |b| {
        let mut p = Cfs::new(SchedParams::SKYLOFT_CFS);
        p.sched_init(&SchedEnv {
            worker_cores: vec![0],
            dispatcher: None,
        });
        let mut tasks = TaskTable::new();
        let ids: Vec<_> = (0..64)
            .map(|_| tasks.insert(|id| Task::bare(id, 0)))
            .collect();
        for &t in &ids {
            p.task_init(&mut tasks, t, Nanos::ZERO);
            p.task_enqueue(&mut tasks, t, Some(0), EnqueueFlags::New, Nanos::ZERO);
        }
        b.iter(|| {
            let t = p.task_dequeue(&mut tasks, 0, Nanos::ZERO).unwrap();
            tasks.get_mut(t).pd.vruntime += 1000;
            p.task_enqueue(&mut tasks, t, Some(0), EnqueueFlags::Preempted, Nanos::ZERO);
        });
    });
    c.bench_function("policy/ws_steal", |b| {
        let mut p = WorkStealing::new(None);
        p.sched_init(&SchedEnv {
            worker_cores: vec![0, 1],
            dispatcher: None,
        });
        let mut tasks = TaskTable::new();
        let t = tasks.insert(|id| Task::bare(id, 0));
        b.iter(|| {
            p.task_enqueue(&mut tasks, t, Some(0), EnqueueFlags::New, Nanos::ZERO);
            black_box(p.sched_balance(&mut tasks, 1, Nanos::ZERO));
        });
    });
}

fn bench_machine(c: &mut Criterion) {
    c.bench_function("machine/request_end_to_end", |b| {
        // Amortized cost of one request through the full machine: spawn,
        // dispatch, timer delegation, completion accounting.
        b.iter_batched(
            || {
                let cfg = MachineConfig {
                    plat: Platform::skyloft_percpu(Topology::single(4), 100_000),
                    n_workers: 4,
                    seed: 1,
                    core_alloc: None,
                    utimer_period: None,
                };
                let mut m = Machine::new(cfg, Box::new(GlobalFifo::new()));
                m.add_app("bench", AppKind::Lc);
                let mut q = EventQueue::new();
                m.start(&mut q);
                (m, q)
            },
            |(mut m, mut q)| {
                for i in 0..1000u64 {
                    q.schedule(
                        Nanos(i * 1000),
                        skyloft::Event::Call(skyloft::Call(Box::new(|m, q| {
                            m.spawn_request(q, 0, Nanos::from_us(2), 0, None);
                        }))),
                    );
                }
                m.run(&mut q, Nanos::from_ms(3));
                assert_eq!(m.stats.completed, 1000);
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_uthread(c: &mut Criterion) {
    c.bench_function("uthread/yield_pair", |b| {
        // Criterion cannot run its closure inside the runtime, so measure a
        // fixed batch of yields per iteration.
        b.iter_custom(|iters| {
            let total = std::sync::Arc::new(std::sync::Mutex::new(Duration::ZERO));
            let t2 = total.clone();
            skyloft_uthread::Runtime::run(1, move || {
                let t0 = std::time::Instant::now();
                for _ in 0..iters {
                    skyloft_uthread::yield_now();
                }
                *t2.lock().unwrap() = t0.elapsed();
            });
            let v = *total.lock().unwrap();
            v
        });
    });
    c.bench_function("uthread/spawn_join", |b| {
        b.iter_custom(|iters| {
            let total = std::sync::Arc::new(std::sync::Mutex::new(Duration::ZERO));
            let t2 = total.clone();
            skyloft_uthread::Runtime::run(1, move || {
                let t0 = std::time::Instant::now();
                for _ in 0..iters {
                    skyloft_uthread::spawn(|| {}).join();
                }
                *t2.lock().unwrap() = t0.elapsed();
            });
            let v = *total.lock().unwrap();
            v
        });
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_event_queue, bench_uintr, bench_histogram, bench_rss,
              bench_policies, bench_machine, bench_uthread
}
criterion_main!(benches);
