//! Machine builders for every system under test.
//!
//! Every builder returns a started machine plus its event queue; harnesses
//! only differ in which builder they pass to the sweep.

use skyloft::builtin::GlobalFifo;
use skyloft::machine::{AppKind, Event, Machine, MachineConfig};
use skyloft::{CoreAllocConfig, Platform, Policy, SchedParams};
use skyloft_baselines::{ghost, linux, shenango, shinjuku as shinjuku_orig};
use skyloft_hw::Topology;
use skyloft_policies::{Cfs, Eevdf, RoundRobin, Shinjuku, ShinjukuShenango, WorkStealing};
use skyloft_sim::{EventQueue, Nanos};

use crate::setup::SEED;

fn topo_for(workers: usize, extra: bool) -> Topology {
    let need = workers + usize::from(extra);
    if need <= Topology::PAPER_SERVER.n_cores() {
        Topology::PAPER_SERVER
    } else {
        Topology::single(need)
    }
}

fn start(mut m: Machine) -> (Machine, EventQueue<Event>) {
    let mut q = EventQueue::new();
    m.start(&mut q);
    (m, q)
}

/// Skyloft with a per-CPU policy and user-space timer interrupts at `hz`.
pub fn skyloft_percpu(
    workers: usize,
    hz: u64,
    policy: Box<dyn Policy>,
) -> (Machine, EventQueue<Event>) {
    let cfg = MachineConfig {
        plat: Platform::skyloft_percpu(topo_for(workers, false), hz),
        n_workers: workers,
        seed: SEED,
        core_alloc: None,
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, policy);
    m.add_app("app", AppKind::Lc);
    start(m)
}

/// Native Linux with a per-CPU policy at `CONFIG_HZ = hz`.
pub fn linux_percpu(
    workers: usize,
    hz: u64,
    policy: Box<dyn Policy>,
) -> (Machine, EventQueue<Event>) {
    let cfg = MachineConfig {
        plat: linux::platform(topo_for(workers, false), hz),
        n_workers: workers,
        seed: SEED,
        core_alloc: None,
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, policy);
    m.add_app("app", AppKind::Lc);
    start(m)
}

/// Skyloft-Shinjuku: centralized dispatcher + user-IPI preemption (§5.2).
/// With `be`, a best-effort app plus the Shenango-style core allocator is
/// attached (Figures 7b/7c).
pub fn skyloft_shinjuku(
    workers: usize,
    quantum: Option<Nanos>,
    be: bool,
) -> (Machine, EventQueue<Event>) {
    let cfg = MachineConfig {
        plat: Platform::skyloft_centralized(topo_for(workers, true)),
        n_workers: workers,
        seed: SEED,
        core_alloc: be.then(CoreAllocConfig::default),
        utimer_period: None,
    };
    let policy: Box<dyn Policy> = if be {
        Box::new(ShinjukuShenango::new(quantum))
    } else {
        Box::new(Shinjuku::new(quantum))
    };
    let mut m = Machine::new(cfg, policy);
    m.add_app("lc", AppKind::Lc);
    if be {
        m.add_app("batch", AppKind::Be);
    }
    start(m)
}

/// The original Shinjuku (posted interrupts, dedicated cores; never a BE
/// app — its zero batch share in Figure 7c is structural).
pub fn shinjuku(workers: usize, quantum: Option<Nanos>) -> (Machine, EventQueue<Event>) {
    let cfg = MachineConfig {
        plat: shinjuku_orig::platform(topo_for(workers, true)),
        n_workers: workers,
        seed: SEED,
        core_alloc: None,
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, Box::new(shinjuku_orig::policy(quantum)));
    m.add_app("lc", AppKind::Lc);
    start(m)
}

/// ghOSt running the Shinjuku global agent (§5.2).
pub fn ghost_shinjuku(
    workers: usize,
    quantum: Option<Nanos>,
    be: bool,
) -> (Machine, EventQueue<Event>) {
    let cfg = MachineConfig {
        plat: ghost::platform(topo_for(workers, true)),
        n_workers: workers,
        seed: SEED,
        core_alloc: be.then(CoreAllocConfig::default),
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, Box::new(ghost::shinjuku_agent(quantum)));
    m.add_app("lc", AppKind::Lc);
    if be {
        m.add_app("batch", AppKind::Be);
    }
    start(m)
}

/// Linux CFS for Figure 7: per-CPU fair scheduling, optionally with a
/// low-priority batch application time-shared by weight.
pub fn linux_cfs_fig7(workers: usize, batch: bool) -> (Machine, EventQueue<Event>) {
    let cfg = MachineConfig {
        plat: linux::platform(topo_for(workers, false), 1_000),
        n_workers: workers,
        seed: SEED,
        core_alloc: None,
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, Box::new(linux::cfs_default()));
    m.add_app("lc", AppKind::Lc);
    let mut q = EventQueue::new();
    if batch {
        let be = m.add_app("batch", AppKind::Be);
        m.start(&mut q);
        skyloft_apps::batch::spawn_percpu_batch(
            &mut m,
            &mut q,
            be,
            Nanos::from_us(50),
            skyloft_apps::batch::NICE19_WEIGHT,
        );
    } else {
        m.start(&mut q);
    }
    (m, q)
}

/// Skyloft work stealing (§5.3): `quantum = None` is the cooperative
/// Memcached configuration; a quantum enables timer preemption for the
/// RocksDB server (`hz` derived from the quantum).
pub fn skyloft_ws(workers: usize, quantum: Option<Nanos>) -> (Machine, EventQueue<Event>) {
    let hz = quantum.map_or(100_000, |q| 1_000_000_000 / q.0);
    let cfg = MachineConfig {
        plat: Platform::skyloft_percpu(topo_for(workers, false), hz),
        n_workers: workers,
        seed: SEED,
        core_alloc: None,
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, Box::new(WorkStealing::new(quantum)));
    m.add_app("kv", AppKind::Lc);
    start(m)
}

/// The §5.3 "utimer" variant: a dedicated core emulates per-CPU timers by
/// sending user IPIs every `period` to the (one fewer) workers.
pub fn skyloft_ws_utimer(workers: usize, period: Nanos) -> (Machine, EventQueue<Event>) {
    let mut plat = Platform::skyloft_centralized(topo_for(workers, true));
    plat.name = "Skyloft-utimer";
    plat.dedicated_dispatcher = true;
    let cfg = MachineConfig {
        plat,
        n_workers: workers,
        seed: SEED,
        core_alloc: None,
        utimer_period: Some(period),
    };
    let mut m = Machine::new(cfg, Box::new(WorkStealing::new(Some(period))));
    m.add_app("kv", AppKind::Lc);
    start(m)
}

/// Shenango (§5.3): cooperative work stealing, kernel wake paths.
pub fn shenango_ws(workers: usize) -> (Machine, EventQueue<Event>) {
    let cfg = MachineConfig {
        plat: shenango::platform(topo_for(workers, false)),
        n_workers: workers,
        seed: SEED,
        core_alloc: None,
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, Box::new(shenango::work_stealing()));
    m.add_app("kv", AppKind::Lc);
    start(m)
}

/// A boxed machine builder keyed by worker-core count.
pub type MachineBuilder = Box<dyn Fn(usize) -> (Machine, EventQueue<Event>) + Sync>;

/// The schbench scheduler configurations of Figure 5 (name, builder).
pub fn fig5_configs() -> Vec<(&'static str, MachineBuilder)> {
    vec![
        (
            "Skyloft RR",
            Box::new(|n| {
                skyloft_percpu(
                    n,
                    100_000,
                    Box::new(RoundRobin::new(Some(SchedParams::SKYLOFT_RR.time_slice))),
                )
            }),
        ),
        (
            "Skyloft CFS",
            Box::new(|n| skyloft_percpu(n, 100_000, Box::new(Cfs::new(SchedParams::SKYLOFT_CFS)))),
        ),
        (
            "Skyloft EEVDF",
            Box::new(|n| {
                skyloft_percpu(n, 100_000, Box::new(Eevdf::new(SchedParams::SKYLOFT_EEVDF)))
            }),
        ),
        (
            "Linux RR (default)",
            Box::new(|n| linux_percpu(n, 250, Box::new(linux::rr_default()))),
        ),
        (
            "Linux CFS (default)",
            Box::new(|n| linux_percpu(n, 250, Box::new(linux::cfs_default()))),
        ),
        (
            "Linux CFS (tuned)",
            Box::new(|n| linux_percpu(n, 1_000, Box::new(linux::cfs_tuned()))),
        ),
        (
            "Linux EEVDF (default)",
            Box::new(|n| linux_percpu(n, 1_000, Box::new(linux::eevdf_default()))),
        ),
        (
            "Linux EEVDF (tuned)",
            Box::new(|n| linux_percpu(n, 1_000, Box::new(linux::eevdf_tuned()))),
        ),
    ]
}

/// A builder closure for `GlobalFifo` (used by small self-checks).
pub fn tiny_fifo(workers: usize) -> (Machine, EventQueue<Event>) {
    skyloft_percpu(workers, 100_000, Box::new(GlobalFifo::new()))
}
