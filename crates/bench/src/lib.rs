//! Benchmark harness: machine builders for every evaluated system and
//! output helpers shared by the per-figure binaries.
//!
//! Each table/figure of the paper has a binary in `src/bin/` (see
//! DESIGN.md §5 for the index); run them with
//! `cargo run --release -p skyloft-bench --bin <id>`. Results are printed
//! as text tables and appended as CSV under `results/`.

pub mod baseline;
pub mod build;
pub mod out;
pub mod schbench_util;

use skyloft_sim::Nanos;

/// Writes `m`'s scheduling trace (Chrome-trace JSON, loadable in
/// Perfetto / `chrome://tracing`) when a `--trace <path>` argument is on
/// the command line. `what` labels the dump: each machine writes its own
/// file, `<path>.<label>.json` (label = `what` sanitized to a slug), so a
/// binary that runs several machines keeps every trace instead of the
/// last machine overwriting the others — matching the sweep harness's
/// per-point `<path>.<system>.<rate>.json` naming.
pub fn dump_trace(m: &skyloft::machine::Machine, what: &str) {
    if let Some(base) = skyloft_apps::harness::trace_arg() {
        let slug: String = what
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect();
        let path = std::path::PathBuf::from(format!("{}.{slug}.json", base.display()));
        match m.write_trace(&path) {
            Ok(()) => eprintln!("trace: wrote {} ({what})", path.display()),
            Err(e) => eprintln!("trace: failed to write {}: {e}", path.display()),
        }
    }
}

/// The binary's positional arguments (without the program name), with the
/// shared `--trace <path>` / `--trace=<path>` flag filtered out so
/// positional parsing is unaffected by it. A trailing bare `--trace`
/// (no path following it) is reported on stderr rather than silently
/// swallowing the dump the user asked for.
pub fn positional_args() -> Vec<String> {
    let mut out = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            if args.next().is_none() {
                eprintln!("warning: --trace given without a path; ignoring");
            }
        } else if !a.starts_with("--trace=") {
            out.push(a);
        }
    }
    out
}

/// Scales a duration down by `SKYLOFT_FAST` (e.g. `SKYLOFT_FAST=10` runs
/// ten times shorter windows) — used to smoke-test the figure binaries.
pub fn scaled(d: Nanos) -> Nanos {
    match std::env::var("SKYLOFT_FAST")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(f) if f > 1 => d / f,
        _ => d,
    }
}

/// Shared experiment constants (§5's setup).
pub mod setup {
    use super::*;

    /// Worker cores for the Figure 7 experiments (plus one dispatcher).
    pub const FIG7_WORKERS: usize = 20;
    /// Worker cores for Linux CFS in Figure 7 (no dispatcher needed).
    pub const FIG7_LINUX_WORKERS: usize = 21;
    /// Worker cores for Memcached (Figure 8a).
    pub const FIG8A_WORKERS: usize = 4;
    /// Worker cores for the RocksDB server (Figure 8b).
    pub const FIG8B_WORKERS: usize = 14;
    /// Isolated cores for schbench (Figure 5/6).
    pub const FIG5_CORES: usize = 24;
    /// The preemption quantum the paper finds best for Figure 7 (30 μs).
    pub const FIG7_QUANTUM: Nanos = Nanos::from_us(30);
    /// Default measurement seed.
    pub const SEED: u64 = 2024_1104;
}
