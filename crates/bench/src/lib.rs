//! Benchmark harness: machine builders for every evaluated system and
//! output helpers shared by the per-figure binaries.
//!
//! Each table/figure of the paper has a binary in `src/bin/` (see
//! DESIGN.md §5 for the index); run them with
//! `cargo run --release -p skyloft-bench --bin <id>`. Results are printed
//! as text tables and appended as CSV under `results/`.

pub mod build;
pub mod out;
pub mod schbench_util;

use skyloft_sim::Nanos;

/// Scales a duration down by `SKYLOFT_FAST` (e.g. `SKYLOFT_FAST=10` runs
/// ten times shorter windows) — used to smoke-test the figure binaries.
pub fn scaled(d: Nanos) -> Nanos {
    match std::env::var("SKYLOFT_FAST")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(f) if f > 1 => d / f,
        _ => d,
    }
}

/// Shared experiment constants (§5's setup).
pub mod setup {
    use super::*;

    /// Worker cores for the Figure 7 experiments (plus one dispatcher).
    pub const FIG7_WORKERS: usize = 20;
    /// Worker cores for Linux CFS in Figure 7 (no dispatcher needed).
    pub const FIG7_LINUX_WORKERS: usize = 21;
    /// Worker cores for Memcached (Figure 8a).
    pub const FIG8A_WORKERS: usize = 4;
    /// Worker cores for the RocksDB server (Figure 8b).
    pub const FIG8B_WORKERS: usize = 14;
    /// Isolated cores for schbench (Figure 5/6).
    pub const FIG5_CORES: usize = 24;
    /// The preemption quantum the paper finds best for Figure 7 (30 μs).
    pub const FIG7_QUANTUM: Nanos = Nanos::from_us(30);
    /// Default measurement seed.
    pub const SEED: u64 = 2024_1104;
}
