//! Helpers for the repo-root `BENCH_*.json` baseline files.
//!
//! The baselines are hand-rolled flat JSON: a top of header scalars
//! (`"schema"`, `"bench"`) followed by named object sections, one per
//! recorded series. Several binaries share one file (netbench and
//! overload_sweep both record into `BENCH_net.json`), so writers must
//! splice their own sections in place instead of rewriting the file —
//! otherwise a `--write` from one bench silently discards the other's
//! stored numbers and its `--check` loses its regression bound.

use std::path::{Path, PathBuf};

/// The shared network-bench baseline at the repo root.
pub fn net_baseline_path() -> PathBuf {
    PathBuf::from(format!(
        "{}/../../BENCH_net.json",
        env!("CARGO_MANIFEST_DIR")
    ))
}

/// The policy hot-path baseline at the repo root (`polbench`).
pub fn policy_baseline_path() -> PathBuf {
    PathBuf::from(format!(
        "{}/../../BENCH_policy.json",
        env!("CARGO_MANIFEST_DIR")
    ))
}

/// Pulls `"key": <number>` out of `section` of a baseline file.
pub fn extract(json: &str, section: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{section}\""))?;
    let rest = &json[at..];
    let at = rest.find(&format!("\"{key}\""))?;
    let rest = &rest[at..];
    let colon = rest.find(':')?;
    let num: String = rest[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Replaces or appends the top-level object section `name`, leaving every
/// other section byte-identical. `body` is the section's inner lines,
/// already indented four spaces, without the surrounding braces or a
/// trailing newline. A missing or unreadable file is (re)created with a
/// schema header.
pub fn upsert_section(path: &Path, name: &str, body: &str) -> std::io::Result<()> {
    let json =
        std::fs::read_to_string(path).unwrap_or_else(|_| "{\n  \"schema\": 1\n}\n".to_string());
    let updated = splice_section(&json, name, body);
    std::fs::write(path, updated)
}

fn splice_section(json: &str, name: &str, body: &str) -> String {
    let key = format!("\"{name}\"");
    if let Some(open) = json
        .find(&key)
        .and_then(|at| json[at..].find('{').map(|off| at + off))
    {
        // Replace the existing section body between its matched braces.
        let mut depth = 0usize;
        let mut close = open;
        for (i, c) in json[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = open + i;
                        break;
                    }
                }
                _ => {}
            }
        }
        format!("{}{{\n{body}\n  {}", &json[..open], &json[close..])
    } else {
        // Append a new section before the file's final closing brace,
        // adding the comma the previous last entry now needs.
        let end = json.rfind('}').unwrap_or(json.len());
        let mut head = json[..end].trim_end().to_string();
        if !head.ends_with(',') && !head.ends_with('{') {
            head.push(',');
        }
        format!("{head}\n  \"{name}\": {{\n{body}\n  }}\n}}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED_FILE: &str = "{\n  \"schema\": 1,\n  \"bench\": \"netbench\",\n  \"current\": {\n    \"p99_us\": 12.5\n  }\n}\n";

    #[test]
    fn append_preserves_existing_sections() {
        let out = splice_section(SEED_FILE, "overload_ctl", "    \"goodput\": 9");
        assert!(out.contains("\"current\""));
        assert!(out.contains("\"p99_us\": 12.5"));
        assert!(out.contains("\"overload_ctl\""));
        assert_eq!(extract(&out, "overload_ctl", "goodput"), Some(9.0));
        assert_eq!(extract(&out, "current", "p99_us"), Some(12.5));
    }

    #[test]
    fn replace_touches_only_the_named_section() {
        let with = splice_section(SEED_FILE, "overload_ctl", "    \"goodput\": 9");
        let out = splice_section(&with, "current", "    \"p99_us\": 99.0");
        assert_eq!(extract(&out, "current", "p99_us"), Some(99.0));
        assert_eq!(extract(&out, "overload_ctl", "goodput"), Some(9.0));
        // Replacing must not duplicate the section.
        assert_eq!(out.matches("\"current\"").count(), 1);
    }

    #[test]
    fn empty_file_gets_a_schema_header() {
        let out = splice_section("{\n  \"schema\": 1\n}\n", "fresh", "    \"x\": 1");
        assert_eq!(extract(&out, "fresh", "x"), Some(1.0));
        assert!(out.starts_with("{\n  \"schema\": 1,\n"));
    }
}
