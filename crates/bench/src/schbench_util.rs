//! schbench sweep driver shared by the Figure 5 and Figure 6 binaries.

use skyloft::machine::{Event, Machine};
use skyloft_apps::schbench;
use skyloft_sim::{EventQueue, Nanos};

use crate::scaled;

/// Wakeup-latency percentiles (in μs) from one schbench run.
#[derive(Clone, Copy, Debug)]
pub struct WakeupStats {
    /// Median wakeup latency.
    pub p50_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Samples collected.
    pub samples: u64,
    /// Preemptions during the measurement window.
    pub preemptions: u64,
    /// Timer interrupts delivered.
    pub ticks: u64,
}

/// Runs schbench with `workers` worker threads on a freshly built machine.
pub fn run(
    build: &(dyn Fn() -> (Machine, EventQueue<Event>) + Sync),
    workers: usize,
    work: Nanos,
) -> WakeupStats {
    let (mut m, mut q) = build();
    schbench::spawn(&mut m, &mut q, 0, workers, work);
    let warmup = scaled(Nanos::from_ms(100));
    let measure = scaled(Nanos::from_ms(400));
    m.run(&mut q, warmup);
    m.reset_stats(q.now());
    m.run(&mut q, warmup + measure);
    WakeupStats {
        p50_us: m.stats.wakeup_hist.percentile(50.0) as f64 / 1000.0,
        p99_us: m.stats.wakeup_hist.percentile(99.0) as f64 / 1000.0,
        samples: m.stats.wakeup_hist.count(),
        preemptions: m.stats.preemptions,
        ticks: m.stats.timer_delivered,
    }
}
