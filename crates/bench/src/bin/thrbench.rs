//! Threading-substrate benchmark: lock-free runqueues vs the mutex oracle,
//! plus runtime-level operation costs (ISSUE 4's acceptance numbers).
//!
//! Both substrates always compile (`crossbeam::deque::lockfree` and
//! `crossbeam::deque::reference`), so ONE binary measures the Chase-Lev
//! deque and sharded injector against their mutex-backed stand-ins live,
//! at 1..=4 workers, and reports the speedup directly. On top of that it
//! times the runtime-level operations (spawn/yield/mutex/condvar, plus a
//! multi-worker spawn-churn throughput) on whichever substrate the binary
//! was built with (lock-free unless `--features reference-deque`).
//!
//! Results go to `results/thrbench.csv`; `--write` records them in the
//! repo-root `BENCH_thread.json` (`pre_change` = the mutex oracle,
//! measured live; `current` = the lock-free substrate). `--check`
//! compares against the committed baseline and exits non-zero on a >30%
//! throughput regression — the CI smoke gate. The ISSUE's ≥2× speedup
//! criterion at 4+ workers is asserted only when the host actually has
//! 4+ hardware threads (an oversubscribed single-core runner measures
//! scheduler interleaving, not the substrate).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Instant;

use skyloft_bench::out;
use skyloft_metrics::Table;
use skyloft_uthread::{spawn, yield_now, Condvar, Mutex, Runtime};

fn hw_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Iteration counts divided by `SKYLOFT_FAST` (the throughput *rate* is
/// what is recorded, so shorter runs measure the same quantity).
fn scaled_iters(n: u64) -> u64 {
    match std::env::var("SKYLOFT_FAST")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(f) if f > 1 => (n / f).max(1_000),
        _ => n,
    }
}

// ---------------------------------------------------------------------------
// Substrate level: identical drivers over both deque implementations.
// ---------------------------------------------------------------------------

/// Generates a pair of benchmark drivers over one substrate module. The
/// code is a macro (not a generic) because the two modules expose
/// identical but unrelated types.
macro_rules! substrate_benches {
    ($deque_fn:ident, $inj_fn:ident, $m:ident) => {
        /// 1 owner pushing/popping its deque + (workers-1) thieves
        /// stealing from the top. Returns ops/sec (one op = one element
        /// through the deque).
        fn $deque_fn(workers: usize, items: u64) -> f64 {
            use crossbeam::deque::$m::{Stealer, Worker};
            use crossbeam::deque::Steal;

            let w = Worker::new_fifo();
            if workers <= 1 {
                let t0 = Instant::now();
                let mut got = 0u64;
                for i in 0..items {
                    w.push(i);
                    if i % 2 == 0 {
                        if w.pop().is_some() {
                            got += 1;
                        }
                    }
                }
                while w.pop().is_some() {
                    got += 1;
                }
                assert_eq!(got, items);
                return items as f64 / t0.elapsed().as_secs_f64();
            }

            let done = AtomicBool::new(false);
            let taken = AtomicU64::new(0);

            fn thief(s: Stealer<u64>, done: &AtomicBool, taken: &AtomicU64) {
                let mut got = 0u64;
                loop {
                    match s.steal() {
                        Steal::Success(_) => got += 1,
                        Steal::Retry => continue,
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) && s.is_empty() {
                                break;
                            }
                            // Oversubscribed hosts need the yield; spinning
                            // here would serialize everything behind the
                            // OS scheduler's quantum.
                            std::thread::yield_now();
                        }
                    }
                }
                taken.fetch_add(got, Ordering::AcqRel);
            }

            let t0 = Instant::now();
            std::thread::scope(|scope| {
                let (d, tk) = (&done, &taken);
                for _ in 0..workers - 1 {
                    let s = w.stealer();
                    scope.spawn(move || thief(s, d, tk));
                }
                let mut got = 0u64;
                for i in 0..items {
                    w.push(i);
                    if i % 4 == 0 {
                        if w.pop().is_some() {
                            got += 1;
                        }
                    }
                }
                done.store(true, Ordering::Release);
                while let Some(_) = w.pop() {
                    got += 1;
                }
                taken.fetch_add(got, Ordering::AcqRel);
            });
            let wall = t0.elapsed().as_secs_f64();
            assert_eq!(taken.load(Ordering::Acquire), items, "lost elements");
            items as f64 / wall
        }

        /// MPMC through the injector: half the workers produce, half
        /// batch-steal into local deques. Returns ops/sec.
        fn $inj_fn(workers: usize, items: u64) -> f64 {
            use crossbeam::deque::$m::{Injector, Worker};
            use crossbeam::deque::Steal;

            let inj: Injector<u64> = Injector::new();
            if workers <= 1 {
                let w = Worker::new_fifo();
                let t0 = Instant::now();
                let mut got = 0u64;
                for i in 0..items {
                    inj.push(i);
                }
                loop {
                    match inj.steal_batch_and_pop(&w) {
                        Steal::Success(_) => {
                            got += 1;
                            while w.pop().is_some() {
                                got += 1;
                            }
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                }
                assert_eq!(got, items);
                return items as f64 / t0.elapsed().as_secs_f64();
            }

            let producers = (workers / 2).max(1) as u64;
            let consumers = (workers - producers as usize).max(1);
            let per = items / producers;
            let total = per * producers;
            let done = AtomicBool::new(false);
            let taken = AtomicU64::new(0);

            let t0 = Instant::now();
            std::thread::scope(|scope| {
                let (inj, d, tk) = (&inj, &done, &taken);
                for _ in 0..consumers {
                    scope.spawn(move || {
                        let w = Worker::new_fifo();
                        let mut got = 0u64;
                        loop {
                            match inj.steal_batch_and_pop(&w) {
                                Steal::Success(_) => {
                                    got += 1;
                                    while w.pop().is_some() {
                                        got += 1;
                                    }
                                }
                                Steal::Retry => continue,
                                Steal::Empty => {
                                    if d.load(Ordering::Acquire) && inj.is_empty() {
                                        break;
                                    }
                                    std::thread::yield_now();
                                }
                            }
                        }
                        tk.fetch_add(got, Ordering::AcqRel);
                    });
                }
                let prods: Vec<_> = (0..producers)
                    .map(|p| {
                        scope.spawn(move || {
                            for i in 0..per {
                                inj.push(p * per + i);
                            }
                        })
                    })
                    .collect();
                for p in prods {
                    p.join().unwrap();
                }
                done.store(true, Ordering::Release);
            });
            let wall = t0.elapsed().as_secs_f64();
            assert_eq!(taken.load(Ordering::Acquire), total, "lost elements");
            total as f64 / wall
        }
    };
}

substrate_benches!(deque_lockfree, injector_lockfree, lockfree);
substrate_benches!(deque_reference, injector_reference, reference);

// ---------------------------------------------------------------------------
// Runtime level: operation costs on the compiled-in substrate.
// ---------------------------------------------------------------------------

fn timed_in_runtime(workers: usize, f: impl FnOnce() -> f64 + Send + 'static) -> f64 {
    let out = Arc::new(StdMutex::new(0.0));
    let o = out.clone();
    Runtime::run(workers, move || {
        *o.lock().unwrap() = f();
    });
    let v = *out.lock().unwrap();
    v
}

fn ns_per(total: std::time::Duration, iters: u64) -> f64 {
    total.as_nanos() as f64 / iters as f64
}

fn rt_yield_ns(iters: u64) -> f64 {
    timed_in_runtime(1, move || {
        let t0 = Instant::now();
        for _ in 0..iters {
            yield_now();
        }
        ns_per(t0.elapsed(), iters)
    })
}

fn rt_spawn_ns(iters: u64) -> f64 {
    timed_in_runtime(1, move || {
        let warm: Vec<_> = (0..64).map(|_| spawn(|| {})).collect();
        for h in warm {
            h.join();
        }
        let t0 = Instant::now();
        let mut handles = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            handles.push(spawn(|| {}));
        }
        let d = t0.elapsed();
        for h in handles {
            h.join();
        }
        ns_per(d, iters)
    })
}

fn rt_mutex_ns(iters: u64) -> f64 {
    timed_in_runtime(1, move || {
        let m = Mutex::new(0u64);
        let t0 = Instant::now();
        for _ in 0..iters {
            *m.lock() += 1;
        }
        ns_per(t0.elapsed(), iters)
    })
}

fn rt_condvar_ns(iters: u64) -> f64 {
    timed_in_runtime(1, move || {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let pong = spawn(move || {
            for _ in 0..iters {
                let mut g = m2.lock();
                while !*g {
                    g = cv2.wait(g);
                }
                *g = false;
                drop(g);
                cv2.notify_one();
            }
        });
        let t0 = Instant::now();
        for _ in 0..iters {
            let mut g = m.lock();
            *g = true;
            drop(g);
            cv.notify_one();
            let mut g = m.lock();
            while *g {
                g = cv.wait(g);
            }
            drop(g);
        }
        let d = t0.elapsed();
        pong.join();
        ns_per(d, iters * 2)
    })
}

/// Spawn-churn throughput with `workers` OS workers: a spawner green
/// thread creates tasks in batches and joins them, exercising the
/// injector, stealing, eventcount wakeups and the stack caches together.
fn rt_spawn_throughput(workers: usize, total: u64) -> f64 {
    timed_in_runtime(workers, move || {
        const BATCH: u64 = 512;
        let t0 = Instant::now();
        let mut left = total;
        while left > 0 {
            let n = left.min(BATCH);
            let handles: Vec<_> = (0..n).map(|_| spawn(|| {})).collect();
            for h in handles {
                h.join();
            }
            left -= n;
        }
        total as f64 / t0.elapsed().as_secs_f64()
    })
}

// ---------------------------------------------------------------------------
// Baseline file (BENCH_thread.json), simbench-style flat JSON.
// ---------------------------------------------------------------------------

fn baseline_path() -> std::path::PathBuf {
    std::path::PathBuf::from(format!(
        "{}/../../BENCH_thread.json",
        env!("CARGO_MANIFEST_DIR")
    ))
}

fn extract(json: &str, section: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{section}\""))?;
    let rest = &json[at..];
    let at = rest.find(&format!("\"{key}\""))?;
    let rest = &rest[at..];
    let colon = rest.find(':')?;
    let num: String = rest[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

struct Results {
    gate_workers: usize,
    deque_ref: f64,
    deque_lf: f64,
    inj_ref: f64,
    inj_lf: f64,
    spawn_ns: f64,
    yield_ns: f64,
    mutex_ns: f64,
    condvar_ns: f64,
    spawn_tput: f64,
}

fn write_baseline(r: &Results) {
    let path = baseline_path();
    let json = format!(
        "{{\n  \"schema\": 1,\n  \"bench\": \"thrbench\",\n  \"gate_workers\": {gw},\n  \
         \"pre_change\": {{\n    \
         \"deque_steal_ops_per_sec\": {dr:.0},\n    \
         \"injector_ops_per_sec\": {ir:.0}\n  }},\n  \
         \"current\": {{\n    \
         \"deque_steal_ops_per_sec\": {dl:.0},\n    \
         \"injector_ops_per_sec\": {il:.0},\n    \
         \"spawn_ns\": {sn:.1},\n    \
         \"yield_ns\": {yn:.1},\n    \
         \"mutex_ns\": {mn:.1},\n    \
         \"condvar_ns\": {cn:.1},\n    \
         \"spawn_throughput_per_sec\": {st:.0}\n  }}\n}}\n",
        gw = r.gate_workers,
        dr = r.deque_ref,
        ir = r.inj_ref,
        dl = r.deque_lf,
        il = r.inj_lf,
        sn = r.spawn_ns,
        yn = r.yield_ns,
        mn = r.mutex_ns,
        cn = r.condvar_ns,
        st = r.spawn_tput,
    );
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("thrbench: wrote {}", path.display()),
        Err(e) => eprintln!("thrbench: failed to write {}: {e}", path.display()),
    }
}

fn check_baseline(r: &Results) -> bool {
    let mut ok = true;

    // The ISSUE's speedup criterion: lock-free ≥2× the mutex oracle on
    // spawn+steal at 4+ workers. Only meaningful with real parallelism.
    let ratio = r.deque_lf / r.deque_ref.max(1.0);
    if hw_threads() >= 4 {
        if ratio < 2.0 {
            eprintln!(
                "thrbench: FAIL: lock-free deque speedup {ratio:.2}x < 2x at {} workers",
                r.gate_workers
            );
            ok = false;
        } else {
            eprintln!(
                "thrbench: lock-free deque speedup {ratio:.2}x at {} workers — ok",
                r.gate_workers
            );
        }
    } else {
        eprintln!(
            "thrbench: host has {} hardware thread(s); speedup gate skipped \
             (measured {ratio:.2}x at {} oversubscribed workers)",
            hw_threads(),
            r.gate_workers
        );
    }

    let path = baseline_path();
    let Ok(json) = std::fs::read_to_string(&path) else {
        eprintln!(
            "thrbench: no baseline at {} — nothing to check against",
            path.display()
        );
        return ok;
    };
    for (key, measured) in [
        ("deque_steal_ops_per_sec", r.deque_lf),
        ("injector_ops_per_sec", r.inj_lf),
        ("spawn_throughput_per_sec", r.spawn_tput),
    ] {
        let Some(base) = extract(&json, "current", key) else {
            continue;
        };
        let floor = base * 0.7;
        if measured < floor {
            eprintln!(
                "thrbench: REGRESSION on {key}: measured {measured:.0} < 70% of baseline {base:.0}"
            );
            ok = false;
        } else {
            eprintln!("thrbench: {key} {measured:.0} vs baseline {base:.0} — ok");
        }
    }
    ok
}

fn main() {
    let args = skyloft_bench::positional_args();
    let write = args.iter().any(|a| a == "--write");
    let check = args.iter().any(|a| a == "--check");

    let deque_items = scaled_iters(400_000);
    let inj_items = scaled_iters(400_000);
    let gate_workers = 4usize;
    let worker_counts = [1usize, 2, 4];

    let mut t = Table::new(&[
        "benchmark",
        "workers",
        "mutex oracle (ops/s)",
        "lock-free (ops/s)",
        "speedup",
    ]);

    let mut results = Results {
        gate_workers,
        deque_ref: 0.0,
        deque_lf: 0.0,
        inj_ref: 0.0,
        inj_lf: 0.0,
        spawn_ns: 0.0,
        yield_ns: 0.0,
        mutex_ns: 0.0,
        condvar_ns: 0.0,
        spawn_tput: 0.0,
    };

    // Best-of-2 per point: oversubscribed hosts make single runs noisy
    // (the OS scheduler's quantum dominates the tail of a run).
    fn best_of(n: usize, f: impl Fn() -> f64) -> f64 {
        (0..n).map(|_| f()).fold(0.0f64, f64::max)
    }

    for &w in &worker_counts {
        eprintln!("[thrbench] deque spawn+steal, {w} worker(s)");
        let r = best_of(2, || deque_reference(w, deque_items));
        let l = best_of(2, || deque_lockfree(w, deque_items));
        if w == gate_workers {
            results.deque_ref = r;
            results.deque_lf = l;
        }
        t.row_owned(vec![
            "deque_steal".into(),
            w.to_string(),
            format!("{r:.0}"),
            format!("{l:.0}"),
            format!("{:.2}x", l / r.max(1.0)),
        ]);
    }
    for &w in &worker_counts {
        eprintln!("[thrbench] injector MPMC, {w} worker(s)");
        let r = best_of(2, || injector_reference(w, inj_items));
        let l = best_of(2, || injector_lockfree(w, inj_items));
        if w == gate_workers {
            results.inj_ref = r;
            results.inj_lf = l;
        }
        t.row_owned(vec![
            "injector".into(),
            w.to_string(),
            format!("{r:.0}"),
            format!("{l:.0}"),
            format!("{:.2}x", l / r.max(1.0)),
        ]);
    }

    eprintln!("[thrbench] runtime ops (compiled substrate)");
    results.yield_ns = rt_yield_ns(scaled_iters(200_000));
    results.spawn_ns = rt_spawn_ns(scaled_iters(50_000));
    results.mutex_ns = rt_mutex_ns(scaled_iters(1_000_000));
    results.condvar_ns = rt_condvar_ns(scaled_iters(50_000));
    results.spawn_tput =
        rt_spawn_throughput(gate_workers.min(hw_threads().max(2)), scaled_iters(60_000));

    let mut rt = Table::new(&["operation", "ns/op (compiled substrate)"]);
    for (name, v) in [
        ("yield", results.yield_ns),
        ("spawn", results.spawn_ns),
        ("mutex lock+unlock", results.mutex_ns),
        ("condvar signal+wake", results.condvar_ns),
    ] {
        rt.row_owned(vec![name.into(), format!("{v:.0}")]);
    }
    rt.row_owned(vec![
        format!(
            "spawn churn @{} workers (spawns/s)",
            gate_workers.min(hw_threads().max(2))
        ),
        format!("{:.0}", results.spawn_tput),
    ]);

    out::emit(
        "thrbench",
        "Threading substrate: lock-free vs mutex oracle",
        &t,
    );
    out::emit("thrbench_runtime", "Runtime operation costs", &rt);
    println!(
        "deque@{gw}w: {:.0} -> {:.0} ops/s ({:.2}x)  injector@{gw}w: {:.0} -> {:.0} ops/s ({:.2}x)",
        results.deque_ref,
        results.deque_lf,
        results.deque_lf / results.deque_ref.max(1.0),
        results.inj_ref,
        results.inj_lf,
        results.inj_lf / results.inj_ref.max(1.0),
        gw = gate_workers,
    );

    if write {
        write_baseline(&results);
    }
    if check && !check_baseline(&results) {
        std::process::exit(1);
    }
}
