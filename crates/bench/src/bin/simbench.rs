//! Simulator self-benchmark: engine throughput (events/sec) and hot-path
//! allocation pressure (allocs/event) on the two workloads that dominate
//! every figure — the §5.2 dispersive open-loop sweep and schbench.
//!
//! Results go to `results/simbench.csv`; `--write` also records them as
//! the `current` engine in the repo-root `BENCH_sim.json` (preserving the
//! `pre_change` section so the perf trajectory vs the original
//! `BinaryHeap` engine stays on record). `--check` compares the measured
//! dispersive events/sec against `BENCH_sim.json`'s `current` entry and
//! exits non-zero on a >30% regression — that is the CI smoke gate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use skyloft_apps::harness::trace_arg;
use skyloft_apps::schbench;
use skyloft_apps::synthetic::{dispersive, dispersive_threshold, install_open_loop_net, Placement};
use skyloft_bench::{build, out, scaled, setup::FIG7_QUANTUM};
use skyloft_metrics::Table;
use skyloft_net::loadgen::OpenLoop;
use skyloft_policies::RoundRobin;
use skyloft_sim::Nanos;

/// Counts every heap allocation (alloc + realloc) made by the process.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

struct Sample {
    events: u64,
    wall_secs: f64,
    allocs: u64,
}

impl Sample {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs
    }

    fn allocs_per_event(&self) -> f64 {
        self.allocs as f64 / self.events.max(1) as f64
    }
}

fn measure(run: impl FnOnce() -> u64) -> Sample {
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    let events = run();
    let wall_secs = t0.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    Sample {
        events,
        wall_secs,
        allocs,
    }
}

/// Dispersive open-loop load on Skyloft-Shinjuku (the Figure 7a hot
/// path): arrivals, placement, segment completions, quantum checks and
/// user-IPIs all churn through the event queue.
fn run_dispersive() -> Sample {
    measure(|| {
        let (mut m, mut q) = build::skyloft_shinjuku(8, Some(FIG7_QUANTUM), false);
        // Measure the engine, not the trace recorder: the ring-buffer
        // write per event is diagnostic overhead a production build
        // compiles out entirely (`--no-default-features`).
        m.tracer.set_active(false);
        let horizon = scaled(Nanos::from_ms(400));
        let gen = OpenLoop::new(120_000.0, dispersive(), dispersive_threshold(), 0x51);
        install_open_loop_net(&mut q, gen, 0, Placement::Queue, horizon, None);
        m.run(&mut q, horizon + Nanos::from_ms(20))
    })
}

/// schbench on a per-CPU round-robin Skyloft (the Figure 5/6 hot path):
/// dominated by 100 kHz timer ticks and wakeup/preemption traffic.
fn run_schbench() -> Sample {
    measure(|| {
        let (mut m, mut q) = build::skyloft_percpu(
            24,
            100_000,
            Box::new(RoundRobin::new(Some(Nanos::from_us(50)))),
        );
        m.tracer.set_active(false);
        schbench::spawn(&mut m, &mut q, 0, 64, schbench::DEFAULT_WORK);
        m.run(&mut q, scaled(Nanos::from_ms(400)))
    })
}

fn best_of(n: usize, f: impl Fn() -> Sample) -> Sample {
    (0..n)
        .map(|_| f())
        .max_by(|a, b| a.events_per_sec().total_cmp(&b.events_per_sec()))
        .expect("at least one sample")
}

fn baseline_path() -> std::path::PathBuf {
    std::path::PathBuf::from(format!(
        "{}/../../BENCH_sim.json",
        env!("CARGO_MANIFEST_DIR")
    ))
}

/// Pulls `"key": <number>` out of `section` of the hand-rolled baseline
/// JSON. Good enough for the flat schema `simbench --write` emits.
fn extract(json: &str, section: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{section}\""))?;
    let rest = &json[at..];
    let at = rest.find(&format!("\"{key}\""))?;
    let rest = &rest[at..];
    let colon = rest.find(':')?;
    let num: String = rest[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn engine_json(disp: &Sample, sch: &Sample, indent: &str) -> String {
    format!(
        "{indent}\"dispersive_events_per_sec\": {:.0},\n\
         {indent}\"dispersive_allocs_per_event\": {:.3},\n\
         {indent}\"schbench_events_per_sec\": {:.0},\n\
         {indent}\"schbench_allocs_per_event\": {:.3}",
        disp.events_per_sec(),
        disp.allocs_per_event(),
        sch.events_per_sec(),
        sch.allocs_per_event()
    )
}

fn write_baseline(disp: &Sample, sch: &Sample) {
    let path = baseline_path();
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    // Keep the recorded pre-change numbers if present; otherwise this IS
    // the pre-change measurement.
    let pre = [
        "dispersive_events_per_sec",
        "dispersive_allocs_per_event",
        "schbench_events_per_sec",
        "schbench_allocs_per_event",
    ]
    .iter()
    .map(|k| {
        let v = extract(&existing, "pre_change", k).unwrap_or_else(|| match *k {
            "dispersive_events_per_sec" => disp.events_per_sec(),
            "dispersive_allocs_per_event" => disp.allocs_per_event(),
            "schbench_events_per_sec" => sch.events_per_sec(),
            _ => sch.allocs_per_event(),
        });
        if k.ends_with("events_per_sec") {
            format!("    \"{k}\": {v:.0}")
        } else {
            format!("    \"{k}\": {v:.3}")
        }
    })
    .collect::<Vec<_>>()
    .join(",\n");
    let json = format!(
        "{{\n  \"schema\": 1,\n  \"bench\": \"simbench\",\n  \"pre_change\": {{\n{pre}\n  }},\n  \"current\": {{\n{cur}\n  }}\n}}\n",
        cur = engine_json(disp, sch, "    ")
    );
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("simbench: wrote {}", path.display()),
        Err(e) => eprintln!("simbench: failed to write {}: {e}", path.display()),
    }
}

fn check_baseline(disp: &Sample, sch: &Sample) -> bool {
    let path = baseline_path();
    let Ok(json) = std::fs::read_to_string(&path) else {
        eprintln!(
            "simbench: no baseline at {} — nothing to check against",
            path.display()
        );
        return true;
    };
    let mut ok = true;
    for (key, measured) in [
        ("dispersive_events_per_sec", disp.events_per_sec()),
        ("schbench_events_per_sec", sch.events_per_sec()),
    ] {
        let Some(base) = extract(&json, "current", key) else {
            continue;
        };
        let floor = base * 0.7;
        if measured < floor {
            eprintln!(
                "simbench: REGRESSION on {key}: measured {measured:.0} < 70% of baseline {base:.0}"
            );
            ok = false;
        } else {
            eprintln!("simbench: {key} {measured:.0} vs baseline {base:.0} — ok");
        }
    }
    ok
}

fn main() {
    // `--trace` is accepted (and ignored) for CLI uniformity with the
    // figure binaries; consume it so flag parsing below stays simple.
    let _ = trace_arg();
    let args = skyloft_bench::positional_args();
    let write = args.iter().any(|a| a == "--write");
    let check = args.iter().any(|a| a == "--check");

    // Five samples per workload: the recorded figure is the engine's
    // peak, and on a shared box the scheduler-noise floor swallows two
    // samples too often for best-of-2 to find it.
    eprintln!("simbench: measuring dispersive workload...");
    let disp = best_of(5, run_dispersive);
    eprintln!("simbench: measuring schbench workload...");
    let sch = best_of(5, run_schbench);

    let mut t = Table::new(&[
        "workload",
        "events",
        "wall_ms",
        "events_per_sec",
        "allocs",
        "allocs_per_event",
    ]);
    for (name, s) in [("dispersive", &disp), ("schbench", &sch)] {
        t.row_owned(vec![
            name.to_string(),
            s.events.to_string(),
            format!("{:.1}", s.wall_secs * 1e3),
            format!("{:.0}", s.events_per_sec()),
            s.allocs.to_string(),
            format!("{:.3}", s.allocs_per_event()),
        ]);
    }
    out::emit("simbench", "Simulator self-benchmark", &t);
    println!(
        "events/sec: dispersive={:.0} schbench={:.0}",
        disp.events_per_sec(),
        sch.events_per_sec()
    );

    if write {
        write_baseline(&disp, &sch);
    }
    if check && !check_baseline(&disp, &sch) {
        std::process::exit(1);
    }
}
