//! Figures 7b and 7c: the dispersive workload co-located with a
//! best-effort batch application.
//!
//! Skyloft and ghOSt run the centralized policy with Shenango-style core
//! allocation; Linux CFS time-shares a nice-19 batch app by weight; the
//! original Shinjuku cannot host a second application at all (batch share
//! is structurally zero). Expected shape (§5.2): Skyloft keeps Figure 7a's
//! tail latency while the batch application's CPU share tracks the LC
//! load — high at low load, near zero at saturation — comparably to ghOSt
//! and Linux.

use skyloft_apps::harness::{run_sweep, SweepSpec};
use skyloft_apps::synthetic::{dispersive, dispersive_threshold, Placement};
use skyloft_bench::setup::{FIG7_LINUX_WORKERS, FIG7_QUANTUM, FIG7_WORKERS};
use skyloft_bench::{build, out, scaled};
use skyloft_metrics::Series;

fn rates() -> Vec<f64> {
    [25, 50, 100, 150, 200, 240, 280, 295, 310, 330, 350]
        .iter()
        .map(|k| *k as f64 * 1000.0)
        .collect()
}

fn spec(name: &str) -> SweepSpec {
    SweepSpec {
        class_threshold: dispersive_threshold(),
        placement: Placement::Queue,
        warmup: scaled(skyloft_sim::Nanos::from_ms(100)),
        measure: scaled(skyloft_sim::Nanos::from_ms(400)),
        ..SweepSpec::new(name, rates(), dispersive())
    }
}

fn main() {
    let mut all: Vec<Series> = Vec::new();
    all.push(run_sweep(&spec("Skyloft+batch"), &|| {
        build::skyloft_shinjuku(FIG7_WORKERS, Some(FIG7_QUANTUM), true)
    }));
    eprintln!("  skyloft+batch done");
    all.push(run_sweep(&spec("ghOSt+batch"), &|| {
        build::ghost_shinjuku(FIG7_WORKERS, Some(FIG7_QUANTUM), true)
    }));
    eprintln!("  ghost+batch done");
    let mut linux_spec = spec("Linux CFS+batch");
    // Direct RSS pinning (kernel NAPI path, no DPDK rings) — see fig7a.
    linux_spec.placement = Placement::RssDirect {
        n: FIG7_LINUX_WORKERS,
    };
    all.push(run_sweep(&linux_spec, &|| {
        build::linux_cfs_fig7(FIG7_LINUX_WORKERS, true)
    }));
    eprintln!("  linux+batch done");
    // Shinjuku cannot run the batch app; its latency series is the 7a one
    // and its batch share is identically zero.
    let mut shinjuku = run_sweep(&spec("Shinjuku (no batch)"), &|| {
        build::shinjuku(FIG7_WORKERS, Some(FIG7_QUANTUM))
    });
    for p in &mut shinjuku.points {
        p.be_share = Some(0.0);
    }
    all.push(shinjuku);
    eprintln!("  shinjuku done");

    let t = out::figure_table("offered kRPS", |p| p.p99_us, &all);
    out::emit(
        "fig7b_multi",
        "Figure 7b: p99 latency (us) with batch co-location",
        &t,
    );
    let t2 = out::figure_table("offered kRPS", |p| p.be_share.unwrap_or(0.0) * 100.0, &all);
    out::emit(
        "fig7c_cpushare",
        "Figure 7c: batch application CPU share (%)",
        &t2,
    );

    // Shape checks.
    let sky = &all[0];
    let ghost = &all[1];
    let linux = &all[2];
    let shinjuku = &all[3];
    // (1) Batch share falls with LC load for Skyloft.
    let sky_low = sky.points.first().unwrap().be_share.unwrap();
    let sky_high = sky.points.last().unwrap().be_share.unwrap();
    assert!(
        sky_low > 0.5,
        "at low load the batch app should hold most cores: {sky_low:.2}"
    );
    assert!(
        sky_high < sky_low / 2.0,
        "at saturation the batch share must collapse: {sky_high:.2} vs {sky_low:.2}"
    );
    // (2) Comparable share to ghOSt and Linux at low load.
    let ghost_low = ghost.points.first().unwrap().be_share.unwrap();
    let linux_low = linux.points.first().unwrap().be_share.unwrap();
    assert!(
        (sky_low - ghost_low).abs() < 0.3 && (sky_low - linux_low).abs() < 0.35,
        "batch shares should be comparable: skyloft {sky_low:.2} ghost {ghost_low:.2} linux {linux_low:.2}"
    );
    // (3) Shinjuku gives the batch app nothing.
    assert!(shinjuku.points.iter().all(|p| p.be_share.unwrap() == 0.0));
    // (4) Co-location must not wreck Skyloft's tail: still beats ghOSt.
    const SLO_US: f64 = 350.0;
    let sky_max = sky.max_tput_under_p99_slo(SLO_US);
    let ghost_max = ghost.max_tput_under_p99_slo(SLO_US);
    assert!(
        ghost_max < sky_max,
        "Skyloft ({sky_max:.0}) must out-sustain ghOSt ({ghost_max:.0}); paper: +19%"
    );
    println!(
        "Shape checks passed: batch share {:.0}% -> {:.0}% across the sweep (Skyloft); \
         Shinjuku 0%; Skyloft max tput {:.0} kRPS vs ghOSt {:.0} kRPS.",
        sky_low * 100.0,
        sky_high * 100.0,
        sky_max / 1000.0,
        ghost_max / 1000.0
    );
}
