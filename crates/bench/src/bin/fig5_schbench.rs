//! Figure 5: schbench wakeup latency across scheduling policies.
//!
//! 24 isolated cores, one message thread, worker threads swept past the
//! core count, ~2300 μs of work per request (the paper's defaults). The
//! expected shape: all schedulers are fast while workers ≤ cores; once the
//! machine is oversubscribed, wakeup latency is bounded by preemption
//! granularity — Skyloft's 100 kHz user-space timers hold it around 10²
//! μs while Linux's tick-limited schedulers blow up to around 10⁴ μs, and
//! within each family EEVDF ≤ CFS ≤ RR.

use skyloft_apps::harness::{par_map, sweep_threads};
use skyloft_apps::schbench::DEFAULT_WORK;
use skyloft_bench::setup::FIG5_CORES;
use skyloft_bench::{build, out, schbench_util};
use skyloft_metrics::Table;

const WORKER_COUNTS: &[usize] = &[8, 16, 24, 32, 48, 64];

fn main() {
    let configs = build::fig5_configs();
    let mut header = vec!["workers".to_string()];
    header.extend(configs.iter().map(|(n, _)| format!("{n} p99(us)")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);

    // Every (workers, config) cell is an independent simulation; fan the
    // grid across SKYLOFT_THREADS host threads in row-major order.
    let cells: Vec<(usize, usize)> = (0..WORKER_COUNTS.len())
        .flat_map(|wi| (0..configs.len()).map(move |ci| (wi, ci)))
        .collect();
    let stats = par_map(&cells, sweep_threads(), &|&(wi, ci)| {
        schbench_util::run(
            &|| configs[ci].1(FIG5_CORES),
            WORKER_COUNTS[wi],
            DEFAULT_WORK,
        )
    });

    let mut results = vec![vec![0.0f64; WORKER_COUNTS.len()]; configs.len()];
    for (&(wi, ci), stats) in cells.iter().zip(&stats) {
        let (name, workers) = (configs[ci].0, WORKER_COUNTS[wi]);
        results[ci][wi] = stats.p99_us;
        eprintln!(
            "  [{name} workers={workers}] p50={:.0}us p99={:.0}us n={} preempt={} ticks={}",
            stats.p50_us, stats.p99_us, stats.samples, stats.preemptions, stats.ticks
        );
    }
    for (wi, &workers) in WORKER_COUNTS.iter().enumerate() {
        let mut row = vec![workers.to_string()];
        row.extend((0..configs.len()).map(|ci| format!("{:.0}", results[ci][wi])));
        t.row_owned(row);
    }
    out::emit(
        "fig5_schbench",
        "Figure 5: schbench wakeup latency (p99, us)",
        &t,
    );

    // Shape checks at the most oversubscribed point (64 workers, 24 cores).
    let last = WORKER_COUNTS.len() - 1;
    let by_name = |needle: &str| -> f64 {
        configs
            .iter()
            .position(|(n, _)| *n == needle)
            .map(|i| results[i][last])
            .expect("config present")
    };
    let sky_cfs = by_name("Skyloft CFS");
    let sky_eevdf = by_name("Skyloft EEVDF");
    let lin_cfs_def = by_name("Linux CFS (default)");
    let lin_cfs_tuned = by_name("Linux CFS (tuned)");
    assert!(
        lin_cfs_def > 20.0 * sky_cfs,
        "Linux default CFS ({lin_cfs_def:.0}us) must be orders of magnitude above Skyloft CFS ({sky_cfs:.0}us)"
    );
    assert!(
        lin_cfs_tuned > 3.0 * sky_cfs,
        "even tuned Linux CFS ({lin_cfs_tuned:.0}us) stays above Skyloft ({sky_cfs:.0}us): tick-limited"
    );
    assert!(
        sky_eevdf <= sky_cfs * 1.5,
        "Skyloft EEVDF ({sky_eevdf:.0}us) should be at or below CFS ({sky_cfs:.0}us)"
    );
    println!("Shape checks passed: Skyloft ~10^2 us vs Linux ~10^3-10^4 us at 64 workers.");
}
