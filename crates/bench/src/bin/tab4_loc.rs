//! Table 4: lines of code per scheduler.
//!
//! The paper's claim is that Skyloft's scheduling operations let complete
//! policies fit in a few hundred lines. This harness counts the *actual*
//! non-blank, non-comment, non-test lines of this reproduction's policy
//! modules and prints them next to the paper's numbers for the same
//! policies and for the systems they are compared against.

use std::path::Path;

use skyloft_bench::out;
use skyloft_metrics::Table;

/// Counts effective lines: skips blanks, `//` comment lines, and
/// everything from the `#[cfg(test)]` marker on (tests are not policy
/// logic).
fn count_loc(path: &Path) -> std::io::Result<usize> {
    let src = std::fs::read_to_string(path)?;
    let mut n = 0;
    for line in src.lines() {
        let t = line.trim();
        if t.starts_with("#[cfg(test)]") {
            break;
        }
        if t.is_empty() || t.starts_with("//") {
            continue;
        }
        n += 1;
    }
    Ok(n)
}

fn main() {
    let policies_dir = format!("{}/../policies/src", env!("CARGO_MANIFEST_DIR"));
    let rows: Vec<(&str, &str, &str)> = vec![
        // (display name, our file, paper's LoC for its counterpart)
        ("Skyloft Round-Robin", "rr.rs", "141"),
        ("Skyloft CFS", "cfs.rs", "430"),
        ("Skyloft EEVDF", "eevdf.rs", "579"),
        ("Skyloft Shinjuku", "shinjuku.rs", "192"),
        ("Skyloft Shinjuku-Shenango", "shinjuku_shenango.rs", "444"),
        ("Skyloft Work-Stealing (preempt)", "work_stealing.rs", "150"),
    ];
    let mut t = Table::new(&["scheduler", "this repo (LoC)", "paper (LoC)"]);
    for (name, file, paper) in rows {
        let path = Path::new(&policies_dir).join(file);
        let loc = count_loc(&path)
            .map(|n| n.to_string())
            .unwrap_or_else(|e| format!("error: {e}"));
        t.row(&[name, &loc, paper]);
    }
    // Reference systems the paper lists for contrast.
    for (name, loc) in [
        ("Linux CFS (kernel/sched/fair.c)", "6592"),
        ("Linux RT (kernel/sched/rt.c)", "1939"),
        ("Linux EEVDF (v6.8 fair.c)", "7102"),
        ("ghOSt Shinjuku", "710"),
        ("ghOSt Shinjuku-Shenango", "727"),
    ] {
        t.row(&[name, "-", loc]);
    }
    out::emit("tab4_loc", "Table 4: scheduler lines of code", &t);
    println!(
        "Shape check: every Skyloft policy above should be in the hundreds \
         of lines, an order of magnitude below the kernel schedulers."
    );
}
