//! Ablation: the preemption-quantum trade-off (§5.2).
//!
//! "The choice of preemption quantum has a significant impact on tail
//! latency and maximum throughput. We find that a preemption quantum of
//! 30 μs yields the best results. While higher preemption frequencies can
//! further reduce tail latency, they also increase the overhead from
//! interrupt handling, which reduces maximum throughput."
//!
//! This sweep quantifies exactly that trade-off on the dispersive
//! workload. Raw completions are dominated by the 99.5% short requests, so
//! the cost side shows up where it is actually paid: the long requests,
//! which absorb one interrupt + context-switch round per quantum. Short
//! p99 falls as the quantum shrinks; long p99 (and hence sustainable load
//! under any whole-distribution SLO) degrades.

use skyloft_apps::harness::{par_map, run_point, sweep_threads, SweepSpec};
use skyloft_apps::synthetic::{dispersive, dispersive_threshold, Placement};
use skyloft_bench::setup::FIG7_WORKERS;
use skyloft_bench::{build, out, scaled};
use skyloft_metrics::Table;
use skyloft_sim::Nanos;

fn main() {
    let quanta_us = [5u64, 10, 15, 30, 60, 120, 240];
    let mid_rate = 280_000.0; // ~76% load: tail-latency regime
    let hot_rate = 345_000.0; // ~93% load: the cost side becomes visible
    let mut t = Table::new(&[
        "quantum (us)",
        "short p99 @280k (us)",
        "long p99 @345k (ms)",
        "preempt IPIs/long-req",
    ]);
    let mut short_tail = Vec::new();
    let mut long_tail = Vec::new();
    // Each quantum's two load points are independent machines; fan the
    // whole sweep across SKYLOFT_THREADS host threads.
    let points = par_map(&quanta_us, sweep_threads(), &|&q_us| {
        let quantum = Nanos::from_us(q_us);
        let spec = |r: f64| SweepSpec {
            class_threshold: dispersive_threshold(),
            placement: Placement::Queue,
            warmup: scaled(Nanos::from_ms(50)),
            measure: scaled(Nanos::from_ms(300)),
            ..SweepSpec::new("q", vec![r], dispersive())
        };
        let mid = run_point(&spec(mid_rate), mid_rate, &|| {
            build::skyloft_shinjuku(FIG7_WORKERS, Some(quantum), false)
        });
        let hot = run_point(&spec(hot_rate), hot_rate, &|| {
            build::skyloft_shinjuku(FIG7_WORKERS, Some(quantum), false)
        });
        eprintln!("  quantum={q_us}us done");
        (mid, hot)
    });
    for (&q_us, (mid, hot)) in quanta_us.iter().zip(&points) {
        // Dispatcher interrupts per long request = 10 ms / quantum.
        let ipis_per_long = 10_000.0 / q_us as f64;
        short_tail.push(mid.p99_us);
        // The long class is the 99.5th..100th percentile band; its p99
        // within-class comes from p999 of the whole distribution.
        long_tail.push(hot.p999_us / 1000.0);
        t.row_owned(vec![
            q_us.to_string(),
            format!("{:.1}", mid.p99_us),
            format!("{:.1}", hot.p999_us / 1000.0),
            format!("{:.0}", ipis_per_long),
        ]);
    }
    out::emit(
        "ablate_quantum",
        "Ablation: preemption quantum vs short tails and long-request cost",
        &t,
    );
    // Shape: smaller quanta give lower short p99...
    assert!(
        short_tail.first().unwrap() * 2.0 < *short_tail.last().unwrap(),
        "short p99 must grow with the quantum: {short_tail:?}"
    );
    // ...but longs pay for the preemption churn: the smallest quantum must
    // be measurably worse for them than the largest.
    assert!(
        long_tail[0] > long_tail[long_tail.len() - 1],
        "long p999 should shrink with larger quanta: {long_tail:?}"
    );
    println!(
        "Shape checks passed: short p99 {:.0}->{:.0} us while long p999 {:.1}->{:.1} ms \
         across quanta — the paper picks 30 us as the balance.",
        short_tail[0],
        short_tail[short_tail.len() - 1],
        long_tail[0],
        long_tail[long_tail.len() - 1]
    );
}
