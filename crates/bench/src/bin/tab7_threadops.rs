//! Table 7: threading-operation costs, measured for real on this host.
//!
//! Skyloft's user-level threading (the `skyloft-uthread` runtime with its
//! assembly context switch and pooled stacks) against `std::thread`
//! (pthread). Go is unavailable offline; the paper's Go column is printed
//! for reference. Absolute numbers depend on this host's CPU — the shape
//! to check is uthread yield/spawn/condvar being orders of magnitude below
//! pthread, with mutex near parity (both are one uncontended CAS).
//!
//! Run this alone: the pthread ping-pongs bounce between OS threads, so a
//! busy single-CPU host starves them (iteration counts are sized for that).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};
use std::time::Instant;

use skyloft_bench::out;
use skyloft_metrics::Table;
use skyloft_uthread::{spawn, yield_now, Condvar, Mutex, Runtime};

fn ns_per(total: std::time::Duration, iters: u64) -> f64 {
    total.as_nanos() as f64 / iters as f64
}

fn uthread_yield_ns(iters: u64) -> f64 {
    let out = Arc::new(StdMutex::new(0.0));
    let o = out.clone();
    Runtime::run(1, move || {
        let t0 = Instant::now();
        for _ in 0..iters {
            yield_now();
        }
        *o.lock().unwrap() = ns_per(t0.elapsed(), iters);
    });
    let v = *out.lock().unwrap();
    v
}

fn uthread_spawn_ns(iters: u64) -> f64 {
    let out = Arc::new(StdMutex::new(0.0));
    let o = out.clone();
    Runtime::run(1, move || {
        // Warm the stack pool so the steady-state (recycled-stack) spawn
        // cost is measured, as in the paper's pooled runtime.
        let warm: Vec<_> = (0..64).map(|_| spawn(|| {})).collect();
        for h in warm {
            h.join();
        }
        let t0 = Instant::now();
        let mut handles = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            handles.push(spawn(|| {}));
        }
        let spawn_time = t0.elapsed();
        for h in handles {
            h.join();
        }
        *o.lock().unwrap() = ns_per(spawn_time, iters);
    });
    let v = *out.lock().unwrap();
    v
}

fn uthread_mutex_ns(iters: u64) -> f64 {
    let out = Arc::new(StdMutex::new(0.0));
    let o = out.clone();
    Runtime::run(1, move || {
        let m = Mutex::new(0u64);
        let t0 = Instant::now();
        for _ in 0..iters {
            *m.lock() += 1;
        }
        *o.lock().unwrap() = ns_per(t0.elapsed(), iters);
    });
    let v = *out.lock().unwrap();
    v
}

fn uthread_condvar_ns(iters: u64) -> f64 {
    let out = Arc::new(StdMutex::new(0.0));
    let o = out.clone();
    Runtime::run(1, move || {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let pong = spawn(move || {
            for _ in 0..iters {
                let mut g = m2.lock();
                while !*g {
                    g = cv2.wait(g);
                }
                *g = false;
                drop(g);
                cv2.notify_one();
            }
        });
        let t0 = Instant::now();
        for _ in 0..iters {
            let mut g = m.lock();
            *g = true;
            drop(g);
            cv.notify_one();
            let mut g = m.lock();
            while *g {
                g = cv.wait(g);
            }
            drop(g);
        }
        let d = t0.elapsed();
        pong.join();
        // Two signal+wake handoffs per round.
        *o.lock().unwrap() = ns_per(d, iters * 2);
    });
    let v = *out.lock().unwrap();
    v
}

fn pthread_yield_ns(iters: u64) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        std::thread::yield_now();
    }
    ns_per(t0.elapsed(), iters)
}

fn pthread_spawn_ns(iters: u64) -> f64 {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..iters).map(|_| std::thread::spawn(|| {})).collect();
    let spawn_time = t0.elapsed();
    for h in handles {
        h.join().unwrap();
    }
    ns_per(spawn_time, iters)
}

fn pthread_mutex_ns(iters: u64) -> f64 {
    let m = StdMutex::new(0u64);
    let t0 = Instant::now();
    for _ in 0..iters {
        *m.lock().unwrap() += 1;
    }
    ns_per(t0.elapsed(), iters)
}

fn pthread_condvar_ns(iters: u64) -> f64 {
    // NOTE: waits are timed. On this machine's kernel, untimed
    // `Condvar::wait` ping-pongs occasionally lose a wakeup and deadlock
    // (both threads parked in `futex_wait` with the token set — observed
    // repeatedly on 6.18.x; the protocol is the textbook two-phase
    // predicate loop). A 2 ms timeout converts that into a bounded retry
    // and fires only when a wakeup was lost, so it does not skew the
    // common-case measurement.
    const PATIENCE: std::time::Duration = std::time::Duration::from_millis(2);
    let pair = Arc::new((StdMutex::new(false), StdCondvar::new()));
    let p2 = pair.clone();
    let stop = Arc::new(AtomicBool::new(false));
    let s2 = stop.clone();
    let pong = std::thread::spawn(move || {
        let (m, cv) = &*p2;
        loop {
            let mut g = m.lock().unwrap();
            while !*g {
                let (guard, _timed_out) = cv.wait_timeout(g, PATIENCE).unwrap();
                g = guard;
                if s2.load(Ordering::Acquire) {
                    return;
                }
            }
            *g = false;
            drop(g);
            cv.notify_one();
        }
    });
    let (m, cv) = &*pair;
    let t0 = Instant::now();
    for _ in 0..iters {
        let mut g = m.lock().unwrap();
        *g = true;
        drop(g);
        cv.notify_one();
        let mut g = m.lock().unwrap();
        while *g {
            let (guard, _timed_out) = cv.wait_timeout(g, PATIENCE).unwrap();
            g = guard;
        }
        drop(g);
    }
    let d = t0.elapsed();
    stop.store(true, Ordering::Release);
    cv.notify_all();
    pong.join().unwrap();
    ns_per(d, iters * 2)
}

fn main() {
    let mut t = Table::new(&[
        "operation",
        "pthread (ns)",
        "Skyloft uthread (ns)",
        "paper pthread/Go/Skyloft",
    ]);
    eprintln!("[tab7] pthread yield");
    let y_p = pthread_yield_ns(30_000);
    eprintln!("[tab7] uthread yield");
    let y_u = uthread_yield_ns(200_000);
    t.row_owned(vec![
        "Yield".into(),
        format!("{y_p:.0}"),
        format!("{y_u:.0}"),
        "898 / 108 / 37".into(),
    ]);
    eprintln!("[tab7] pthread spawn");
    let s_p = pthread_spawn_ns(1_000);
    eprintln!("[tab7] uthread spawn");
    let s_u = uthread_spawn_ns(50_000);
    t.row_owned(vec![
        "Spawn".into(),
        format!("{s_p:.0}"),
        format!("{s_u:.0}"),
        "15418 / 503 / 191".into(),
    ]);
    eprintln!("[tab7] pthread mutex");
    let m_p = pthread_mutex_ns(1_000_000);
    eprintln!("[tab7] uthread mutex");
    let m_u = uthread_mutex_ns(1_000_000);
    t.row_owned(vec![
        "Mutex".into(),
        format!("{m_p:.0}"),
        format!("{m_u:.0}"),
        "28 / 25 / 27".into(),
    ]);
    eprintln!("[tab7] pthread condvar");
    let c_p = pthread_condvar_ns(5_000);
    eprintln!("[tab7] uthread condvar");
    let c_u = uthread_condvar_ns(50_000);
    t.row_owned(vec![
        "Condvar".into(),
        format!("{c_p:.0}"),
        format!("{c_u:.0}"),
        "2532 / 262 / 86".into(),
    ]);
    out::emit(
        "tab7_threadops",
        "Table 7: threading operations (host-measured)",
        &t,
    );

    assert!(s_u < s_p / 5.0, "uthread spawn must be far below pthread");
    assert!(c_u < c_p / 2.0, "uthread condvar must beat pthread");
    println!("Shape checks passed: uthread spawn/condvar ≪ pthread; mutex comparable.");
}
