//! Figure 8a: Memcached with the USR workload (99.8% GET / 0.2% SET),
//! Skyloft work stealing vs Shenango, 4 worker cores.
//!
//! Expected shape (§5.3): the two systems are within ~2% of each other's
//! maximum throughput (light-tailed workloads don't need preemption), and
//! Skyloft's tails are slightly lower at low load because Shenango pays
//! kernel wake-ups for its parked cores.

use skyloft_apps::harness::{run_sweep, SweepSpec};
use skyloft_apps::memcached::{usr_distribution, usr_threshold};
use skyloft_apps::synthetic::Placement;
use skyloft_bench::setup::FIG8A_WORKERS;
use skyloft_bench::{build, out, scaled};
use skyloft_sim::Nanos;

fn rates() -> Vec<f64> {
    [200, 400, 600, 800, 1000, 1200, 1400, 1600, 1750, 1850]
        .iter()
        .map(|k| *k as f64 * 1000.0)
        .collect()
}

fn spec(name: &str) -> SweepSpec {
    SweepSpec {
        class_threshold: usr_threshold(),
        placement: Placement::Rss { n: FIG8A_WORKERS },
        warmup: scaled(Nanos::from_ms(50)),
        measure: scaled(Nanos::from_ms(200)),
        ..SweepSpec::new(name, rates(), usr_distribution())
    }
}

fn main() {
    let sky = run_sweep(&spec("Skyloft"), &|| build::skyloft_ws(FIG8A_WORKERS, None));
    eprintln!("  skyloft done");
    let shen = run_sweep(&spec("Shenango"), &|| build::shenango_ws(FIG8A_WORKERS));
    eprintln!("  shenango done");

    let all = vec![sky, shen];
    let t = out::figure_table("offered kRPS", |p| p.p99_us, &all);
    out::emit(
        "fig8a_memcached",
        "Figure 8a: Memcached USR p99 latency (us)",
        &t,
    );
    let t2 = out::figure_table("offered kRPS", |p| p.achieved_rps / 1000.0, &all);
    out::emit("fig8a_tput", "Figure 8a: achieved kRPS", &t2);

    const SLO_US: f64 = 100.0;
    let sky_max = all[0].max_tput_under_p99_slo(SLO_US);
    let shen_max = all[1].max_tput_under_p99_slo(SLO_US);
    let ratio = sky_max / shen_max;
    assert!(
        (0.93..=1.15).contains(&ratio),
        "Skyloft ({sky_max:.0}) within a few % of Shenango ({shen_max:.0}); paper: within 2%"
    );
    // Low-load tails: Skyloft at or below Shenango.
    let sky_low = all[0].points[0].p99_us;
    let shen_low = all[1].points[0].p99_us;
    assert!(
        sky_low <= shen_low,
        "Skyloft low-load p99 ({sky_low:.1}us) should not exceed Shenango's ({shen_low:.1}us)"
    );
    println!(
        "Shape checks passed: max tput ratio {:.3} (paper: ~1.0); low-load p99 {:.1} vs {:.1} us.",
        ratio, sky_low, shen_low
    );
}
