//! Chaos sweep: tail latency vs injected fault rate, with and without
//! recovery (DESIGN.md §9).
//!
//! A per-CPU Skyloft machine (user-space timers, work stealing) runs the
//! §5.2 dispersive workload while a seeded [`FaultPlan`] drops §3.2
//! timer-arming self-IPIs at the swept probability and periodically
//! page-faults and stalls running kernel threads. Each fault rate is
//! measured twice: with the recovery layer on (watchdog re-arm, fault
//! substitution, stall migration) and with [`RecoveryConfig::disabled`].
//!
//! The shape this binary asserts is the PR's acceptance bar: with
//! recovery, a 1% arming-loss + page-fault plan keeps p99 within 2x the
//! fault-free baseline and the invariant checker stays clean; without
//! recovery, cores silently lose their timers, preemption dies, and the
//! dispersive tail collapses toward the 10 ms long requests.
//!
//! Flags: `--smoke` (short windows, checker force-enabled — the CI
//! configuration), `--seed <n>` (fault-plan seed; CI runs a fixed seed
//! matrix). Results: `results/chaos_sweep.csv`.

use skyloft::machine::{AppKind, Event, Machine, MachineConfig};
use skyloft::{FaultPlan, Platform, RecoveryConfig};
use skyloft_apps::synthetic::{dispersive, dispersive_threshold, install_open_loop, Placement};
use skyloft_bench::{out, scaled, setup};
use skyloft_hw::Topology;
use skyloft_metrics::Table;
use skyloft_net::OpenLoop;
use skyloft_policies::WorkStealing;
use skyloft_sim::{EventQueue, Nanos};

/// Worker cores. Capacity = 8 / 53.98 us ~= 148 kRPS.
const WORKERS: usize = 8;
/// User-space timer frequency (Table 5's 100 kHz).
const TIMER_HZ: u64 = 100_000;
/// Offered load: ~two-thirds of capacity, the fig7a knee region.
const RATE: f64 = 100_000.0;
/// Preemption quantum (the paper's best value for dispersive loads).
const QUANTUM: Nanos = setup::FIG7_QUANTUM;

/// One measured (fault rate, recovery mode) cell.
struct Cell {
    p99: Nanos,
    achieved_rps: f64,
    timer_rearms: u64,
    page_faults: u64,
    substitutions: u64,
    migrations: u64,
    violations: usize,
    checked: bool,
}

struct RunCfg {
    seed: u64,
    warmup: Nanos,
    measure: Nanos,
    check: bool,
}

fn build(arming_drop_p: f64, recovery_on: bool, cfg: &RunCfg) -> (Machine, EventQueue<Event>) {
    let machine_cfg = MachineConfig {
        plat: Platform::skyloft_percpu(Topology::single(WORKERS), TIMER_HZ),
        n_workers: WORKERS,
        seed: setup::SEED,
        core_alloc: None,
        utimer_period: None,
    };
    let mut m = Machine::new(machine_cfg, Box::new(WorkStealing::new(Some(QUANTUM))));
    m.add_app("lc", AppKind::Lc);
    // A standby application: its kernel threads park on every worker core
    // so §6 fault substitution has something to wake when the primary's
    // thread page-faults mid-run.
    m.add_app("standby", AppKind::Lc);
    if !recovery_on {
        m.recovery = RecoveryConfig::disabled();
    }
    if arming_drop_p > 0.0 {
        m.install_fault_plan(
            FaultPlan::seeded(cfg.seed ^ (arming_drop_p * 1e6) as u64)
                .drop_arming(arming_drop_p)
                .page_faults(Nanos::from_ms(2), Nanos::from_us(100))
                .stalls(Nanos::from_ms(10), Nanos::from_us(200)),
        );
    }
    if cfg.check {
        m.tracer.checker.enabled = true;
        m.tracer.checker.panic_on_violation = false;
    }
    let mut q = EventQueue::new();
    m.start(&mut q);
    (m, q)
}

fn run_cell(arming_drop_p: f64, recovery_on: bool, cfg: &RunCfg) -> Cell {
    let (mut m, mut q) = build(arming_drop_p, recovery_on, cfg);
    let end = cfg.warmup + cfg.measure;
    let gen = OpenLoop::new(
        RATE,
        dispersive(),
        dispersive_threshold(),
        cfg.seed ^ 0x0D15_9E25,
    );
    install_open_loop(&mut q, gen, 0, Placement::Queue, end);
    m.run(&mut q, cfg.warmup);
    m.reset_stats(q.now());
    m.run(&mut q, end);
    let now = q.now();
    skyloft_bench::dump_trace(
        &m,
        &format!(
            "chaos loss {:.1}%, recovery {}",
            arming_drop_p * 100.0,
            if recovery_on { "on" } else { "off" }
        ),
    );
    let (page_faults, _) = m
        .chaos
        .as_ref()
        .map(|e| (e.stats.page_faults_injected, e.stats.stalls_injected))
        .unwrap_or((0, 0));
    Cell {
        p99: Nanos(m.stats.resp_hist.percentile(99.0)),
        achieved_rps: m.stats.achieved_rps(now),
        timer_rearms: m.stats.timer_rearms,
        page_faults,
        substitutions: m.stats.fault_substitutions,
        migrations: m.stats.tasks_migrated,
        violations: m.tracer.checker.violations().len(),
        checked: m.tracer.checker.enabled,
    }
}

/// Data-plane fault phase: the NIC path (bounded RX rings + polling
/// core) under dropped and delayed RX poll rounds plus periodically
/// wedged RSS indirection entries, with the full overload-control stack
/// armed. What this asserts is conservation invariant #8 (DESIGN.md
/// §13): whatever the faults do to poll timing and flow steering, every
/// generated datagram still lands in exactly one terminal bucket, and
/// the invariant checker stays clean.
fn dataplane_phase(cfg: &RunCfg) {
    use skyloft_apps::synthetic::{install_open_loop_ctl, OverloadControl};
    use skyloft_net::dataplane::NicConfig;

    const DP_WORKERS: usize = 4;
    let machine_cfg = MachineConfig {
        plat: Platform::skyloft_percpu(Topology::single(DP_WORKERS), TIMER_HZ),
        n_workers: DP_WORKERS,
        seed: setup::SEED,
        core_alloc: None,
        utimer_period: None,
    };
    let mut m = Machine::new(machine_cfg, Box::new(WorkStealing::new(Some(QUANTUM))));
    m.add_app("lc", AppKind::Lc);
    m.install_fault_plan(
        FaultPlan::seeded(cfg.seed ^ 0xDA7A)
            .drop_rx_polls(0.01)
            .delay_rx_polls(0.05, Nanos::from_us(3))
            .stuck_indirections(Nanos::from_ms(1), Nanos::from_us(200)),
    );
    if cfg.check {
        m.tracer.checker.enabled = true;
        m.tracer.checker.panic_on_violation = false;
    }
    let mut q = EventQueue::new();
    m.start(&mut q);
    // 4 workers x 2 us saturate at 2 M rps; offer 1.5x so the faults hit
    // a shedding data plane, not an idle one.
    let end = cfg.warmup + cfg.measure;
    let gen = OpenLoop::new(
        3_000_000.0,
        skyloft_sim::Distribution::Constant(Nanos::from_us(2)),
        dispersive_threshold(),
        cfg.seed ^ 0x0D15_DA7A,
    );
    install_open_loop_ctl(
        &mut q,
        gen,
        0,
        NicConfig::for_workers(DP_WORKERS),
        end,
        None,
        OverloadControl::full(),
    );
    // Run past the last retry timeout so the ledger closes drained.
    m.run(&mut q, end + Nanos::from_ms(20));
    let s = &m.stats;
    let cs = m.chaos.as_ref().expect("plan installed").stats;
    assert!(
        cs.rx_polls_dropped > 0 && cs.rx_polls_delayed > 0 && cs.indirection_sticks > 0,
        "data-plane plan never fired (dropped {}, delayed {}, sticks {})",
        cs.rx_polls_dropped,
        cs.rx_polls_delayed,
        cs.indirection_sticks
    );
    assert_eq!(
        s.net_generated,
        s.net_delivered
            + s.rx_ring_drops
            + s.aqm_drops
            + s.admission_sheds
            + s.net_in_flight
            + s.retries_spent,
        "datagram conservation violated under data-plane faults"
    );
    assert_eq!(s.net_in_flight, 0, "rings never drained");
    assert!(s.completed > 0, "nothing completed under data-plane faults");
    if m.tracer.checker.enabled {
        assert_eq!(
            m.tracer.checker.violations().len(),
            0,
            "invariant violations under data-plane faults"
        );
    }
    let mut t = Table::new(&[
        "polls dropped",
        "polls delayed",
        "sticks",
        "ring drops",
        "aqm drops",
        "adm sheds",
        "retries",
        "completed",
    ]);
    t.row_owned(vec![
        cs.rx_polls_dropped.to_string(),
        cs.rx_polls_delayed.to_string(),
        cs.indirection_sticks.to_string(),
        s.rx_ring_drops.to_string(),
        s.aqm_drops.to_string(),
        s.admission_sheds.to_string(),
        s.retries_spent.to_string(),
        s.completed.to_string(),
    ]);
    out::emit(
        "chaos_sweep_dataplane",
        "Chaos sweep: NIC data plane under poll/steering faults (ledger closed)",
        &t,
    );
}

fn main() {
    let args = skyloft_bench::positional_args();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--seed takes a u64"))
        .unwrap_or(setup::SEED);

    let cfg = if smoke {
        RunCfg {
            seed,
            warmup: Nanos::from_ms(10),
            measure: Nanos::from_ms(60),
            check: true,
        }
    } else {
        RunCfg {
            seed,
            warmup: scaled(Nanos::from_ms(50)),
            measure: scaled(Nanos::from_ms(300)),
            check: cfg!(debug_assertions),
        }
    };
    let fault_rates: &[f64] = if smoke {
        &[0.0, 0.01]
    } else {
        &[0.0, 0.001, 0.01, 0.05]
    };

    let mut t = Table::new(&[
        "arming loss %",
        "recovery p99 (us)",
        "no-recovery p99 (us)",
        "rearms",
        "page faults",
        "substitutions",
        "migrations",
        "violations",
    ]);
    let mut cells = Vec::new();
    for &p in fault_rates {
        let on = run_cell(p, true, &cfg);
        let off = run_cell(p, false, &cfg);
        eprintln!(
            "chaos_sweep: loss {:.1}% -> p99 {:.1} us (recovery) / {:.1} us (none), \
             achieved {:.0} / {:.0} rps",
            p * 100.0,
            on.p99.as_us(),
            off.p99.as_us(),
            on.achieved_rps,
            off.achieved_rps
        );
        t.row_owned(vec![
            format!("{:.1}", p * 100.0),
            format!("{:.1}", on.p99.as_us()),
            format!("{:.1}", off.p99.as_us()),
            format!("{}", on.timer_rearms),
            format!("{}", on.page_faults),
            format!("{}", on.substitutions),
            format!("{}", on.migrations),
            format!("{}", on.violations),
        ]);
        cells.push((p, on, off));
    }
    out::emit(
        "chaos_sweep",
        "Chaos sweep: dispersive p99 vs timer-arming loss rate (recovery on/off)",
        &t,
    );

    // Shape assertions (the PR's acceptance bar). All runs are seeded, so
    // these are deterministic for a given seed and window.
    let baseline = cells.iter().find(|(p, ..)| *p == 0.0).expect("baseline");
    let onepct = cells.iter().find(|(p, ..)| *p == 0.01).expect("1% point");
    let base_p99 = baseline.1.p99;
    assert!(
        onepct.1.timer_rearms > 0,
        "recovery run never re-armed a lost timer"
    );
    assert!(
        onepct.1.page_faults > 0 && onepct.1.substitutions > 0,
        "page-fault plan should trigger §6 substitutions (faults {}, subs {})",
        onepct.1.page_faults,
        onepct.1.substitutions
    );
    for (p, on, _) in &cells {
        if on.checked {
            assert_eq!(
                on.violations,
                0,
                "invariant violations with recovery at {}% loss",
                p * 100.0
            );
        }
    }
    assert!(
        onepct.1.p99 <= Nanos(base_p99.0 * 2),
        "recovery p99 {} us exceeds 2x fault-free baseline {} us",
        onepct.1.p99.as_us(),
        base_p99.as_us()
    );
    assert!(
        onepct.2.p99 >= Nanos(base_p99.0 * 5),
        "expected collapse without recovery: p99 {} us vs baseline {} us",
        onepct.2.p99.as_us(),
        base_p99.as_us()
    );
    assert_eq!(
        onepct.2.timer_rearms, 0,
        "disabled recovery must not re-arm"
    );
    println!(
        "shape ok: baseline p99 {:.1} us, 1% loss p99 {:.1} us with recovery, {:.1} us without",
        base_p99.as_us(),
        onepct.1.p99.as_us(),
        onepct.2.p99.as_us()
    );

    dataplane_phase(&cfg);
    println!("data-plane faults ok: conservation ledger closed under poll/steering chaos");
}
