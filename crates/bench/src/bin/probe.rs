//! Calibration probe: runs one (system, rate) point of the dispersive
//! workload and prints machine counters (queue depth, preemptions,
//! spurious IPIs) alongside the harness measurement. Not part of the
//! experiment set; useful when re-tuning baseline cost constants.
//!
//! Usage: `probe [ghost|sky|shinjuku] [rate_rps]`.
use skyloft_apps::harness::{run_point, SweepSpec};
use skyloft_apps::synthetic::{dispersive, dispersive_threshold, Placement};
use skyloft_bench::build;
use skyloft_sim::Nanos;

fn main() {
    let args = skyloft_bench::positional_args();
    let sys = args.first().map(|s| s.as_str()).unwrap_or("ghost");
    let rate: f64 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(350_000.0);
    let spec = SweepSpec {
        class_threshold: dispersive_threshold(),
        placement: Placement::Queue,
        warmup: Nanos::from_ms(50),
        measure: Nanos::from_ms(200),
        // The manually driven machine below dumps the trace instead, so
        // its counters and the dumped trace describe the same run.
        trace: None,
        ..SweepSpec::new(sys, vec![rate], dispersive())
    };
    // Build once more manually to read machine stats after the run.
    let (mut m, mut q) = match sys {
        "ghost" => build::ghost_shinjuku(20, Some(Nanos::from_us(30)), false),
        "sky" => build::skyloft_shinjuku(20, Some(Nanos::from_us(30)), false),
        _ => build::shinjuku(20, Some(Nanos::from_us(30))),
    };
    let gen = skyloft_net::loadgen::OpenLoop::new(rate, dispersive(), dispersive_threshold(), 1);
    skyloft_apps::synthetic::install_open_loop(
        &mut q,
        gen,
        0,
        Placement::Queue,
        Nanos::from_ms(250),
    );
    m.run(&mut q, Nanos::from_ms(50));
    m.reset_stats(q.now());
    m.run(&mut q, Nanos::from_ms(250));
    skyloft_bench::dump_trace(&m, sys);
    println!(
        "{sys}@{rate}: completed={} achieved={:.0} p99={:.1}us preempt={} spurious={} queue_len={:?}",
        m.stats.completed,
        m.stats.achieved_rps(q.now()),
        m.stats.resp_hist.percentile(99.0) as f64 / 1000.0,
        m.stats.preemptions,
        m.stats.spurious_ipis,
        m.policy.queue_len(),
    );
    let p = run_point(
        &spec,
        rate,
        &(|| match sys {
            "ghost" => build::ghost_shinjuku(20, Some(Nanos::from_us(30)), false),
            "sky" => build::skyloft_shinjuku(20, Some(Nanos::from_us(30)), false),
            _ => build::shinjuku(20, Some(Nanos::from_us(30))),
        }),
    );
    println!("point: {p:?}");
}
