//! Ablation: centralized-scheduler scalability (§2.2, §3.2).
//!
//! The paper motivates per-CPU user timers by arguing that a dedicated
//! dispatcher "can introduce bottlenecks, particularly in systems with
//! many cores". Skyloft's own dispatcher is a ~0.1 μs shared-memory write
//! per placement, so its knee sits far beyond this machine; the bottleneck
//! is vivid for an *agent-based* centralized framework, where every
//! placement costs a kernel message plus a transaction commit (ghOSt,
//! ~μs-serialized). This sweep holds per-core offered load fixed and
//! scales the worker count: per-CPU Skyloft and dispatcher-based Skyloft
//! keep scaling, while the ghOSt agent saturates. Interestingly the
//! failure mode is not throughput — when the agent backlogs, workers
//! simply run to completion, so placements (and preemptions) collapse and
//! throughput self-stabilizes — it is the *tail*: without affordable
//! preemption, head-of-line blocking returns and p99 explodes.

use skyloft_apps::harness::{par_map, run_point, sweep_threads, SweepSpec};
use skyloft_apps::synthetic::{dispersive, dispersive_threshold, Placement};
use skyloft_bench::{build, out, scaled};
use skyloft_metrics::Table;
use skyloft_sim::Nanos;

const PER_CORE_RPS: f64 = 17_000.0; // ~92% per-core utilization

fn main() {
    let worker_counts = [4usize, 8, 16, 24, 32, 40];
    let mut t = Table::new(&[
        "workers",
        "Skyloft per-CPU eff",
        "Skyloft dispatcher eff",
        "ghOSt agent eff",
        "ghOSt p99 (us)",
    ]);
    let mut sky_disp_eff = Vec::new();
    let mut percpu_eff = Vec::new();
    let mut ghost_eff = Vec::new();
    let mut ghost_p99 = Vec::new();
    let mut sky_disp_p99 = Vec::new();
    // Each worker count's three systems are independent machines; fan
    // the sweep across SKYLOFT_THREADS host threads.
    let points = par_map(&worker_counts, sweep_threads(), &|&w| {
        let rate = PER_CORE_RPS * w as f64;
        let spec = SweepSpec {
            class_threshold: dispersive_threshold(),
            placement: Placement::Queue,
            warmup: scaled(Nanos::from_ms(50)),
            measure: scaled(Nanos::from_ms(250)),
            ..SweepSpec::new("ablate", vec![rate], dispersive())
        };
        let central = run_point(&spec, rate, &|| {
            build::skyloft_shinjuku(w, Some(Nanos::from_us(30)), false)
        });
        let ghost = run_point(&spec, rate, &|| {
            build::ghost_shinjuku(w, Some(Nanos::from_us(30)), false)
        });
        // Direct pinning: this ablation isolates the *dispatch* cost, so
        // the NIC data plane (rings, polling core) must not be a variable.
        let mut spec_rss = spec.clone();
        spec_rss.placement = Placement::RssDirect { n: w };
        let percpu = run_point(&spec_rss, rate, &|| {
            build::skyloft_ws(w, Some(Nanos::from_us(30)))
        });
        eprintln!("  workers={w} done");
        (central, ghost, percpu)
    });
    for (&w, (central, ghost, percpu)) in worker_counts.iter().zip(&points) {
        let rate = PER_CORE_RPS * w as f64;
        sky_disp_eff.push(central.achieved_rps / rate);
        percpu_eff.push(percpu.achieved_rps / rate);
        ghost_eff.push(ghost.achieved_rps / rate);
        ghost_p99.push(ghost.p99_us);
        sky_disp_p99.push(central.p99_us);
        t.row_owned(vec![
            w.to_string(),
            format!("{:.3}", percpu.achieved_rps / rate),
            format!("{:.3}", central.achieved_rps / rate),
            format!("{:.3}", ghost.achieved_rps / rate),
            format!("{:.1}", ghost.p99_us),
        ]);
    }
    out::emit(
        "ablate_dispatcher",
        "Ablation: centralized-scheduler scalability (fixed per-core load)",
        &t,
    );
    let last = worker_counts.len() - 1;
    assert!(
        percpu_eff[last] > 0.97 && sky_disp_eff[last] > 0.97,
        "Skyloft variants keep efficiency at 40 cores: percpu {:.3}, dispatcher {:.3}",
        percpu_eff[last],
        sky_disp_eff[last]
    );
    // ghOSt at small scale is comparable to Skyloft's dispatcher; at 40
    // cores its agent can no longer afford preemption and the tail
    // detonates, while Skyloft's dispatcher tail stays in the same decade.
    assert!(
        ghost_p99[0] < 10.0 * sky_disp_p99[0],
        "ghOSt small-scale p99 should be same order: {:.1} vs {:.1}",
        ghost_p99[0],
        sky_disp_p99[0]
    );
    assert!(
        ghost_p99[last] > 5.0 * ghost_p99[1],
        "ghOSt p99 must blow up with scale: {:?}",
        ghost_p99
    );
    assert!(
        ghost_p99[last] > 5.0 * sky_disp_p99[last],
        "ghOSt p99 ({:.0}us) must dwarf Skyloft's ({:.0}us) at 40 cores",
        ghost_p99[last],
        sky_disp_p99[last]
    );
    println!(
        "Shape checks passed: at 40 workers Skyloft keeps ~100% efficiency and \
         a {:.0} us p99; the saturated ghOSt agent reaches {:.0} us p99.",
        sky_disp_p99[last], ghost_p99[last]
    );
}
