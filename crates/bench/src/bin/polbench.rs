//! Policy hot-path microbenchmark: per-policy enqueue/pick/dequeue cost
//! and pick throughput at task populations {16, 256, 4096, 65536}, for
//! the optimized implementations *and* the frozen pre-optimization
//! oracles in `skyloft_policies::reference` (DESIGN.md §14), plus an
//! end-to-end high-population machine sweep on EEVDF.
//!
//! Results go to `results/polbench.csv`; `--write` records them into the
//! repo-root `BENCH_policy.json` (one section per policy, spliced with
//! `baseline::upsert_section` so other benches' sections survive), with
//! the oracle's numbers alongside as the pre-optimization reference.
//! `--check` is the CI gate: it fails on a >30% pick-throughput
//! regression against the stored baseline, and it fails outright if
//! EEVDF's pick throughput at the 4096-task population is not at least
//! 5x the oracle's — the headline claim of the incremental-accounting
//! rework, re-proven on every run.

use std::time::Instant;

use skyloft::ops::{EnqueueFlags, Policy, SchedEnv};
use skyloft::task::{Task, TaskId, TaskTable};
use skyloft::SchedParams;
use skyloft_apps::harness::trace_arg;
use skyloft_apps::schbench;
use skyloft_bench::{baseline, build, out, scaled};
use skyloft_metrics::Table;
use skyloft_policies::{cfs, eevdf, reference, rr, shinjuku, shinjuku_shenango, work_stealing};
use skyloft_sim::Nanos;

const POPULATIONS: [usize; 4] = [16, 256, 4096, 65536];
const WORKER_CORES: usize = 4;
/// The population the CI gate and the baseline floor key on.
const GATE_POP: usize = 4096;
const GATE_SPEEDUP: f64 = 5.0;

/// One policy variant under test.
struct Contender {
    /// Section name in `BENCH_policy.json` / row label in the CSV.
    name: &'static str,
    /// `true` for the frozen `reference` module oracle.
    oracle: bool,
    mk: fn() -> Box<dyn Policy>,
}

fn contenders() -> Vec<Contender> {
    fn b<P: Policy + 'static>(p: P) -> Box<dyn Policy> {
        Box::new(p)
    }
    vec![
        Contender {
            name: "eevdf",
            oracle: false,
            mk: || b(eevdf::Eevdf::new(SchedParams::SKYLOFT_EEVDF)),
        },
        Contender {
            name: "eevdf_oracle",
            oracle: true,
            mk: || b(reference::Eevdf::new(SchedParams::SKYLOFT_EEVDF)),
        },
        Contender {
            name: "cfs",
            oracle: false,
            mk: || b(cfs::Cfs::new(SchedParams::SKYLOFT_CFS)),
        },
        Contender {
            name: "cfs_oracle",
            oracle: true,
            mk: || b(reference::Cfs::new(SchedParams::SKYLOFT_CFS)),
        },
        Contender {
            name: "rr",
            oracle: false,
            mk: || b(rr::RoundRobin::new(Some(Nanos::from_us(20)))),
        },
        Contender {
            name: "rr_oracle",
            oracle: true,
            mk: || b(reference::RoundRobin::new(Some(Nanos::from_us(20)))),
        },
        Contender {
            name: "work_stealing",
            oracle: false,
            mk: || b(work_stealing::WorkStealing::new(Some(Nanos::from_us(20)))),
        },
        Contender {
            name: "work_stealing_oracle",
            oracle: true,
            mk: || b(reference::WorkStealing::new(Some(Nanos::from_us(20)))),
        },
        Contender {
            name: "shinjuku",
            oracle: false,
            mk: || b(shinjuku::Shinjuku::new(Some(Nanos::from_us(20)))),
        },
        Contender {
            name: "shinjuku_oracle",
            oracle: true,
            mk: || b(reference::Shinjuku::new(Some(Nanos::from_us(20)))),
        },
        Contender {
            name: "shinjuku_shenango",
            oracle: false,
            mk: || {
                b(shinjuku_shenango::ShinjukuShenango::new(Some(
                    Nanos::from_us(20),
                )))
            },
        },
        Contender {
            name: "shinjuku_shenango_oracle",
            oracle: true,
            mk: || b(reference::ShinjukuShenango::new(Some(Nanos::from_us(20)))),
        },
    ]
}

#[derive(Clone, Copy)]
struct PopSample {
    enqueue_ns: f64,
    pick_ns: f64,
    dequeue_ns: f64,
    picks_per_sec: f64,
}

/// Pick+requeue iterations at steady population `n`: enough for stable
/// timing, bounded so the O(n)-per-pick oracles stay affordable at the
/// top population. `SKYLOFT_FAST` shrinks the budget for smoke runs.
fn iters_for(n: usize) -> usize {
    let base = match n {
        0..=64 => 200_000,
        65..=1024 => 50_000,
        1025..=8192 => 20_000,
        _ => 2_000,
    };
    let fast = std::env::var("SKYLOFT_FAST")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&f| f > 1)
        .unwrap_or(1);
    (base / fast).max(100)
}

/// Measures one policy at one population: enqueue all `n` tasks, run the
/// steady-state pick+requeue loop round-robin over the worker cores, then
/// drain to empty. Vruntimes and weights are spread so the weighted
/// policies exercise their accumulator math rather than an all-ties
/// degenerate queue.
fn bench_policy(mk: fn() -> Box<dyn Policy>, n: usize) -> PopSample {
    let cores: Vec<usize> = (0..WORKER_CORES).collect();
    let mut p = mk();
    p.sched_init(&SchedEnv {
        worker_cores: cores.clone(),
        dispatcher: None,
    });
    let mut tasks = TaskTable::new();
    let ids: Vec<TaskId> = (0..n)
        .map(|i| {
            let id = tasks.insert(|id| Task::bare(id, 0));
            p.task_init(&mut tasks, id, Nanos(i as u64));
            let pd = &mut tasks.get_mut(id).pd;
            pd.weight = [1024u32, 423, 2048, 88761][i % 4];
            pd.vruntime = (i as u64).wrapping_mul(7919) % 1_000_000;
            pd.deadline = pd.vruntime + 1 + (i as u64) % 50_000;
            id
        })
        .collect();

    let t0 = Instant::now();
    for (i, &id) in ids.iter().enumerate() {
        p.task_enqueue(
            &mut tasks,
            id,
            Some(cores[i % cores.len()]),
            EnqueueFlags::New,
            Nanos(i as u64),
        );
    }
    let enqueue_ns = t0.elapsed().as_secs_f64() * 1e9 / n as f64;

    let iters = iters_for(n);
    let mut now = Nanos(1_000_000);
    let mut picked = 0u64;
    let t0 = Instant::now();
    for k in 0..iters {
        let cpu = cores[k % cores.len()];
        now += Nanos(97);
        let t = p
            .task_dequeue(&mut tasks, cpu, now)
            .or_else(|| p.sched_balance(&mut tasks, cpu, now));
        if let Some(t) = t {
            picked += 1;
            p.task_enqueue(&mut tasks, t, Some(cpu), EnqueueFlags::Preempted, now);
        }
    }
    let pick_wall = t0.elapsed().as_secs_f64();
    let pick_ns = pick_wall * 1e9 / iters.max(1) as f64;
    let picks_per_sec = picked as f64 / pick_wall;

    let mut drained = 0usize;
    let t0 = Instant::now();
    while drained < n {
        let mut any = false;
        for &cpu in &cores {
            now += Nanos(97);
            if let Some(t) = p
                .task_dequeue(&mut tasks, cpu, now)
                .or_else(|| p.sched_balance(&mut tasks, cpu, now))
            {
                p.task_terminate(&mut tasks, t, now);
                tasks.remove(t);
                drained += 1;
                any = true;
            }
        }
        assert!(any, "policy lost tasks: drained {drained} of {n}");
    }
    let dequeue_ns = t0.elapsed().as_secs_f64() * 1e9 / n as f64;

    PopSample {
        enqueue_ns,
        pick_ns,
        dequeue_ns,
        picks_per_sec,
    }
}

/// End-to-end high-population sweep: schbench with a large worker herd on
/// per-CPU EEVDF, where every timer tick and wakeup goes through the
/// incremental accounting. Returns simulator events/sec.
fn run_end_to_end() -> f64 {
    let t0 = Instant::now();
    let (mut m, mut q) = build::skyloft_percpu(
        8,
        100_000,
        Box::new(eevdf::Eevdf::new(SchedParams::SKYLOFT_EEVDF)),
    );
    schbench::spawn(&mut m, &mut q, 0, 1024, schbench::DEFAULT_WORK);
    let events = m.run(&mut q, scaled(Nanos::from_ms(200)));
    events as f64 / t0.elapsed().as_secs_f64()
}

/// `(contender name, is_oracle, per-population samples)`.
type ContenderResult = (&'static str, bool, Vec<(usize, PopSample)>);

fn section_body(samples: &[(usize, PopSample)]) -> String {
    let mut lines = Vec::new();
    for (n, s) in samples {
        lines.push(format!("    \"enqueue_ns_{n}\": {:.1},", s.enqueue_ns));
        lines.push(format!("    \"pick_ns_{n}\": {:.1},", s.pick_ns));
        lines.push(format!("    \"dequeue_ns_{n}\": {:.1},", s.dequeue_ns));
        lines.push(format!(
            "    \"picks_per_sec_{n}\": {:.0},",
            s.picks_per_sec
        ));
    }
    let mut body = lines.join("\n");
    body.pop(); // drop the trailing comma
    body
}

fn main() {
    let _ = trace_arg();
    let args = skyloft_bench::positional_args();
    let write = args.iter().any(|a| a == "--write");
    let check = args.iter().any(|a| a == "--check");

    let mut t = Table::new(&[
        "policy",
        "population",
        "enqueue_ns",
        "pick_ns",
        "dequeue_ns",
        "picks_per_sec",
    ]);
    let mut results: Vec<ContenderResult> = Vec::new();
    for c in contenders() {
        eprintln!("polbench: measuring {}...", c.name);
        let mut samples = Vec::new();
        for n in POPULATIONS {
            let s = bench_policy(c.mk, n);
            t.row_owned(vec![
                c.name.to_string(),
                n.to_string(),
                format!("{:.1}", s.enqueue_ns),
                format!("{:.1}", s.pick_ns),
                format!("{:.1}", s.dequeue_ns),
                format!("{:.0}", s.picks_per_sec),
            ]);
            samples.push((n, s));
        }
        results.push((c.name, c.oracle, samples));
    }
    eprintln!("polbench: measuring end-to-end high-population sweep...");
    let e2e_events_per_sec = run_end_to_end();
    out::emit("polbench", "Policy hot-path microbenchmark", &t);
    println!("end-to-end eevdf schbench events/sec: {e2e_events_per_sec:.0}");

    let gate_pick = |name: &str| -> f64 {
        results
            .iter()
            .find(|(n, _, _)| *n == name)
            .and_then(|(_, _, s)| s.iter().find(|(p, _)| *p == GATE_POP))
            .map(|(_, s)| s.picks_per_sec)
            .unwrap_or(0.0)
    };
    let speedup = gate_pick("eevdf") / gate_pick("eevdf_oracle").max(1.0);
    println!("eevdf pick speedup vs oracle at {GATE_POP} tasks: {speedup:.1}x");

    if write {
        let path = baseline::policy_baseline_path();
        let mut ok = true;
        for (name, _, samples) in &results {
            ok &= baseline::upsert_section(&path, name, &section_body(samples)).is_ok();
        }
        let e2e = format!(
            "    \"eevdf_schbench_events_per_sec\": {e2e_events_per_sec:.0},\n    \"eevdf_speedup_vs_oracle_{GATE_POP}\": {speedup:.1}"
        );
        ok &= baseline::upsert_section(&path, "end_to_end", &e2e).is_ok();
        if ok {
            eprintln!("polbench: wrote {}", path.display());
        } else {
            eprintln!("polbench: failed to write {}", path.display());
        }
    }

    if check {
        let mut ok = true;
        if speedup < GATE_SPEEDUP {
            eprintln!(
                "polbench: GATE FAILURE: eevdf pick throughput at {GATE_POP} tasks is only \
                 {speedup:.1}x the oracle (need >= {GATE_SPEEDUP:.0}x)"
            );
            ok = false;
        }
        let json = std::fs::read_to_string(baseline::policy_baseline_path()).unwrap_or_default();
        for (name, oracle, samples) in &results {
            if *oracle {
                continue; // the oracles are the yardstick, not the product
            }
            let key = format!("picks_per_sec_{GATE_POP}");
            let Some(base) = baseline::extract(&json, name, &key) else {
                continue;
            };
            let measured = samples
                .iter()
                .find(|(p, _)| *p == GATE_POP)
                .map(|(_, s)| s.picks_per_sec)
                .unwrap_or(0.0);
            if measured < base * 0.7 {
                eprintln!(
                    "polbench: REGRESSION on {name} {key}: measured {measured:.0} < 70% of \
                     baseline {base:.0}"
                );
                ok = false;
            } else {
                eprintln!("polbench: {name} {key} {measured:.0} vs baseline {base:.0} — ok");
            }
        }
        if !ok {
            std::process::exit(1);
        }
    }
}
