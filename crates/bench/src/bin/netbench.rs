//! Network data-plane saturation sweep (§3.5): p99 vs offered load for
//! the memcached USR workload, run twice per rate — once through the
//! multi-queue NIC model (`Placement::Rss`, bounded RX rings + polling
//! core) and once over the pre-change direct path (`Placement::RssDirect`,
//! flow-hash pinning with no rings).
//!
//! The shape this records is the PR's bugfix: past saturation the direct
//! path accumulates an unbounded in-simulator spawn queue, so its p99
//! grows with the measurement window; the NIC path tail-drops at the
//! rings, so delivered requests stay fast and dropped ones surface at the
//! client timeout — p99 is bounded by the timeout no matter how far past
//! saturation the sweep pushes.
//!
//! Results go to `results/netbench.csv`; `--write` records the direct
//! series as `pre_change` and the NIC series as `current` in the repo-root
//! `BENCH_net.json`; `--check` re-runs the sweep and gates CI on the
//! semantic shape (NIC overload p99 bounded by the timeout, drops
//! observed, direct tail far worse) plus a regression bound against the
//! stored NIC numbers.

use skyloft_apps::harness::{par_map, sweep_threads, trace_arg};
use skyloft_apps::memcached::{usr_distribution, usr_threshold};
use skyloft_apps::synthetic::{install_open_loop_net, Placement};
use skyloft_bench::{build, out, scaled};
use skyloft_metrics::Table;
use skyloft_net::loadgen::{NetProfile, OpenLoop};
use skyloft_sim::Nanos;

const WORKERS: usize = 4;
/// Client retransmission/abandon timeout: the bound the NIC path's tail
/// must respect past saturation.
const TIMEOUT: Nanos = Nanos::from_ms(1);
const SEED: u64 = 0x6E65_7462; // "netb"

/// Offered rates in rps. 4 workers x (1.5 us GET + ~0.5 us stack) put
/// capacity near 2.0 M rps; the last two points are past saturation.
fn rates() -> Vec<f64> {
    vec![
        600_000.0,
        1_000_000.0,
        1_400_000.0,
        1_800_000.0,
        2_200_000.0,
        2_600_000.0,
    ]
}

/// One measured sweep point, with the data-plane counters the stock
/// harness `LoadPoint` does not carry.
struct NetPoint {
    rate: f64,
    achieved_rps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    drops: u64,
    timeouts: u64,
    occ_max: u64,
}

fn run_net_point(rate: f64, placement: Placement) -> NetPoint {
    let (mut m, mut q) = build::skyloft_ws(WORKERS, Some(Nanos::from_us(30)));
    let gen = OpenLoop::new(
        rate,
        usr_distribution(),
        usr_threshold(),
        SEED ^ (rate as u64),
    );
    let warmup = scaled(Nanos::from_ms(50));
    let end = warmup + scaled(Nanos::from_ms(200));
    let net = NetProfile::lossy(0, 0.0, 0.0, TIMEOUT);
    install_open_loop_net(&mut q, gen, 0, placement, end, Some(net));
    m.run(&mut q, warmup);
    m.reset_stats(q.now());
    m.run(&mut q, end);
    let now = q.now();
    // The conservation invariant must hold on every NIC-routed point: no
    // datagram may vanish outside the drop counters.
    assert_eq!(
        m.stats.net_generated,
        m.stats.net_delivered + m.stats.rx_ring_drops + m.stats.net_in_flight,
        "datagram conservation violated at {rate} rps"
    );
    let h = &m.stats.resp_hist;
    NetPoint {
        rate,
        achieved_rps: m.stats.achieved_rps(now),
        p50_us: h.percentile(50.0) as f64 / 1000.0,
        p99_us: h.percentile(99.0) as f64 / 1000.0,
        p999_us: h.percentile(99.9) as f64 / 1000.0,
        drops: m.stats.rx_ring_drops,
        timeouts: m.stats.timeouts,
        occ_max: m.stats.rx_occ_hist.max(),
    }
}

fn run_series(placement: &Placement) -> Vec<NetPoint> {
    let rs = rates();
    par_map(&rs, sweep_threads(), &|&rate| {
        run_net_point(rate, placement.clone())
    })
}

use skyloft_bench::baseline::{extract, net_baseline_path as baseline_path, upsert_section};

/// The metrics a series contributes to the baseline file: the knee-side
/// point (last rate under nominal capacity) and the overload point (last
/// rate of the sweep).
fn series_json(points: &[NetPoint], indent: &str) -> String {
    let sat = &points[points.len() - 3]; // 1.8 M — just under capacity
    let over = points.last().expect("sweep has points");
    format!(
        "{indent}\"sat_p99_us\": {:.1},\n\
         {indent}\"overload_p99_us\": {:.1},\n\
         {indent}\"overload_p999_us\": {:.1},\n\
         {indent}\"overload_achieved_rps\": {:.0},\n\
         {indent}\"overload_drops\": {},\n\
         {indent}\"overload_occ_max\": {}",
        sat.p99_us, over.p99_us, over.p999_us, over.achieved_rps, over.drops, over.occ_max
    )
}

/// Splices this bench's two sections into the shared baseline, leaving
/// other benches' sections (overload_sweep's) untouched.
fn write_baseline(direct: &[NetPoint], nic: &[NetPoint]) {
    let path = baseline_path();
    let r = upsert_section(&path, "pre_change", &series_json(direct, "    "))
        .and_then(|()| upsert_section(&path, "current", &series_json(nic, "    ")));
    match r {
        Ok(()) => eprintln!("netbench: wrote {}", path.display()),
        Err(e) => eprintln!("netbench: failed to write {}: {e}", path.display()),
    }
}

fn check_baseline(direct: &[NetPoint], nic: &[NetPoint]) -> bool {
    let timeout_us = TIMEOUT.0 as f64 / 1000.0;
    let nic_over = nic.last().expect("sweep has points");
    let direct_over = direct.last().expect("sweep has points");
    let mut ok = true;
    // (1) Bounded tail past saturation: the NIC path's p99 may not exceed
    // the client timeout by more than measurement slack.
    if nic_over.p99_us > timeout_us * 1.15 {
        eprintln!(
            "netbench: FAIL — NIC overload p99 {:.1} us exceeds the {:.0} us client timeout",
            nic_over.p99_us, timeout_us
        );
        ok = false;
    }
    // (2) Overload must manifest as tail-drops, not hidden queues.
    if nic_over.drops == 0 {
        eprintln!("netbench: FAIL — no RX ring drops at {} rps", nic_over.rate);
        ok = false;
    }
    // (3) The pre-change path demonstrates the bug: its overload tail is
    // an unbounded queue, far beyond the NIC path's timeout-bounded tail.
    if direct_over.p99_us < 1.5 * nic_over.p99_us {
        eprintln!(
            "netbench: FAIL — direct overload p99 {:.1} us should dwarf NIC's {:.1} us",
            direct_over.p99_us, nic_over.p99_us
        );
        ok = false;
    }
    // (4) Regression bound vs the stored NIC numbers, when present.
    if let Ok(json) = std::fs::read_to_string(baseline_path()) {
        if let Some(base) = extract(&json, "current", "overload_p99_us") {
            if nic_over.p99_us > base * 1.3 {
                eprintln!(
                    "netbench: REGRESSION — NIC overload p99 {:.1} us vs baseline {base:.1} us",
                    nic_over.p99_us
                );
                ok = false;
            } else {
                eprintln!(
                    "netbench: NIC overload p99 {:.1} us vs baseline {base:.1} us — ok",
                    nic_over.p99_us
                );
            }
        }
    } else {
        eprintln!(
            "netbench: no baseline at {} — semantic checks only",
            baseline_path().display()
        );
    }
    ok
}

fn main() {
    let _ = trace_arg();
    let args = skyloft_bench::positional_args();
    let write = args.iter().any(|a| a == "--write");
    let check = args.iter().any(|a| a == "--check");

    eprintln!("netbench: sweeping direct (pre-change) path...");
    let direct = run_series(&Placement::RssDirect { n: WORKERS });
    eprintln!("netbench: sweeping NIC data plane...");
    let nic = run_series(&Placement::Rss { n: WORKERS });

    let mut t = Table::new(&[
        "offered kRPS",
        "series",
        "achieved kRPS",
        "p50 (us)",
        "p99 (us)",
        "p99.9 (us)",
        "rx drops",
        "timeouts",
        "ring occ max",
    ]);
    for (name, series) in [("direct", &direct), ("nic", &nic)] {
        for p in series.iter() {
            t.row_owned(vec![
                format!("{:.0}", p.rate / 1000.0),
                name.to_string(),
                format!("{:.0}", p.achieved_rps / 1000.0),
                format!("{:.1}", p.p50_us),
                format!("{:.1}", p.p99_us),
                format!("{:.1}", p.p999_us),
                p.drops.to_string(),
                p.timeouts.to_string(),
                p.occ_max.to_string(),
            ]);
        }
    }
    out::emit(
        "netbench",
        "NIC data plane: USR p99 vs load past saturation (direct vs rings)",
        &t,
    );
    let over = nic.last().expect("sweep has points");
    println!(
        "overload ({:.1} M rps): nic p99 {:.0} us ({} drops), direct p99 {:.0} us",
        over.rate / 1e6,
        over.p99_us,
        over.drops,
        direct.last().expect("sweep has points").p99_us
    );

    if write {
        write_baseline(&direct, &nic);
    }
    if check && !check_baseline(&direct, &nic) {
        std::process::exit(1);
    }
}
