//! Figure 8b: the RocksDB server under the bimodal workload (50% GET at
//! 0.95 μs, 50% SCAN at 591 μs), 14 worker cores, 99.9th-percentile
//! slowdown as the SLO metric.
//!
//! Expected shape (§5.3): Shenango, lacking preemption, blows through the
//! 50× slowdown SLO early (GETs head-of-line block behind SCANs); Skyloft
//! with a 5 μs quantum sustains ~1.9× Shenango's load; larger quanta fall
//! in between; the utimer variant (a core burned to emulate timers) costs
//! ~13% against LAPIC timer delegation.

use skyloft_apps::harness::{run_sweep, SweepSpec};
use skyloft_apps::rocksdb::{bimodal_distribution, bimodal_threshold};
use skyloft_apps::synthetic::Placement;
use skyloft_bench::setup::FIG8B_WORKERS;
use skyloft_bench::{build, out, scaled};
use skyloft_metrics::Series;
use skyloft_sim::Nanos;

fn rates() -> Vec<f64> {
    [4, 8, 12, 16, 20, 24, 28, 32, 36, 38, 40, 41, 42, 43, 44]
        .iter()
        .map(|k| *k as f64 * 1000.0)
        .collect()
}

fn spec(name: &str, workers: usize) -> SweepSpec {
    SweepSpec {
        class_threshold: bimodal_threshold(),
        placement: Placement::Rss { n: workers },
        warmup: scaled(Nanos::from_ms(100)),
        measure: scaled(Nanos::from_ms(900)),
        ..SweepSpec::new(name, rates(), bimodal_distribution())
    }
}

fn main() {
    let mut all: Vec<Series> = Vec::new();
    for q_us in [5u64, 15, 30] {
        all.push(run_sweep(
            &spec(&format!("Skyloft ({q_us}us)"), FIG8B_WORKERS),
            &|| build::skyloft_ws(FIG8B_WORKERS, Some(Nanos::from_us(q_us))),
        ));
        eprintln!("  skyloft-{q_us} done");
    }
    all.push(run_sweep(&spec("Shenango", FIG8B_WORKERS), &|| {
        build::shenango_ws(FIG8B_WORKERS)
    }));
    eprintln!("  shenango done");
    // utimer: one core sacrificed to emulate timers with user IPIs.
    all.push(run_sweep(
        &spec("Skyloft-utimer (5us)", FIG8B_WORKERS - 1),
        &|| build::skyloft_ws_utimer(FIG8B_WORKERS - 1, Nanos::from_us(5)),
    ));
    eprintln!("  utimer done");

    let t = out::figure_table(
        "offered kRPS",
        |p| p.slowdown_p999.unwrap_or(f64::NAN),
        &all,
    );
    out::emit(
        "fig8b_rocksdb",
        "Figure 8b: 99.9% slowdown vs offered load",
        &t,
    );

    const SLO: f64 = 50.0;
    println!("max throughput at 99.9% slowdown <= {SLO}x:");
    let max: Vec<(String, f64)> = all
        .iter()
        .map(|s| (s.name.clone(), s.max_tput_under_slowdown_slo(SLO)))
        .collect();
    for (n, v) in &max {
        println!("  {n:<20} {:.1} kRPS", v / 1000.0);
    }
    let get = |n: &str| max.iter().find(|(x, _)| x == n).unwrap().1;
    let sky5 = get("Skyloft (5us)");
    let shen = get("Shenango");
    let utimer = get("Skyloft-utimer (5us)");
    assert!(
        sky5 > 1.4 * shen,
        "Skyloft 5us ({sky5:.0}) must sustain well above Shenango ({shen:.0}); paper: 1.9x"
    );
    assert!(
        utimer < 0.98 * sky5,
        "utimer ({utimer:.0}) must trail LAPIC timers ({sky5:.0}); paper: ~13% lower"
    );
    println!(
        "Shape checks passed: Skyloft(5us)/Shenango = {:.2}x (paper 1.9x); \
         utimer penalty = {:.0}% (paper ~13%).",
        sky5 / shen,
        100.0 * (1.0 - utimer / sky5)
    );
}
