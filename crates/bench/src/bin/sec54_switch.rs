//! §5.4: thread-switching costs — Skyloft's inter-application switch
//! (1905 ns) against Linux's runnable-to-runnable (1124 ns) and
//! wake-another-thread (2471 ns) switches, measured through the machine.
//!
//! Method: run a chain of alternating tasks on one core and derive the
//! per-switch overhead from the end-to-end completion time minus the pure
//! compute time.

use skyloft::builtin::GlobalFifo;
use skyloft::machine::{AppKind, Event, Machine, MachineConfig};
use skyloft::Platform;
use skyloft_baselines::linux;
use skyloft_bench::out;
use skyloft_bench::setup::SEED;
use skyloft_hw::Topology;
use skyloft_metrics::Table;
use skyloft_sim::{EventQueue, Nanos};

const N_PAIRS: u64 = 500;
const WORK: Nanos = Nanos::from_us(2);

/// Runs `2 * N_PAIRS` tasks alternating between two apps (or one app) on a
/// single core; returns the measured per-switch overhead in ns. `label`
/// names the run in a `--trace` dump (later runs overwrite earlier ones).
fn measure(plat: Platform, two_apps: bool, label: &str) -> (f64, u64) {
    let cfg = MachineConfig {
        plat,
        n_workers: 1,
        seed: SEED,
        core_alloc: None,
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, Box::new(GlobalFifo::new()));
    m.add_app("a", AppKind::Lc);
    if two_apps {
        m.add_app("b", AppKind::Lc);
    }
    let mut q: EventQueue<Event> = EventQueue::new();
    m.start(&mut q);
    let t0 = q.now();
    for i in 0..(2 * N_PAIRS) {
        let app = if two_apps { (i % 2) as usize } else { 0 };
        m.spawn_request(&mut q, app, WORK, 0, Some(0));
    }
    m.run(&mut q, Nanos::from_secs(5));
    assert_eq!(m.stats.completed, 2 * N_PAIRS);
    // The periodic timer keeps the event queue alive until the deadline;
    // the chain itself ends at the last request's completion.
    let total = m.stats.last_completion - t0;
    let compute = WORK * (2 * N_PAIRS);
    let overhead_per_switch = (total - compute).0 as f64 / (2 * N_PAIRS) as f64;
    skyloft_bench::dump_trace(&m, label);
    (overhead_per_switch, m.stats.app_switches)
}

fn main() {
    let topo = Topology::single(2);
    let mut t = Table::new(&["path", "measured ns/switch", "paper ns", "app switches"]);

    let (same, sw) = measure(
        Platform::skyloft_percpu(topo, 100_000),
        false,
        "skyloft same-app",
    );
    t.row_owned(vec![
        "Skyloft same-app uthread switch".into(),
        format!("{same:.0}"),
        "37 (Table 7 yield)".into(),
        sw.to_string(),
    ]);

    let (cross, sw) = measure(
        Platform::skyloft_percpu(topo, 100_000),
        true,
        "skyloft inter-app",
    );
    t.row_owned(vec![
        "Skyloft inter-application switch".into(),
        format!("{cross:.0}"),
        "1905".into(),
        sw.to_string(),
    ]);

    let (lin, _) = measure(linux::platform(topo, 1_000), false, "linux kthreads");
    t.row_owned(vec![
        "Linux kthread switch (runnable)".into(),
        format!("{lin:.0}"),
        "1124".into(),
        "0".to_string(),
    ]);
    t.row_owned(vec![
        "Linux switch w/ wakeup".into(),
        format!(
            "{}",
            (linux::platform(topo, 1_000).wake_cost + linux::platform(topo, 1_000).wake_latency).0
        ),
        "2471".into(),
        "-".into(),
    ]);

    out::emit("sec54_switch", "§5.4: thread switching costs", &t);
    assert!(
        cross > 10.0 * same,
        "inter-app must dwarf same-app switches"
    );
    assert!(
        (cross - 1905.0).abs() < 200.0,
        "inter-app ≈ 1905 ns: {cross}"
    );
    println!("Shape checks passed: inter-app (≈1.9 us) >> same-app (≈37 ns); Linux between.");
}
