//! Table 6: preemption-mechanism comparison (cycles).
//!
//! The cost model is *calibrated from* Table 6 (DESIGN.md §2), so this
//! harness cannot re-measure silicon; what it verifies is that the whole
//! notification pipeline — `SENDUIPI` through the UINTR fabric, IPI wire
//! delivery, recognition, handler entry — reproduces those numbers when
//! driven through the event queue, including the NUMA effect and the
//! §3.2 timer-delegation path (SN-armed PIR, handler re-arm at 123
//! cycles).

use skyloft_bench::out;
use skyloft_hw::costs::{
    self, MechCost, KERNEL_IPI, SETITIMER_RECEIVE, SIGNAL, USER_IPI, USER_IPI_XNUMA,
    USER_TIMER_RECEIVE,
};
use skyloft_hw::uintr::UittEntry;
use skyloft_hw::{CostModel, Topology, UintrFabric};
use skyloft_metrics::Table;
use skyloft_sim::{Cycles, EventQueue, Nanos};

/// Drives one notification through the event queue and returns the
/// measured (send, receive, delivery) in cycles.
fn drive(mech: MechCost) -> (u64, u64, u64) {
    #[derive(Debug)]
    enum Ev {
        SendDone,
        Arrive,
        HandlerDone,
    }
    let mut q: EventQueue<Ev> = EventQueue::new();
    let t0 = q.now();
    q.schedule(t0 + mech.send_ns(), Ev::SendDone);
    q.schedule(t0 + mech.send_ns() + mech.delivery_ns(), Ev::Arrive);
    let mut send_done = Nanos::ZERO;
    let mut arrive = Nanos::ZERO;
    let mut handler_done = Nanos::ZERO;
    while let Some((at, ev)) = q.pop() {
        match ev {
            Ev::SendDone => send_done = at,
            Ev::Arrive => {
                arrive = at;
                q.schedule(at + mech.receive_ns(), Ev::HandlerDone);
            }
            Ev::HandlerDone => handler_done = at,
        }
    }
    let to_cy = |n: Nanos| Cycles::from_nanos(n).0;
    (
        to_cy(send_done - t0),
        to_cy(handler_done - arrive),
        to_cy(arrive - send_done),
    )
}

fn main() {
    let model = CostModel::new(Topology::PAPER_SERVER);
    let mut t = Table::new(&[
        "mechanism",
        "send (cy)",
        "receive (cy)",
        "delivery (cy)",
        "paper send/recv/deliv",
    ]);
    let rows: Vec<(&str, MechCost, (u64, u64, u64))> = vec![
        ("Signal", SIGNAL, (1224, 6359, 5274)),
        ("Kernel IPI", KERNEL_IPI, (437, 1582, 1345)),
        ("User IPI", model.user_ipi(0, 1), (167, 661, 1211)),
        (
            "User IPI (cross NUMA)",
            model.user_ipi(0, 24),
            (178, 883, 1782),
        ),
    ];
    for (name, mech, paper) in rows {
        let (s, r, d) = drive(mech);
        t.row_owned(vec![
            name.to_string(),
            s.to_string(),
            r.to_string(),
            d.to_string(),
            format!("{}/{}/{}", paper.0, paper.1, paper.2),
        ]);
    }
    t.row_owned(vec![
        "setitimer".into(),
        "-".into(),
        Cycles::from_nanos(SETITIMER_RECEIVE.to_nanos())
            .0
            .to_string(),
        "-".into(),
        "-/5057/-".into(),
    ]);
    t.row_owned(vec![
        "User timer interrupt".into(),
        "-".into(),
        Cycles::from_nanos(USER_TIMER_RECEIVE.to_nanos())
            .0
            .to_string(),
        "-".into(),
        "-/642/-".into(),
    ]);
    out::emit("tab6_preemption", "Table 6: preemption mechanisms", &t);

    // §3.2 timer-delegation pipeline through the architectural model:
    // verify both the lost-interrupt pitfall and the armed path, and the
    // handler's 123-cycle re-arm cost.
    let mut f = UintrFabric::new(1);
    let upid = f.alloc_upid(0xec, 0);
    f.bind_receiver(0, upid, 0xec);
    f.set_user_mode(0, true);
    let lost = f.on_interrupt_arrival(0, 0xec);
    f.set_sn(upid, true);
    f.senduipi(UittEntry { upid, user_vec: 0 });
    let armed = f.on_interrupt_arrival(0, 0xec);
    println!("timer without SN-armed PIR: {lost:?} (the §3.2 pitfall)");
    println!("timer after SN self-post:   {armed:?}");
    println!(
        "handler re-arm (SENDUIPI with SN=1): {} cycles",
        costs::SENDUIPI_SN.0
    );
    assert_eq!(format!("{lost:?}"), "Lost");
    assert_eq!(format!("{armed:?}"), "Pending");

    // Shape assertions from the paper's discussion.
    let delivery = USER_IPI.delivery_ns();
    assert!(
        delivery < Nanos(700),
        "0.6us cross-core claim: {delivery:?}"
    );
    assert!(USER_TIMER_RECEIVE < USER_IPI.receive);
    let (soft, hard) = (SETITIMER_RECEIVE.0, USER_TIMER_RECEIVE.0);
    assert!(soft > 7 * hard, "~10x soft-timer claim: {soft} vs {hard}");
    assert!(USER_IPI_XNUMA.delivery > USER_IPI.delivery);
    println!("\nShape checks passed: signal >> kernel IPI > user IPI; user timer ~10x faster than setitimer.");
}
