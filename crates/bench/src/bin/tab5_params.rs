//! Table 5: parameters for the scheduling policies of §5.1.

use skyloft::SchedParams;
use skyloft_bench::out;
use skyloft_metrics::Table;
use skyloft_sim::Nanos;

fn fmt(n: Nanos) -> String {
    format!("{n}")
}

fn main() {
    let mut t = Table::new(&[
        "policy",
        "timer hz",
        "min_granularity / base_slice",
        "time_slice / sched_latency",
    ]);
    let rows: Vec<(&str, u64, Option<Nanos>, Option<Nanos>)> = vec![
        (
            "Linux RR (default)",
            250,
            None,
            Some(SchedParams::LINUX_RR_DEFAULT.time_slice),
        ),
        (
            "Linux CFS (default)",
            250,
            Some(SchedParams::LINUX_CFS_DEFAULT.min_granularity),
            Some(SchedParams::LINUX_CFS_DEFAULT.sched_latency),
        ),
        (
            "Linux CFS (tuned)",
            1_000,
            Some(SchedParams::LINUX_CFS_TUNED.min_granularity),
            Some(SchedParams::LINUX_CFS_TUNED.sched_latency),
        ),
        (
            "Linux EEVDF (default)",
            1_000,
            Some(SchedParams::LINUX_EEVDF_DEFAULT.min_granularity),
            None,
        ),
        (
            "Linux EEVDF (tuned)",
            1_000,
            Some(SchedParams::LINUX_EEVDF_TUNED.min_granularity),
            None,
        ),
        (
            "Skyloft RR",
            100_000,
            None,
            Some(SchedParams::SKYLOFT_RR.time_slice),
        ),
        (
            "Skyloft CFS",
            100_000,
            Some(SchedParams::SKYLOFT_CFS.min_granularity),
            Some(SchedParams::SKYLOFT_CFS.sched_latency),
        ),
        (
            "Skyloft EEVDF",
            100_000,
            Some(SchedParams::SKYLOFT_EEVDF.min_granularity),
            None,
        ),
    ];
    for (name, hz, gran, slice) in rows {
        t.row_owned(vec![
            name.to_string(),
            hz.to_string(),
            gran.map(fmt).unwrap_or_else(|| "-".into()),
            slice.map(fmt).unwrap_or_else(|| "-".into()),
        ]);
    }
    out::emit("tab5_params", "Table 5: scheduling-policy parameters", &t);
}
