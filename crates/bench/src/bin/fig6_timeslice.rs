//! Figure 6: schbench wakeup latency as a function of the RR time slice.
//!
//! Skyloft RR at 100 kHz with slices from 5 μs to 500 μs, plus
//! Skyloft-FIFO (an infinite slice — no preemption). Expected shape:
//! wakeup latency is roughly proportional to the slice once workers
//! oversubscribe the cores, with FIFO worst (a woken worker waits for
//! whole 2.3 ms requests).

use skyloft_apps::harness::{par_map, sweep_threads};
use skyloft_apps::schbench::DEFAULT_WORK;
use skyloft_bench::setup::FIG5_CORES;
use skyloft_bench::{build, out, schbench_util};
use skyloft_metrics::Table;
use skyloft_policies::RoundRobin;
use skyloft_sim::Nanos;

const WORKER_COUNTS: &[usize] = &[8, 16, 24, 32, 48, 64];
const SLICES_US: &[u64] = &[5, 10, 25, 50, 100, 500];

fn main() {
    let mut header = vec!["workers".to_string()];
    header.extend(SLICES_US.iter().map(|s| format!("{s}us p99")));
    header.push("FIFO p99".to_string());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);

    // (workers, slice) grid plus a FIFO column (`slice = None`): all
    // independent simulations, fanned across SKYLOFT_THREADS threads.
    let cells: Vec<(usize, Option<u64>)> = WORKER_COUNTS
        .iter()
        .flat_map(|&w| {
            SLICES_US
                .iter()
                .map(move |&s| (w, Some(s)))
                .chain(std::iter::once((w, None)))
        })
        .collect();
    let stats = par_map(&cells, sweep_threads(), &|&(workers, slice_us)| {
        match slice_us {
            Some(slice_us) => {
                let slice = Nanos::from_us(slice_us);
                // The timer must tick at least as often as the slice.
                let hz = 1_000_000_000 / slice.0.min(Nanos::from_us(10).0);
                schbench_util::run(
                    &|| {
                        build::skyloft_percpu(
                            FIG5_CORES,
                            hz,
                            Box::new(RoundRobin::new(Some(slice))),
                        )
                    },
                    workers,
                    DEFAULT_WORK,
                )
            }
            None => schbench_util::run(
                &|| build::skyloft_percpu(FIG5_CORES, 100_000, Box::new(RoundRobin::new(None))),
                workers,
                DEFAULT_WORK,
            ),
        }
    });

    let mut at64: Vec<(u64, f64)> = Vec::new();
    let mut fifo64 = 0.0;
    let per_row = SLICES_US.len() + 1;
    for (wi, &workers) in WORKER_COUNTS.iter().enumerate() {
        let mut row = vec![workers.to_string()];
        for (&(_, slice_us), stats) in cells[wi * per_row..(wi + 1) * per_row]
            .iter()
            .zip(&stats[wi * per_row..])
        {
            if workers == 64 {
                match slice_us {
                    Some(s) => at64.push((s, stats.p99_us)),
                    None => fifo64 = stats.p99_us,
                }
            }
            row.push(format!("{:.0}", stats.p99_us));
        }
        t.row_owned(row);
        eprintln!("  workers={workers} done");
    }
    out::emit(
        "fig6_timeslice",
        "Figure 6: schbench p99 wakeup latency (us) vs RR time slice",
        &t,
    );

    // Shape: at 64 workers, latency grows with the slice and FIFO is worst.
    let small = at64.iter().find(|(s, _)| *s == 5).unwrap().1;
    let large = at64.iter().find(|(s, _)| *s == 500).unwrap().1;
    assert!(
        large > 2.0 * small,
        "p99 must grow with the slice: 5us -> {small:.0}, 500us -> {large:.0}"
    );
    assert!(
        fifo64 >= large,
        "FIFO ({fifo64:.0}us) must be at least the largest slice ({large:.0}us)"
    );
    println!("Shape checks passed: wakeup latency ∝ time slice; FIFO worst.");
}
