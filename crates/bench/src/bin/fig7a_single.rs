//! Figure 7a: 99% tail latency vs load for the dispersive workload
//! (99.5% × 4 μs + 0.5% × 10 ms), single application.
//!
//! Systems: Skyloft-Shinjuku (15 μs and 30 μs quanta), the original
//! Shinjuku, the ghOSt-Shinjuku agent, and Linux CFS. Expected shape
//! (§5.2): Skyloft ≈ Shinjuku at the top; ghOSt reaches ~80% of Skyloft's
//! maximum throughput with ~3× the low-load p99; Linux CFS saturates
//! around ~59%.

use skyloft_apps::harness::{run_sweep, SweepSpec};
use skyloft_apps::synthetic::{dispersive, dispersive_threshold, Placement};
use skyloft_bench::setup::{FIG7_LINUX_WORKERS, FIG7_QUANTUM, FIG7_WORKERS};
use skyloft_bench::{build, out, scaled};
use skyloft_metrics::Series;
use skyloft_sim::Nanos;

fn rates() -> Vec<f64> {
    [25, 50, 100, 150, 200, 240, 280, 295, 310, 330, 350, 370]
        .iter()
        .map(|k| *k as f64 * 1000.0)
        .collect()
}

fn spec(name: &str) -> SweepSpec {
    SweepSpec {
        class_threshold: dispersive_threshold(),
        placement: Placement::Queue,
        warmup: scaled(Nanos::from_ms(100)),
        measure: scaled(Nanos::from_ms(400)),
        ..SweepSpec::new(name, rates(), dispersive())
    }
}

fn main() {
    let mut all: Vec<Series> = Vec::new();

    let s = run_sweep(&spec("Skyloft (30us)"), &|| {
        build::skyloft_shinjuku(FIG7_WORKERS, Some(FIG7_QUANTUM), false)
    });
    all.push(s);
    eprintln!("  skyloft-30 done");
    all.push(run_sweep(&spec("Skyloft (15us)"), &|| {
        build::skyloft_shinjuku(FIG7_WORKERS, Some(Nanos::from_us(15)), false)
    }));
    eprintln!("  skyloft-15 done");
    all.push(run_sweep(&spec("Shinjuku"), &|| {
        build::shinjuku(FIG7_WORKERS, Some(FIG7_QUANTUM))
    }));
    eprintln!("  shinjuku done");
    all.push(run_sweep(&spec("ghOSt"), &|| {
        build::ghost_shinjuku(FIG7_WORKERS, Some(FIG7_QUANTUM), false)
    }));
    eprintln!("  ghost done");
    let mut linux_spec = spec("Linux CFS");
    // Direct RSS pinning: Linux receives via kernel NAPI, not the DPDK
    // data plane, so the flow hash pins cores without bounded RX rings.
    linux_spec.placement = Placement::RssDirect {
        n: FIG7_LINUX_WORKERS,
    };
    all.push(run_sweep(&linux_spec, &|| {
        build::linux_cfs_fig7(FIG7_LINUX_WORKERS, false)
    }));
    eprintln!("  linux done");

    let t = out::figure_table("offered kRPS", |p| p.p99_us, &all);
    out::emit(
        "fig7a_single",
        "Figure 7a: p99 latency (us) vs offered load",
        &t,
    );
    let t2 = out::figure_table("offered kRPS", |p| p.achieved_rps / 1000.0, &all);
    out::emit(
        "fig7a_tput",
        "Figure 7a: achieved kRPS vs offered load",
        &t2,
    );

    // Maximum throughput under a 99th-percentile SLO (the paper compares
    // saturation points; 300 us holds all preemptive systems' knees).
    const SLO_US: f64 = 350.0;
    println!("max throughput at p99 <= {SLO_US} us:");
    let max: Vec<(String, f64)> = all
        .iter()
        .map(|s| (s.name.clone(), s.max_tput_under_p99_slo(SLO_US)))
        .collect();
    for (n, v) in &max {
        println!("  {n:<16} {:.0} kRPS", v / 1000.0);
    }
    let get = |n: &str| max.iter().find(|(x, _)| x == n).unwrap().1;
    let sky = get("Skyloft (30us)");
    let shinjuku = get("Shinjuku");
    let ghost = get("ghOSt");
    let linux = get("Linux CFS");
    assert!(sky > 0.0, "skyloft must meet the SLO somewhere");
    assert!(
        (shinjuku / sky) > 0.85,
        "Shinjuku ({shinjuku:.0}) should be close to Skyloft ({sky:.0})"
    );
    assert!(
        ghost < 0.95 * sky,
        "ghOSt ({ghost:.0}) must trail Skyloft ({sky:.0}); paper: 80.1%"
    );
    assert!(
        linux < 0.8 * sky,
        "Linux CFS ({linux:.0}) must trail Skyloft ({sky:.0}); paper: 58.7%"
    );
    // Low-load tail: ghOSt ~3x Skyloft (paper).
    let sky_low = all[0].points[0].p99_us;
    let ghost_low = all[3].points[0].p99_us;
    assert!(
        ghost_low > 2.0 * sky_low,
        "ghOSt low-load p99 ({ghost_low:.1}us) must be ~3x Skyloft's ({sky_low:.1}us)"
    );
    println!(
        "Shape checks passed: Skyloft ≈ Shinjuku > ghOSt ({:.0}%) > Linux CFS ({:.0}%); \
         ghOSt low-load p99 = {:.1}x Skyloft.",
        100.0 * ghost / sky,
        100.0 * linux / sky,
        ghost_low / sky_low
    );
}
