//! Multi-tenant SLO-class isolation sweep (DESIGN.md §16): a 200 µs
//! latency-critical tenant co-located with a 5 ms batch tenant on one
//! 4-worker machine, total offered work swept from 0.5x to 3x capacity
//! while the LC tenant's own rate stays fixed at half the machine. The
//! full class stack is armed: per-class deadline admission at the polling
//! core, the runqueue AQM (batch's loose SLO makes it the sheddable
//! class), displacement (each LC admission shed condemns the oldest
//! queued batch request), and per-class retry provisioning.
//!
//! The shape this binary records is the PR's acceptance bar: under mixed
//! overload the batch class pays for the congestion — it is shed first,
//! at the scheduler and the NIC — and the LC tenant's goodput at 2x-3x
//! holds at least 90% of its *solo* plateau (the same machine with the
//! batch tenant absent). The 0.5x point offers zero batch load, pinning
//! the degenerate empty-schedule path through the tenant installer.
//!
//! Results go to `results/slo_sweep.csv`; `--write` records the gate
//! metrics as the `slo_sweep` section of the repo-root `BENCH_net.json`;
//! `--check` gates CI on the isolation shape plus a regression bound
//! against the stored LC goodput; `--smoke` shortens the windows to the
//! CI configuration; `--seed N` reseeds machine and generators (CI runs
//! seeds 1, 7 and 2024).

use skyloft::builtin::GlobalFifo;
use skyloft::conf::{RunqueueAqmConfig, SloClass};
use skyloft::machine::{AppKind, Event, Machine, MachineConfig};
use skyloft::Platform;
use skyloft_apps::harness::{par_map, sweep_threads, trace_arg};
use skyloft_apps::synthetic::{install_tenants, OverloadControl, Tenant};
use skyloft_bench::baseline::{extract, net_baseline_path, upsert_section};
use skyloft_bench::{out, scaled};
use skyloft_hw::Topology;
use skyloft_metrics::Table;
use skyloft_net::dataplane::NicConfig;
use skyloft_net::loadgen::OpenLoop;
use skyloft_net::{AdmissionConfig, CodelConfig, RetryPolicy};
use skyloft_sim::{Distribution, EventQueue, Nanos};

const WORKERS: usize = 4;
/// The latency-critical tenant: 2 µs requests against a 200 µs deadline,
/// at a fixed 1M rps — half the machine's work capacity.
const LC_SLO: Nanos = Nanos::from_us(200);
const LC_SERVICE: Nanos = Nanos::from_us(2);
const LC_RATE: f64 = 1_000_000.0;
/// The batch tenant: 50 µs requests against a 5 ms deadline; its rate is
/// what the sweep varies.
const BATCH_SLO: Nanos = Nanos::from_ms(5);
const BATCH_SERVICE: Nanos = Nanos::from_us(50);
const TIMEOUT: Nanos = Nanos::from_ms(1);

/// Total offered work as a multiple of machine capacity. LC holds 2 of
/// the 4 cores' worth; batch supplies the rest (zero at 0.5x).
fn mults() -> Vec<f64> {
    vec![0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0]
}

/// Indices of the overload gate points (2x and 3x total load).
const TWO_X: usize = 4;
const THREE_X: usize = 6;

/// Batch rps for a total-load multiple: the cores of demand left after
/// the LC tenant's fixed two, divided by the batch service time.
fn batch_rate(mult: f64) -> f64 {
    let batch_cores = (mult * WORKERS as f64 - 2.0).max(0.0);
    batch_cores / BATCH_SERVICE.as_secs()
}

/// A machine with the full class stack armed: registered SLO classes,
/// and the runqueue AQM with a CoDel interval tightened for
/// microsecond-scale services (the shed rate scales as
/// sqrt(count)/interval, and at ~1M rps the 500 µs default cannot shed
/// excess batch work as fast as it arrives).
fn build(seed: u64) -> (Machine, EventQueue<Event>) {
    let cfg = MachineConfig {
        plat: Platform::skyloft_percpu(Topology::single(WORKERS), 100_000),
        n_workers: WORKERS,
        seed,
        core_alloc: None,
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, Box::new(GlobalFifo::new()));
    m.add_app("lc", AppKind::Lc);
    m.add_app("batch", AppKind::Lc);
    m.set_slo_class(0, SloClass::latency_critical(LC_SLO));
    m.set_slo_class(1, SloClass::batch(BATCH_SLO));
    m.set_runqueue_aqm(RunqueueAqmConfig {
        interval: Nanos::from_us(100),
        ..Default::default()
    });
    let mut q = EventQueue::new();
    m.start(&mut q);
    (m, q)
}

/// The controller under test: per-class deadline admission, ring CoDel,
/// and retry budgets provisioned per class from each [`SloClass`]'s
/// `retry_frac` (LC's larger share survives a batch timeout storm).
fn controller() -> OverloadControl {
    let mut adm = AdmissionConfig::default();
    adm.class_slo[0] = Some(LC_SLO);
    adm.class_slo[1] = Some(BATCH_SLO);
    let mut frac = [None; skyloft_net::overload::MAX_CLASSES];
    frac[0] = Some(SloClass::latency_critical(LC_SLO).retry_frac);
    frac[1] = Some(SloClass::batch(BATCH_SLO).retry_frac);
    OverloadControl {
        codel: Some(CodelConfig::default()),
        admission: Some(adm),
        retry: Some(RetryPolicy::default()),
        retry_frac: Some(frac),
    }
}

/// One measured sweep point (per-class goodput over the post-warmup
/// window; shed counters are window-scoped by subtracting the warmup
/// snapshot, since conservation ledgers survive `reset_stats`).
struct SloPoint {
    mult: f64,
    lc_offered: f64,
    batch_offered: f64,
    lc_goodput_rps: f64,
    batch_goodput_rps: f64,
    lc_p99_us: f64,
    lc_loss_frac: f64,
    batch_loss_frac: f64,
    rq_sheds: u64,
    lc_rq_sheds: u64,
    adm_sheds: [u64; 2],
    aqm_drops: u64,
    ring_drops: u64,
}

fn run_point(mult: f64, solo: bool, seed: u64, smoke: bool) -> SloPoint {
    let (mut m, mut q) = build(seed);
    let (warm_ms, run_ms) = if smoke { (5, 20) } else { (20, 100) };
    let warmup = scaled(Nanos::from_ms(warm_ms));
    let end = warmup + scaled(Nanos::from_ms(run_ms));
    let lc = Tenant {
        gen: OpenLoop::new(
            LC_RATE,
            Distribution::Constant(LC_SERVICE),
            Nanos::from_us(100),
            seed ^ 0x1C,
        ),
        app: 0,
        class: Some(0),
    };
    let batch_rps = if solo { 0.0 } else { batch_rate(mult) };
    let batch = Tenant {
        gen: OpenLoop::new(
            batch_rps,
            Distribution::Constant(BATCH_SERVICE),
            Nanos::from_us(100),
            seed ^ 0xBA7C,
        ),
        app: 1,
        class: Some(1),
    };
    let mut nic = NicConfig::for_workers(WORKERS);
    nic.client_timeout = TIMEOUT;
    install_tenants(&mut q, vec![lc, batch], nic, end, None, controller());
    m.run(&mut q, warmup);
    let warm = (
        m.stats.rq_sheds,
        m.stats.rq_sheds_by_class,
        m.stats.sheds_by_class,
        m.stats.aqm_drops,
        m.stats.rx_ring_drops,
        m.stats.generated_by_class,
        m.stats.delivered_by_class,
    );
    m.reset_stats(q.now());
    // Run far past `end` so retries resolve and the rings drain before
    // the ledger is read.
    m.run(&mut q, end + Nanos::from_ms(20));
    let s = &m.stats;
    // Conservation on every point: global invariant #8 and the class
    // tiling of invariant #9.
    assert_eq!(
        s.net_generated,
        s.net_delivered + s.rx_ring_drops + s.aqm_drops + s.admission_sheds + s.retries_spent,
        "datagram conservation violated at {mult}x (solo {solo})"
    );
    assert_eq!(s.net_in_flight, 0, "rings not drained at {mult}x");
    assert_eq!(s.generated_by_class.iter().sum::<u64>(), s.net_generated);
    assert_eq!(s.delivered_by_class.iter().sum::<u64>(), s.net_delivered);
    assert_eq!(s.sheds_by_class.iter().sum::<u64>(), s.admission_sheds);
    let dt = (end - s.since).as_secs();
    let lost = |c: usize| {
        (s.sheds_by_class[c] - warm.2[c])
            + (s.rx_drops_by_class[c])
            + (s.rq_sheds_by_class[c] - warm.1[c])
    };
    let gen_win = |c: usize| s.generated_by_class[c].saturating_sub(warm.5[c]).max(1);
    SloPoint {
        mult,
        lc_offered: LC_RATE,
        batch_offered: batch_rps,
        lc_goodput_rps: s.resp_by_class[0].count_le(LC_SLO.0) as f64 / dt,
        batch_goodput_rps: s.resp_by_class[1].count_le(BATCH_SLO.0) as f64 / dt,
        lc_p99_us: s.resp_by_class[0].percentile(99.0) as f64 / 1000.0,
        lc_loss_frac: lost(0) as f64 / gen_win(0) as f64,
        batch_loss_frac: lost(1) as f64 / gen_win(1) as f64,
        rq_sheds: s.rq_sheds - warm.0,
        lc_rq_sheds: s.rq_sheds_by_class[0] - warm.1[0],
        adm_sheds: [
            s.sheds_by_class[0] - warm.2[0],
            s.sheds_by_class[1] - warm.2[1],
        ],
        aqm_drops: s.aqm_drops - warm.3,
        ring_drops: s.rx_ring_drops - warm.4,
    }
}

fn series_json(solo: &SloPoint, points: &[SloPoint], indent: &str) -> String {
    let p2 = &points[TWO_X];
    let p3 = &points[THREE_X];
    format!(
        "{indent}\"lc_solo_goodput_rps\": {:.0},\n\
         {indent}\"lc_goodput_2x_rps\": {:.0},\n\
         {indent}\"lc_goodput_3x_rps\": {:.0},\n\
         {indent}\"batch_goodput_2x_rps\": {:.0},\n\
         {indent}\"lc_p99_2x_us\": {:.1},\n\
         {indent}\"rq_sheds_2x\": {},\n\
         {indent}\"admission_sheds_2x\": {}",
        solo.lc_goodput_rps,
        p2.lc_goodput_rps,
        p3.lc_goodput_rps,
        p2.batch_goodput_rps,
        p2.lc_p99_us,
        p2.rq_sheds,
        p2.adm_sheds[0] + p2.adm_sheds[1],
    )
}

fn check(solo: &SloPoint, points: &[SloPoint]) -> bool {
    let mut ok = true;
    // (1) The solo plateau is a real plateau: alone at half capacity,
    // nearly every offered LC request completes inside its SLO.
    if solo.lc_goodput_rps < 0.9 * LC_RATE {
        eprintln!(
            "slo_sweep: FAIL — solo LC goodput {:.0} rps below 90% of the {LC_RATE:.0} rps offered",
            solo.lc_goodput_rps
        );
        ok = false;
    }
    // (2) Class isolation: under 2x and 3x mixed overload the LC tenant
    // keeps at least 90% of its solo plateau.
    for (name, p) in [("2x", &points[TWO_X]), ("3x", &points[THREE_X])] {
        if p.lc_goodput_rps < 0.90 * solo.lc_goodput_rps {
            eprintln!(
                "slo_sweep: FAIL — LC goodput at {name} {:.0} rps below 90% of solo {:.0} rps",
                p.lc_goodput_rps, solo.lc_goodput_rps
            );
            ok = false;
        }
        // (3) The overload is paid by the batch class: batch requests are
        // shed (at admission or by the scheduler-side AQM backstop),
        // never the LC class, and batch's loss fraction dominates LC's.
        if p.adm_sheds[1] + p.rq_sheds == 0 {
            eprintln!("slo_sweep: FAIL — no batch request shed at {name}");
            ok = false;
        }
        if p.lc_rq_sheds != 0 {
            eprintln!(
                "slo_sweep: FAIL — {} LC requests scheduler-shed at {name}; LC is never sheddable",
                p.lc_rq_sheds
            );
            ok = false;
        }
        if p.batch_loss_frac <= p.lc_loss_frac {
            eprintln!(
                "slo_sweep: FAIL — batch not shed first at {name}: batch loss {:.3} vs lc {:.3}",
                p.batch_loss_frac, p.lc_loss_frac
            );
            ok = false;
        }
    }
    // (4) Below saturation nothing is scheduler-shed: the class stack is
    // inert when there is no overload to degrade gracefully.
    if points[0].rq_sheds > 0 {
        eprintln!(
            "slo_sweep: FAIL — {} runqueue sheds at 0.5x (no overload to shed)",
            points[0].rq_sheds
        );
        ok = false;
    }
    // (5) Regression bound vs the stored LC goodput, if present.
    if let Ok(json) = std::fs::read_to_string(net_baseline_path()) {
        if let Some(base) = extract(&json, "slo_sweep", "lc_goodput_2x_rps") {
            let got = points[TWO_X].lc_goodput_rps;
            if got < base * 0.9 {
                eprintln!(
                    "slo_sweep: REGRESSION — LC goodput at 2x {got:.0} rps vs baseline {base:.0} rps"
                );
                ok = false;
            } else {
                eprintln!(
                    "slo_sweep: LC goodput at 2x {got:.0} rps vs baseline {base:.0} rps — ok"
                );
            }
        }
    } else {
        eprintln!(
            "slo_sweep: no baseline at {} — semantic checks only",
            net_baseline_path().display()
        );
    }
    ok
}

fn main() {
    let _ = trace_arg();
    let args = skyloft_bench::positional_args();
    let write = args.iter().any(|a| a == "--write");
    let do_check = args.iter().any(|a| a == "--check");
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0x510_C1A5); // "slo-clas"

    eprintln!("slo_sweep: measuring the LC tenant's solo plateau (seed {seed})...");
    let solo = run_point(0.5, true, seed, smoke);
    eprintln!("slo_sweep: sweeping co-located total load 0.5x-3x...");
    let ms = mults();
    let points = par_map(&ms, sweep_threads(), &|&mult| {
        run_point(mult, false, seed, smoke)
    });

    let mut t = Table::new(&[
        "total load",
        "lc kRPS",
        "batch kRPS",
        "lc goodput kRPS",
        "batch goodput kRPS",
        "lc p99 (us)",
        "lc loss",
        "batch loss",
        "rq sheds",
        "adm sheds lc",
        "adm sheds batch",
        "aqm drops",
        "ring drops",
    ]);
    let mut rows: Vec<(String, &SloPoint)> = vec![("solo".to_string(), &solo)];
    for p in &points {
        rows.push((format!("{:.2}x", p.mult), p));
    }
    for (label, p) in rows {
        t.row_owned(vec![
            label,
            format!("{:.0}", p.lc_offered / 1000.0),
            format!("{:.0}", p.batch_offered / 1000.0),
            format!("{:.0}", p.lc_goodput_rps / 1000.0),
            format!("{:.0}", p.batch_goodput_rps / 1000.0),
            format!("{:.1}", p.lc_p99_us),
            format!("{:.3}", p.lc_loss_frac),
            format!("{:.3}", p.batch_loss_frac),
            p.rq_sheds.to_string(),
            p.adm_sheds[0].to_string(),
            p.adm_sheds[1].to_string(),
            p.aqm_drops.to_string(),
            p.ring_drops.to_string(),
        ]);
    }
    out::emit(
        "slo_sweep",
        "SLO classes: per-tenant goodput vs total load, LC fixed at 0.5x capacity",
        &t,
    );
    let p2 = &points[TWO_X];
    println!(
        "2x total load: LC goodput {:.0} kRPS ({:.0}% of solo {:.0} kRPS), batch goodput {:.0} kRPS, \
         {} scheduler sheds (all batch), lc p99 {:.0} us",
        p2.lc_goodput_rps / 1000.0,
        100.0 * p2.lc_goodput_rps / solo.lc_goodput_rps.max(1.0),
        solo.lc_goodput_rps / 1000.0,
        p2.batch_goodput_rps / 1000.0,
        p2.rq_sheds,
        p2.lc_p99_us
    );

    if write {
        let path = net_baseline_path();
        match upsert_section(&path, "slo_sweep", &series_json(&solo, &points, "    ")) {
            Ok(()) => eprintln!("slo_sweep: wrote {}", path.display()),
            Err(e) => eprintln!("slo_sweep: failed to write {}: {e}", path.display()),
        }
    }
    if do_check && !check(&solo, &points) {
        std::process::exit(1);
    }
}
