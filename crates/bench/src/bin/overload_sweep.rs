//! End-to-end overload-control sweep (DESIGN.md §13): goodput and served
//! tail vs offered load for the memcached USR workload, run twice per
//! rate — once with plain tail-drop rings (the PR-5 data plane,
//! [`OverloadControl::default`]) and once with the full overload-control
//! stack armed: CoDel AQM on the RX rings, deadline-aware admission at
//! the polling core, the retrying client with a global retry budget, and
//! the machine's LC/BE brownout controller fed by poll-round sojourns.
//!
//! The shape this binary records is the PR's acceptance bar: past
//! saturation the tail-drop path serves requests that waited out a full
//! 256-deep ring (~half a millisecond of head sojourn), so almost
//! nothing it serves lands inside the SLO and goodput collapses; the
//! controller sheds early instead — goodput plateaus near capacity and
//! the served p99 hugs the SLO out to 3x offered load.
//!
//! Results go to `results/overload_sweep.csv`; `--write` splices the two
//! series into the repo-root `BENCH_net.json` (sections `overload_ctl` /
//! `overload_tail_drop`, leaving netbench's sections untouched);
//! `--check` re-runs the sweep and gates CI on the semantic shape
//! (goodput plateau, SLO-bounded served tail, tail-drop collapse) plus a
//! regression bound against the stored goodput. `--smoke` shortens the
//! windows to the CI configuration.

use skyloft::BrownoutConfig;
use skyloft_apps::harness::{par_map, sweep_threads, trace_arg};
use skyloft_apps::memcached::{usr_distribution, usr_threshold};
use skyloft_apps::synthetic::{install_open_loop_ctl, OverloadControl};
use skyloft_bench::baseline::{extract, net_baseline_path, upsert_section};
use skyloft_bench::{build, out, scaled};
use skyloft_metrics::Table;
use skyloft_net::dataplane::NicConfig;
use skyloft_net::loadgen::OpenLoop;
use skyloft_net::AdmissionConfig;
use skyloft_sim::Nanos;

const WORKERS: usize = 4;
/// End-to-end latency SLO: goodput = completions inside this budget.
const SLO: Nanos = Nanos::from_us(200);
/// Client abandon timeout for the tail-drop series (the retry series
/// carries its own per-attempt timeout in [`OverloadControl::full`]).
const TIMEOUT: Nanos = Nanos::from_ms(1);
const SEED: u64 = 0x6F76_6572; // "over"

/// Offered rates in rps. 4 workers x (1.5 us GET + ~0.5 us stack) put
/// capacity near 2.0 M rps; the sweep spans 0.5x to 3x saturation.
fn rates() -> Vec<f64> {
    vec![
        1_000_000.0,
        1_500_000.0,
        2_000_000.0,
        3_000_000.0,
        4_000_000.0,
        6_000_000.0,
    ]
}

/// Index of the 2x-saturation point the acceptance gates key on.
const TWO_X: usize = 4;

/// The controller configuration under test. The admission deadline
/// carries headroom below the client SLO: its backlog model covers ring
/// wait plus the worker queue, and the slack absorbs what it cannot see
/// (poll hand-off, return wire, scheduling jitter). Shedding at 75% of
/// the budget keeps admitted requests inside the real deadline.
fn controller() -> OverloadControl {
    let mut ctl = OverloadControl::full();
    ctl.admission = Some(AdmissionConfig {
        slo: Nanos(SLO.0 * 3 / 4),
        ..Default::default()
    });
    ctl
}

/// One measured sweep point.
struct OverPoint {
    rate: f64,
    goodput_rps: f64,
    served_rps: f64,
    p50_us: f64,
    p99_us: f64,
    aqm_drops: u64,
    admission_sheds: u64,
    retries_spent: u64,
    ring_drops: u64,
    brownouts: u64,
}

fn run_point(rate: f64, ctl_on: bool, smoke: bool) -> OverPoint {
    let (mut m, mut q) = build::skyloft_ws(WORKERS, Some(Nanos::from_us(30)));
    if ctl_on {
        m.set_brownout(BrownoutConfig::default());
    }
    let gen = OpenLoop::new(
        rate,
        usr_distribution(),
        usr_threshold(),
        SEED ^ (rate as u64),
    );
    let (warm_ms, run_ms) = if smoke { (5, 20) } else { (20, 100) };
    let warmup = scaled(Nanos::from_ms(warm_ms));
    let end = warmup + scaled(Nanos::from_ms(run_ms));
    let mut nic = NicConfig::for_workers(WORKERS);
    nic.client_timeout = TIMEOUT;
    let ctl = if ctl_on {
        controller()
    } else {
        OverloadControl::default()
    };
    install_open_loop_ctl(&mut q, gen, 0, nic, end, None, ctl);
    m.run(&mut q, warmup);
    m.reset_stats(q.now());
    // Run far past `end` so every retry attempt resolves and the rings
    // drain before the ledger is read.
    m.run(&mut q, end + Nanos::from_ms(20));
    // Conservation invariant #8 on every point: each generated datagram
    // lands in exactly one terminal bucket.
    let s = &m.stats;
    assert_eq!(
        s.net_generated,
        s.net_delivered
            + s.rx_ring_drops
            + s.aqm_drops
            + s.admission_sheds
            + s.net_in_flight
            + s.retries_spent,
        "datagram conservation violated at {rate} rps (ctl {ctl_on})"
    );
    assert_eq!(s.net_in_flight, 0, "rings not drained at {rate} rps");
    // Rate denominators use the generation window, not the drain tail.
    let dt = (end - s.since).as_secs();
    let h = &s.served_hist;
    OverPoint {
        rate,
        goodput_rps: h.count_le(SLO.0) as f64 / dt,
        served_rps: h.count() as f64 / dt,
        p50_us: h.percentile(50.0) as f64 / 1000.0,
        p99_us: h.percentile(99.0) as f64 / 1000.0,
        aqm_drops: s.aqm_drops,
        admission_sheds: s.admission_sheds,
        retries_spent: s.retries_spent,
        ring_drops: s.rx_ring_drops,
        brownouts: m.brownout_transitions(),
    }
}

fn run_series(ctl_on: bool, smoke: bool) -> Vec<OverPoint> {
    let rs = rates();
    par_map(&rs, sweep_threads(), &|&rate| {
        run_point(rate, ctl_on, smoke)
    })
}

/// The metrics a series contributes to the baseline: the 2x-saturation
/// gate point plus the series' peak goodput.
fn series_json(points: &[OverPoint], indent: &str) -> String {
    let peak = points.iter().map(|p| p.goodput_rps).fold(0.0, f64::max);
    let p = &points[TWO_X];
    format!(
        "{indent}\"peak_goodput_rps\": {:.0},\n\
         {indent}\"goodput_2x_rps\": {:.0},\n\
         {indent}\"served_p99_2x_us\": {:.1},\n\
         {indent}\"aqm_drops_2x\": {},\n\
         {indent}\"admission_sheds_2x\": {},\n\
         {indent}\"retries_2x\": {},\n\
         {indent}\"ring_drops_2x\": {}",
        peak,
        p.goodput_rps,
        p.p99_us,
        p.aqm_drops,
        p.admission_sheds,
        p.retries_spent,
        p.ring_drops
    )
}

fn write_baseline(ctl: &[OverPoint], tail: &[OverPoint]) {
    let path = net_baseline_path();
    let r = upsert_section(&path, "overload_ctl", &series_json(ctl, "    "))
        .and_then(|()| upsert_section(&path, "overload_tail_drop", &series_json(tail, "    ")));
    match r {
        Ok(()) => eprintln!("overload_sweep: wrote {}", path.display()),
        Err(e) => eprintln!("overload_sweep: failed to write {}: {e}", path.display()),
    }
}

fn check(ctl: &[OverPoint], tail: &[OverPoint]) -> bool {
    let slo_us = SLO.0 as f64 / 1000.0;
    let peak = ctl.iter().map(|p| p.goodput_rps).fold(0.0, f64::max);
    let at2x = &ctl[TWO_X];
    let tail2x = &tail[TWO_X];
    let mut ok = true;
    // (1) Goodput plateau: at 2x saturation the controller must hold at
    // least 85% of the series' peak goodput.
    if at2x.goodput_rps < 0.85 * peak {
        eprintln!(
            "overload_sweep: FAIL — goodput at 2x {:.0} rps fell below 85% of peak {:.0} rps",
            at2x.goodput_rps, peak
        );
        ok = false;
    }
    // (2) What the controller serves lands inside the SLO (15%
    // measurement slack, as netbench grants its timeout bound).
    if at2x.p99_us > slo_us * 1.15 {
        eprintln!(
            "overload_sweep: FAIL — served p99 at 2x {:.1} us exceeds the {slo_us:.0} us SLO",
            at2x.p99_us
        );
        ok = false;
    }
    // (3) Overload must manifest as early sheds, not hidden queues.
    if at2x.admission_sheds == 0 || at2x.aqm_drops == 0 {
        eprintln!(
            "overload_sweep: FAIL — controller never shed at 2x (aqm {}, admission {})",
            at2x.aqm_drops, at2x.admission_sheds
        );
        ok = false;
    }
    // (4) The tail-drop path demonstrates the failure mode: its 2x
    // goodput collapses to a fraction of the controller's.
    if tail2x.goodput_rps > 0.5 * at2x.goodput_rps {
        eprintln!(
            "overload_sweep: FAIL — tail-drop goodput {:.0} rps should collapse vs controller {:.0} rps",
            tail2x.goodput_rps, at2x.goodput_rps
        );
        ok = false;
    }
    // (5) Regression bound vs the stored controller goodput, if present.
    if let Ok(json) = std::fs::read_to_string(net_baseline_path()) {
        if let Some(base) = extract(&json, "overload_ctl", "goodput_2x_rps") {
            if at2x.goodput_rps < base * 0.9 {
                eprintln!(
                    "overload_sweep: REGRESSION — goodput at 2x {:.0} rps vs baseline {base:.0} rps",
                    at2x.goodput_rps
                );
                ok = false;
            } else {
                eprintln!(
                    "overload_sweep: goodput at 2x {:.0} rps vs baseline {base:.0} rps — ok",
                    at2x.goodput_rps
                );
            }
        }
    } else {
        eprintln!(
            "overload_sweep: no baseline at {} — semantic checks only",
            net_baseline_path().display()
        );
    }
    ok
}

fn main() {
    let _ = trace_arg();
    let args = skyloft_bench::positional_args();
    let write = args.iter().any(|a| a == "--write");
    let do_check = args.iter().any(|a| a == "--check");
    let smoke = args.iter().any(|a| a == "--smoke");

    eprintln!("overload_sweep: sweeping tail-drop (controller off)...");
    let tail = run_series(false, smoke);
    eprintln!("overload_sweep: sweeping with overload control...");
    let ctl = run_series(true, smoke);

    let mut t = Table::new(&[
        "offered kRPS",
        "series",
        "goodput kRPS",
        "served kRPS",
        "p50 (us)",
        "p99 (us)",
        "aqm drops",
        "adm sheds",
        "retries",
        "ring drops",
        "brownouts",
    ]);
    for (name, series) in [("tail-drop", &tail), ("overload-ctl", &ctl)] {
        for p in series.iter() {
            t.row_owned(vec![
                format!("{:.0}", p.rate / 1000.0),
                name.to_string(),
                format!("{:.0}", p.goodput_rps / 1000.0),
                format!("{:.0}", p.served_rps / 1000.0),
                format!("{:.1}", p.p50_us),
                format!("{:.1}", p.p99_us),
                p.aqm_drops.to_string(),
                p.admission_sheds.to_string(),
                p.retries_spent.to_string(),
                p.ring_drops.to_string(),
                p.brownouts.to_string(),
            ]);
        }
    }
    out::emit(
        "overload_sweep",
        "Overload control: USR goodput + served p99 vs load, 0.5x-3x saturation",
        &t,
    );
    let at2x = &ctl[TWO_X];
    println!(
        "2x saturation ({:.1} M rps): goodput {:.0} kRPS (ctl) vs {:.0} kRPS (tail-drop), \
         served p99 {:.0} us, {} admission sheds, {} aqm drops, {} retries",
        at2x.rate / 1e6,
        at2x.goodput_rps / 1000.0,
        tail[TWO_X].goodput_rps / 1000.0,
        at2x.p99_us,
        at2x.admission_sheds,
        at2x.aqm_drops,
        at2x.retries_spent
    );

    if write {
        write_baseline(&ctl, &tail);
    }
    if do_check && !check(&ctl, &tail) {
        std::process::exit(1);
    }
}
