//! Output helpers: print a table and persist its CSV under `results/`.

use std::fs;
use std::path::PathBuf;

use skyloft_metrics::{Series, Table};

/// Directory where experiment CSVs are written.
pub fn results_dir() -> PathBuf {
    let root = std::env::var("SKYLOFT_RESULTS_DIR")
        .unwrap_or_else(|_| format!("{}/../../results", env!("CARGO_MANIFEST_DIR")));
    PathBuf::from(root)
}

/// Prints the table under a heading and writes `results/<id>.csv`.
pub fn emit(id: &str, heading: &str, table: &Table) {
    println!("== {heading} ==");
    println!("{}", table.render());
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{id}.csv"));
        if let Err(e) = fs::write(&path, table.to_csv()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("(csv: {})\n", path.display());
        }
    }
}

/// Renders a latency-vs-load figure as a table: one row per offered rate,
/// one column per series.
pub fn figure_table(
    x_label: &str,
    col: impl Fn(&skyloft_metrics::LoadPoint) -> f64,
    series: &[Series],
) -> Table {
    let mut header = vec![x_label.to_string()];
    header.extend(series.iter().map(|s| s.name.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);
    let n = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..n {
        let mut row = Vec::with_capacity(header.len());
        let x = series
            .iter()
            .find_map(|s| s.points.get(i).map(|p| p.offered_rps))
            .unwrap_or(0.0);
        row.push(format!("{:.0}", x / 1000.0));
        for s in series {
            match s.points.get(i) {
                Some(p) => row.push(format!("{:.1}", col(p))),
                None => row.push(String::new()),
            }
        }
        t.row_owned(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyloft_metrics::LoadPoint;

    #[test]
    fn figure_table_shapes() {
        let mut a = Series::new("A");
        a.push(LoadPoint {
            offered_rps: 1000.0,
            achieved_rps: 990.0,
            p50_us: 5.0,
            p99_us: 9.0,
            p999_us: 12.0,
            slowdown_p999: None,
            be_share: None,
        });
        let t = figure_table("kRPS", |p| p.p99_us, &[a]);
        let s = t.render();
        assert!(s.contains("kRPS"));
        assert!(s.contains("9.0"));
    }
}
