//! Blocking-event handling (§6 "Blocking events").
//!
//! An *active* kernel thread can block passively in the kernel — the
//! canonical case is a page fault. Under the Single Binding Rule that
//! would leave its isolated core dead until the fault resolves. The §6
//! design monitors such blockages with `userfaultfd` from a non-isolated
//! core and reschedules a *different application's* kernel thread onto the
//! blocked core in the meantime, without ever violating the rule (the
//! faulted thread is not runnable, so it does not count as active).
//!
//! [`FaultMonitor`] models that component; the state transitions live in
//! [`Kmod`].

use crate::ioctl::Kmod;
use crate::kthread::{KthreadState, Tid};
use crate::{KmodError, Result};

impl Kmod {
    /// The active thread `tid` page-faults: it leaves the runnable set
    /// (its core becomes free for another application's parked thread)
    /// but stays bound to the core.
    pub fn fault_block(&mut self, tid: Tid) -> Result<()> {
        let t = self.kthread(tid)?;
        if t.state != KthreadState::Active {
            return Err(KmodError::InvalidState);
        }
        let core = t.core.ok_or(KmodError::InvalidState)?;
        self.set_state(tid, KthreadState::FaultBlocked);
        self.vacate(core, tid);
        self.debug_rule();
        Ok(())
    }

    /// The monitor resolved `tid`'s fault (e.g. served the page via
    /// userfaultfd): the thread becomes inactive/parked, eligible for
    /// `skyloft_wakeup` when its core frees up.
    pub fn fault_resolve(&mut self, tid: Tid) -> Result<()> {
        let t = self.kthread(tid)?;
        if t.state != KthreadState::FaultBlocked {
            return Err(KmodError::InvalidState);
        }
        self.set_state(tid, KthreadState::Inactive);
        self.debug_rule();
        Ok(())
    }
}

/// A userfaultfd-style monitor: tracks outstanding faults and, on each
/// fault, names a substitute (parked) thread that may take the core.
#[derive(Debug, Default)]
pub struct FaultMonitor {
    outstanding: Vec<Tid>,
    faults_handled: u64,
    substitutions: u64,
}

impl FaultMonitor {
    /// Creates an idle monitor.
    pub fn new() -> Self {
        FaultMonitor::default()
    }

    /// Handles a fault on `tid`: blocks it in the kernel model and picks a
    /// parked thread bound to the same core to run instead, waking it.
    /// Returns the substitute, if any was available.
    pub fn on_fault(&mut self, kmod: &mut Kmod, tid: Tid) -> Result<Option<Tid>> {
        let core = kmod.kthread(tid)?.core.ok_or(KmodError::InvalidState)?;
        kmod.fault_block(tid)?;
        self.outstanding.push(tid);
        self.faults_handled += 1;
        let substitute = kmod.parked_thread_on(core);
        if let Some(sub) = substitute {
            kmod.wakeup(sub)?;
            self.substitutions += 1;
        }
        Ok(substitute)
    }

    /// The fault data arrived; resolve it. The thread does *not* preempt
    /// the substitute — it waits parked until the scheduler switches back.
    pub fn on_resolved(&mut self, kmod: &mut Kmod, tid: Tid) -> Result<()> {
        kmod.fault_resolve(tid)?;
        self.outstanding.retain(|&t| t != tid);
        Ok(())
    }

    /// Faults currently outstanding.
    pub fn outstanding(&self) -> &[Tid] {
        &self.outstanding
    }

    /// Whether `tid` has an unresolved fault.
    pub fn is_outstanding(&self, tid: Tid) -> bool {
        self.outstanding.contains(&tid)
    }

    /// Total faults this monitor has handled.
    pub fn faults_handled(&self) -> u64 {
        self.faults_handled
    }

    /// Faults where a substitute thread was woken onto the core.
    pub fn substitutions(&self) -> u64 {
        self.substitutions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Kmod, Tid, Tid) {
        let mut k = Kmod::new(4, &[0, 1]);
        let a = k.create_kthread(0);
        let b = k.create_kthread(1);
        k.bind_active(a, 0).unwrap();
        k.park_on_cpu(b, 0).unwrap();
        (k, a, b)
    }

    #[test]
    fn fault_frees_core_for_other_app() {
        let (mut k, a, b) = setup();
        let mut mon = FaultMonitor::new();
        let sub = mon.on_fault(&mut k, a).unwrap();
        assert_eq!(sub, Some(b), "the parked thread takes the core");
        assert_eq!(k.active_thread(0), Some(b));
        assert_eq!(k.kthread(a).unwrap().state, KthreadState::FaultBlocked);
        k.check_binding_rule().unwrap();
    }

    #[test]
    fn resolved_thread_waits_parked_until_switch() {
        let (mut k, a, b) = setup();
        let mut mon = FaultMonitor::new();
        mon.on_fault(&mut k, a).unwrap();
        mon.on_resolved(&mut k, a).unwrap();
        assert_eq!(k.kthread(a).unwrap().state, KthreadState::Inactive);
        assert_eq!(k.active_thread(0), Some(b), "substitute keeps running");
        assert!(mon.outstanding().is_empty());
        // The scheduler later switches back through the normal path.
        k.switch_to(b, a).unwrap();
        assert_eq!(k.active_thread(0), Some(a));
        k.check_binding_rule().unwrap();
    }

    #[test]
    fn fault_with_no_substitute_idles_core() {
        let mut k = Kmod::new(4, &[0]);
        let a = k.create_kthread(0);
        k.bind_active(a, 0).unwrap();
        let mut mon = FaultMonitor::new();
        let sub = mon.on_fault(&mut k, a).unwrap();
        assert_eq!(sub, None);
        assert_eq!(k.active_thread(0), None);
        // Resolution makes the thread wakeable again.
        mon.on_resolved(&mut k, a).unwrap();
        k.wakeup(a).unwrap();
        assert_eq!(k.active_thread(0), Some(a));
    }

    #[test]
    fn invalid_transitions_rejected() {
        let (mut k, a, b) = setup();
        assert_eq!(k.fault_block(b), Err(KmodError::InvalidState)); // parked
        assert_eq!(k.fault_resolve(a), Err(KmodError::InvalidState)); // active
        k.fault_block(a).unwrap();
        assert_eq!(k.fault_block(a), Err(KmodError::InvalidState)); // double
                                                                    // A fault-blocked thread cannot be woken before resolution.
        assert_eq!(k.wakeup(a), Err(KmodError::InvalidState));
    }
}
