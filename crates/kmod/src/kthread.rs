//! Kernel-thread table.

use skyloft_hw::CoreId;

/// Kernel thread id (the model's analogue of a Linux TID obtained via
/// `gettid()` and stored in shared application metadata, §4.1).
pub type Tid = usize;

/// Application id.
pub type AppId = usize;

/// Scheduling state of a kernel thread, from the kernel's point of view
/// (§3.3): *active* threads are runnable and visible to the kernel
/// scheduler; *inactive* threads are suspended and never run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KthreadState {
    /// Runnable; eligible on its bound core.
    Active,
    /// Suspended (parked); invisible to the kernel scheduler.
    Inactive,
    /// Blocked in the kernel on a passive event (page fault) — §6
    /// "blocking events". A userfaultfd-style monitor resolves the fault
    /// on a non-isolated core and transitions the thread back to
    /// [`KthreadState::Inactive`], after which it can be woken.
    FaultBlocked,
    /// Terminated.
    Exited,
}

/// One kernel thread.
#[derive(Clone, Debug)]
pub struct Kthread {
    /// Owning application.
    pub app: AppId,
    /// Core the thread's affinity binds it to, if bound.
    pub core: Option<CoreId>,
    /// Current state.
    pub state: KthreadState,
}

impl Kthread {
    /// Whether this thread counts against the Single Binding Rule on `core`.
    pub fn is_active_on(&self, core: CoreId) -> bool {
        self.state == KthreadState::Active && self.core == Some(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_on_requires_both() {
        let t = Kthread {
            app: 0,
            core: Some(3),
            state: KthreadState::Active,
        };
        assert!(t.is_active_on(3));
        assert!(!t.is_active_on(2));
        let parked = Kthread {
            state: KthreadState::Inactive,
            ..t.clone()
        };
        assert!(!parked.is_active_on(3));
    }
}
