//! Model of the Skyloft kernel module and the kernel-thread management it
//! performs (§3.3, §4.2, Table 3).
//!
//! Skyloft runs multiple applications on a set of *isolated cores*. Each
//! application owns one kernel thread per isolated core; at any moment at
//! most one kernel thread bound to a given isolated core may be *active*
//! (runnable from the kernel scheduler's point of view) — the paper's
//! **Single Binding Rule**. The real system enforces this with a 325-line
//! kernel module exposing `ioctl`s; this model implements the same
//! operations as fallible state transitions over an explicit kernel-thread
//! table and *checks the rule on every transition*, so any framework bug
//! that would break scheduling on real hardware fails loudly here.

#![warn(missing_docs)]

pub mod fault;
pub mod ioctl;
pub mod kthread;

pub use fault::FaultMonitor;
pub use ioctl::Kmod;
pub use kthread::{AppId, KthreadState, Tid};

/// Errors returned by kernel-module operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KmodError {
    /// The operation would put two active kernel threads on one isolated
    /// core, violating the Single Binding Rule.
    BindingRuleViolation {
        /// The contested core.
        core: skyloft_hw::CoreId,
    },
    /// The named kernel thread does not exist.
    NoSuchThread,
    /// The thread is in the wrong state for the operation (e.g. waking an
    /// active thread, switching from a thread that is not current).
    InvalidState,
    /// The core index is out of range or not an isolated core.
    BadCore,
}

impl std::fmt::Display for KmodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KmodError::BindingRuleViolation { core } => {
                write!(f, "single binding rule violated on core {core}")
            }
            KmodError::NoSuchThread => write!(f, "no such kernel thread"),
            KmodError::InvalidState => write!(f, "kernel thread in invalid state"),
            KmodError::BadCore => write!(f, "bad or non-isolated core"),
        }
    }
}

impl std::error::Error for KmodError {}

/// Result alias for kernel-module operations.
pub type Result<T> = std::result::Result<T, KmodError>;
