//! The kernel-module operations (Table 3), modelled as methods on [`Kmod`].
//!
//! The real module is a misc device at `/dev/skyloft` reached via
//! `ioctl()`; its value is that thread state transitions happen *atomically*
//! in the kernel, so the Single Binding Rule can never be observed broken.
//! The model keeps that atomicity trivially (single-threaded simulation) and
//! verifies the rule after every mutating operation in debug builds.

use skyloft_hw::{Apic, CoreId};
use skyloft_sim::Nanos;

use crate::kthread::{AppId, Kthread, KthreadState, Tid};
use crate::{KmodError, Result};

/// Operation counters (used by §5.4 microbenchmarks).
#[derive(Clone, Debug, Default)]
pub struct KmodStats {
    /// `skyloft_switch_to` invocations (inter-application switches).
    pub switches: u64,
    /// `skyloft_wakeup` invocations.
    pub wakeups: u64,
    /// `skyloft_park_on_cpu` invocations.
    pub parks: u64,
}

/// The Skyloft kernel module state: the kernel-thread table and the set of
/// isolated cores.
#[derive(Clone, Debug)]
pub struct Kmod {
    threads: Vec<Kthread>,
    isolated: Vec<bool>,
    /// Cached active thread per core (`None` for cores with no active
    /// Skyloft thread).
    active_on: Vec<Option<Tid>>,
    /// Operation counters.
    pub stats: KmodStats,
}

/// Cost of the kernel half of an inter-application switch. The measured
/// end-to-end inter-app switch is 1905 ns (§5.4); of that, the user-space
/// save/restore is the uthread switch cost, and the rest — suspending one
/// kernel thread, waking another, and runqueue manipulation — happens here.
pub const SWITCH_TO_KERNEL_NS: Nanos = Nanos(1_905 - 37);

/// Cost of `skyloft_wakeup` on an inactive kernel thread (a kernel wakeup
/// path; §5.4 measures Linux's wake-another-thread switch at 2471 ns, of
/// which the wakeup syscall half is roughly this much).
pub const WAKEUP_KERNEL_NS: Nanos = Nanos(1_100);

impl Kmod {
    /// Creates the module state for a machine of `n_cores`, with
    /// `isolated` marking the cores reserved for Skyloft via `isolcpus`.
    pub fn new(n_cores: usize, isolated_cores: &[CoreId]) -> Self {
        let mut isolated = vec![false; n_cores];
        for &c in isolated_cores {
            assert!(c < n_cores, "isolated core {c} out of range");
            isolated[c] = true;
        }
        Kmod {
            threads: Vec::new(),
            isolated,
            active_on: vec![None; n_cores],
            stats: KmodStats::default(),
        }
    }

    /// Whether `core` is isolated for Skyloft.
    pub fn is_isolated(&self, core: CoreId) -> bool {
        self.isolated.get(core).copied().unwrap_or(false)
    }

    /// All isolated cores, ascending.
    pub fn isolated_cores(&self) -> Vec<CoreId> {
        (0..self.isolated.len())
            .filter(|&c| self.isolated[c])
            .collect()
    }

    /// Creates a kernel thread for `app` (pthread_create in the daemon or
    /// application startup path, §4.1). The thread starts unbound and
    /// inactive; callers either `bind_active` it (the first application) or
    /// `park_on_cpu` it (subsequent applications).
    pub fn create_kthread(&mut self, app: AppId) -> Tid {
        self.threads.push(Kthread {
            app,
            core: None,
            state: KthreadState::Inactive,
        });
        self.threads.len() - 1
    }

    /// Looks up a thread.
    pub fn kthread(&self, tid: Tid) -> Result<&Kthread> {
        self.threads.get(tid).ok_or(KmodError::NoSuchThread)
    }

    /// The active kernel thread currently occupying `core`, if any.
    pub fn active_thread(&self, core: CoreId) -> Option<Tid> {
        self.active_on.get(core).copied().flatten()
    }

    /// Binds `tid` to `core` and makes it active — the daemon's launch path
    /// (`sched_setaffinity` + run). Fails if the core already has an active
    /// Skyloft thread.
    pub fn bind_active(&mut self, tid: Tid, core: CoreId) -> Result<()> {
        self.check_core(core)?;
        if let Some(other) = self.active_on[core] {
            if other != tid {
                return Err(KmodError::BindingRuleViolation { core });
            }
        }
        let prev = {
            let t = self.threads.get(tid).ok_or(KmodError::NoSuchThread)?;
            if t.state == KthreadState::Exited {
                return Err(KmodError::InvalidState);
            }
            t.core
        };
        // Re-binding an active thread vacates its previous core.
        if let Some(prev) = prev {
            if prev != core && self.active_on[prev] == Some(tid) {
                self.active_on[prev] = None;
            }
        }
        let t = &mut self.threads[tid];
        t.core = Some(core);
        t.state = KthreadState::Active;
        self.active_on[core] = Some(tid);
        self.debug_check_rule();
        Ok(())
    }

    /// `skyloft_park_on_cpu(cpu_id)`: binds the calling kernel thread to
    /// `core` and immediately suspends it (Table 3). Used when launching
    /// every application after the first, so new threads never compete with
    /// the incumbent (§3.3).
    pub fn park_on_cpu(&mut self, tid: Tid, core: CoreId) -> Result<()> {
        self.check_core(core)?;
        let t = self.threads.get_mut(tid).ok_or(KmodError::NoSuchThread)?;
        if t.state == KthreadState::Exited {
            return Err(KmodError::InvalidState);
        }
        // If the thread was the active occupant somewhere, vacate that core.
        if let Some(prev) = t.core {
            if self.active_on[prev] == Some(tid) {
                self.active_on[prev] = None;
            }
        }
        t.core = Some(core);
        t.state = KthreadState::Inactive;
        self.stats.parks += 1;
        self.debug_check_rule();
        Ok(())
    }

    /// `skyloft_switch_to(target_tid)`: atomically suspends the calling
    /// (currently active) thread and wakes the target thread bound to the
    /// same core (Table 3). Returns the kernel-side cost to charge.
    ///
    /// Both transitions happen in one kernel entry precisely so the Single
    /// Binding Rule holds at every observable instant (§3.3).
    pub fn switch_to(&mut self, cur: Tid, target: Tid) -> Result<Nanos> {
        let core = {
            let c = self.threads.get(cur).ok_or(KmodError::NoSuchThread)?;
            if c.state != KthreadState::Active {
                return Err(KmodError::InvalidState);
            }
            c.core.ok_or(KmodError::InvalidState)?
        };
        {
            let t = self.threads.get(target).ok_or(KmodError::NoSuchThread)?;
            if t.state != KthreadState::Inactive || t.core != Some(core) {
                return Err(KmodError::InvalidState);
            }
        }
        self.threads[cur].state = KthreadState::Inactive;
        self.threads[target].state = KthreadState::Active;
        self.active_on[core] = Some(target);
        self.stats.switches += 1;
        self.debug_check_rule();
        Ok(SWITCH_TO_KERNEL_NS)
    }

    /// `skyloft_wakeup(tid)`: wakes an inactive kernel thread (Table 3).
    /// Fails with a binding-rule violation if its core already has an
    /// active occupant.
    pub fn wakeup(&mut self, tid: Tid) -> Result<Nanos> {
        let t = self.threads.get(tid).ok_or(KmodError::NoSuchThread)?;
        if t.state != KthreadState::Inactive {
            return Err(KmodError::InvalidState);
        }
        let core = t.core.ok_or(KmodError::InvalidState)?;
        if self.active_on[core].is_some() {
            return Err(KmodError::BindingRuleViolation { core });
        }
        self.threads[tid].state = KthreadState::Active;
        self.active_on[core] = Some(tid);
        self.stats.wakeups += 1;
        self.debug_check_rule();
        Ok(WAKEUP_KERNEL_NS)
    }

    /// Terminates all kernel threads of an application (§3.3, application
    /// termination). Active threads are conceptually rebound to
    /// non-isolated cores before exiting; inactive ones receive a
    /// termination signal. Either way they leave the isolated cores.
    pub fn terminate_app(&mut self, app: AppId) -> Result<()> {
        for tid in 0..self.threads.len() {
            if self.threads[tid].app != app || self.threads[tid].state == KthreadState::Exited {
                continue;
            }
            if let Some(core) = self.threads[tid].core {
                if self.active_on[core] == Some(tid) {
                    self.active_on[core] = None;
                }
            }
            self.threads[tid].core = None;
            self.threads[tid].state = KthreadState::Exited;
        }
        self.debug_check_rule();
        Ok(())
    }

    /// `skyloft_timer_enable()` (Table 3): enables user-space timer
    /// interrupts on `core` by starting its LAPIC timer. The UINV/UPID.SN
    /// configuration half happens in the UINTR fabric.
    pub fn timer_enable(&mut self, apic: &mut Apic, core: CoreId) -> Result<()> {
        self.check_core(core)?;
        apic.set_enabled(core, true);
        Ok(())
    }

    /// `skyloft_timer_set_hz(hz)` (Table 3): programs the LAPIC timer
    /// frequency of `core`.
    pub fn timer_set_hz(&mut self, apic: &mut Apic, core: CoreId, hz: u64) -> Result<()> {
        self.check_core(core)?;
        apic.set_hz(core, hz);
        Ok(())
    }

    /// Verifies the Single Binding Rule over the whole table. Tests call
    /// this directly; mutating operations run it in debug builds.
    pub fn check_binding_rule(&self) -> Result<()> {
        for core in 0..self.active_on.len() {
            if !self.isolated[core] {
                continue;
            }
            let actives = self.threads.iter().filter(|t| t.is_active_on(core)).count();
            if actives > 1 {
                return Err(KmodError::BindingRuleViolation { core });
            }
            // The cache must agree with the table.
            match self.active_on[core] {
                Some(tid) => {
                    if !self.threads[tid].is_active_on(core) {
                        return Err(KmodError::InvalidState);
                    }
                }
                None => {
                    if actives != 0 {
                        return Err(KmodError::InvalidState);
                    }
                }
            }
        }
        Ok(())
    }

    fn check_core(&self, core: CoreId) -> Result<()> {
        if core >= self.isolated.len() || !self.isolated[core] {
            return Err(KmodError::BadCore);
        }
        Ok(())
    }

    fn debug_check_rule(&self) {
        debug_assert_eq!(self.check_binding_rule(), Ok(()));
    }

    /// Crate-internal state transition (fault handling lives in
    /// `crate::fault`).
    pub(crate) fn set_state(&mut self, tid: Tid, state: KthreadState) {
        self.threads[tid].state = state;
    }

    /// Clears the active-thread cache of `core` if `tid` occupies it.
    pub(crate) fn vacate(&mut self, core: CoreId, tid: Tid) {
        if self.active_on[core] == Some(tid) {
            self.active_on[core] = None;
        }
    }

    /// A parked (inactive) thread bound to `core`, if any.
    pub fn parked_thread_on(&self, core: CoreId) -> Option<Tid> {
        self.threads
            .iter()
            .position(|t| t.state == KthreadState::Inactive && t.core == Some(core))
    }

    /// A fault-blocked thread bound to `core`, if any (§6). Dispatch paths
    /// use this to keep work off cores with an unresolved blocking event.
    pub fn fault_blocked_on(&self, core: CoreId) -> Option<Tid> {
        self.threads
            .iter()
            .position(|t| t.state == KthreadState::FaultBlocked && t.core == Some(core))
    }

    pub(crate) fn debug_rule(&self) {
        self.debug_check_rule();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Kmod {
        // 8-core machine, cores 2..=5 isolated.
        Kmod::new(8, &[2, 3, 4, 5])
    }

    #[test]
    fn daemon_binds_active() {
        let mut k = setup();
        let t = k.create_kthread(0);
        k.bind_active(t, 2).unwrap();
        assert_eq!(k.active_thread(2), Some(t));
        assert_eq!(k.kthread(t).unwrap().state, KthreadState::Active);
    }

    #[test]
    fn second_app_parks_then_switches() {
        let mut k = setup();
        let a0 = k.create_kthread(0);
        k.bind_active(a0, 2).unwrap();
        let a1 = k.create_kthread(1);
        k.park_on_cpu(a1, 2).unwrap();
        assert_eq!(k.active_thread(2), Some(a0));
        let cost = k.switch_to(a0, a1).unwrap();
        assert!(cost > Nanos(1_000));
        assert_eq!(k.active_thread(2), Some(a1));
        assert_eq!(k.kthread(a0).unwrap().state, KthreadState::Inactive);
        k.check_binding_rule().unwrap();
    }

    #[test]
    fn binding_rule_blocks_second_active() {
        let mut k = setup();
        let a0 = k.create_kthread(0);
        let a1 = k.create_kthread(1);
        k.bind_active(a0, 3).unwrap();
        assert_eq!(
            k.bind_active(a1, 3),
            Err(KmodError::BindingRuleViolation { core: 3 })
        );
        // Waking a parked thread on an occupied core also fails.
        k.park_on_cpu(a1, 3).unwrap();
        assert_eq!(
            k.wakeup(a1),
            Err(KmodError::BindingRuleViolation { core: 3 })
        );
    }

    #[test]
    fn wakeup_after_vacate_succeeds() {
        let mut k = setup();
        let a0 = k.create_kthread(0);
        let a1 = k.create_kthread(1);
        k.bind_active(a0, 4).unwrap();
        k.park_on_cpu(a1, 4).unwrap();
        // a0 parks itself (e.g. application blocked).
        k.park_on_cpu(a0, 4).unwrap();
        assert_eq!(k.active_thread(4), None);
        k.wakeup(a1).unwrap();
        assert_eq!(k.active_thread(4), Some(a1));
    }

    #[test]
    fn switch_to_requires_same_core() {
        let mut k = setup();
        let a0 = k.create_kthread(0);
        let a1 = k.create_kthread(1);
        k.bind_active(a0, 2).unwrap();
        k.park_on_cpu(a1, 3).unwrap();
        assert_eq!(k.switch_to(a0, a1), Err(KmodError::InvalidState));
    }

    #[test]
    fn switch_from_inactive_fails() {
        let mut k = setup();
        let a0 = k.create_kthread(0);
        let a1 = k.create_kthread(1);
        k.park_on_cpu(a0, 2).unwrap();
        k.park_on_cpu(a1, 2).unwrap();
        assert_eq!(k.switch_to(a0, a1), Err(KmodError::InvalidState));
    }

    #[test]
    fn non_isolated_core_rejected() {
        let mut k = setup();
        let t = k.create_kthread(0);
        assert_eq!(k.bind_active(t, 0), Err(KmodError::BadCore));
        assert_eq!(k.park_on_cpu(t, 7), Err(KmodError::BadCore));
        assert_eq!(k.bind_active(t, 100), Err(KmodError::BadCore));
    }

    #[test]
    fn terminate_app_frees_cores() {
        let mut k = setup();
        let a0 = k.create_kthread(0);
        let a0b = k.create_kthread(0);
        let b0 = k.create_kthread(1);
        k.bind_active(a0, 2).unwrap();
        k.park_on_cpu(a0b, 3).unwrap();
        k.park_on_cpu(b0, 2).unwrap();
        k.terminate_app(0).unwrap();
        assert_eq!(k.active_thread(2), None);
        assert_eq!(k.kthread(a0).unwrap().state, KthreadState::Exited);
        assert_eq!(k.kthread(a0b).unwrap().state, KthreadState::Exited);
        // The parked thread of app 1 can now take the core.
        k.wakeup(b0).unwrap();
        assert_eq!(k.active_thread(2), Some(b0));
    }

    #[test]
    fn exited_thread_cannot_be_reused() {
        let mut k = setup();
        let t = k.create_kthread(0);
        k.bind_active(t, 2).unwrap();
        k.terminate_app(0).unwrap();
        assert_eq!(k.bind_active(t, 2), Err(KmodError::InvalidState));
        assert_eq!(k.park_on_cpu(t, 2), Err(KmodError::InvalidState));
    }

    #[test]
    fn timer_ops_program_apic() {
        let mut k = setup();
        let mut apic = Apic::new(8);
        k.timer_set_hz(&mut apic, 2, 100_000).unwrap();
        k.timer_enable(&mut apic, 2).unwrap();
        assert!(apic.timer_active(2));
        assert_eq!(apic.timer(2).period(), Nanos::from_us(10));
        assert_eq!(k.timer_enable(&mut apic, 0), Err(KmodError::BadCore));
    }

    #[test]
    fn isolated_cores_listed() {
        let k = setup();
        assert_eq!(k.isolated_cores(), vec![2, 3, 4, 5]);
        assert!(k.is_isolated(2));
        assert!(!k.is_isolated(0));
    }
}
