//! Machine integration tests: preemption plumbing, multi-application
//! switching, dispatcher behaviour, core allocation.

use skyloft_hw::Topology;
use skyloft_sim::{EventQueue, Nanos};

use crate::builtin::{CentralizedFcfs, GlobalFifo};
use crate::conf::{CoreAllocConfig, Platform};
use crate::machine::{AppKind, Call, Event, IpiPurpose, Machine, MachineConfig, SpawnOpts};
use crate::ops::{CoreId, EnqueueFlags, Policy, PolicyKind, SchedEnv};
use crate::task::{Behavior, Step, TaskId, TaskTable};

fn percpu_machine(workers: usize, policy: Box<dyn Policy>) -> (Machine, EventQueue<Event>) {
    let cfg = MachineConfig {
        plat: Platform::skyloft_percpu(Topology::single(workers + 1), 100_000),
        n_workers: workers,
        seed: 42,
        core_alloc: None,
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, policy);
    m.add_app("app0", AppKind::Lc);
    let mut q = EventQueue::new();
    m.start(&mut q);
    (m, q)
}

fn central_machine(
    workers: usize,
    quantum: Option<Nanos>,
    core_alloc: Option<CoreAllocConfig>,
) -> (Machine, EventQueue<Event>) {
    let cfg = MachineConfig {
        plat: Platform::skyloft_centralized(Topology::single(workers + 1)),
        n_workers: workers,
        seed: 42,
        core_alloc,
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, Box::new(CentralizedFcfs::new(quantum)));
    m.add_app("lc", AppKind::Lc);
    let q = EventQueue::new();
    (m, q)
}

#[test]
fn single_request_completes_with_latency() {
    let (mut m, mut q) = percpu_machine(1, Box::new(GlobalFifo::new()));
    m.spawn_request(&mut q, 0, Nanos::from_us(10), 0, None);
    m.run(&mut q, Nanos::from_ms(1));
    assert_eq!(m.stats.completed, 1);
    let p50 = m.stats.resp_hist.percentile(50.0);
    // Response = wake latency (100) + switch (37) + 10us service.
    assert!((10_100..10_600).contains(&p50), "response {p50}");
}

#[test]
fn fifo_runs_to_completion_without_preemption() {
    let (mut m, mut q) = percpu_machine(1, Box::new(GlobalFifo::new()));
    // A 1 ms task followed by a 10 us task: FIFO (no tick preemption) must
    // finish the long one first even though timer interrupts fire.
    m.spawn_request(&mut q, 0, Nanos::from_ms(1), 1, None);
    m.spawn_request(&mut q, 0, Nanos::from_us(10), 0, None);
    m.run(&mut q, Nanos::from_ms(5));
    assert_eq!(m.stats.completed, 2);
    // The short request waited behind the long one (head-of-line blocking).
    let short_p50 = m.stats.resp_by_class[0].percentile(50.0);
    assert!(
        short_p50 > 1_000_000,
        "short request should HoL-block: {short_p50}"
    );
    // Timer interrupts were delivered but caused no preemptions.
    assert!(
        m.stats.timer_delivered > 50,
        "delivered {}",
        m.stats.timer_delivered
    );
    assert_eq!(m.stats.timer_lost, 0);
    assert_eq!(m.stats.preemptions, 0);
}

/// A per-CPU round-robin test policy with a tiny slice, to exercise the
/// user-timer preemption path end to end.
struct TinyRr {
    queue: std::collections::VecDeque<TaskId>,
    slice: Nanos,
}

impl Policy for TinyRr {
    fn name(&self) -> &'static str {
        "tiny-rr"
    }
    fn kind(&self) -> PolicyKind {
        PolicyKind::PerCpu
    }
    fn sched_init(&mut self, _env: &SchedEnv) {}
    fn task_init(&mut self, _t: &mut TaskTable, _id: TaskId, _now: Nanos) {}
    fn task_terminate(&mut self, _t: &mut TaskTable, _id: TaskId, _now: Nanos) {}
    fn task_enqueue(
        &mut self,
        _t: &mut TaskTable,
        id: TaskId,
        _cpu: Option<CoreId>,
        _f: EnqueueFlags,
        _now: Nanos,
    ) {
        self.queue.push_back(id);
    }
    fn task_dequeue(&mut self, _t: &mut TaskTable, _cpu: CoreId, _now: Nanos) -> Option<TaskId> {
        self.queue.pop_front()
    }
    fn sched_timer_tick(
        &mut self,
        _t: &mut TaskTable,
        _cpu: CoreId,
        _cur: TaskId,
        ran: Nanos,
        _now: Nanos,
    ) -> bool {
        ran >= self.slice && !self.queue.is_empty()
    }
}

#[test]
fn user_timer_preemption_round_robins() {
    let (mut m, mut q) = percpu_machine(
        1,
        Box::new(TinyRr {
            queue: Default::default(),
            slice: Nanos::from_us(20),
        }),
    );
    // Two 200 us tasks on one core with a 20 us slice @ 100 kHz (10 us
    // ticks): they must interleave, so both finish near 400 us rather than
    // one at 200 us and the other at 400 us.
    m.spawn_request(&mut q, 0, Nanos::from_us(200), 0, None);
    m.spawn_request(&mut q, 0, Nanos::from_us(200), 1, None);
    m.run(&mut q, Nanos::from_ms(2));
    assert_eq!(m.stats.completed, 2);
    assert!(
        m.stats.preemptions >= 8,
        "preemptions {}",
        m.stats.preemptions
    );
    let a = m.stats.resp_by_class[0].percentile(50.0);
    let b = m.stats.resp_by_class[1].percentile(50.0);
    // Processor sharing: both completions land in the last quarter.
    assert!(a > 300_000, "first task response {a}");
    assert!(b > 300_000, "second task response {b}");
    // The UINTR timer path stayed armed the whole time.
    assert_eq!(m.stats.timer_lost, 0);
    assert!(m.uintr.stats.recognized > 0);
}

struct WakerThenBlock {
    target: TaskId,
    woke: bool,
}

impl Behavior for WakerThenBlock {
    fn step(&mut self, _now: Nanos, _id: TaskId) -> Step {
        if !self.woke {
            self.woke = true;
            Step::Wake(self.target)
        } else {
            Step::Exit
        }
    }
}

struct BlockOnce {
    blocked: bool,
}

impl Behavior for BlockOnce {
    fn step(&mut self, _now: Nanos, _id: TaskId) -> Step {
        if !self.blocked {
            self.blocked = true;
            Step::Block
        } else {
            Step::Exit
        }
    }
}

#[test]
fn wakeup_latency_is_recorded() {
    let (mut m, mut q) = percpu_machine(2, Box::new(GlobalFifo::new()));
    let sleeper = m.spawn(
        &mut q,
        Box::new(BlockOnce { blocked: false }),
        SpawnOpts::app(0),
    );
    // Let the sleeper run and block.
    m.run(&mut q, Nanos::from_us(50));
    // Waker wakes it from another task.
    m.spawn(
        &mut q,
        Box::new(WakerThenBlock {
            target: sleeper,
            woke: false,
        }),
        SpawnOpts::app(0),
    );
    m.run(&mut q, Nanos::from_ms(1));
    assert!(m.stats.wakeup_hist.count() >= 1);
    let p99 = m.stats.wakeup_hist.percentile(99.0);
    // Idle core available: wakeup latency ~ wake_latency + switch.
    assert!(p99 < 1_000, "wakeup latency {p99}");
    assert_eq!(m.apps[0].live_tasks, 0);
}

#[test]
fn cross_app_switch_goes_through_kmod() {
    let cfg = MachineConfig {
        plat: Platform::skyloft_percpu(Topology::single(2), 100_000),
        n_workers: 1,
        seed: 7,
        core_alloc: None,
        utimer_period: None,
    };
    let mut m = Machine::new(cfg, Box::new(GlobalFifo::new()));
    m.add_app("a", AppKind::Lc);
    m.add_app("b", AppKind::Lc);
    let mut q = EventQueue::new();
    m.start(&mut q);
    m.spawn_request(&mut q, 0, Nanos::from_us(5), 0, None);
    m.spawn_request(&mut q, 1, Nanos::from_us(5), 0, None);
    m.spawn_request(&mut q, 0, Nanos::from_us(5), 0, None);
    m.run(&mut q, Nanos::from_ms(1));
    assert_eq!(m.stats.completed, 3);
    // a -> b -> a: two inter-application switches, both via the module.
    assert_eq!(m.stats.app_switches, 2);
    assert_eq!(m.kmod.stats.switches, 2);
    m.kmod.check_binding_rule().unwrap();
    // Cross-app switches are ~50x costlier than same-app ones.
    assert_eq!(m.plat.cross_app_switch, Nanos(1_905));
}

#[test]
fn centralized_dispatch_and_quantum_preemption() {
    let (mut m, mut q) = central_machine(2, Some(Nanos::from_us(30)), None);
    m.start(&mut q);
    // One long (10 ms) and many short (4 us) requests: with a 30 us
    // quantum the shorts must not wait for the long request.
    m.spawn_request(&mut q, 0, Nanos::from_ms(10), 1, None);
    m.spawn_request(&mut q, 0, Nanos::from_ms(10), 1, None);
    for _ in 0..50 {
        m.spawn_request(&mut q, 0, Nanos::from_us(4), 0, None);
    }
    m.run(&mut q, Nanos::from_ms(60));
    assert_eq!(m.stats.completed, 52);
    let short_p99 = m.stats.resp_by_class[0].percentile(99.0);
    // 50 shorts sharing slots with two preempted longs: worst case a few
    // hundred us, not 10 ms.
    assert!(short_p99 < 2_000_000, "short p99 {short_p99}");
    // FCFS re-enqueues preempted longs at the back, so each long is
    // preempted once while shorts drain, then runs out its quantum checks
    // against an empty queue.
    assert!(
        m.stats.preemptions >= 2,
        "preemptions {}",
        m.stats.preemptions
    );
}

#[test]
fn centralized_without_quantum_hol_blocks() {
    let (mut m, mut q) = central_machine(1, None, None);
    m.start(&mut q);
    m.spawn_request(&mut q, 0, Nanos::from_ms(10), 1, None);
    m.spawn_request(&mut q, 0, Nanos::from_us(4), 0, None);
    m.run(&mut q, Nanos::from_ms(30));
    assert_eq!(m.stats.completed, 2);
    let short = m.stats.resp_by_class[0].percentile(50.0);
    assert!(short > 9_000_000, "short blocked behind long: {short}");
    assert_eq!(m.stats.preemptions, 0);
}

#[test]
fn core_allocator_grants_and_revokes() {
    let alloc = CoreAllocConfig {
        interval: Nanos::from_us(5),
        congestion_delay: Nanos::from_us(10),
        grant_after_idle_checks: 2,
    };
    let (mut m, mut q) = central_machine(2, Some(Nanos::from_us(30)), Some(alloc));
    let be = m.add_app("batch", AppKind::Be);
    m.start(&mut q);
    // Idle LC: the allocator must grant cores to the BE app.
    m.run(&mut q, Nanos::from_ms(1));
    assert!(m.stats.be_grants >= 1, "grants {}", m.stats.be_grants);
    let be_busy_at_idle = m.busy_ns(be, q.now());
    assert!(be_busy_at_idle > 0, "BE app should have run");

    // Now flood the LC app; the allocator must revoke cores back.
    for _ in 0..500 {
        m.spawn_request(&mut q, 0, Nanos::from_us(100), 0, None);
    }
    m.run(&mut q, Nanos::from_ms(60));
    assert!(m.stats.be_revokes >= 1, "revokes {}", m.stats.be_revokes);
    assert!(m.stats.completed >= 500, "completed {}", m.stats.completed);
    m.kmod.check_binding_rule().unwrap();
}

#[test]
fn be_share_tracks_lc_load() {
    let alloc = CoreAllocConfig::default();
    let (mut m, mut q) = central_machine(4, Some(Nanos::from_us(30)), Some(alloc));
    m.add_app("batch", AppKind::Be);
    m.start(&mut q);
    m.run(&mut q, Nanos::from_ms(2));
    m.reset_stats(q.now());
    m.run(&mut q, Nanos::from_ms(10));
    let share_idle = m.app_share(1, q.now());
    assert!(
        share_idle > 0.8,
        "idle LC should cede most cores: {share_idle}"
    );
}

#[test]
fn brownout_hysteresis_engages_and_releases() {
    use crate::conf::BrownoutConfig;
    let (mut m, _q) = central_machine(2, None, None);
    m.set_brownout(BrownoutConfig::default()); // enter 50us / exit 10us / dwell 100us
    assert!(!m.browned_out());
    // Sustained overload: the EWMA crosses the engage threshold within a
    // handful of samples, and the min-dwell gate opens at 100 us.
    let mut now = Nanos::ZERO;
    for _ in 0..150 {
        now += Nanos::from_us(1);
        m.note_overload_sample(now, Nanos::from_us(200), false);
    }
    assert!(m.browned_out(), "sustained overload must engage");
    assert_eq!(m.brownout_transitions(), 1);
    // Mid-band samples (between exit and enter): hysteresis holds.
    for _ in 0..200 {
        now += Nanos::from_us(1);
        m.note_overload_sample(now, Nanos::from_us(30), false);
    }
    assert!(m.browned_out(), "mid-band must not release");
    assert_eq!(m.brownout_transitions(), 1);
    // Quiet rings: the EWMA decays below the exit threshold.
    for _ in 0..300 {
        now += Nanos::from_us(1);
        m.note_overload_sample(now, Nanos::ZERO, false);
    }
    assert!(!m.browned_out(), "quiet rings must release");
    assert_eq!(m.brownout_transitions(), 2);
    // Backpressure alone (half-threshold penalty) never engages; it only
    // tips the balance when sojourns are already elevated.
    for _ in 0..300 {
        now += Nanos::from_us(1);
        m.note_overload_sample(now, Nanos::ZERO, true);
    }
    assert!(!m.browned_out());
}

#[test]
fn brownout_revokes_be_cores_even_when_lc_is_idle() {
    use crate::conf::BrownoutConfig;
    let alloc = CoreAllocConfig {
        interval: Nanos::from_us(5),
        congestion_delay: Nanos::from_us(10),
        grant_after_idle_checks: 2,
    };
    let (mut m, mut q) = central_machine(2, Some(Nanos::from_us(30)), Some(alloc));
    m.add_app("batch", AppKind::Be);
    m.set_brownout(BrownoutConfig::default());
    m.start(&mut q);
    // Idle LC: the allocator grants cores to the BE app as usual — the
    // controller is armed but disengaged.
    m.run(&mut q, Nanos::from_ms(1));
    assert!(m.stats.be_grants >= 1, "grants {}", m.stats.be_grants);
    assert!(!m.browned_out());
    // The polling core reports sustained ring overload: the scheduler
    // queues are empty (LC idle), yet the machine must shed BE share.
    let mut now = q.now();
    for _ in 0..200 {
        now += Nanos::from_us(1);
        m.note_overload_sample(now, Nanos::from_us(500), true);
    }
    assert!(m.browned_out());
    let grants_at_engage = m.stats.be_grants;
    m.run(&mut q, Nanos::from_ms(2));
    assert!(
        m.stats.be_revokes >= 1,
        "brownout must reclaim BE cores: revokes {}",
        m.stats.be_revokes
    );
    assert_eq!(
        m.stats.be_grants, grants_at_engage,
        "no BE grants while browned out"
    );
    m.kmod.check_binding_rule().unwrap();
}

#[test]
fn call_events_run() {
    let (mut m, mut q) = percpu_machine(1, Box::new(GlobalFifo::new()));
    q.schedule(
        Nanos::from_us(5),
        Event::Call(Call(Box::new(|m, q| {
            m.spawn_request(q, 0, Nanos::from_us(1), 0, None);
        }))),
    );
    m.run(&mut q, Nanos::from_ms(1));
    assert_eq!(m.stats.completed, 1);
}

#[test]
fn yield_rotates_between_tasks() {
    struct YieldN {
        left: u32,
    }
    impl Behavior for YieldN {
        fn step(&mut self, _now: Nanos, _id: TaskId) -> Step {
            if self.left == 0 {
                return Step::Exit;
            }
            self.left -= 1;
            if self.left % 2 == 1 {
                Step::Compute(Nanos(500))
            } else {
                Step::Yield
            }
        }
    }
    let (mut m, mut q) = percpu_machine(1, Box::new(GlobalFifo::new()));
    m.spawn(&mut q, Box::new(YieldN { left: 10 }), SpawnOpts::app(0));
    m.spawn(&mut q, Box::new(YieldN { left: 10 }), SpawnOpts::app(0));
    m.run(&mut q, Nanos::from_ms(1));
    assert_eq!(m.apps[0].live_tasks, 0);
    // 5 yields each, all on the same core with same-app fast-path switches.
    assert!(m.stats.uthread_switches >= 10);
    assert_eq!(m.stats.app_switches, 0);
}

#[test]
fn stats_reset_clears_but_keeps_busy_anchors() {
    let (mut m, mut q) = percpu_machine(1, Box::new(GlobalFifo::new()));
    m.spawn_request(&mut q, 0, Nanos::from_ms(5), 0, None);
    m.run(&mut q, Nanos::from_ms(1));
    m.reset_stats(q.now());
    assert_eq!(m.stats.completed, 0);
    m.run(&mut q, Nanos::from_ms(10));
    assert_eq!(m.stats.completed, 1);
    // Busy time counted after reset must be ~4 ms, not 5.
    let busy = m.stats.busy_by_app[0];
    assert!((3_500_000..4_500_000).contains(&busy), "busy {busy}");
}

#[test]
fn round_robin_placement_starts_at_worker_zero() {
    use std::cell::RefCell;
    use std::rc::Rc;

    /// FIFO that records the core hint of every enqueue.
    struct RecordingFifo {
        queue: std::collections::VecDeque<TaskId>,
        placements: Rc<RefCell<Vec<Option<CoreId>>>>,
    }
    impl Policy for RecordingFifo {
        fn name(&self) -> &'static str {
            "recording-fifo"
        }
        fn kind(&self) -> PolicyKind {
            PolicyKind::PerCpu
        }
        fn sched_init(&mut self, _env: &SchedEnv) {}
        fn task_init(&mut self, _t: &mut TaskTable, _id: TaskId, _now: Nanos) {}
        fn task_terminate(&mut self, _t: &mut TaskTable, _id: TaskId, _now: Nanos) {}
        fn task_enqueue(
            &mut self,
            _t: &mut TaskTable,
            id: TaskId,
            cpu: Option<CoreId>,
            _f: EnqueueFlags,
            _now: Nanos,
        ) {
            self.placements.borrow_mut().push(cpu);
            self.queue.push_back(id);
        }
        fn task_dequeue(
            &mut self,
            _t: &mut TaskTable,
            _cpu: CoreId,
            _now: Nanos,
        ) -> Option<TaskId> {
            self.queue.pop_front()
        }
    }

    let placements = Rc::new(RefCell::new(Vec::new()));
    let (mut m, mut q) = percpu_machine(
        3,
        Box::new(RecordingFifo {
            queue: Default::default(),
            placements: placements.clone(),
        }),
    );
    // Occupy every worker with a long pinned task.
    for c in 0..3 {
        m.spawn_request(&mut q, 0, Nanos::from_ms(10), 0, Some(c));
    }
    m.run(&mut q, Nanos::from_us(5));
    for c in 0..3 {
        assert!(m.cores[c].current.is_some(), "core {c} should be busy");
    }
    placements.borrow_mut().clear();
    // Never-run, unpinned tasks arriving while every core is busy must be
    // spread round-robin starting at worker 0 — regression test for the
    // cursor being advanced before use, which made worker 0 the *last*
    // choice of every lap.
    for _ in 0..3 {
        m.spawn_request(&mut q, 0, Nanos::from_us(1), 0, None);
    }
    assert_eq!(*placements.borrow(), vec![Some(0), Some(1), Some(2)]);
}

#[test]
fn revoke_counters_track_state_transitions() {
    let alloc = CoreAllocConfig {
        interval: Nanos::from_us(5),
        congestion_delay: Nanos::from_us(10),
        grant_after_idle_checks: 2,
    };
    let (mut m, mut q) = central_machine(2, Some(Nanos::from_us(30)), Some(alloc));
    m.add_app("batch", AppKind::Be);
    m.start(&mut q);

    // A stray revoke IPI at a core the allocator never granted must not
    // count as a revocation or disturb the core's grant state.
    m.handle(
        Event::IpiArrive {
            core: 0,
            purpose: IpiPurpose::Revoke,
            expect: None,
        },
        &mut q,
    );
    assert_eq!(m.stats.be_revokes, 0);
    assert!(m.stats.spurious_ipis >= 1);

    // Idle LC: the allocator grants cores to the BE app.
    m.run(&mut q, Nanos::from_ms(1));
    assert!(m.stats.be_grants >= 1, "grants {}", m.stats.be_grants);
    let core = m
        .worker_cores
        .iter()
        .copied()
        .find(|&c| m.cores[c].granted_to_be)
        .expect("a granted core");

    // A real revoke counts exactly once and clears the grant...
    let before = m.stats.be_revokes;
    m.handle(
        Event::IpiArrive {
            core,
            purpose: IpiPurpose::Revoke,
            expect: None,
        },
        &mut q,
    );
    assert_eq!(m.stats.be_revokes, before + 1);
    assert!(!m.cores[core].granted_to_be);

    // ...and a duplicate revoke for the same core is spurious.
    m.handle(
        Event::IpiArrive {
            core,
            purpose: IpiPurpose::Revoke,
            expect: None,
        },
        &mut q,
    );
    assert_eq!(m.stats.be_revokes, before + 1);
}

#[test]
fn app_share_counts_still_running_be_spinner() {
    let alloc = CoreAllocConfig::default();
    let (mut m, mut q) = central_machine(2, Some(Nanos::from_us(30)), Some(alloc));
    let be = m.add_app("batch", AppKind::Be);
    m.start(&mut q);
    m.run(&mut q, Nanos::from_ms(2));
    m.reset_stats(q.now());
    m.run(&mut q, Nanos::from_ms(5));
    let now = q.now();
    // The spinner has been running the whole window without stopping, so
    // its busy interval is still open: the closed-interval counter alone
    // undercounts, and the share must come from `Machine::busy_ns`.
    assert!(
        m.busy_ns(be, now) > m.stats.busy_by_app[be],
        "open interval missing: busy_ns {} vs closed {}",
        m.busy_ns(be, now),
        m.stats.busy_by_app[be]
    );
    let share = m.app_share(be, now);
    assert!(share > 0.8, "running spinner must be counted: {share}");
}

#[cfg(feature = "trace")]
#[test]
fn trace_records_events_and_exports_chrome_json() {
    use crate::trace::TraceKind;

    let (mut m, mut q) = percpu_machine(1, Box::new(GlobalFifo::new()));
    m.spawn_request(&mut q, 0, Nanos::from_us(30), 0, None);
    m.spawn_request(&mut q, 0, Nanos::from_us(30), 1, None);
    m.run(&mut q, Nanos::from_ms(1));
    assert!(m.tracer.checker.checks_run() > 0, "checker must have run");
    assert!(m.tracer.checker.violations().is_empty());
    let kinds: Vec<_> = m.tracer.events().map(|e| e.kind).collect();
    for kind in [TraceKind::TimerFire, TraceKind::Switch, TraceKind::Finish] {
        assert!(kinds.contains(&kind), "missing {kind:?} in {kinds:?}");
    }
    let json = m.trace_to_chrome_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""), "run slices present");
    assert!(
        json.contains("\"name\":\"app0/"),
        "slices named by app/task"
    );
}

#[test]
fn utimer_emulation_preempts_via_ipis() {
    let mut plat = Platform::skyloft_centralized(Topology::single(3));
    plat.mech = crate::conf::PreemptMechanism::UserIpi;
    plat.dedicated_dispatcher = true;
    let cfg = MachineConfig {
        plat,
        n_workers: 1,
        seed: 9,
        core_alloc: None,
        utimer_period: Some(Nanos::from_us(5)),
    };
    // Per-CPU FIFO policy driven by utimer IPIs acting as ticks.
    let mut m = Machine::new(
        cfg,
        Box::new(TinyRr {
            queue: Default::default(),
            slice: Nanos::from_us(5),
        }),
    );
    m.add_app("a", AppKind::Lc);
    let mut q = EventQueue::new();
    m.start(&mut q);
    m.spawn_request(&mut q, 0, Nanos::from_us(100), 0, None);
    m.spawn_request(&mut q, 0, Nanos::from_us(100), 1, None);
    m.run(&mut q, Nanos::from_ms(1));
    assert_eq!(m.stats.completed, 2);
    assert!(
        m.stats.preemptions >= 4,
        "preemptions {}",
        m.stats.preemptions
    );
}

#[cfg(feature = "trace")]
#[test]
fn runtime_trace_disable_records_nothing() {
    // The cached `tracing_active` flag must make the emit paths a single
    // branch: with the ring disabled at runtime, no TraceEvent is
    // constructed (nothing buffered, nothing evicted), while scheduling
    // decisions and the independently-controlled invariant checker are
    // unaffected.
    let run_one = |active: bool| {
        let (mut m, mut q) = percpu_machine(2, Box::new(GlobalFifo::new()));
        m.tracer.set_active(active);
        for i in 0..8 {
            m.spawn_request(&mut q, 0, Nanos::from_us(20 + i * 3), 0, None);
        }
        m.run(&mut q, Nanos::from_ms(1));
        m
    };
    let off = run_one(false);
    assert!(off.tracer.is_empty(), "disabled ring must stay empty");
    assert_eq!(
        off.tracer.dropped(),
        0,
        "nothing constructed, nothing evicted"
    );
    assert!(
        off.tracer.checker.checks_run() > 0,
        "checker is independent"
    );
    let on = run_one(true);
    assert!(!on.tracer.is_empty());
    // Identical decisions either way.
    assert_eq!(off.stats.completed, on.stats.completed);
    assert_eq!(
        off.stats.resp_hist.percentile(99.0),
        on.stats.resp_hist.percentile(99.0)
    );
}

#[test]
fn batched_run_is_decision_identical_to_serial_handling() {
    // Machine-level differential for the batch pipeline: the same workload
    // driven through `Machine::run` (same-timestamp batches, coalesced
    // dispatch triggers) and through the serial event-at-a-time loop must
    // produce identical statistics. Bursts of arrivals share timestamps
    // with quantum checks and preemptions, so this exercises multi-event
    // batches, the dispatch generation skip, and intra-batch cancellation
    // (a preemption cancelling a same-timestamp segment completion).
    let build = || {
        let (mut m, mut q) = central_machine(2, Some(Nanos::from_us(5)), None);
        m.start(&mut q);
        for i in 0..60u64 {
            let at = Nanos((i / 5) * 5_000);
            let service = Nanos::from_us(3 + (i % 7) * 4);
            let class = (i % 3) as u8;
            q.schedule(
                at,
                Event::Call(Call(Box::new(move |m, q| {
                    m.spawn_request(q, 0, service, class, None);
                }))),
            );
        }
        (m, q)
    };
    let deadline = Nanos::from_ms(20);
    let (mut serial_m, mut serial_q) = build();
    skyloft_sim::run_until(&mut serial_m, &mut serial_q, deadline, |m, ev, q| {
        m.handle(ev, q)
    });
    let (mut batched_m, mut batched_q) = build();
    batched_m.run(&mut batched_q, deadline);
    assert_eq!(batched_m.stats.completed, serial_m.stats.completed);
    assert!(batched_m.stats.completed > 0, "workload must complete work");
    assert_eq!(batched_m.stats.preemptions, serial_m.stats.preemptions);
    assert!(serial_m.stats.preemptions > 0, "workload must preempt");
    assert_eq!(batched_m.stats.app_switches, serial_m.stats.app_switches);
    assert_eq!(
        batched_m.stats.uthread_switches,
        serial_m.stats.uthread_switches
    );
    assert_eq!(batched_m.stats.spurious_ipis, serial_m.stats.spurious_ipis);
    for p in [50.0, 90.0, 99.0, 100.0] {
        assert_eq!(
            batched_m.stats.resp_hist.percentile(p),
            serial_m.stats.resp_hist.percentile(p),
            "p{p} diverged"
        );
    }
    assert_eq!(batched_q.now(), serial_q.now());
    assert_eq!(batched_q.len(), serial_q.len());
}
