//! Runqueue AQM: the CoDel drop law on *scheduler* queue sojourn.
//!
//! PR 6 put CoDel on the NIC RX rings, so overload entering through the
//! data plane is bounded before it reaches the scheduler. But requests
//! injected directly via `spawn_request` — or a backlog that builds up
//! *inside* the runqueues because service times stretched — bypass that
//! ring entirely. This module is the second containment ring: the machine
//! samples every app's worst runqueue sojourn on a fixed poll period
//! ([`crate::conf::RunqueueAqmConfig::poll_every`]) and feeds it through a
//! per-app CoDel controller. When an app's controller fires, the machine
//! condemns the oldest queued request of a *sheddable* app (see
//! [`crate::machine::Machine::set_runqueue_aqm`] for the victim-selection
//! rule); the condemned task is terminated, not run, at its next dequeue.
//!
//! The drop law is the same integer state machine as the RX-ring
//! `Codel` in `skyloft-net` (Nichols & Jacobson, CACM 2012): quiescent
//! below `target`; after sojourn stays above `target` for one full
//! `interval` the controller enters the dropping state and fires at
//! `interval/√count` spacing, resuming near the previous rate on quick
//! re-entry. It is duplicated here rather than imported because
//! `skyloft-net` deliberately depends only on `skyloft-sim`, so neither
//! crate can reuse the other's copy of the law.
//!
//! Pure data structure: no RNG, no clock, driven with explicit `now`
//! values, so it is deterministic and directly unit-testable.

use skyloft_sim::Nanos;

use crate::conf::RunqueueAqmConfig;
use crate::task::{AppId, TaskId};

/// Per-app CoDel state (the same fields as the RX-ring controller).
#[derive(Clone, Copy, Debug, Default)]
struct CodelState {
    /// Instant dropping may begin (first-above + interval), while the
    /// sojourn is currently above target.
    first_above: Option<Nanos>,
    /// Whether the controller is in the dropping state.
    dropping: bool,
    /// Next scheduled drop while dropping.
    drop_next: Nanos,
    /// Drops in the current episode (sets the √count rate).
    count: u32,
    /// `count` when the last episode ended (quick re-entry refinement).
    last_count: u32,
}

/// Per-scan record of an app's oldest queued task.
#[derive(Clone, Copy, Debug)]
struct Oldest {
    task: TaskId,
    since: Nanos,
}

/// The machine-side runqueue AQM: one CoDel controller per application,
/// plus the per-poll scan scratch (oldest queued task per app).
#[derive(Debug)]
pub struct RunqueueAqm {
    cfg: RunqueueAqmConfig,
    /// Controllers, indexed by `AppId` (grown on demand).
    apps: Vec<CodelState>,
    /// Scan scratch: the oldest queued task seen for each app this poll.
    oldest: Vec<Option<Oldest>>,
    /// Tasks condemned so far.
    condemned: u64,
}

impl RunqueueAqm {
    /// A quiescent AQM with the given law parameters.
    pub fn new(cfg: RunqueueAqmConfig) -> Self {
        RunqueueAqm {
            cfg,
            apps: Vec::new(),
            oldest: Vec::new(),
            condemned: 0,
        }
    }

    /// The law parameters.
    pub fn cfg(&self) -> RunqueueAqmConfig {
        self.cfg
    }

    /// Tasks condemned so far.
    pub fn condemned(&self) -> u64 {
        self.condemned
    }

    /// Counts one condemned task (called by the machine when it marks a
    /// victim).
    pub fn note_condemned(&mut self) {
        self.condemned += 1;
    }

    /// Resets the scan scratch for a poll over `n_apps` applications.
    pub fn begin_scan(&mut self, n_apps: usize) {
        self.oldest.clear();
        self.oldest.resize(n_apps, None);
        if self.apps.len() < n_apps {
            self.apps.resize(n_apps, CodelState::default());
        }
    }

    /// Records one queued task in the scan: keeps the oldest
    /// (smallest `runnable_since`) per app.
    pub fn observe(&mut self, app: AppId, task: TaskId, since: Nanos) {
        let slot = &mut self.oldest[app];
        if slot.is_none_or(|o| since < o.since) {
            *slot = Some(Oldest { task, since });
        }
    }

    /// The oldest queued task of `app` seen by the current scan, with its
    /// `runnable_since`. `None` when the app has nothing queued.
    pub fn app_oldest(&self, app: AppId) -> Option<(TaskId, Nanos)> {
        self.oldest
            .get(app)
            .and_then(|o| o.map(|o| (o.task, o.since)))
    }

    /// Feeds `app`'s worst-sojourn sample into its controller. `target`
    /// overrides the configured default (an app with a registered SLO
    /// class is judged against half its own deadline). Returns `true`
    /// when the drop law says to shed one queued request now.
    pub fn on_sample(
        &mut self,
        app: AppId,
        now: Nanos,
        sojourn: Nanos,
        target: Option<Nanos>,
    ) -> bool {
        if self.apps.len() <= app {
            self.apps.resize(app + 1, CodelState::default());
        }
        let target = target.unwrap_or(self.cfg.target);
        let interval = self.cfg.interval;
        let c = &mut self.apps[app];
        if sojourn < target {
            c.first_above = None;
            c.dropping = false;
            return false;
        }
        match c.first_above {
            None => {
                c.first_above = Some(now + interval);
                false
            }
            Some(fa) if !c.dropping => {
                if now < fa {
                    return false;
                }
                c.dropping = true;
                c.count = if c.last_count > 2 && now < c.drop_next + interval {
                    c.last_count - 2
                } else {
                    1
                };
                c.drop_next = control_law(now, interval, c.count);
                true
            }
            Some(_) => {
                if now < c.drop_next {
                    return false;
                }
                c.count += 1;
                c.last_count = c.count;
                c.drop_next = control_law(c.drop_next, interval, c.count);
                true
            }
        }
    }
}

/// `t + interval/√count`: the CoDel control law spacing successive drops.
fn control_law(t: Nanos, interval: Nanos, count: u32) -> Nanos {
    t + Nanos((interval.0 as f64 / (count.max(1) as f64).sqrt()) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RunqueueAqmConfig {
        RunqueueAqmConfig {
            target: Nanos::from_us(50),
            interval: Nanos::from_us(500),
            poll_every: Nanos::from_us(10),
            sheddable_slo: Nanos::from_ms(1),
        }
    }

    fn tid(idx: u32) -> TaskId {
        TaskId { idx, generation: 0 }
    }

    #[test]
    fn below_target_never_fires() {
        let mut a = RunqueueAqm::new(cfg());
        for i in 0..10_000u64 {
            assert!(!a.on_sample(0, Nanos(i * 100), Nanos::from_us(49), None));
        }
    }

    #[test]
    fn sustained_excess_fires_after_one_interval() {
        let mut a = RunqueueAqm::new(cfg());
        let sojourn = Nanos::from_us(200);
        assert!(!a.on_sample(0, Nanos::ZERO, sojourn, None));
        assert!(!a.on_sample(0, Nanos::from_us(499), sojourn, None));
        assert!(a.on_sample(0, Nanos::from_us(500), sojourn, None));
    }

    #[test]
    fn per_app_state_is_independent() {
        let mut a = RunqueueAqm::new(cfg());
        let high = Nanos::from_us(200);
        // App 0 builds up an above-target episode; app 1 stays quiet.
        assert!(!a.on_sample(0, Nanos::ZERO, high, None));
        assert!(!a.on_sample(1, Nanos::ZERO, Nanos::from_us(1), None));
        assert!(a.on_sample(0, Nanos::from_us(500), high, None));
        // App 1's first above-target sample only arms its own interval.
        assert!(!a.on_sample(1, Nanos::from_us(500), high, None));
    }

    #[test]
    fn target_override_uses_class_deadline() {
        let mut a = RunqueueAqm::new(cfg());
        // 100 µs sojourn, 300 µs override target: quiescent forever.
        for i in 0..200u64 {
            assert!(!a.on_sample(
                0,
                Nanos(i * 10_000),
                Nanos::from_us(100),
                Some(Nanos::from_us(300)),
            ));
        }
        // Same sojourn against a 40 µs override fires after an interval.
        let tight = Some(Nanos::from_us(40));
        assert!(!a.on_sample(1, Nanos::ZERO, Nanos::from_us(100), tight));
        assert!(a.on_sample(1, Nanos::from_us(500), Nanos::from_us(100), tight));
    }

    #[test]
    fn scan_tracks_oldest_per_app() {
        let mut a = RunqueueAqm::new(cfg());
        a.begin_scan(2);
        a.observe(0, tid(1), Nanos(300));
        a.observe(0, tid(2), Nanos(100));
        a.observe(0, tid(3), Nanos(200));
        a.observe(1, tid(4), Nanos(50));
        assert_eq!(a.app_oldest(0), Some((tid(2), Nanos(100))));
        assert_eq!(a.app_oldest(1), Some((tid(4), Nanos(50))));
        a.begin_scan(2);
        assert_eq!(a.app_oldest(0), None);
    }

    #[test]
    fn recovery_resets_episode() {
        let mut a = RunqueueAqm::new(cfg());
        let high = Nanos::from_us(200);
        let mut now = Nanos::ZERO;
        for _ in 0..200 {
            a.on_sample(0, now, high, None);
            now += Nanos::from_us(10);
        }
        // Below target: controller leaves dropping; next excursion re-arms.
        assert!(!a.on_sample(0, now, Nanos::from_us(1), None));
        assert!(!a.on_sample(0, now + Nanos::from_us(10), high, None));
    }
}
