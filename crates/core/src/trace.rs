//! The `skyloft-trace` layer: structured scheduling events and a runtime
//! invariant checker.
//!
//! Every event the [`Machine`] processes is recorded into per-core ring
//! buffers ([`Tracer`]) together with the scheduling actions it caused
//! (task switches, preemptions, parks, core grants/revokes). Two consumers
//! sit on top:
//!
//! * **Chrome-trace export** ([`Tracer::to_chrome_json`],
//!   [`Machine::write_trace`]): the rings serialize to the Chrome trace
//!   event format, loadable in Perfetto (`ui.perfetto.dev`) or
//!   `chrome://tracing`. Run slices (`ph:"X"`) are reconstructed from
//!   [`TraceKind::Switch`]/stop pairs; everything else becomes an instant.
//! * **Invariant checking** ([`InvariantChecker`]): after *every* event, in
//!   debug/test builds, the machine state is validated against the
//!   framework's structural invariants (see [`violations_of`]). A violation
//!   panics by default, so property tests and the tier-1 suite catch
//!   scheduling bugs at the event where they happen, not at test end.
//!
//! The whole module is behind the `trace` cargo feature (on by default).
//! Compiling `skyloft-core` with `--no-default-features` removes the
//! tracer field and every emission site, leaving zero overhead on the
//! event hot path.

use std::fmt::Write as _;

use skyloft_sim::Nanos;

use crate::conf::PreemptMechanism;
use crate::machine::{CoreRole, Event, IpiPurpose, Machine};
use crate::ops::CoreId;
use crate::task::{AppId, TaskId, TaskState};

/// Default per-ring capacity (events); older events are dropped first.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// What happened, as recorded in a [`TraceEvent`].
///
/// The first group mirrors the raw [`Event`]s entering
/// [`Machine::handle`]; the second group records the scheduling actions
/// the machine took while handling them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// A periodic timer fired on a core ([`Event::TimerFire`]).
    TimerFire,
    /// A UINTR timer interrupt found an empty PIR and was lost (§3.2
    /// pitfall). Should never appear unless a fault was injected.
    TimerLost,
    /// A preemption notification arrived ([`Event::IpiArrive`]).
    IpiArrive {
        /// What the sender wanted.
        purpose: IpiPurpose,
    },
    /// A compute segment completed ([`Event::SegmentDone`]).
    SegmentDone,
    /// Dispatcher-side quantum check ([`Event::QuantumCheck`]).
    QuantumCheck,
    /// An idle core woke to look for work ([`Event::StartCore`]).
    StartCore,
    /// A dispatcher placement reached a worker ([`Event::PlaceTask`]).
    PlaceTask,
    /// A §5.2 core-allocator decision ran ([`Event::CoreAllocTick`]).
    CoreAllocTick,
    /// A task started running on a core (opens a run slice).
    Switch,
    /// The current task was preempted (closes the run slice).
    Preempt,
    /// The machine-managed BE task was parked off a revoked core.
    Park,
    /// The current task yielded voluntarily.
    Yield,
    /// The current task blocked.
    Block,
    /// The current task exited.
    Finish,
    /// The core allocator granted a core to the best-effort application.
    Grant,
    /// A revoke took effect: the core returned to the LC application.
    Revoke,
    /// A kernel thread page-faulted and blocked in the kernel (§6); the
    /// running task was frozen (closes the run slice).
    FaultBlock,
    /// A blocked kernel thread's fault resolved; it is parked again.
    FaultResolve,
    /// The watchdog re-armed a worker whose §3.2 timer PIR was lost.
    TimerRearm,
    /// The recovery layer resent a revoke IPI that never took effect.
    IpiRetry,
    /// The watchdog declared a worker stalled and drained its runqueue.
    WorkerStalled,
    /// A task migrated off a stalled worker onto a healthy one.
    TaskMigrated,
    /// The NIC data plane steered a datagram into an RX ring (§3.5).
    RxEnqueue,
    /// A full RX ring tail-dropped a datagram; the client will time out.
    RxDrop,
    /// The polling core drained a burst from an RX ring toward a worker.
    RxPoll,
    /// The CoDel drop law shed a datagram at the polling core (sojourn
    /// above target for a full interval; overload control).
    AqmDrop,
    /// Deadline-aware admission shed a request at poll time: its worker
    /// backlog times the service estimate already exceeded the remaining
    /// SLO budget.
    AdmissionShed,
    /// A client retry datagram reached the NIC (spent from the global
    /// retry budget).
    NetRetry,
    /// The runqueue AQM shed a queued request whose sojourn sat above the
    /// CoDel target for a full interval (the scheduler-side containment
    /// ring, DESIGN.md §16).
    RqShed,
    /// The brownout controller engaged: sustained overload signal, BE
    /// share is being shed.
    BrownoutShed,
    /// The brownout controller released: the overload signal drained and
    /// the BE application may be re-admitted.
    BrownoutClear,
}

impl TraceKind {
    /// Short stable name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::TimerFire => "TimerFire",
            TraceKind::TimerLost => "TimerLost",
            TraceKind::IpiArrive {
                purpose: IpiPurpose::Preempt,
            } => "IpiPreempt",
            TraceKind::IpiArrive {
                purpose: IpiPurpose::Revoke,
            } => "IpiRevoke",
            TraceKind::SegmentDone => "SegmentDone",
            TraceKind::QuantumCheck => "QuantumCheck",
            TraceKind::StartCore => "StartCore",
            TraceKind::PlaceTask => "PlaceTask",
            TraceKind::CoreAllocTick => "CoreAllocTick",
            TraceKind::Switch => "Switch",
            TraceKind::Preempt => "Preempt",
            TraceKind::Park => "Park",
            TraceKind::Yield => "Yield",
            TraceKind::Block => "Block",
            TraceKind::Finish => "Finish",
            TraceKind::Grant => "Grant",
            TraceKind::Revoke => "Revoke",
            TraceKind::FaultBlock => "FaultBlock",
            TraceKind::FaultResolve => "FaultResolve",
            TraceKind::TimerRearm => "TimerRearm",
            TraceKind::IpiRetry => "IpiRetry",
            TraceKind::WorkerStalled => "WorkerStalled",
            TraceKind::TaskMigrated => "TaskMigrated",
            TraceKind::RxEnqueue => "RxEnqueue",
            TraceKind::RxDrop => "RxDrop",
            TraceKind::RxPoll => "RxPoll",
            TraceKind::AqmDrop => "AqmDrop",
            TraceKind::AdmissionShed => "AdmissionShed",
            TraceKind::NetRetry => "NetRetry",
            TraceKind::RqShed => "RqShed",
            TraceKind::BrownoutShed => "BrownoutShed",
            TraceKind::BrownoutClear => "BrownoutClear",
        }
    }

    /// Whether this kind ends the run slice opened by a
    /// [`TraceKind::Switch`] on the same core.
    fn ends_slice(&self) -> bool {
        matches!(
            self,
            TraceKind::Preempt
                | TraceKind::Park
                | TraceKind::Yield
                | TraceKind::Block
                | TraceKind::Finish
                | TraceKind::FaultBlock
        )
    }
}

/// One recorded scheduling event.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub ts: Nanos,
    /// Core the event concerns; `None` for machine-wide events
    /// (core-allocator ticks).
    pub core: Option<CoreId>,
    /// Task the event concerns, when one is identifiable.
    pub task: Option<TaskId>,
    /// Owning application of `task`, resolved at record time (the task may
    /// be gone by export time).
    pub app: Option<AppId>,
    /// What happened.
    pub kind: TraceKind,
}

/// A bounded FIFO of trace events.
///
/// Stored as a flat circular buffer: once full, `push` overwrites in
/// place at a rotating write index. Recording an event at steady state is
/// one indexed store — this runs on every simulation event, so it must
/// not shift, reallocate, or branch on capacity growth.
#[derive(Debug, Default)]
struct Ring {
    buf: Vec<TraceEvent>,
    /// Oldest entry (and next overwrite target) once the buffer is full.
    head: usize,
}

impl Ring {
    fn with_capacity(cap: usize) -> Ring {
        Ring {
            buf: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// Appends `ev`, evicting the oldest entry when at `cap`. Returns
    /// whether an entry was evicted.
    #[inline]
    fn push(&mut self, ev: TraceEvent, cap: usize) -> bool {
        if self.buf.len() < cap {
            self.buf.push(ev);
            false
        } else {
            self.buf[self.head] = ev;
            self.head += 1;
            if self.head == cap {
                self.head = 0;
            }
            true
        }
    }

    /// Buffered events, oldest first.
    fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// The newest buffered event.
    fn last(&self) -> Option<&TraceEvent> {
        if self.buf.is_empty() {
            None
        } else if self.head == 0 {
            self.buf.last()
        } else {
            Some(&self.buf[self.head - 1])
        }
    }
}

/// Records machine state validated (or violated) after each event.
///
/// The checker is consulted by [`Machine::handle`] after every dispatched
/// event. It is `enabled` by default only in debug builds (tests), so
/// release benchmark runs record traces without paying for validation.
#[derive(Debug)]
pub struct InvariantChecker {
    /// Whether checks run at all.
    pub enabled: bool,
    /// Panic at the first violation (default). When `false`, violations
    /// accumulate in [`InvariantChecker::violations`] instead.
    pub panic_on_violation: bool,
    /// §3.2 arming invariant budget: how many lost timer interrupts are
    /// expected (from injected faults). With the default of zero, any
    /// `timer_lost` growth is a violation.
    pub allowed_timer_lost: u64,
    violations: Vec<String>,
    checks_run: u64,
}

impl Default for InvariantChecker {
    fn default() -> Self {
        InvariantChecker {
            enabled: cfg!(debug_assertions),
            panic_on_violation: true,
            allowed_timer_lost: 0,
            violations: Vec::new(),
            checks_run: 0,
        }
    }
}

impl InvariantChecker {
    /// Number of post-event validations performed.
    pub fn checks_run(&self) -> u64 {
        self.checks_run
    }

    /// Violations collected while `panic_on_violation` was off.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }
}

/// Per-core ring buffers of [`TraceEvent`]s plus the invariant checker.
#[derive(Debug)]
pub struct Tracer {
    /// One ring per core, plus a final ring for machine-wide events.
    rings: Vec<Ring>,
    capacity: usize,
    dropped: u64,
    /// Master runtime recording switch (see [`Tracer::set_active`]).
    active: bool,
    /// The runtime invariant checker driven by [`Machine::handle`].
    pub checker: InvariantChecker,
}

impl Tracer {
    /// Creates a tracer for a machine with `n_cores` cores, with the
    /// default per-ring capacity.
    pub fn new(n_cores: usize) -> Self {
        Tracer::with_capacity(n_cores, DEFAULT_RING_CAPACITY)
    }

    /// Creates a tracer with an explicit per-ring capacity.
    ///
    /// Rings are allocated to full capacity up front so steady-state
    /// recording never grows a buffer on the event hot path.
    pub fn with_capacity(n_cores: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Tracer {
            rings: (0..n_cores + 1)
                .map(|_| Ring::with_capacity(capacity))
                .collect(),
            capacity,
            dropped: 0,
            active: true,
            checker: InvariantChecker::default(),
        }
    }

    /// Whether recording is active (see [`Tracer::set_active`]).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Enables or disables recording at runtime.
    ///
    /// While inactive, the machine's emit paths take one predictable
    /// branch and construct no [`TraceEvent`] at all — benchmark drivers
    /// can turn the ring off without rebuilding the machine or compiling
    /// out the `trace` feature. Scheduling decisions are unaffected either
    /// way, and the invariant checker is controlled independently through
    /// [`InvariantChecker::enabled`].
    pub fn set_active(&mut self, on: bool) {
        self.active = on;
    }

    /// Appends an event to its core's ring (machine-wide events go to the
    /// last ring), evicting the oldest event when the ring is full.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        let last = self.rings.len() - 1;
        let idx = ev.core.map_or(last, |c| c.min(last));
        if self.rings[idx].push(ev, self.capacity) {
            self.dropped += 1;
        }
    }

    /// Total events currently buffered.
    pub fn len(&self) -> usize {
        self.rings.iter().map(|r| r.buf.len()).sum()
    }

    /// Whether nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because a ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// All buffered events, core by core, oldest first within a core.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.rings.iter().flat_map(|r| r.iter())
    }

    /// Serializes the buffered events to Chrome trace event format
    /// (the JSON object form: `{"traceEvents":[...]}`), loadable in
    /// Perfetto or `chrome://tracing`. `pid` is always 0; `tid` is the
    /// core id (the last tid is the machine-wide track). Timestamps are
    /// microseconds.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + 112 * self.len());
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for (tid, ring) in self.rings.iter().enumerate() {
            let mut open: Option<TraceEvent> = None;
            for ev in ring.iter() {
                if ev.kind == TraceKind::Switch {
                    // A Switch while a slice is open can only come from a
                    // ring that lost its closing event to eviction; start
                    // over from the newer slice.
                    open = Some(*ev);
                    continue;
                }
                if ev.kind.ends_slice() {
                    if let Some(start) = open.take() {
                        push_slice(&mut out, &mut first, tid, &start, ev.ts);
                    }
                }
                push_instant(&mut out, &mut first, tid, ev);
            }
            // Close a slice still running at the end of the recording.
            if let Some(start) = open {
                let end = ring.last().map_or(start.ts, |e| e.ts.max(start.ts));
                push_slice(&mut out, &mut first, tid, &start, end);
            }
        }
        out.push_str("]}");
        out
    }
}

/// Microseconds (Chrome trace unit) from virtual nanoseconds.
fn us(t: Nanos) -> f64 {
    t.0 as f64 / 1000.0
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

fn push_slice(out: &mut String, first: &mut bool, tid: usize, start: &TraceEvent, end: Nanos) {
    sep(out, first);
    let mut name = String::new();
    if let Some(app) = start.app {
        let _ = write!(name, "app{app}/");
    }
    match start.task {
        Some(t) => {
            let _ = write!(name, "{t:?}");
        }
        None => name.push_str("task"),
    }
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"cat\":\"run\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{tid}}}",
        us(start.ts),
        us(end.saturating_sub(start.ts)),
    );
}

fn push_instant(out: &mut String, first: &mut bool, tid: usize, ev: &TraceEvent) {
    sep(out, first);
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":0,\"tid\":{tid}",
        ev.kind.name(),
        us(ev.ts),
    );
    if ev.task.is_some() || ev.app.is_some() {
        out.push_str(",\"args\":{");
        let mut afirst = true;
        if let Some(t) = ev.task {
            let _ = write!(out, "\"task\":\"{t:?}\"");
            afirst = false;
        }
        if let Some(a) = ev.app {
            if !afirst {
                out.push(',');
            }
            let _ = write!(out, "\"app\":{a}");
        }
        out.push('}');
    }
    out.push('}');
}

/// Validates the machine's structural invariants and returns a description
/// of each violation (empty when the state is consistent).
///
/// The checks, in order:
///
/// 1. **Single Binding Rule (§3.3)** — at most one active kernel thread per
///    isolated core, with the kernel module's cache agreeing with its
///    thread table ([`skyloft_kmod::Kmod::check_binding_rule`]).
/// 2. **Segment token** — a core has a pending `SegmentDone` exactly when a
///    task is current, and its scheduled completion is not in the past.
/// 3. **Busy accounting** — a core's open busy interval exists exactly when
///    a task runs, is attributed to that task's application, and the total
///    busy time over all applications never exceeds elapsed wall time times
///    the worker count.
/// 4. **§3.2 arming** — under the `UserTimer` mechanism every worker's
///    receiver stays bound to its UPID with `SN` set and a non-empty PIR
///    (the handler re-armed before `uiret`), so `timer_lost` only grows
///    when faults were injected ([`InvariantChecker::allowed_timer_lost`]).
/// 5. **Exclusivity** — `incoming` (a kick/placement in flight) and
///    `current` are mutually exclusive, dispatcher cores never run tasks,
///    a current task is live and `Running`, and a revoke can only be in
///    flight toward a core that is still granted to the BE application.
/// 6. **Kernel-thread coherence** — each core's `cur_app` agrees with the
///    kernel module's active-thread table, through §6 fault substitutions
///    included (`cur_app == None` exactly when a fault vacated the core
///    with no substitute available).
/// 7. **Datagram conservation (§3.5)** — every datagram the NIC data plane
///    steered is accounted for exactly once: `net_generated ==
///    net_delivered + rx_ring_drops + net_in_flight` (extended by check 8's
///    overload buckets). A leak here means the RX rings, the polling core,
///    or the drop accounting lost or double-counted a packet.
/// 8. **Overload-control conservation** — the full ledger with the
///    overload buckets: `net_generated == net_delivered + rx_ring_drops +
///    aqm_drops + admission_sheds + net_in_flight + retries_spent`. A
///    retry datagram is *terminal*: it is counted into `net_generated`
///    and `retries_spent` at NIC arrival and enters no other bucket, so
///    AQM, admission, and the retry client cannot hide a lost or
///    double-counted packet behind each other.
/// 9. **Per-class conservation (DESIGN.md §16)** — the per-class ledger
///    arrays balance class by class (`generated[c] == delivered[c] +
///    rx_drops[c] + aqm_drops[c] + sheds[c] + in_flight[c] + retries[c]`)
///    and each array sums back to its global counter, so one class's
///    books cannot hide a leak inside another's.
pub fn violations_of(m: &Machine, now: Nanos) -> Vec<String> {
    let mut v = Vec::new();

    // 1. Single Binding Rule.
    if let Err(e) = m.kmod.check_binding_rule() {
        v.push(format!("single-binding-rule: {e:?}"));
    }

    // Per-core structural checks (2, 3 locals, 5).
    for (core, c) in m.cores.iter().enumerate() {
        if c.done_token.is_some() != c.current.is_some() {
            v.push(format!(
                "core {core}: pending SegmentDone token ({}) disagrees with current task ({:?})",
                c.done_token.is_some(),
                c.current
            ));
        }
        if c.done_token.is_some() && c.seg_end < now {
            v.push(format!(
                "core {core}: pending segment ends at {:?}, before now {now:?}",
                c.seg_end
            ));
        }
        match (c.busy_since, c.current) {
            (None, None) => {}
            (Some((since, app)), Some(t)) => {
                if since > now {
                    v.push(format!("core {core}: busy anchor {since:?} in the future"));
                }
                if m.tasks.contains(t) && m.tasks.get(t).app != app {
                    v.push(format!(
                        "core {core}: busy interval charged to app {app}, but runs a task of app {}",
                        m.tasks.get(t).app
                    ));
                }
            }
            (busy, cur) => {
                v.push(format!(
                    "core {core}: busy anchor {busy:?} disagrees with current task {cur:?}"
                ));
            }
        }
        if c.incoming && c.current.is_some() {
            v.push(format!(
                "core {core}: kick in flight while {:?} is current",
                c.current
            ));
        }
        if c.role == CoreRole::Dispatcher && c.current.is_some() {
            v.push(format!("core {core}: dispatcher core runs {:?}", c.current));
        }
        if let Some(t) = c.current {
            if !m.tasks.contains(t) {
                v.push(format!("core {core}: current task {t:?} is stale"));
            } else if m.tasks.get(t).state != TaskState::Running {
                v.push(format!(
                    "core {core}: current task {t:?} is {:?}, not Running",
                    m.tasks.get(t).state
                ));
            }
        }
        if c.revoking && !c.granted_to_be {
            v.push(format!(
                "core {core}: revoke in flight for a core not granted to the BE app"
            ));
        }
        // 6. Kernel-thread coherence: the core's notion of the active
        // application agrees with the kernel module — through fault
        // substitutions included.
        if !c.kthreads.is_empty() {
            let active = m.kmod.active_thread(core);
            let expected = c.cur_app.map(|a| c.kthreads[a]);
            if active != expected {
                v.push(format!(
                    "core {core}: active kernel thread {active:?} disagrees with \
                     cur_app {:?} (expected {expected:?})",
                    c.cur_app
                ));
            }
        }
    }

    // 3. Busy-time conservation across the whole machine.
    let elapsed = now.saturating_sub(m.stats.since).0 as u128;
    let capacity = elapsed * m.worker_cores.len() as u128;
    let busy: u128 = (0..m.apps.len()).map(|a| m.busy_ns(a, now) as u128).sum();
    if busy > capacity {
        v.push(format!(
            "busy-time conservation: {busy} busy ns across apps exceeds {capacity} \
             (elapsed x workers)"
        ));
    }

    // 4. §3.2 arming invariant (UserTimer receivers only).
    if let PreemptMechanism::UserTimer { .. } = m.plat.mech {
        for &core in &m.worker_cores {
            let Some(upid) = m.cores[core].upid else {
                v.push(format!("core {core}: UserTimer worker without a UPID"));
                continue;
            };
            if m.uintr.receiver_upid(core) != Some(upid) {
                v.push(format!(
                    "core {core}: receiver UPID {:?} no longer bound (expected {upid:?})",
                    m.uintr.receiver_upid(core)
                ));
            }
            let u = m.uintr.upid(upid);
            if !u.sn {
                v.push(format!("core {core}: timer UPID lost its SN bit"));
            }
            if u.pir == 0 && !m.core_arming_lost(core) && m.tracer.checker.allowed_timer_lost == 0 {
                v.push(format!(
                    "core {core}: timer PIR unarmed — the next timer interrupt will be lost"
                ));
            }
        }
        if m.stats.timer_lost > m.tracer.checker.allowed_timer_lost {
            v.push(format!(
                "timer_lost = {} exceeds the injected-fault budget of {}",
                m.stats.timer_lost, m.tracer.checker.allowed_timer_lost
            ));
        }
    }

    // 7 + 8. Datagram conservation through the NIC data plane, overload
    // buckets included (all zero when overload control is off, so this is
    // exactly check 7 on a stock machine).
    let accounted = m.stats.net_delivered
        + m.stats.rx_ring_drops
        + m.stats.aqm_drops
        + m.stats.admission_sheds
        + m.stats.net_in_flight
        + m.stats.retries_spent;
    if m.stats.net_generated != accounted {
        v.push(format!(
            "datagram conservation: generated {} != delivered {} + ring-dropped {} \
             + aqm-dropped {} + admission-shed {} + in-flight {} + retries-spent {}",
            m.stats.net_generated,
            m.stats.net_delivered,
            m.stats.rx_ring_drops,
            m.stats.aqm_drops,
            m.stats.admission_sheds,
            m.stats.net_in_flight,
            m.stats.retries_spent
        ));
    }

    // 9. Per-class conservation: each class balances on its own, and the
    // class arrays sum back to the globals. Every NIC-side increment site
    // charges a class slot (class 0 when the workload is single-class), so
    // this holds unconditionally — all-zero arrays on machines that never
    // saw a datagram included.
    let s = &m.stats;
    for c in 0..crate::stats::MAX_CLASSES {
        let accounted = s.delivered_by_class[c]
            + s.rx_drops_by_class[c]
            + s.aqm_drops_by_class[c]
            + s.sheds_by_class[c]
            + s.in_flight_by_class[c]
            + s.retries_by_class[c];
        if s.generated_by_class[c] != accounted {
            v.push(format!(
                "class {c} conservation: generated {} != delivered {} + ring-dropped {} \
                 + aqm-dropped {} + admission-shed {} + in-flight {} + retries-spent {}",
                s.generated_by_class[c],
                s.delivered_by_class[c],
                s.rx_drops_by_class[c],
                s.aqm_drops_by_class[c],
                s.sheds_by_class[c],
                s.in_flight_by_class[c],
                s.retries_by_class[c]
            ));
        }
    }
    let sums = [
        ("generated", s.net_generated, s.generated_by_class),
        ("delivered", s.net_delivered, s.delivered_by_class),
        ("ring-dropped", s.rx_ring_drops, s.rx_drops_by_class),
        ("aqm-dropped", s.aqm_drops, s.aqm_drops_by_class),
        ("admission-shed", s.admission_sheds, s.sheds_by_class),
        ("in-flight", s.net_in_flight, s.in_flight_by_class),
        ("retries-spent", s.retries_spent, s.retries_by_class),
        ("rq-shed", s.rq_sheds, s.rq_sheds_by_class),
    ];
    for (name, global, by_class) in sums {
        let sum: u64 = by_class.iter().sum();
        if sum != global {
            v.push(format!(
                "per-class ledger: {name} classes sum to {sum}, global is {global}"
            ));
        }
    }

    v
}

impl Machine {
    /// Records the raw event entering [`Machine::handle`].
    pub(crate) fn trace_raw(&mut self, ev: &Event, now: Nanos) {
        if !self.tracer.active {
            return;
        }
        let (core, task, kind) = match ev {
            Event::TimerFire { core } => (Some(*core), None, TraceKind::TimerFire),
            Event::IpiArrive {
                core,
                purpose,
                expect,
            } => (
                Some(*core),
                *expect,
                TraceKind::IpiArrive { purpose: *purpose },
            ),
            Event::SegmentDone { core } => (
                Some(*core),
                self.cores[*core].current,
                TraceKind::SegmentDone,
            ),
            Event::QuantumCheck { core, task } => {
                (Some(*core), Some(*task), TraceKind::QuantumCheck)
            }
            Event::StartCore { core } => (Some(*core), None, TraceKind::StartCore),
            Event::PlaceTask { core, task } => (Some(*core), Some(*task), TraceKind::PlaceTask),
            Event::CoreAllocTick => (None, None, TraceKind::CoreAllocTick),
            // The AQM tick traces through the RqShed events it causes.
            Event::RqAqmTick => return,
            // Chaos machinery traces through the specific fault/recovery
            // kinds it emits while handling the event.
            #[cfg(feature = "chaos")]
            Event::Chaos(_) => return,
            // Callback bodies trace through the machine calls they make.
            Event::Call(_) | Event::Recur(_) => return,
        };
        self.trace_emit(now, core, task, kind);
    }

    /// Records a scheduling action, resolving the task's application.
    pub(crate) fn trace_emit(
        &mut self,
        ts: Nanos,
        core: Option<CoreId>,
        task: Option<TaskId>,
        kind: TraceKind,
    ) {
        // The cached runtime flag is the whole fast path: when the ring is
        // off, every emit site is a single well-predicted branch with no
        // TraceEvent construction or app resolution behind it.
        if !self.tracer.active {
            return;
        }
        let app = task
            .filter(|&t| self.tasks.contains(t))
            .map(|t| self.tasks.get(t).app);
        self.tracer.record(TraceEvent {
            ts,
            core,
            task,
            app,
            kind,
        });
    }

    /// Validates all machine invariants; called after every dispatched
    /// event. Panics on the first violation unless
    /// [`InvariantChecker::panic_on_violation`] was cleared.
    pub(crate) fn check_invariants(&mut self, now: Nanos) {
        if !self.tracer.checker.enabled || !self.started {
            return;
        }
        self.tracer.checker.checks_run += 1;
        let vs = violations_of(self, now);
        if vs.is_empty() {
            return;
        }
        if self.tracer.checker.panic_on_violation {
            panic!(
                "scheduling invariant violated at {now:?}: {}",
                vs.join("; ")
            );
        }
        self.tracer.checker.violations.extend(vs);
    }

    /// Serializes the recorded trace to Chrome trace event format
    /// (see [`Tracer::to_chrome_json`]).
    pub fn trace_to_chrome_json(&self) -> String {
        self.tracer.to_chrome_json()
    }

    /// Writes the recorded trace as Chrome-trace JSON to `path`.
    pub fn write_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.trace_to_chrome_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, core: Option<CoreId>, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            ts: Nanos(ts),
            core,
            task: None,
            app: None,
            kind,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut tr = Tracer::with_capacity(1, 2);
        for ts in 0..5 {
            tr.record(ev(ts, Some(0), TraceKind::TimerFire));
        }
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.dropped(), 3);
        let first = tr.events().next().unwrap();
        assert_eq!(first.ts, Nanos(3));
    }

    #[test]
    fn global_events_use_their_own_ring() {
        let mut tr = Tracer::with_capacity(2, 8);
        tr.record(ev(1, None, TraceKind::CoreAllocTick));
        tr.record(ev(2, Some(1), TraceKind::TimerFire));
        assert_eq!(tr.len(), 2);
        let json = tr.to_chrome_json();
        // The machine-wide ring is the last tid (n_cores == 2).
        assert!(json.contains("\"name\":\"CoreAllocTick\""), "{json}");
        assert!(json.contains("\"tid\":2"), "{json}");
    }

    #[test]
    fn chrome_json_builds_slices_from_switch_stop_pairs() {
        let mut tr = Tracer::with_capacity(1, 16);
        tr.record(ev(1_000, Some(0), TraceKind::Switch));
        tr.record(ev(3_500, Some(0), TraceKind::Preempt));
        tr.record(ev(4_000, Some(0), TraceKind::Switch));
        let json = tr.to_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"traceEvents\":["), "{json}");
        // 1.0 us start, 2.5 us duration.
        assert!(
            json.contains("\"ph\":\"X\",\"ts\":1.000,\"dur\":2.500"),
            "{json}"
        );
        // The trailing open slice closes with zero duration.
        assert!(json.contains("\"ts\":4.000,\"dur\":0.000"), "{json}");
    }

    #[test]
    fn orphan_stop_is_just_an_instant() {
        let mut tr = Tracer::with_capacity(1, 4);
        tr.record(ev(500, Some(0), TraceKind::Finish));
        let json = tr.to_chrome_json();
        assert!(!json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"name\":\"Finish\""), "{json}");
    }
}
