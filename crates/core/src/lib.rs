//! # Skyloft: a general user-space scheduling framework
//!
//! Reproduction of the SOSP 2024 paper *"Skyloft: A General High-Efficient
//! Scheduling Framework in User Space"* (Jia, Tian, You, Chen, Chen).
//!
//! This crate is the framework itself: the user-thread model ([`task`]),
//! the Table 2 scheduling operations ([`ops::Policy`]), platform and
//! parameter configuration ([`conf`]), and the simulated machine that
//! executes policies over the mechanistic UINTR/APIC/kernel-module models
//! ([`machine`]). Concrete policies (RR, CFS, EEVDF, Shinjuku,
//! work-stealing, …) live in the `skyloft-policies` crate; comparator
//! system models live in `skyloft-baselines`.
//!
//! # Examples
//!
//! Run a FIFO workload on a 2-core Skyloft machine:
//!
//! ```
//! use skyloft::builtin::GlobalFifo;
//! use skyloft::machine::{AppKind, Machine, MachineConfig};
//! use skyloft::conf::Platform;
//! use skyloft_hw::Topology;
//! use skyloft_sim::{EventQueue, Nanos};
//!
//! let cfg = MachineConfig {
//!     plat: Platform::skyloft_percpu(Topology::single(2), 100_000),
//!     n_workers: 2,
//!     seed: 1,
//!     core_alloc: None,
//!     utimer_period: None,
//! };
//! let mut m = Machine::new(cfg, Box::new(GlobalFifo::new()));
//! m.add_app("demo", AppKind::Lc);
//! let mut q = EventQueue::new();
//! m.start(&mut q);
//! m.spawn_request(&mut q, 0, Nanos::from_us(10), 0, None);
//! m.run(&mut q, Nanos::from_ms(1));
//! assert_eq!(m.stats.completed, 1);
//! ```

#![warn(missing_docs)]

pub mod aqm;
pub mod builtin;
#[cfg(feature = "chaos")]
pub mod chaos;
pub mod conf;
pub mod machine;
pub mod ops;
pub mod stats;
pub mod task;
#[cfg(feature = "trace")]
pub mod trace;

pub use aqm::RunqueueAqm;
#[cfg(feature = "chaos")]
pub use chaos::FaultPlan;
pub use conf::{
    BrownoutConfig, CoreAllocConfig, Platform, PreemptMechanism, RecoveryConfig, RunqueueAqmConfig,
    SchedParams, SloClass,
};
pub use machine::{
    AppKind, Call, Event, IpiPurpose, Machine, MachineConfig, NetTrace, Recur, SpawnOpts,
};
pub use ops::{CoreId, EnqueueFlags, Policy, PolicyKind, SchedEnv};
pub use stats::Stats;
pub use task::{AppId, Behavior, OneShot, RequestMeta, Step, Task, TaskId, TaskState, TaskTable};
