//! Minimal built-in policies.
//!
//! These two policies exercise both scheduling models with the least
//! possible policy logic; they are used by the framework's own tests, the
//! quickstart example, and as building blocks for baselines (a centralized
//! FCFS queue is Shinjuku minus preemption). The paper's evaluated policies
//! live in `skyloft-policies`.

use std::collections::VecDeque;

use skyloft_sim::Nanos;

use crate::ops::{CoreId, EnqueueFlags, Policy, PolicyKind, SchedEnv};
use crate::task::{TaskId, TaskTable};

/// A single global FIFO runqueue shared by all cores, run-to-completion
/// (no preemption): the classic dataplane-OS policy (IX/ZygOS row of
/// Table 1).
#[derive(Default)]
pub struct GlobalFifo {
    queue: VecDeque<TaskId>,
}

impl GlobalFifo {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queued task count.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

impl Policy for GlobalFifo {
    fn name(&self) -> &'static str {
        "global-fifo"
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::PerCpu
    }

    fn sched_init(&mut self, _env: &SchedEnv) {}

    fn task_init(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_terminate(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_enqueue(
        &mut self,
        _tasks: &mut TaskTable,
        t: TaskId,
        _cpu: Option<CoreId>,
        _flags: EnqueueFlags,
        _now: Nanos,
    ) {
        self.queue.push_back(t);
    }

    fn task_dequeue(
        &mut self,
        _tasks: &mut TaskTable,
        _cpu: CoreId,
        _now: Nanos,
    ) -> Option<TaskId> {
        self.queue.pop_front()
    }

    fn queue_delay(&self, tasks: &TaskTable, now: Nanos) -> Option<Nanos> {
        // Contract (`Policy::queue_delay`): oldest `runnable_since` sojourn.
        self.queue
            .iter()
            .map(|&t| tasks.get(t).runnable_since)
            .min()
            .map(|since| now.saturating_sub(since))
    }

    fn queue_len(&self) -> Option<usize> {
        Some(self.queue.len())
    }
}

/// Centralized FCFS with an optional preemption quantum: with a quantum
/// this is the skeleton of the Shinjuku policy (§5.2); without one it is a
/// plain dispatcher-based FCFS.
pub struct CentralizedFcfs {
    queue: VecDeque<TaskId>,
    quantum: Option<Nanos>,
}

impl CentralizedFcfs {
    /// Creates the policy; `quantum` enables dispatcher preemption.
    pub fn new(quantum: Option<Nanos>) -> Self {
        CentralizedFcfs {
            queue: VecDeque::new(),
            quantum,
        }
    }
}

impl Policy for CentralizedFcfs {
    fn name(&self) -> &'static str {
        "centralized-fcfs"
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Centralized
    }

    fn sched_init(&mut self, _env: &SchedEnv) {}

    fn task_init(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_terminate(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_enqueue(
        &mut self,
        _tasks: &mut TaskTable,
        t: TaskId,
        _cpu: Option<CoreId>,
        _flags: EnqueueFlags,
        _now: Nanos,
    ) {
        self.queue.push_back(t);
    }

    fn task_dequeue(
        &mut self,
        _tasks: &mut TaskTable,
        _cpu: CoreId,
        _now: Nanos,
    ) -> Option<TaskId> {
        self.queue.pop_front()
    }

    fn sched_poll(
        &mut self,
        _tasks: &mut TaskTable,
        idle_workers: &[CoreId],
        _now: Nanos,
        out: &mut Vec<(CoreId, TaskId)>,
    ) {
        for &core in idle_workers {
            match self.queue.pop_front() {
                Some(t) => out.push((core, t)),
                None => break,
            }
        }
    }

    fn sched_timer_tick(
        &mut self,
        _tasks: &mut TaskTable,
        _cpu: CoreId,
        _current: TaskId,
        ran: Nanos,
        _now: Nanos,
    ) -> bool {
        // Preempt once over quantum, but only if someone is waiting:
        // preempting onto an empty queue only pays switch costs.
        match self.quantum {
            Some(q) => ran >= q && !self.queue.is_empty(),
            None => false,
        }
    }

    fn quantum(&self) -> Option<Nanos> {
        self.quantum
    }

    fn queue_delay(&self, tasks: &TaskTable, now: Nanos) -> Option<Nanos> {
        // Contract (`Policy::queue_delay`): oldest `runnable_since` sojourn.
        self.queue
            .iter()
            .map(|&t| tasks.get(t).runnable_since)
            .min()
            .map(|since| now.saturating_sub(since))
    }

    fn queue_len(&self) -> Option<usize> {
        Some(self.queue.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_orders() {
        let mut p = GlobalFifo::new();
        let mut tasks = TaskTable::new();
        let ids: Vec<TaskId> = (0..3)
            .map(|_| tasks.insert(|id| crate::task::Task::bare(id, 0)))
            .collect();
        for &t in &ids {
            p.task_enqueue(&mut tasks, t, None, EnqueueFlags::New, Nanos::ZERO);
        }
        assert_eq!(p.queue_len(), Some(3));
        for &t in &ids {
            assert_eq!(p.task_dequeue(&mut tasks, 0, Nanos::ZERO), Some(t));
        }
        assert!(p.is_empty());
    }

    #[test]
    fn fcfs_tick_needs_waiting_tasks() {
        let mut p = CentralizedFcfs::new(Some(Nanos::from_us(30)));
        let mut tasks = TaskTable::new();
        let t = tasks.insert(|id| crate::task::Task::bare(id, 0));
        // Over quantum but empty queue: no preemption.
        assert!(!p.sched_timer_tick(&mut tasks, 0, t, Nanos::from_us(40), Nanos::from_us(40)));
        let w = tasks.insert(|id| crate::task::Task::bare(id, 0));
        p.task_enqueue(&mut tasks, w, None, EnqueueFlags::New, Nanos::from_us(41));
        assert!(p.sched_timer_tick(&mut tasks, 0, t, Nanos::from_us(41), Nanos::from_us(41)));
        // Under quantum: no preemption.
        assert!(!p.sched_timer_tick(&mut tasks, 0, t, Nanos::from_us(10), Nanos::from_us(41)));
    }

    #[test]
    fn fcfs_queue_delay_tracks_head() {
        let mut p = CentralizedFcfs::new(None);
        let mut tasks = TaskTable::new();
        assert_eq!(p.queue_delay(&tasks, Nanos(100)), None);
        let t = tasks.insert(|id| crate::task::Task::bare(id, 0));
        tasks.get_mut(t).runnable_since = Nanos(100);
        p.task_enqueue(&mut tasks, t, None, EnqueueFlags::New, Nanos(100));
        assert_eq!(p.queue_delay(&tasks, Nanos(250)), Some(Nanos(150)));
    }

    #[test]
    fn fcfs_poll_places_in_order() {
        let mut p = CentralizedFcfs::new(None);
        let mut tasks = TaskTable::new();
        let mk = |tasks: &mut TaskTable| tasks.insert(|id| crate::task::Task::bare(id, 0));
        let a = mk(&mut tasks);
        let b = mk(&mut tasks);
        p.task_enqueue(&mut tasks, a, None, EnqueueFlags::New, Nanos::ZERO);
        p.task_enqueue(&mut tasks, b, None, EnqueueFlags::New, Nanos::ZERO);
        let mut placed = Vec::new();
        p.sched_poll(&mut tasks, &[3, 7, 9], Nanos(1), &mut placed);
        assert_eq!(placed, vec![(3, a), (7, b)]);
        assert_eq!(p.queue_len(), Some(0));
    }
}
