//! The simulated machine: per-core main loops, preemption plumbing, and
//! multi-application switching.
//!
//! This module is the framework half of Skyloft (§3.1's Library OS): it owns
//! the cores, drives the [`Policy`] through the Table 2 operations, delivers
//! preemption through the mechanistic UINTR/APIC models, and enforces the
//! Single Binding Rule through the kernel-module model on every
//! inter-application switch.
//!
//! Execution model: the machine is the event handler of a
//! `skyloft_sim::EventQueue<Event>`. Tasks execute as *segments* of compute
//! time; a segment is preemptible at any nanosecond because preemption
//! events (timer ticks, user IPIs) simply cancel the segment-completion
//! event and recompute the remaining work. Scheduling-path overheads
//! (context switches, interrupt handlers, wakeup costs) are charged by
//! delaying the next segment's start, exactly as they would steal time on
//! real hardware.

use skyloft_hw::apic::TIMER_VECTOR;
use skyloft_hw::costs::{self, CostModel};
use skyloft_hw::uintr::{Recognition, UittEntry};
use skyloft_hw::{Apic, CoreId, UintrFabric, UpidId};
#[cfg(feature = "chaos")]
use skyloft_kmod::FaultMonitor;
use skyloft_kmod::{Kmod, Tid};
use skyloft_sim::{EventQueue, Nanos, Rng, Token};

use crate::aqm::RunqueueAqm;
#[cfg(feature = "chaos")]
use crate::chaos::{ChaosEngine, ChaosEvent};
#[cfg(feature = "chaos")]
use crate::conf::RecoveryConfig;
use crate::conf::{CoreAllocConfig, Platform, PreemptMechanism, RunqueueAqmConfig, SloClass};
use crate::ops::{EnqueueFlags, Policy, PolicyKind, SchedEnv};
use crate::stats::Stats;
use crate::task::{AppId, Behavior, RequestMeta, Step, Task, TaskId, TaskState, TaskTable};
#[cfg(feature = "trace")]
use crate::trace::TraceKind;

/// ESTIMATE — cost of a Linux kernel timer interrupt + scheduler tick path
/// (IRQ entry/exit, `update_curr`, possible resched). Not measured by the
/// paper; consistent with the kernel-IPI receive cost of Table 6.
pub const KERNEL_TICK_COST: Nanos = Nanos(791); // KERNEL_IPI.receive cycles @ 2 GHz

/// User vector used for preemption IPIs.
const PREEMPT_VECTOR: u8 = 1;

/// Signature of a [`Call`] event body.
pub type CallFn = Box<dyn FnOnce(&mut Machine, &mut EventQueue<Event>)>;

/// A boxed callback event: how workloads (load generators, measurement
/// phases) hook into the machine without the machine knowing about them.
pub struct Call(pub CallFn);

impl std::fmt::Debug for Call {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Call(..)")
    }
}

/// A reusable callback: invoked when its event fires; returning
/// `Some(at)` re-schedules the *same* box at `at`.
pub type RecurFn = Box<dyn FnMut(&mut Machine, &mut EventQueue<Event>) -> Option<Nanos>>;

/// A self-rescheduling callback event. Unlike [`Call`], the closure box is
/// carried from firing to firing, so periodic or chained hooks (open-loop
/// arrival generators, measurement phases) cost one allocation for the
/// whole chain instead of one per link.
pub struct Recur(pub RecurFn);

impl std::fmt::Debug for Recur {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Recur(..)")
    }
}

/// Why a preemption IPI was sent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IpiPurpose {
    /// Preempt the current task and reschedule (dispatcher quantum, wakeup
    /// preemption).
    Preempt,
    /// Reclaim a core granted to the best-effort application (§5.2).
    Revoke,
}

/// Simulation events.
#[derive(Debug)]
pub enum Event {
    /// Periodic LAPIC timer (or kernel tick) fired on a core.
    TimerFire {
        /// Receiving core.
        core: CoreId,
    },
    /// A preemption notification arrived at a core.
    IpiArrive {
        /// Receiving core.
        core: CoreId,
        /// What the sender wants.
        purpose: IpiPurpose,
        /// Preempt only if this task is still current (None = always).
        expect: Option<TaskId>,
    },
    /// The current compute segment of a core finished.
    SegmentDone {
        /// The core.
        core: CoreId,
    },
    /// Dispatcher-side quantum check for a centralized policy.
    QuantumCheck {
        /// Worker core being checked.
        core: CoreId,
        /// Task that was running when the check was armed.
        task: TaskId,
    },
    /// An idle core looks for work (delayed by the platform wake latency).
    StartCore {
        /// The core.
        core: CoreId,
    },
    /// The dispatcher's placement reaches a worker (centralized policies).
    PlaceTask {
        /// Target worker.
        core: CoreId,
        /// Task to run.
        task: TaskId,
    },
    /// Periodic core-allocator decision (§5.2 multi-application runs).
    CoreAllocTick,
    /// Periodic runqueue-AQM sojourn poll ([`Machine::set_runqueue_aqm`]).
    RqAqmTick,
    /// Fault-injection or recovery machinery (see [`crate::chaos`]).
    #[cfg(feature = "chaos")]
    Chaos(ChaosEvent),
    /// External callback.
    Call(Call),
    /// Self-rescheduling external callback (see [`Recur`]).
    Recur(Recur),
}

/// Role of a core.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CoreRole {
    /// Runs application tasks.
    Worker,
    /// Dedicated dispatcher (centralized policies) or emulated-timer core;
    /// never runs tasks.
    Dispatcher,
}

/// Application priority class.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AppKind {
    /// Latency-critical.
    Lc,
    /// Best-effort (batch).
    Be,
}

/// One registered application.
#[derive(Debug)]
pub struct AppDesc {
    /// Display name.
    pub name: String,
    /// Priority class.
    pub kind: AppKind,
    /// Live task count.
    pub live_tasks: usize,
    /// SLO class registered via [`Machine::set_slo_class`]; `None` means
    /// the app predates per-class overload control (never shed by the
    /// runqueue AQM, judged against global thresholds only).
    pub slo: Option<SloClass>,
}

/// Per-core scheduler state.
pub struct CoreState {
    /// Role of this core.
    pub role: CoreRole,
    /// Currently running task.
    pub current: Option<TaskId>,
    /// Application whose kernel thread is active on this core.
    pub cur_app: Option<AppId>,
    /// Scheduled completion time of the current segment.
    pub seg_end: Nanos,
    /// When the current task started running on this core.
    pub run_start: Nanos,
    /// Cancellation token of the pending `SegmentDone`.
    pub done_token: Option<Token>,
    /// Kernel threads bound to this core, indexed by `AppId`.
    pub kthreads: Vec<Tid>,
    /// Whether the core-allocator granted this core to the BE application.
    pub granted_to_be: bool,
    /// A revoke IPI is in flight.
    pub revoking: bool,
    /// A `StartCore`/`PlaceTask` is in flight; don't double-kick.
    pub incoming: bool,
    /// Busy-accounting anchor: since when, and for which app.
    pub busy_since: Option<(Nanos, AppId)>,
    /// Machine-managed best-effort spin task pinned to this core
    /// (centralized multi-application runs).
    pub be_task: Option<TaskId>,
    /// Consecutive core-allocator observations of this core being idle.
    pub idle_checks: u32,
    /// Receiver UPID for user interrupts on this core.
    pub upid: Option<UpidId>,
    /// UITT entry used for the SN-self-post arming trick (§3.2).
    pub arm_entry: Option<UittEntry>,
    /// An injected fault dropped this core's §3.2 re-arm; its PIR is
    /// legitimately empty until the watchdog re-arms it.
    #[cfg(feature = "chaos")]
    pub arming_lost: bool,
    /// Injected stall: the core processes no interrupts and makes no
    /// progress until this instant.
    #[cfg(feature = "chaos")]
    pub stalled_until: Nanos,
    /// Last progress heartbeat (tick processed, task switched in, segment
    /// completed) — the watchdog's stall-detection signal.
    #[cfg(feature = "chaos")]
    pub last_progress: Nanos,
    /// Generation counter of §5.2 revoke cycles; retries from a stale
    /// cycle are ignored.
    #[cfg(feature = "chaos")]
    pub revoke_epoch: u32,
}

impl CoreState {
    fn new(role: CoreRole) -> Self {
        CoreState {
            role,
            current: None,
            cur_app: None,
            seg_end: Nanos::ZERO,
            run_start: Nanos::ZERO,
            done_token: None,
            kthreads: Vec::new(),
            granted_to_be: false,
            revoking: false,
            incoming: false,
            busy_since: None,
            be_task: None,
            idle_checks: 0,
            upid: None,
            arm_entry: None,
            #[cfg(feature = "chaos")]
            arming_lost: false,
            #[cfg(feature = "chaos")]
            stalled_until: Nanos::ZERO,
            #[cfg(feature = "chaos")]
            last_progress: Nanos::ZERO,
            #[cfg(feature = "chaos")]
            revoke_epoch: 0,
        }
    }

    /// Whether the core is idle and not already being kicked.
    pub fn is_idle(&self) -> bool {
        self.current.is_none() && !self.incoming
    }
}

/// One per-app brownout controller: the same EWMA + hysteresis law as the
/// global controller ([`Machine::note_overload_sample`]), but fed from the
/// app's own runqueue sojourn so each SLO class engages and releases on
/// its own thresholds instead of one machine-wide band.
#[derive(Debug)]
struct AppBrownout {
    cfg: crate::conf::BrownoutConfig,
    ewma: Nanos,
    engaged: bool,
    last_transition: Nanos,
    transitions: u64,
}

/// Machine construction parameters.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Platform (mechanisms + costs).
    pub plat: Platform,
    /// Number of worker cores (the dispatcher, if any, is an extra core).
    pub n_workers: usize,
    /// RNG seed for everything in this machine.
    pub seed: u64,
    /// Enable the §5.2 core allocator (centralized multi-app runs).
    pub core_alloc: Option<CoreAllocConfig>,
    /// Emulate per-CPU timers with a dedicated core sending user IPIs every
    /// given period (§5.3's "utimer"); requires `UserIpi` mechanism with a
    /// per-CPU policy.
    pub utimer_period: Option<Nanos>,
}

/// Options for [`Machine::spawn`].
pub struct SpawnOpts {
    /// Owning application.
    pub app: AppId,
    /// Preferred/pinned core.
    pub pin: Option<CoreId>,
    /// Request accounting (RPC-style tasks).
    pub req: Option<RequestMeta>,
    /// Scheduling weight (1024 = nice 0).
    pub weight: u32,
    /// Whether wakeup latencies of this task are recorded.
    pub record_wakeup: bool,
}

impl SpawnOpts {
    /// Default options for an application.
    pub fn app(app: AppId) -> Self {
        SpawnOpts {
            app,
            pin: None,
            req: None,
            weight: 1024,
            record_wakeup: true,
        }
    }
}

/// A NIC data-plane event for [`Machine::note_net`]: the stable public
/// subset of trace kinds a network driver outside this crate may emit.
/// Exists so drivers work against machines built without the `trace`
/// feature (where `TraceKind` itself is compiled out).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetTrace {
    /// A datagram was steered into an RX ring.
    RxEnqueue,
    /// A full RX ring tail-dropped a datagram.
    RxDrop,
    /// The polling core drained a burst from an RX ring.
    RxPoll,
    /// The CoDel drop law shed a datagram at the polling core.
    AqmDrop,
    /// Deadline-aware admission shed a request at poll time.
    AdmissionShed,
    /// A client retry datagram reached the NIC.
    NetRetry,
}

/// A best-effort spin task: computes forever in fixed chunks.
pub struct Spin {
    chunk: Nanos,
}

impl Spin {
    /// Creates a spinner with the given chunk size.
    pub fn new(chunk: Nanos) -> Self {
        Spin { chunk }
    }
}

impl Behavior for Spin {
    fn step(&mut self, _now: Nanos, _id: TaskId) -> Step {
        Step::Compute(self.chunk)
    }
}

/// The simulated machine.
pub struct Machine {
    /// Platform description.
    pub plat: Platform,
    /// The scheduling policy under test.
    pub policy: Box<dyn Policy>,
    /// Shared task table.
    pub tasks: TaskTable,
    /// Per-core state.
    pub cores: Vec<CoreState>,
    /// Indices of worker cores.
    pub worker_cores: Vec<CoreId>,
    /// The dispatcher core, if the platform dedicates one.
    pub dispatcher: Option<CoreId>,
    /// Registered applications.
    pub apps: Vec<AppDesc>,
    /// UINTR architectural state.
    pub uintr: UintrFabric,
    /// Local APICs.
    pub apic: Apic,
    /// Kernel-module model.
    pub kmod: Kmod,
    /// NUMA-aware cost model.
    pub costs: CostModel,
    /// Machine RNG (forked for workloads).
    pub rng: Rng,
    /// Measurements.
    pub stats: Stats,
    /// Core-allocator configuration, when enabled.
    pub core_alloc: Option<CoreAllocConfig>,
    /// The registered best-effort application.
    pub be_app: Option<AppId>,
    /// Brownout controller configuration ([`Machine::set_brownout`]);
    /// `None` leaves the §5.2 allocator's behaviour untouched.
    brownout: Option<crate::conf::BrownoutConfig>,
    /// EWMA of the polling core's overload signal (ring sojourn plus
    /// backpressure penalty), in nanoseconds.
    brownout_ewma: Nanos,
    /// Whether the brownout is currently engaged (BE share being shed).
    browned_out: bool,
    /// Instant of the last brownout state transition (hysteresis dwell).
    brownout_last_transition: Nanos,
    /// Engage/release transitions performed, total.
    brownout_transitions: u64,
    /// Per-app brownout controllers ([`Machine::set_app_brownout`]),
    /// indexed by `AppId`; an engaged entry makes the machine behave as
    /// browned-out exactly like the global controller.
    app_brownout: Vec<Option<AppBrownout>>,
    /// Runqueue AQM ([`Machine::set_runqueue_aqm`]): CoDel on scheduler
    /// queue sojourn, the second containment ring behind the RX-ring AQM.
    rq_aqm: Option<RunqueueAqm>,
    /// Recovery knobs for injected faults (see [`crate::chaos`]); the
    /// machinery only activates while a fault plan is installed.
    #[cfg(feature = "chaos")]
    pub recovery: RecoveryConfig,
    /// Installed fault-injection engine ([`Machine::install_fault_plan`]).
    #[cfg(feature = "chaos")]
    pub chaos: Option<ChaosEngine>,
    /// §6 userfaultfd-style blocking-event monitor.
    #[cfg(feature = "chaos")]
    pub fault_monitor: FaultMonitor,
    /// utimer emulation period.
    pub(crate) utimer_period: Option<Nanos>,
    /// Round-robin cursor for queue placement.
    rr_cursor: usize,
    /// Bitmask of dispatchable worker cores (idle, not granted to the BE
    /// app), one bit per core in u64 words — the same layout
    /// `uthread::park` uses. Maintained by [`Machine::refresh_idle`] at
    /// every grant/revoke/run/stop transition so [`Machine::dispatch`]
    /// iterates set bits instead of re-filtering `worker_cores`.
    idle_mask: Vec<u64>,
    /// Scratch buffer of idle workers, reused across [`Machine::dispatch`]
    /// calls so the hot path does not allocate.
    idle_scratch: Vec<CoreId>,
    /// Scratch buffer for `sched_poll` placements (same reuse).
    poll_scratch: Vec<(CoreId, TaskId)>,
    /// Free list of recycled [`OneShot`] request bodies (see
    /// [`Machine::pooled_oneshot`]); bounded so a burst cannot pin memory.
    /// The boxes themselves are the pooled resource — each is handed back
    /// out as a `Box<dyn Behavior>` without reallocating.
    #[allow(clippy::vec_box)]
    oneshot_pool: Vec<Box<crate::task::OneShot>>,
    /// The dispatcher/agent core is a serialized resource: it is busy with
    /// earlier placements until this time (ghOSt's transaction commits make
    /// this the throughput bottleneck, §5.2).
    dispatcher_free_at: Nanos,
    /// Re-entrancy guard for [`Machine::dispatch`]: a trigger landing while
    /// a pass is committing placements folds into that pass instead of
    /// re-entering (and double-charging `dispatcher_free_at`).
    in_dispatch: bool,
    /// Set by a dispatch trigger that arrived mid-pass; the pass loop
    /// re-polls before returning.
    dispatch_dirty: bool,
    /// Monotone change counter for the centralized dispatch inputs: bumped
    /// by every policy enqueue and every idle-set 0→1 transition. Together
    /// with `last_poll` it coalesces same-timestamp dispatch triggers —
    /// see [`Machine::dispatch`].
    pub(crate) dispatch_gen: u64,
    /// `(timestamp, dispatch_gen)` at the last completed dispatch pass. A
    /// re-trigger with both unchanged is provably fruitless and skipped.
    last_poll: (Nanos, u64),
    pub(crate) started: bool,
    /// Scheduling trace rings + runtime invariant checker (see
    /// [`crate::trace`]); fed by [`Machine::handle`] on every event.
    #[cfg(feature = "trace")]
    pub tracer: crate::trace::Tracer,
}

impl Machine {
    /// Builds a machine. Call [`Machine::add_app`] for each application and
    /// then [`Machine::start`] before running events.
    pub fn new(cfg: MachineConfig, policy: Box<dyn Policy>) -> Machine {
        let n_workers = cfg.n_workers;
        assert!(n_workers > 0, "machine needs at least one worker core");
        let needs_extra = cfg.plat.dedicated_dispatcher || cfg.utimer_period.is_some();
        let total = n_workers + usize::from(needs_extra);
        assert!(
            cfg.plat.topo.n_cores() >= total,
            "topology too small: {} cores for {} needed",
            cfg.plat.topo.n_cores(),
            total
        );
        let mut cores: Vec<CoreState> = (0..n_workers)
            .map(|_| CoreState::new(CoreRole::Worker))
            .collect();
        let dispatcher = if needs_extra {
            cores.push(CoreState::new(CoreRole::Dispatcher));
            Some(n_workers)
        } else {
            None
        };
        let worker_cores: Vec<CoreId> = (0..n_workers).collect();
        // Every worker starts idle and ungranted: its mask bit is set.
        let mut idle_mask = vec![0u64; total.div_ceil(64)];
        for &c in &worker_cores {
            idle_mask[c / 64] |= 1 << (c % 64);
        }
        let kmod = Kmod::new(cfg.plat.topo.n_cores(), &(0..total).collect::<Vec<_>>());
        let mut stats = Stats::new();
        stats.finished_by_core = vec![0; total];
        Machine {
            uintr: UintrFabric::new(cfg.plat.topo.n_cores()),
            apic: Apic::new(cfg.plat.topo.n_cores()),
            kmod,
            costs: CostModel::new(cfg.plat.topo),
            rng: Rng::seed_from_u64(cfg.seed),
            policy,
            tasks: TaskTable::new(),
            cores,
            worker_cores,
            dispatcher,
            apps: Vec::new(),
            stats,
            core_alloc: cfg.core_alloc,
            be_app: None,
            brownout: None,
            brownout_ewma: Nanos::ZERO,
            browned_out: false,
            brownout_last_transition: Nanos::ZERO,
            brownout_transitions: 0,
            app_brownout: Vec::new(),
            rq_aqm: None,
            #[cfg(feature = "chaos")]
            recovery: RecoveryConfig::default(),
            #[cfg(feature = "chaos")]
            chaos: None,
            #[cfg(feature = "chaos")]
            fault_monitor: FaultMonitor::new(),
            utimer_period: cfg.utimer_period,
            rr_cursor: 0,
            idle_mask,
            idle_scratch: Vec::new(),
            poll_scratch: Vec::new(),
            oneshot_pool: Vec::new(),
            dispatcher_free_at: Nanos::ZERO,
            in_dispatch: false,
            dispatch_dirty: false,
            dispatch_gen: 0,
            // Sentinel generation: the first dispatch must never be skipped.
            last_poll: (Nanos::ZERO, u64::MAX),
            plat: cfg.plat,
            started: false,
            #[cfg(feature = "trace")]
            tracer: crate::trace::Tracer::new(total),
        }
    }

    /// Registers an application. The first application binds an active
    /// kernel thread per worker core; later ones park theirs (§3.3, §4.1).
    ///
    /// For a [`AppKind::Be`] application under a centralized policy, a
    /// machine-managed spin task is attached to every worker core; the core
    /// allocator grants and revokes cores for it.
    pub fn add_app(&mut self, name: &str, kind: AppKind) -> AppId {
        assert!(!self.started, "add apps before start");
        let app = self.apps.len();
        self.apps.push(AppDesc {
            name: name.to_string(),
            kind,
            live_tasks: 0,
            slo: None,
        });
        self.stats.busy_by_app.push(0);
        for &core in &self.worker_cores.clone() {
            let tid = self.kmod.create_kthread(app);
            if app == 0 {
                self.kmod
                    .bind_active(tid, core)
                    .expect("first app binds active");
                self.cores[core].cur_app = Some(0);
            } else {
                self.kmod.park_on_cpu(tid, core).expect("park new app");
            }
            self.cores[core].kthreads.push(tid);
        }
        if kind == AppKind::Be && self.policy.kind() == PolicyKind::Centralized {
            assert!(self.be_app.is_none(), "one BE app supported");
            self.be_app = Some(app);
            for &core in &self.worker_cores.clone() {
                let id = self.insert_task(
                    app,
                    Box::new(Spin::new(Nanos::from_us(50))),
                    None,
                    1024,
                    false,
                    Some(core),
                );
                self.cores[core].be_task = Some(id);
            }
        }
        app
    }

    /// Finalizes configuration: initializes the policy, arms user-space
    /// timers (the §3.2 delegation sequence), and schedules the periodic
    /// machinery. Must be called exactly once, before the first event runs.
    pub fn start(&mut self, q: &mut EventQueue<Event>) {
        assert!(!self.started, "start called twice");
        assert!(!self.apps.is_empty(), "add at least one application");
        self.started = true;
        let env = SchedEnv {
            worker_cores: self.worker_cores.clone(),
            dispatcher: self.dispatcher,
        };
        self.policy.sched_init(&env);

        match self.plat.mech {
            PreemptMechanism::UserTimer { hz } => {
                for &core in &self.worker_cores.clone() {
                    // §3.2 configuration: (1) UPID with SN set, UINV = timer
                    // vector; (2) self-SENDUIPI to populate the PIR.
                    let upid = self.uintr.alloc_upid(TIMER_VECTOR, core);
                    self.uintr.bind_receiver(core, upid, TIMER_VECTOR);
                    self.uintr.set_sn(upid, true);
                    self.uintr.set_user_mode(core, true);
                    let arm = UittEntry { upid, user_vec: 0 };
                    self.uintr.senduipi(arm);
                    self.cores[core].upid = Some(upid);
                    self.cores[core].arm_entry = Some(arm);
                    // Kernel-module timer configuration (Table 3).
                    self.kmod
                        .timer_set_hz(&mut self.apic, core, hz)
                        .expect("timer hz");
                    self.kmod
                        .timer_enable(&mut self.apic, core)
                        .expect("timer enable");
                    let period = self.apic.timer(core).period();
                    // Stagger first expiries to avoid artificial lockstep.
                    let first = period + Nanos(core as u64 * 101 % period.0.max(1));
                    q.schedule(first, Event::TimerFire { core });
                }
            }
            PreemptMechanism::KernelTick { hz } => {
                for &core in &self.worker_cores.clone() {
                    self.apic.set_hz(core, hz);
                    self.apic.set_enabled(core, true);
                    let period = self.apic.timer(core).period();
                    let first = period + Nanos(core as u64 * 307 % period.0.max(1));
                    q.schedule(first, Event::TimerFire { core });
                }
            }
            PreemptMechanism::UserIpi => {
                // Receiver setup for preemption IPIs from the dispatcher or
                // utimer core.
                for &core in &self.worker_cores.clone() {
                    let upid = self.uintr.alloc_upid(PREEMPT_VECTOR, core);
                    self.uintr.bind_receiver(core, upid, PREEMPT_VECTOR);
                    self.uintr.set_user_mode(core, true);
                    self.cores[core].upid = Some(upid);
                    self.cores[core].arm_entry = Some(UittEntry { upid, user_vec: 1 });
                }
                if let Some(period) = self.utimer_period {
                    // §5.3 utimer: a dedicated core broadcasts user IPIs.
                    for &core in &self.worker_cores.clone() {
                        let first = period + Nanos(core as u64 * 101 % period.0.max(1));
                        q.schedule(first, Event::TimerFire { core });
                    }
                }
            }
            _ => {}
        }

        if let (Some(alloc), Some(_)) = (&self.core_alloc, self.be_app) {
            q.schedule(alloc.interval, Event::CoreAllocTick);
        }
        if let Some(aqm) = &self.rq_aqm {
            q.schedule(aqm.cfg().poll_every, Event::RqAqmTick);
        }
        self.chaos_start(q);
    }

    /// Runs the machine until `deadline`. Returns events processed.
    ///
    /// Events are drained in same-timestamp batches
    /// ([`skyloft_sim::run_batched_until`]), so per-event fixed costs —
    /// the deadline compare, the wheel re-probe, the trace-activity check
    /// and the post-event invariant validation — are paid once per batch.
    /// Handler order is identical to the serial event-at-a-time loop
    /// (same `(time, seq)` order; see [`Machine::handle_batch`]).
    pub fn run(&mut self, q: &mut EventQueue<Event>, deadline: Nanos) -> u64 {
        assert!(self.started, "call start() first");
        let mut batch = Vec::new();
        let mut handled = 0u64;
        skyloft_sim::run_batched_until(self, q, deadline, &mut batch, |m, at, b, q| {
            handled += m.handle_batch(at, b, q);
        });
        handled
    }

    /// Busy nanoseconds of an application since the last stats reset,
    /// including the still-open run intervals of currently executing tasks
    /// (a BE spin task may run for the whole window without ever stopping).
    pub fn busy_ns(&self, app: AppId, now: Nanos) -> u64 {
        let mut total = self.stats.busy_by_app[app];
        for c in &self.cores {
            if let Some((since, a)) = c.busy_since {
                if a == app {
                    total += now.saturating_sub(since).0;
                }
            }
        }
        total
    }

    /// CPU share of an application over the worker cores since the last
    /// stats reset (Figure 7c's metric). This is the single authoritative
    /// share computation: it builds on [`Machine::busy_ns`], so tasks that
    /// are *still running* (a BE spinner that never stops inside the
    /// measurement window) are counted via their open busy intervals.
    pub fn app_share(&self, app: AppId, now: Nanos) -> f64 {
        let capacity =
            now.saturating_sub(self.stats.since).0 as f64 * self.worker_cores.len() as f64;
        if capacity <= 0.0 {
            return 0.0;
        }
        self.busy_ns(app, now) as f64 / capacity
    }

    /// Resets measurement state at a warmup boundary.
    pub fn reset_stats(&mut self, now: Nanos) {
        self.stats.reset(now);
        for c in &mut self.cores {
            if let Some((_, app)) = c.busy_since {
                c.busy_since = Some((now, app));
            }
        }
    }

    /// Records a NIC data-plane event into the scheduling trace (§3.5).
    /// `core` is the worker core whose RX ring the event concerns. A no-op
    /// without the `trace` feature, so drivers in other crates can call it
    /// unconditionally.
    pub fn note_net(&mut self, now: Nanos, core: Option<CoreId>, what: NetTrace) {
        #[cfg(feature = "trace")]
        {
            let kind = match what {
                NetTrace::RxEnqueue => TraceKind::RxEnqueue,
                NetTrace::RxDrop => TraceKind::RxDrop,
                NetTrace::RxPoll => TraceKind::RxPoll,
                NetTrace::AqmDrop => TraceKind::AqmDrop,
                NetTrace::AdmissionShed => TraceKind::AdmissionShed,
                NetTrace::NetRetry => TraceKind::NetRetry,
            };
            self.trace_emit(now, core, None, kind);
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = (now, core, what);
        }
    }

    /// Arms the LC/BE brownout controller. Once armed, the polling core's
    /// overload samples ([`Machine::note_overload_sample`]) drive a
    /// hysteretic engage/release loop: while engaged, every core-allocator
    /// tick behaves as congested, shedding BE share before LC is touched.
    pub fn set_brownout(&mut self, cfg: crate::conf::BrownoutConfig) {
        self.brownout = Some(cfg);
    }

    /// Registers `app`'s SLO class: its per-class deadline, scheduling
    /// weight and retry fraction. Apps without a class keep the legacy
    /// (global-threshold, never-shed) behaviour.
    pub fn set_slo_class(&mut self, app: AppId, slo: SloClass) {
        self.apps[app].slo = Some(slo);
    }

    /// Arms the runqueue AQM: every `poll_every` the machine feeds each
    /// app's worst runqueue sojourn into a per-app CoDel controller; past
    /// target/interval, the controller condemns the oldest queued task of
    /// a *sheddable* app (one whose [`SloClass::slo`] is at least
    /// `sheddable_slo`). Condemned tasks are terminated, not run, when a
    /// scheduling path next dequeues them. Must be called before
    /// [`Machine::start`].
    pub fn set_runqueue_aqm(&mut self, cfg: RunqueueAqmConfig) {
        assert!(!self.started, "arm the runqueue AQM before start");
        self.rq_aqm = Some(RunqueueAqm::new(cfg));
    }

    /// Arms a per-app brownout controller with its own hysteresis band,
    /// fed from the app's runqueue sojourn by the runqueue AQM tick. Any
    /// engaged per-app controller makes the machine behave browned-out
    /// exactly like the global one.
    pub fn set_app_brownout(&mut self, app: AppId, cfg: crate::conf::BrownoutConfig) {
        assert!(app < self.apps.len(), "unknown app");
        if self.app_brownout.len() <= app {
            self.app_brownout.resize_with(app + 1, || None);
        }
        self.app_brownout[app] = Some(AppBrownout {
            cfg,
            ewma: Nanos::ZERO,
            engaged: false,
            last_transition: Nanos::ZERO,
            transitions: 0,
        });
    }

    /// Whether any brownout controller (global or per-app) is shedding.
    pub fn browned_out(&self) -> bool {
        self.browned_out
            || self
                .app_brownout
                .iter()
                .any(|b| b.as_ref().is_some_and(|b| b.engaged))
    }

    /// Whether `app`'s per-app brownout controller is engaged (`false`
    /// when none is armed).
    pub fn app_browned_out(&self, app: AppId) -> bool {
        self.app_brownout
            .get(app)
            .and_then(|b| b.as_ref())
            .is_some_and(|b| b.engaged)
    }

    /// Engage/release transitions of `app`'s brownout controller.
    pub fn app_brownout_transitions(&self, app: AppId) -> u64 {
        self.app_brownout
            .get(app)
            .and_then(|b| b.as_ref())
            .map_or(0, |b| b.transitions)
    }

    /// Feeds one scheduler-side overload sample into `app`'s brownout
    /// controller: the same EWMA + hysteresis law as
    /// [`Machine::note_overload_sample`], minus the backpressure penalty
    /// (runqueue sojourn has no ring to backpressure).
    pub fn note_app_overload_sample(&mut self, now: Nanos, app: AppId, sojourn: Nanos) {
        let Some(Some(b)) = self.app_brownout.get_mut(app) else {
            return;
        };
        let sample = sojourn.0 as i128;
        let ewma = b.ewma.0 as i128;
        b.ewma = Nanos((ewma + ((sample - ewma) >> b.cfg.ewma_shift)) as u64);
        let dwelled = now.saturating_sub(b.last_transition) >= b.cfg.min_dwell;
        let mut flipped = None;
        if !b.engaged && b.ewma > b.cfg.enter_sojourn && dwelled {
            b.engaged = true;
            b.last_transition = now;
            b.transitions += 1;
            flipped = Some(true);
        } else if b.engaged && b.ewma < b.cfg.exit_sojourn && dwelled {
            b.engaged = false;
            b.last_transition = now;
            b.transitions += 1;
            flipped = Some(false);
        }
        #[cfg(feature = "trace")]
        if let Some(on) = flipped {
            self.trace_emit(
                now,
                None,
                None,
                if on {
                    TraceKind::BrownoutShed
                } else {
                    TraceKind::BrownoutClear
                },
            );
        }
        #[cfg(not(feature = "trace"))]
        let _ = flipped;
    }

    /// Total engage/release transitions the brownout controller performed.
    pub fn brownout_transitions(&self) -> u64 {
        self.brownout_transitions
    }

    /// Feeds one overload sample from the polling core: the oldest RX-ring
    /// sojourn observed this poll round, plus whether the drained batch hit
    /// worker backpressure (a full downstream queue). Backpressure inflates
    /// the sample by half the engage threshold so a saturated pipeline with
    /// artificially short rings still trips the controller. The EWMA of
    /// these samples is compared against the hysteresis band: engage above
    /// `enter_sojourn`, release below `exit_sojourn`, and never flip twice
    /// within `min_dwell`.
    pub fn note_overload_sample(&mut self, now: Nanos, sojourn: Nanos, backpressured: bool) {
        let Some(cfg) = self.brownout else { return };
        let penalty = if backpressured {
            Nanos(cfg.enter_sojourn.0 / 2)
        } else {
            Nanos::ZERO
        };
        let sample = (sojourn + penalty).0 as i128;
        let ewma = self.brownout_ewma.0 as i128;
        self.brownout_ewma = Nanos((ewma + ((sample - ewma) >> cfg.ewma_shift)) as u64);
        let dwelled = now.saturating_sub(self.brownout_last_transition) >= cfg.min_dwell;
        if !self.browned_out && self.brownout_ewma > cfg.enter_sojourn && dwelled {
            self.browned_out = true;
            self.brownout_last_transition = now;
            self.brownout_transitions += 1;
            #[cfg(feature = "trace")]
            self.trace_emit(now, None, None, TraceKind::BrownoutShed);
        } else if self.browned_out && self.brownout_ewma < cfg.exit_sojourn && dwelled {
            self.browned_out = false;
            self.brownout_last_transition = now;
            self.brownout_transitions += 1;
            #[cfg(feature = "trace")]
            self.trace_emit(now, None, None, TraceKind::BrownoutClear);
        }
    }

    /// Creates a task without enqueueing it (internal + BE tasks).
    fn insert_task(
        &mut self,
        app: AppId,
        behavior: Box<dyn Behavior>,
        req: Option<RequestMeta>,
        weight: u32,
        record_wakeup: bool,
        home: Option<CoreId>,
    ) -> TaskId {
        self.apps[app].live_tasks += 1;
        self.tasks.insert(|id| Task {
            id,
            app,
            state: TaskState::Runnable,
            pd: crate::task::PolicyData {
                weight,
                ..Default::default()
            },
            behavior: Some(behavior),
            remaining: Nanos::ZERO,
            req,
            runnable_since: Nanos::ZERO,
            measure_wakeup: false,
            record_wakeup,
            last_cpu: None,
            home,
            preempt_count: 0,
            total_ran: Nanos::ZERO,
            shed: false,
        })
    }

    /// Spawns a task and enqueues it (the `uthread_create` path; the 191 ns
    /// creation cost of Table 7 is charged to the spawning side by the
    /// workload model where relevant).
    pub fn spawn(
        &mut self,
        q: &mut EventQueue<Event>,
        behavior: Box<dyn Behavior>,
        opts: SpawnOpts,
    ) -> TaskId {
        assert!(opts.app < self.apps.len(), "spawn into unknown app");
        let id = self.insert_task(
            opts.app,
            behavior,
            opts.req,
            opts.weight,
            opts.record_wakeup,
            opts.pin,
        );
        let now = q.now();
        self.tasks.get_mut(id).runnable_since = now;
        self.policy.task_init(&mut self.tasks, id, now);
        self.enqueue_task(q, id, EnqueueFlags::New, opts.pin);
        id
    }

    /// Returns a [`crate::task::OneShot`] behavior box for `service`,
    /// reusing a recycled box from the machine's free list when one is
    /// available. Completed one-shot requests flow back into the list, so
    /// steady-state RPC workloads allocate no behavior boxes at all.
    pub fn pooled_oneshot(&mut self, service: Nanos) -> Box<dyn Behavior> {
        match self.oneshot_pool.pop() {
            Some(mut b) => {
                b.reset(service);
                b
            }
            None => Box::new(crate::task::OneShot::new(service)),
        }
    }

    /// Spawns a one-shot request of the given service time and class.
    pub fn spawn_request(
        &mut self,
        q: &mut EventQueue<Event>,
        app: AppId,
        service: Nanos,
        class: u8,
        pin: Option<CoreId>,
    ) -> TaskId {
        let req = RequestMeta {
            arrival: q.now(),
            service,
            class,
        };
        let behavior = self.pooled_oneshot(service);
        self.spawn(
            q,
            behavior,
            SpawnOpts {
                app,
                pin,
                req: Some(req),
                weight: 1024,
                record_wakeup: true,
            },
        )
    }

    /// Wakes a blocked task (the `task_wakeup` entry point). `hint` is the
    /// waker's core. Spurious wakes of non-blocked tasks are ignored.
    pub fn wake(&mut self, q: &mut EventQueue<Event>, target: TaskId, hint: Option<CoreId>) {
        if !self.tasks.contains(target) {
            return;
        }
        let now = q.now();
        {
            let t = self.tasks.get_mut(target);
            if t.state != TaskState::Blocked {
                return;
            }
            t.state = TaskState::Runnable;
            t.runnable_since = now;
            t.measure_wakeup = t.record_wakeup;
        }
        self.enqueue_task(q, target, EnqueueFlags::Wakeup, hint);
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    /// Processes one event: records it in the scheduling trace, dispatches
    /// it to its handler, and — with the `trace` feature, in debug/test
    /// builds — validates the machine invariants afterwards
    /// ([`crate::trace::violations_of`]).
    pub fn handle(&mut self, ev: Event, q: &mut EventQueue<Event>) {
        #[cfg(feature = "trace")]
        self.trace_raw(&ev, q.now());
        self.dispatch_event(ev, q);
        #[cfg(feature = "trace")]
        self.check_invariants(q.now());
    }

    /// Processes one same-timestamp batch of events drained by
    /// [`skyloft_sim::EventQueue::pop_batch`].
    ///
    /// Decision-identical to calling [`Machine::handle`] on each event in
    /// `(time, seq)` order: claims are redeemed one at a time, so a
    /// handler that cancels a later event of the *same* timestamp (a
    /// preemption cancelling a pending segment completion) makes that
    /// claim redeem to `None` and the event is skipped, exactly as if it
    /// had been removed from the wheel. The batch prologue hoists the
    /// trace-activity check, and the invariant validation runs once at the
    /// end of the batch — a subset of the serial per-event checkpoints, so
    /// any state that validates serially validates here too. Returns the
    /// number of events handled.
    pub fn handle_batch(
        &mut self,
        at: Nanos,
        batch: &mut Vec<skyloft_sim::BatchSlot>,
        q: &mut EventQueue<Event>,
    ) -> u64 {
        #[cfg(not(feature = "trace"))]
        let _ = at;
        #[cfg(feature = "trace")]
        let tracing = self.tracer.is_active();
        let mut handled = 0;
        for claim in batch.drain(..) {
            let Some(ev) = q.take_batched(claim) else {
                continue;
            };
            #[cfg(feature = "trace")]
            if tracing {
                self.trace_raw(&ev, at);
            }
            self.dispatch_event(ev, q);
            handled += 1;
        }
        #[cfg(feature = "trace")]
        self.check_invariants(at);
        handled
    }

    /// Dispatches one event to its handler.
    fn dispatch_event(&mut self, ev: Event, q: &mut EventQueue<Event>) {
        match ev {
            Event::TimerFire { core } => self.on_timer_fire(q, core),
            Event::IpiArrive {
                core,
                purpose,
                expect,
            } => self.on_ipi(q, core, purpose, expect),
            Event::SegmentDone { core } => self.on_segment_done(q, core),
            Event::QuantumCheck { core, task } => self.on_quantum_check(q, core, task),
            Event::StartCore { core } => {
                self.cores[core].incoming = false;
                self.refresh_idle(core);
                if self.cores[core].current.is_none() {
                    self.schedule_loop(q, core, Nanos::ZERO);
                }
            }
            Event::PlaceTask { core, task } => {
                self.cores[core].incoming = false;
                self.refresh_idle(core);
                if !self.tasks.contains(task) {
                    return;
                }
                // The runqueue AQM condemned this task after the dispatcher
                // committed the placement: collect it and let the now-idle
                // worker ask for more work.
                if self.tasks.get(task).shed {
                    self.shed_task(q, core, task);
                    self.dispatch(q);
                    return;
                }
                // A fault may have blocked this core's kernel thread after
                // the dispatcher committed the placement; re-queue instead
                // of violating the Single Binding Rule.
                if !self.kthread_ready(core, self.tasks.get(task).app) {
                    let now = q.now();
                    self.policy.task_enqueue(
                        &mut self.tasks,
                        task,
                        None,
                        EnqueueFlags::Preempted,
                        now,
                    );
                    self.dispatch_gen += 1;
                    return;
                }
                debug_assert!(self.cores[core].current.is_none());
                self.run_task(q, core, task, Nanos::ZERO);
            }
            Event::CoreAllocTick => self.on_core_alloc(q),
            Event::RqAqmTick => self.on_rq_aqm_tick(q),
            #[cfg(feature = "chaos")]
            Event::Chaos(ev) => self.on_chaos_event(ev, q),
            Event::Call(call) => (call.0)(self, q),
            Event::Recur(mut r) => {
                if let Some(at) = (r.0)(self, q) {
                    q.schedule(at, Event::Recur(r));
                }
            }
        }
    }

    fn on_timer_fire(&mut self, q: &mut EventQueue<Event>, core: CoreId) {
        // Re-arm the periodic source.
        match self.plat.mech {
            PreemptMechanism::UserTimer { .. } | PreemptMechanism::KernelTick { .. } => {
                if !self.apic.timer_active(core) {
                    return;
                }
                let period = self.apic.timer(core).period();
                q.schedule_after(period, Event::TimerFire { core });
            }
            PreemptMechanism::UserIpi => {
                let Some(period) = self.utimer_period else {
                    return;
                };
                q.schedule_after(period, Event::TimerFire { core });
            }
            _ => return,
        }

        // An injected stall suppresses interrupt processing on this core;
        // the periodic source keeps firing (re-armed above) and takes
        // effect again once the stall ends.
        if self.stall_resume_at(core, q.now()).is_some() {
            return;
        }

        match self.plat.mech {
            PreemptMechanism::UserTimer { .. } => {
                // Mechanistic §3.2 path: the LAPIC raises TIMER_VECTOR; the
                // core recognizes it as a user interrupt only if the PIR was
                // armed.
                match self.uintr.on_interrupt_arrival(core, TIMER_VECTOR) {
                    Recognition::Pending => {
                        if self.uintr.deliverable(core) {
                            self.uintr.begin_delivery(core);
                            // Handler body (Listing 1): re-arm the PIR with
                            // a SN self-post, then run sched_timer_tick. An
                            // installed fault plan may eat the re-arm here —
                            // the §3.2 single point of failure.
                            let arm = self.cores[core].arm_entry.expect("armed core");
                            if !self.chaos_drop_arming(core) {
                                self.uintr.senduipi(arm);
                            }
                            self.uintr.uiret(core);
                            self.stats.timer_delivered += 1;
                            let cost = costs::USER_TIMER_RECEIVE.to_nanos()
                                + costs::SENDUIPI_SN.to_nanos();
                            self.timer_tick(q, core, cost);
                        }
                    }
                    Recognition::Lost => {
                        self.stats.timer_lost += 1;
                        // Losses caused by an injected arming drop are
                        // expected; widen the checker's budget so only
                        // *unexplained* losses trip the invariant.
                        #[cfg(all(feature = "trace", feature = "chaos"))]
                        if self.cores[core].arming_lost {
                            self.tracer.checker.allowed_timer_lost += 1;
                        }
                        #[cfg(feature = "trace")]
                        self.trace_emit(
                            q.now(),
                            Some(core),
                            self.cores[core].current,
                            TraceKind::TimerLost,
                        );
                    }
                    Recognition::Legacy => {}
                }
            }
            PreemptMechanism::KernelTick { .. } => {
                self.stats.timer_delivered += 1;
                self.timer_tick(q, core, KERNEL_TICK_COST);
            }
            PreemptMechanism::UserIpi => {
                // utimer: the dedicated core sends a user IPI; model the
                // delivery latency before the tick takes effect.
                let from = self.dispatcher.unwrap_or(core);
                let mech = self.costs.user_ipi(from, core);
                q.schedule_after(
                    mech.send_ns() + mech.delivery_ns(),
                    Event::IpiArrive {
                        core,
                        purpose: IpiPurpose::Preempt,
                        expect: None,
                    },
                );
            }
            _ => {}
        }
    }

    /// Shared tick logic: consult the policy, preempt or just charge the
    /// handler cost.
    fn timer_tick(&mut self, q: &mut EventQueue<Event>, core: CoreId, handler_cost: Nanos) {
        let Some(t) = self.cores[core].current else {
            return;
        };
        let now = q.now();
        self.note_progress(core, now);
        let ran = now.saturating_sub(self.cores[core].run_start);
        let preempt = self
            .policy
            .sched_timer_tick(&mut self.tasks, core, t, ran, now);
        if preempt {
            self.stats.preemptions += 1;
            self.preempt_current(q, core, handler_cost);
        } else {
            self.delay_current(q, core, handler_cost);
        }
    }

    fn on_ipi(
        &mut self,
        q: &mut EventQueue<Event>,
        core: CoreId,
        purpose: IpiPurpose,
        expect: Option<TaskId>,
    ) {
        // A stalled core recognizes nothing until the stall ends; the
        // notification stays latched and is processed at resume time.
        if let Some(resume) = self.stall_resume_at(core, q.now()) {
            q.schedule(
                resume,
                Event::IpiArrive {
                    core,
                    purpose,
                    expect,
                },
            );
            return;
        }
        // Mechanistic recognition for user-IPI platforms.
        if matches!(self.plat.mech, PreemptMechanism::UserIpi)
            && self.uintr.on_interrupt_arrival(core, PREEMPT_VECTOR) == Recognition::Pending
            && self.uintr.deliverable(core)
        {
            self.uintr.begin_delivery(core);
            self.uintr.uiret(core);
        }
        if let Some(exp) = expect {
            if self.cores[core].current != Some(exp) {
                self.stats.spurious_ipis += 1;
                if purpose == IpiPurpose::Revoke {
                    self.cores[core].revoking = false;
                }
                return;
            }
        }
        let recv = self.ipi_receive_cost(core);
        match purpose {
            IpiPurpose::Preempt => {
                if self.cores[core].current.is_none() {
                    // utimer tick on an idle core.
                    return;
                }
                // For utimer ticks (expect == None) ask the policy, like a
                // timer tick; for dispatcher preemptions the decision was
                // already made.
                if expect.is_none() && self.utimer_period.is_some() {
                    self.timer_tick(q, core, recv);
                } else {
                    self.stats.preemptions += 1;
                    self.preempt_current(q, core, recv);
                }
            }
            IpiPurpose::Revoke => {
                self.cores[core].revoking = false;
                // Only an actual grant-state transition counts: a stray or
                // duplicate revoke on a core the allocator never granted
                // must not inflate `be_revokes` or disturb the core.
                if !self.cores[core].granted_to_be {
                    self.stats.spurious_ipis += 1;
                    return;
                }
                self.cores[core].granted_to_be = false;
                self.refresh_idle(core);
                self.stats.be_revokes += 1;
                #[cfg(feature = "trace")]
                self.trace_emit(
                    q.now(),
                    Some(core),
                    self.cores[core].be_task,
                    TraceKind::Revoke,
                );
                if let Some(cur) = self.cores[core].current {
                    if Some(cur) == self.cores[core].be_task {
                        self.park_be_task(q, core, recv);
                    }
                    // Otherwise an LC task already occupies the core; there
                    // is nothing to reschedule.
                    return;
                }
                self.schedule_loop(q, core, recv);
            }
        }
    }

    fn ipi_receive_cost(&self, core: CoreId) -> Nanos {
        let from = self.dispatcher.unwrap_or(0);
        match self.plat.mech {
            PreemptMechanism::UserIpi | PreemptMechanism::UserTimer { .. } => {
                self.costs.user_ipi(from, core).receive_ns()
            }
            PreemptMechanism::PostedIpi => costs::POSTED_IPI.receive_ns(),
            PreemptMechanism::KernelIpi => {
                self.costs.kernel_ipi(from, core).receive_ns() + costs::GhostCost::INSTALL_THREAD
            }
            PreemptMechanism::Signal => costs::SIGNAL.receive_ns(),
            PreemptMechanism::KernelTick { .. } => self.costs.kernel_ipi(from, core).receive_ns(),
            PreemptMechanism::None => Nanos::ZERO,
        }
    }

    /// Sends a preemption notification to `core` using the platform's
    /// mechanism; the effect lands after send + delivery latency.
    pub fn send_preempt_ipi(
        &mut self,
        q: &mut EventQueue<Event>,
        core: CoreId,
        expect: Option<TaskId>,
        purpose: IpiPurpose,
    ) {
        let from = self.dispatcher.unwrap_or(0);
        let mech = match self.plat.mech {
            PreemptMechanism::UserIpi => {
                // Go through the UINTR fabric so architectural stats stay
                // faithful (the receiver was bound with PREEMPT_VECTOR).
                if let Some(upid) = self.cores[core].upid {
                    let _ = self.uintr.senduipi(UittEntry {
                        upid,
                        user_vec: PREEMPT_VECTOR,
                    });
                }
                self.costs.user_ipi(from, core)
            }
            // Skyloft per-CPU platforms can still send cross-core user IPIs
            // (wakeup preemption); the receiver descriptor is the timer
            // UPID, so only the cost model is applied here.
            PreemptMechanism::UserTimer { .. } => self.costs.user_ipi(from, core),
            PreemptMechanism::PostedIpi => costs::POSTED_IPI,
            PreemptMechanism::KernelIpi | PreemptMechanism::KernelTick { .. } => {
                self.costs.kernel_ipi(from, core)
            }
            PreemptMechanism::Signal => self.costs.signal(from, core),
            PreemptMechanism::None => return,
        };
        // An installed fault plan may lose the notification in the fabric
        // (any posted PIR bit stays set, but the core is never interrupted)
        // or delay its delivery.
        let Some(extra) = self.chaos_ipi_extra_delay(core, purpose) else {
            return;
        };
        q.schedule_after(
            mech.send_ns() + mech.delivery_ns() + extra,
            Event::IpiArrive {
                core,
                purpose,
                expect,
            },
        );
    }

    fn on_segment_done(&mut self, q: &mut EventQueue<Event>, core: CoreId) {
        self.cores[core].done_token = None;
        self.note_progress(core, q.now());
        let t = self.cores[core]
            .current
            .expect("segment completion on idle core");
        {
            let task = self.tasks.get_mut(t);
            task.total_ran += task.remaining;
            task.remaining = Nanos::ZERO;
        }
        self.advance_task(q, core, Nanos::ZERO);
    }

    fn on_quantum_check(&mut self, q: &mut EventQueue<Event>, core: CoreId, task: TaskId) {
        if self.cores[core].current != Some(task) {
            return;
        }
        let now = q.now();
        let ran = now.saturating_sub(self.cores[core].run_start);
        if self
            .policy
            .sched_timer_tick(&mut self.tasks, core, task, ran, now)
        {
            self.stats.preemptions += 1;
            self.send_preempt_ipi(q, core, Some(task), IpiPurpose::Preempt);
            // Recovery for lost preempt IPIs: keep checking; if the IPI
            // landed the task is gone and the recheck returns early above.
            #[cfg(feature = "chaos")]
            if self.chaos.is_some() && self.recovery.preempt_recheck {
                if let Some(quantum) = self.policy.quantum() {
                    q.schedule_after(quantum, Event::QuantumCheck { core, task });
                }
            }
        } else if let Some(quantum) = self.policy.quantum() {
            q.schedule_after(quantum, Event::QuantumCheck { core, task });
        }
    }

    fn on_core_alloc(&mut self, q: &mut EventQueue<Event>) {
        let Some(cfg) = self.core_alloc else { return };
        q.schedule_after(cfg.interval, Event::CoreAllocTick);
        let Some(be) = self.be_app else { return };
        let now = q.now();
        let delay = self.policy.queue_delay(&self.tasks, now);
        // A browned-out machine treats every alloc tick as congested: the
        // revoke branch reclaims BE cores one per tick and the grant branch
        // never runs, so BE share decays until the overload signal clears.
        let congested = delay.is_some_and(|d| d > cfg.congestion_delay) || self.browned_out();
        // Index loops: `worker_cores` is never mutated here, so iterating
        // by position avoids cloning the core list on every alloc tick.
        if congested {
            // Reclaim one BE core per decision (Shenango revokes
            // incrementally).
            for i in 0..self.worker_cores.len() {
                let core = self.worker_cores[i];
                let c = &self.cores[core];
                if c.granted_to_be && !c.revoking {
                    self.cores[core].revoking = true;
                    self.cores[core].idle_checks = 0;
                    self.send_preempt_ipi(q, core, None, IpiPurpose::Revoke);
                    self.after_revoke_sent(q, core);
                    break;
                }
            }
            for i in 0..self.worker_cores.len() {
                let core = self.worker_cores[i];
                self.cores[core].idle_checks = 0;
            }
        } else if self.policy.queue_len().unwrap_or(0) == 0 {
            // Grant a persistently idle LC core to the BE app.
            let mut granted = false;
            for i in 0..self.worker_cores.len() {
                let core = self.worker_cores[i];
                if self.cores[core].granted_to_be || !self.cores[core].is_idle() {
                    self.cores[core].idle_checks = 0;
                    continue;
                }
                self.cores[core].idle_checks += 1;
                if !granted
                    && self.cores[core].idle_checks >= cfg.grant_after_idle_checks
                    && self.kthread_ready(core, be)
                {
                    let c = &mut self.cores[core];
                    c.idle_checks = 0;
                    c.granted_to_be = true;
                    granted = true;
                    let be_task = c.be_task;
                    self.refresh_idle(core);
                    self.stats.be_grants += 1;
                    #[cfg(feature = "trace")]
                    self.trace_emit(now, Some(core), be_task, TraceKind::Grant);
                    if let Some(be_task) = be_task {
                        self.run_task(q, core, be_task, Nanos::ZERO);
                    }
                }
            }
        } else {
            for i in 0..self.worker_cores.len() {
                let core = self.worker_cores[i];
                self.cores[core].idle_checks = 0;
            }
        }
    }

    /// Whether `app` may have queued requests shed by the runqueue AQM: it
    /// registered an [`SloClass`] and its deadline is loose enough
    /// (`slo ≥ sheddable_slo`). Unclassed and tight-deadline (LC) apps are
    /// never shed — their congestion sheds *other* (batch) apps instead.
    fn app_sheddable(&self, app: AppId, sheddable_slo: Nanos) -> bool {
        self.apps[app].slo.is_some_and(|s| s.slo >= sheddable_slo)
    }

    /// One runqueue-AQM poll: scan queued tasks for each app's worst
    /// sojourn, feed the per-app CoDel controllers, condemn the task the
    /// drop law selects, and feed the brownout controllers so
    /// scheduler-side congestion engages the same graceful-degradation
    /// path as NIC-side congestion.
    fn on_rq_aqm_tick(&mut self, q: &mut EventQueue<Event>) {
        let Some(mut aqm) = self.rq_aqm.take() else {
            return;
        };
        let now = q.now();
        q.schedule_after(aqm.cfg().poll_every, Event::RqAqmTick);
        aqm.begin_scan(self.apps.len());
        let sheddable_slo = aqm.cfg().sheddable_slo;
        // Victim pools: every queued request of each sheddable app, kept
        // oldest-first so a single tick can serve every drop the control
        // law says is due (the tick is far coarser than per-dequeue CoDel,
        // so one firing may owe several drops).
        let mut pool: Vec<Vec<(TaskId, Nanos)>> = vec![Vec::new(); self.apps.len()];
        for task in self.tasks.iter() {
            if task.state != TaskState::Runnable || task.shed {
                continue;
            }
            // Machine-managed BE spinners park outside the policy queues;
            // their "sojourn" is idle time, not congestion.
            if task
                .home
                .is_some_and(|h| self.cores[h].be_task == Some(task.id))
            {
                continue;
            }
            aqm.observe(task.app, task.id, task.runnable_since);
            if self.app_sheddable(task.app, sheddable_slo) {
                pool[task.app].push((task.id, task.runnable_since));
            }
        }
        for p in pool.iter_mut() {
            p.sort_by_key(|&(_, since)| since);
        }
        let mut cursor = vec![0usize; self.apps.len()];
        let mut worst: Option<Nanos> = None;
        for app in 0..self.apps.len() {
            let Some((_, since)) = aqm.app_oldest(app) else {
                continue;
            };
            let sojourn = now.saturating_sub(since);
            worst = Some(worst.map_or(sojourn, |w| w.max(sojourn)));
            self.note_app_overload_sample(now, app, sojourn);
            // An app with a registered SLO is judged against half its own
            // deadline; unclassed apps use the global default target.
            let target = self.apps[app].slo.map(|s| Nanos(s.slo.0 / 2));
            // Drain every drop the law owes at this tick (CoDel fires at
            // `interval/√count` spacing, which can be shorter than the
            // poll period once count grows). Each drop condemns this
            // app's own next-oldest queued task when the app is
            // sheddable, else the oldest queued task of any sheddable
            // app (LC congestion sheds batch first). Out of victims ⇒
            // stop sampling so count doesn't inflate on no-op fires.
            while aqm.on_sample(app, now, sojourn, target) {
                let victim_app = if self.app_sheddable(app, sheddable_slo) {
                    Some(app)
                } else {
                    let mut best: Option<(usize, Nanos)> = None;
                    for (a, p) in pool.iter().enumerate() {
                        if let Some(&(_, s)) = p.get(cursor[a]) {
                            if best.is_none_or(|(_, bs)| s < bs) {
                                best = Some((a, s));
                            }
                        }
                    }
                    best.map(|(a, _)| a)
                };
                let victim = victim_app.and_then(|a| {
                    let v = pool[a].get(cursor[a]).map(|&(t, _)| t);
                    cursor[a] += 1;
                    v
                });
                let Some(v) = victim else {
                    break;
                };
                let vt = self.tasks.get_mut(v);
                if !vt.shed {
                    vt.shed = true;
                    aqm.note_condemned();
                }
            }
        }
        if let Some(w) = worst {
            self.note_overload_sample(now, w, false);
        }
        self.rq_aqm = Some(aqm);
    }

    /// Condemns the oldest queued request of any application whose
    /// registered SLO class is strictly looser than `slo`: the
    /// displacement half of per-class admission. When the admission
    /// controller sheds a tight-class request at the NIC, the congestion
    /// that doomed it is queued batch work — reclaiming one batch slot
    /// per tight-class shed is the feedback that makes *future*
    /// tight-class requests admittable again. Works with or without the
    /// runqueue AQM armed; the condemned task is terminated (not run) at
    /// its next dequeue, exactly like an AQM victim. Returns whether a
    /// victim existed.
    pub fn shed_for_class(&mut self, slo: Nanos) -> bool {
        let mut best: Option<(TaskId, Nanos)> = None;
        for task in self.tasks.iter() {
            if task.state != TaskState::Runnable || task.shed {
                continue;
            }
            if task
                .home
                .is_some_and(|h| self.cores[h].be_task == Some(task.id))
            {
                continue;
            }
            if self.apps[task.app].slo.is_none_or(|s| s.slo <= slo) {
                continue;
            }
            if best.is_none_or(|(_, bs)| task.runnable_since < bs) {
                best = Some((task.id, task.runnable_since));
            }
        }
        let Some((victim, _)) = best else {
            return false;
        };
        self.tasks.get_mut(victim).shed = true;
        if let Some(aqm) = self.rq_aqm.as_mut() {
            aqm.note_condemned();
        }
        true
    }

    /// Tasks the runqueue AQM has condemned so far (marked, whether or
    /// not a scheduling path has collected them yet).
    pub fn rq_aqm_condemned(&self) -> u64 {
        self.rq_aqm.as_ref().map_or(0, |a| a.condemned())
    }

    /// Terminates an AQM-condemned task at dequeue time instead of
    /// running it. Mirrors `finish_current`'s teardown — in particular the
    /// completion *is* credited to the task's home core so the NIC data
    /// plane's backpressure window keeps retiring — but records no
    /// response-latency sample: the shed shows up in
    /// [`Stats::rq_sheds`]/per-class counters, not the goodput histogram.
    fn shed_task(&mut self, q: &mut EventQueue<Event>, core: CoreId, t: TaskId) {
        let now = q.now();
        #[cfg(feature = "trace")]
        self.trace_emit(now, Some(core), Some(t), TraceKind::RqShed);
        let credit = self.tasks.get(t).home.unwrap_or(core);
        if let Some(slot) = self.stats.finished_by_core.get_mut(credit) {
            *slot += 1;
        }
        let class = self.tasks.get(t).req.map_or(0, |r| r.class);
        self.stats.rq_sheds += 1;
        self.stats.rq_sheds_by_class[crate::stats::class_slot(class)] += 1;
        self.policy.task_terminate(&mut self.tasks, t, now);
        let app = self.tasks.get(t).app;
        self.apps[app].live_tasks -= 1;
        let mut task = self.tasks.remove(t);
        const ONESHOT_POOL_CAP: usize = 1024;
        if self.oneshot_pool.len() < ONESHOT_POOL_CAP {
            if let Some(b) = task.behavior.take() {
                if let Some(os) = b.recycle() {
                    self.oneshot_pool.push(os);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Scheduling internals
    // ------------------------------------------------------------------

    /// Enqueues a runnable task and kicks the machinery that will run it.
    pub(crate) fn enqueue_task(
        &mut self,
        q: &mut EventQueue<Event>,
        t: TaskId,
        flags: EnqueueFlags,
        hint: Option<CoreId>,
    ) {
        let now = q.now();
        match self.policy.kind() {
            PolicyKind::Centralized => {
                self.policy
                    .task_enqueue(&mut self.tasks, t, hint, flags, now);
                self.dispatch_gen += 1;
                self.dispatch(q);
            }
            PolicyKind::PerCpu => {
                let cpu = self.pick_enqueue_cpu(t, hint);
                self.policy
                    .task_enqueue(&mut self.tasks, t, Some(cpu), flags, now);
                if self.cores[cpu].is_idle() {
                    self.cores[cpu].incoming = true;
                    self.refresh_idle(cpu);
                    q.schedule_after(self.plat.wake_latency, Event::StartCore { core: cpu });
                } else if flags == EnqueueFlags::Wakeup || flags == EnqueueFlags::New {
                    // Wakeup preemption: ask the policy whether the woken
                    // task should preempt the core it was queued on.
                    if let Some(cur) = self.cores[cpu].current {
                        let ran = now.saturating_sub(self.cores[cpu].run_start);
                        if self
                            .policy
                            .check_wakeup_preempt(&self.tasks, t, cpu, cur, ran, now)
                        {
                            self.send_preempt_ipi(q, cpu, Some(cur), IpiPurpose::Preempt);
                        }
                    }
                }
            }
        }
    }

    /// Chooses the runqueue core for a per-CPU enqueue, mirroring Linux's
    /// `select_task_rq`: an idle core if one exists (preferring the task's
    /// previous core, then the waker's), otherwise the previous core for
    /// cache affinity — critically *not* the waker's core, or every thread
    /// a message thread wakes would pile onto the waker's one queue —
    /// and round-robin for tasks that never ran.
    fn pick_enqueue_cpu(&mut self, t: TaskId, hint: Option<CoreId>) -> CoreId {
        let app = self.tasks.get(t).app;
        let last = self.tasks.get(t).last_cpu;
        for c in [last, hint].into_iter().flatten() {
            if c < self.cores.len()
                && self.cores[c].role == CoreRole::Worker
                && self.cores[c].is_idle()
                && self.can_queue_on(c, app)
            {
                return c;
            }
        }
        if let Some(&c) = self
            .worker_cores
            .iter()
            .find(|&&c| self.cores[c].is_idle() && self.can_queue_on(c, app))
        {
            return c;
        }
        if let Some(c) = last {
            if c < self.cores.len()
                && self.cores[c].role == CoreRole::Worker
                && self.can_queue_on(c, app)
            {
                return c;
            }
        }
        // Use the cursor before advancing it so the rotation starts at
        // worker 0 and visits every worker exactly once per lap.
        let n = self.worker_cores.len();
        for k in 0..n {
            let c = self.worker_cores[(self.rr_cursor + k) % n];
            if self.can_queue_on(c, app) {
                self.rr_cursor = (self.rr_cursor + k + 1) % n;
                return c;
            }
        }
        // Every core vetoed (all kernel threads fault-blocked); fall back
        // to the plain rotation — the resolve path will re-kick the queue.
        let c = self.worker_cores[self.rr_cursor % n];
        self.rr_cursor = (self.rr_cursor + 1) % n;
        c
    }

    /// Recomputes `core`'s bit in the idle-core bitmask. Must be called
    /// after any mutation of a core's `current`, `incoming`, or
    /// `granted_to_be` — the transitions that change whether the
    /// dispatcher may place work on it.
    #[inline]
    pub(crate) fn refresh_idle(&mut self, core: CoreId) {
        let c = &self.cores[core];
        let dispatchable = c.role == CoreRole::Worker && c.is_idle() && !c.granted_to_be;
        let bit = 1u64 << (core % 64);
        let word = &mut self.idle_mask[core / 64];
        if dispatchable {
            // A 0→1 transition grows the dispatchable set: invalidate any
            // completed dispatch pass at this timestamp.
            if *word & bit == 0 {
                *word |= bit;
                self.dispatch_gen += 1;
            }
        } else {
            *word &= !bit;
        }
    }

    /// Centralized dispatch: hand queued tasks to idle LC-owned workers.
    ///
    /// Same-timestamp dispatch triggers are coalesced behind a change
    /// generation: the preempt/yield paths fire `dispatch` twice in a row
    /// (once from the re-enqueue, once from the freed core's schedule
    /// loop), and the second trigger — same timestamp, no enqueue, no new
    /// idle core since the completed pass — is provably fruitless, so one
    /// `sched_poll` serves the whole burst. Coalescing never *defers* a
    /// productive poll (that could reorder placements); it only skips
    /// exact re-polls, so decisions are byte-identical to polling on every
    /// trigger. A trigger landing while a pass is mid-commit sets the
    /// dirty flag and folds into the current pass instead of re-entering
    /// and double-charging `dispatcher_free_at`.
    pub(crate) fn dispatch(&mut self, q: &mut EventQueue<Event>) {
        if self.policy.kind() != PolicyKind::Centralized {
            return;
        }
        if self.in_dispatch {
            self.dispatch_dirty = true;
            return;
        }
        if self.last_poll == (q.now(), self.dispatch_gen) {
            return;
        }
        self.in_dispatch = true;
        loop {
            self.dispatch_dirty = false;
            self.dispatch_pass(q);
            if !self.dispatch_dirty {
                break;
            }
        }
        self.in_dispatch = false;
    }

    /// One dispatch pass: poll the policy over the usable idle set and
    /// commit the placements on the serialized dispatcher core.
    ///
    /// Runs at dispatch rate on the hot path, so the idle list and the
    /// placement list live in machine-owned scratch buffers instead of
    /// fresh allocations, and the idle-worker set comes from the
    /// incrementally maintained bitmask instead of a `worker_cores` scan
    /// (only `core_usable`, which depends on the current time under
    /// injected stalls, is checked per set bit).
    fn dispatch_pass(&mut self, q: &mut EventQueue<Event>) {
        let mut idle = std::mem::take(&mut self.idle_scratch);
        idle.clear();
        for (wi, &word) in self.idle_mask.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let c = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if self.core_usable(c) {
                    idle.push(c);
                }
            }
        }
        #[cfg(debug_assertions)]
        {
            let oracle: Vec<CoreId> = self
                .worker_cores
                .iter()
                .copied()
                .filter(|&c| {
                    self.cores[c].is_idle() && !self.cores[c].granted_to_be && self.core_usable(c)
                })
                .collect();
            debug_assert_eq!(idle, oracle, "idle-core bitmask out of sync");
        }
        if idle.is_empty() {
            self.idle_scratch = idle;
            // An empty usable-idle set is still a completed (vacuous)
            // pass: until an enqueue or an idle transition bumps the
            // generation, nothing at this timestamp can make it fruitful.
            self.last_poll = (q.now(), self.dispatch_gen);
            return;
        }
        let now = q.now();
        let mut placements = std::mem::take(&mut self.poll_scratch);
        placements.clear();
        self.policy
            .sched_poll(&mut self.tasks, &idle, now, &mut placements);
        // Placements serialize on the dispatcher core.
        let mut busy_until = self.dispatcher_free_at.max(now);
        for &(core, task) in &placements {
            debug_assert!(self.cores[core].is_idle());
            self.cores[core].incoming = true;
            self.refresh_idle(core);
            busy_until += self.plat.dispatch_cost;
            q.schedule(
                busy_until + self.plat.dispatch_latency,
                Event::PlaceTask { core, task },
            );
        }
        self.dispatcher_free_at = busy_until;
        self.idle_scratch = idle;
        self.poll_scratch = placements;
        // Committing placements only *clears* idle bits, so the generation
        // recorded here still matches the inputs this pass saw.
        self.last_poll = (now, self.dispatch_gen);
    }

    /// The per-core main scheduling loop (§4.1's idle user thread).
    pub(crate) fn schedule_loop(
        &mut self,
        q: &mut EventQueue<Event>,
        core: CoreId,
        overhead: Nanos,
    ) {
        debug_assert!(self.cores[core].current.is_none());
        if self.cores[core].granted_to_be {
            if let Some(be) = self.cores[core].be_task {
                let be_app = self.tasks.get(be).app;
                if self.tasks.get(be).state == TaskState::Runnable
                    && self.kthread_ready(core, be_app)
                {
                    self.run_task(q, core, be, overhead);
                    return;
                }
            }
        }
        match self.policy.kind() {
            PolicyKind::Centralized => {
                // Worker goes idle; the dispatcher will place work.
                self.dispatch(q);
            }
            PolicyKind::PerCpu => {
                let now = q.now();
                loop {
                    let next = self
                        .policy
                        .task_dequeue(&mut self.tasks, core, now)
                        .or_else(|| self.policy.sched_balance(&mut self.tasks, core, now));
                    // Collect AQM-condemned tasks instead of running them,
                    // then keep looking for live work.
                    if let Some(t) = next {
                        if self.tasks.get(t).shed {
                            self.shed_task(q, core, t);
                            continue;
                        }
                    }
                    #[cfg(feature = "chaos")]
                    let next = self.filter_ready(core, next, now);
                    if let Some(t) = next {
                        self.run_task(q, core, t, overhead);
                    }
                    return;
                }
            }
        }
    }

    /// Switches to `t` on `core`, charging same-app or cross-app switch
    /// costs, then begins executing it.
    fn run_task(&mut self, q: &mut EventQueue<Event>, core: CoreId, t: TaskId, overhead: Nanos) {
        let mut overhead = overhead;
        let now = q.now();
        debug_assert!(self.cores[core].current.is_none());
        debug_assert_eq!(
            self.tasks.get(t).state,
            TaskState::Runnable,
            "running a non-runnable task"
        );
        let app = self.tasks.get(t).app;
        let cur_app = self.cores[core].cur_app;
        if cur_app != Some(app) {
            // Inter-application switch through the kernel module (§3.3).
            match cur_app {
                Some(prev) => {
                    let cur_tid = self.cores[core].kthreads[prev];
                    let tgt_tid = self.cores[core].kthreads[app];
                    self.kmod
                        .switch_to(cur_tid, tgt_tid)
                        .expect("single binding rule upheld by construction");
                }
                // The previous kernel thread fault-blocked with no
                // substitute (§6), leaving the core free; wake the target
                // application's parked thread onto it.
                #[cfg(feature = "chaos")]
                None => {
                    let tgt_tid = self.cores[core].kthreads[app];
                    self.kmod
                        .wakeup(tgt_tid)
                        .expect("readiness guards admit only wakeable threads");
                }
                #[cfg(not(feature = "chaos"))]
                None => {}
            }
            overhead += self.plat.cross_app_switch;
            self.stats.app_switches += 1;
            self.cores[core].cur_app = Some(app);
        } else {
            overhead += self.plat.same_app_switch;
            self.stats.uthread_switches += 1;
        }
        {
            let task = self.tasks.get_mut(t);
            if task.measure_wakeup {
                task.measure_wakeup = false;
                let lat = (now + overhead).saturating_sub(task.runnable_since);
                self.stats.wakeup_hist.record(lat.0);
            }
            task.state = TaskState::Running;
            task.last_cpu = Some(core);
        }
        let c = &mut self.cores[core];
        c.current = Some(t);
        c.incoming = false;
        c.run_start = now;
        c.busy_since = Some((now, app));
        self.refresh_idle(core);
        self.note_progress(core, now);
        #[cfg(feature = "trace")]
        self.trace_emit(now, Some(core), Some(t), TraceKind::Switch);
        self.advance_task(q, core, overhead);
    }

    /// Steps the current task's behavior until it produces a compute
    /// segment (scheduled as a `SegmentDone` event) or leaves the core.
    fn advance_task(&mut self, q: &mut EventQueue<Event>, core: CoreId, overhead: Nanos) {
        let mut overhead = overhead;
        let now = q.now();
        let t = self.cores[core].current.expect("advance on idle core");
        let mut segment = self.tasks.get(t).remaining;
        if segment == Nanos::ZERO {
            let mut behavior = self
                .tasks
                .get_mut(t)
                .behavior
                .take()
                .expect("task without behavior");
            let mut steps = 0u32;
            loop {
                steps += 1;
                assert!(steps < 10_000, "behavior produced 10k zero-time steps");
                match behavior.step(now, t) {
                    Step::Compute(d) if d > Nanos::ZERO => {
                        segment = d;
                        break;
                    }
                    Step::Compute(_) => continue,
                    Step::Wake(target) => {
                        overhead += self.plat.wake_cost;
                        self.wake(q, target, Some(core));
                    }
                    Step::Yield => {
                        self.tasks.get_mut(t).behavior = Some(behavior);
                        self.stop_current(q, core, TaskState::Runnable);
                        // Re-stamp the wait anchor: the task's queue
                        // sojourn (queue_delay contract, runqueue AQM)
                        // starts at the yield, not the previous wake.
                        self.tasks.get_mut(t).runnable_since = now;
                        self.enqueue_task(q, t, EnqueueFlags::Yield, Some(core));
                        self.schedule_loop(q, core, overhead);
                        return;
                    }
                    Step::Block => {
                        self.tasks.get_mut(t).behavior = Some(behavior);
                        self.stop_current(q, core, TaskState::Blocked);
                        self.policy.task_block(&mut self.tasks, t, core, now);
                        self.schedule_loop(q, core, overhead);
                        return;
                    }
                    Step::Exit => {
                        // Hand the box back so finish_current can recycle
                        // one-shot bodies into the pool.
                        self.tasks.get_mut(t).behavior = Some(behavior);
                        self.finish_current(q, core);
                        self.schedule_loop(q, core, overhead);
                        return;
                    }
                }
            }
            self.tasks.get_mut(t).behavior = Some(behavior);
            self.tasks.get_mut(t).remaining = segment;
        }
        let end = now + overhead + segment;
        let c = &mut self.cores[core];
        c.seg_end = end;
        debug_assert!(c.done_token.is_none());
        c.done_token = Some(q.schedule(end, Event::SegmentDone { core }));
        // Centralized quantum enforcement: the dispatcher watches this
        // worker. BE spin tasks are managed by the core allocator, not the
        // dispatcher, so they get no quantum checks.
        if self.policy.kind() == PolicyKind::Centralized && Some(t) != self.cores[core].be_task {
            if let Some(quantum) = self.policy.quantum() {
                if segment > quantum {
                    q.schedule(
                        now + overhead + quantum,
                        Event::QuantumCheck { core, task: t },
                    );
                }
            }
        }
    }

    /// Removes the current task from the core (yield/block path), closing
    /// busy accounting and cancelling the pending segment event.
    fn stop_current(&mut self, q: &mut EventQueue<Event>, core: CoreId, new_state: TaskState) {
        let t = self.cores[core].current.take().expect("no current task");
        self.refresh_idle(core);
        if let Some(tok) = self.cores[core].done_token.take() {
            q.cancel(tok);
        }
        self.close_busy(q.now(), core);
        self.tasks.get_mut(t).state = new_state;
        #[cfg(feature = "trace")]
        self.trace_emit(
            q.now(),
            Some(core),
            Some(t),
            if new_state == TaskState::Blocked {
                TraceKind::Block
            } else {
                TraceKind::Yield
            },
        );
    }

    /// Preempts the current task: remaining work is recomputed from the
    /// cancelled segment, the task re-enters the runqueue, and the core
    /// reschedules after `overhead` (the interrupt-handler cost).
    fn preempt_current(&mut self, q: &mut EventQueue<Event>, core: CoreId, overhead: Nanos) {
        let now = q.now();
        let t = self.cores[core].current.take().expect("preempt idle core");
        self.refresh_idle(core);
        if let Some(tok) = self.cores[core].done_token.take() {
            q.cancel(tok);
        }
        self.close_busy(now, core);
        let remaining = self.cores[core].seg_end.saturating_sub(now);
        {
            let task = self.tasks.get_mut(t);
            let executed = task.remaining.saturating_sub(remaining);
            task.total_ran += executed;
            task.remaining = remaining;
            task.state = TaskState::Runnable;
            task.preempt_count += 1;
            task.runnable_since = now;
        }
        #[cfg(feature = "trace")]
        self.trace_emit(now, Some(core), Some(t), TraceKind::Preempt);
        // The §5.2 core allocator parks BE tasks instead of re-enqueueing
        // them into the LC policy.
        if Some(t) == self.cores[core].be_task {
            self.schedule_loop(q, core, overhead);
            return;
        }
        self.enqueue_task(q, t, EnqueueFlags::Preempted, Some(core));
        if self.cores[core].current.is_none() {
            self.schedule_loop(q, core, overhead);
        }
    }

    /// Parks the machine-managed BE task on a revoked core.
    fn park_be_task(&mut self, q: &mut EventQueue<Event>, core: CoreId, overhead: Nanos) {
        let now = q.now();
        let t = self.cores[core].current.take().expect("park idle core");
        self.refresh_idle(core);
        debug_assert_eq!(Some(t), self.cores[core].be_task);
        if let Some(tok) = self.cores[core].done_token.take() {
            q.cancel(tok);
        }
        self.close_busy(now, core);
        let remaining = self.cores[core].seg_end.saturating_sub(now);
        let task = self.tasks.get_mut(t);
        task.remaining = remaining;
        task.state = TaskState::Runnable;
        task.preempt_count += 1;
        #[cfg(feature = "trace")]
        self.trace_emit(now, Some(core), Some(t), TraceKind::Park);
        self.schedule_loop(q, core, overhead);
    }

    /// Completes the current task: request accounting, policy teardown,
    /// slot recycling, application liveness.
    fn finish_current(&mut self, q: &mut EventQueue<Event>, core: CoreId) {
        let now = q.now();
        let t = self.cores[core].current.take().expect("finish idle core");
        self.refresh_idle(core);
        self.close_busy(now, core);
        #[cfg(feature = "trace")]
        self.trace_emit(now, Some(core), Some(t), TraceKind::Finish);
        // Completion is credited to the task's home (pinned) core, not
        // the core that happened to run it: the NIC data plane's
        // backpressure window counts requests it handed to worker `c` and
        // must see them retire at `c` even if a stealing policy migrated
        // the task.
        let credit = self.tasks.get(t).home.unwrap_or(core);
        if let Some(slot) = self.stats.finished_by_core.get_mut(credit) {
            *slot += 1;
        }
        if let Some(req) = self.tasks.get(t).req {
            self.stats
                .record_request(req.class, now - req.arrival, req.service);
            self.stats.last_completion = now;
        }
        self.policy.task_terminate(&mut self.tasks, t, now);
        let app = self.tasks.get(t).app;
        self.apps[app].live_tasks -= 1;
        let mut task = self.tasks.remove(t);
        // Recycle one-shot request bodies for pooled_oneshot; the bound
        // keeps a pathological burst from pinning memory forever.
        const ONESHOT_POOL_CAP: usize = 1024;
        if self.oneshot_pool.len() < ONESHOT_POOL_CAP {
            if let Some(b) = task.behavior.take() {
                if let Some(os) = b.recycle() {
                    self.oneshot_pool.push(os);
                }
            }
        }
    }

    pub(crate) fn close_busy(&mut self, now: Nanos, core: CoreId) {
        if let Some((since, app)) = self.cores[core].busy_since.take() {
            self.stats.busy_by_app[app] += now.saturating_sub(since).0;
        }
    }

    /// Applies an extra delay (interrupt handler, tick processing) to the
    /// currently running segment.
    pub(crate) fn delay_current(&mut self, q: &mut EventQueue<Event>, core: CoreId, cost: Nanos) {
        if cost == Nanos::ZERO {
            return;
        }
        let c = &mut self.cores[core];
        let Some(tok) = c.done_token.take() else {
            return;
        };
        q.cancel(tok);
        c.seg_end += cost;
        c.done_token = Some(q.schedule(c.seg_end, Event::SegmentDone { core }));
    }

    /// Whether a per-CPU enqueue may target `core` for a task of `app`:
    /// with a fault plan installed, cores whose kernel thread for the app
    /// is fault-blocked are vetoed.
    #[cfg(feature = "chaos")]
    fn can_queue_on(&self, core: CoreId, app: AppId) -> bool {
        self.chaos.is_none() || self.kthread_ready(core, app)
    }

    #[cfg(not(feature = "chaos"))]
    fn can_queue_on(&self, _core: CoreId, _app: AppId) -> bool {
        true
    }
}

/// No-op stand-ins for the [`crate::chaos`] hooks, so the event handlers
/// read identically whether or not the feature is compiled in. Everything
/// here folds to a constant and vanishes at compile time.
#[cfg(not(feature = "chaos"))]
impl Machine {
    fn chaos_start(&mut self, _q: &mut EventQueue<Event>) {}

    fn chaos_drop_arming(&mut self, _core: CoreId) -> bool {
        false
    }

    fn chaos_ipi_extra_delay(&mut self, _core: CoreId, _purpose: IpiPurpose) -> Option<Nanos> {
        Some(Nanos::ZERO)
    }

    fn stall_resume_at(&self, _core: CoreId, _now: Nanos) -> Option<Nanos> {
        None
    }

    fn note_progress(&mut self, _core: CoreId, _now: Nanos) {}

    fn kthread_ready(&self, _core: CoreId, _app: AppId) -> bool {
        true
    }

    fn core_usable(&self, _core: CoreId) -> bool {
        true
    }

    fn after_revoke_sent(&mut self, _q: &mut EventQueue<Event>, _core: CoreId) {}

    /// Whether core `core`'s §3.2 arming is currently known-lost to an
    /// injected fault. Without the `chaos` feature there is no injection,
    /// so the answer is always no.
    pub fn core_arming_lost(&self, _core: CoreId) -> bool {
        false
    }

    /// Fate of one RX-ring poll visit. Without the `chaos` feature polls
    /// always proceed with no extra latency.
    pub fn chaos_rx_poll_fate(&mut self) -> Option<Nanos> {
        Some(Nanos::ZERO)
    }

    /// Whether an RSS indirection-stick fault fires at `now`. Without the
    /// `chaos` feature it never does.
    pub fn chaos_indirection_stick(&mut self, _now: Nanos) -> Option<Nanos> {
        None
    }
}

#[cfg(test)]
mod tests;
