//! Platform and scheduling-parameter configuration.
//!
//! A [`Platform`] describes *which mechanisms* a system uses (how
//! preemption signals reach cores, what switches and wakeups cost). The
//! Skyloft platforms use the paper's measured constants; comparator
//! platforms (built in `skyloft-baselines`) use the same structure with
//! their own mechanisms, so all systems run on one engine.
//!
//! [`SchedParams`] captures Table 5's per-policy tunables.

use skyloft_hw::costs::SwitchCost;
use skyloft_hw::Topology;
use skyloft_sim::Nanos;

/// How preemption notifications reach worker cores.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PreemptMechanism {
    /// Per-core LAPIC timer delegated to user space via UINTR (§3.2):
    /// Skyloft's per-CPU platforms, at up to 100 kHz.
    UserTimer {
        /// Timer frequency in Hz.
        hz: u64,
    },
    /// A dedicated dispatcher/timer core sends user IPIs (`SENDUIPI`):
    /// Skyloft's centralized platform and the §5.3 "utimer" emulation.
    UserIpi,
    /// Dispatcher sends VT-x posted interrupts (Shinjuku on Dune).
    PostedIpi,
    /// Kernel IPIs triggered through the kernel (ghOSt agents).
    KernelIpi,
    /// Linux signals (Shenango's preemption path for core reallocation;
    /// not usable for in-application μs-scale preemption).
    Signal,
    /// Kernel scheduler tick (native Linux policies), bounded at 1000 Hz.
    KernelTick {
        /// CONFIG_HZ.
        hz: u64,
    },
    /// No preemption (run-to-completion / purely cooperative).
    None,
}

/// Mechanism-independent platform description.
#[derive(Clone, Debug)]
pub struct Platform {
    /// Display name (experiment output).
    pub name: &'static str,
    /// Machine topology.
    pub topo: Topology,
    /// Preemption mechanism.
    pub mech: PreemptMechanism,
    /// Context-switch cost between user threads of the same application.
    pub same_app_switch: Nanos,
    /// Context-switch cost when the next thread belongs to another
    /// application (Skyloft: kernel-module switch, §5.4).
    pub cross_app_switch: Nanos,
    /// CPU cost on the waker's core for a wakeup/enqueue.
    pub wake_cost: Nanos,
    /// Latency from a wakeup to the woken core reacting (kernel wake paths
    /// are slow; user-space pollers are fast).
    pub wake_latency: Nanos,
    /// Dispatcher decision cost per placement (centralized platforms:
    /// queue pop + worker slot write; ghOSt: message + transaction commit).
    pub dispatch_cost: Nanos,
    /// Latency from the dispatcher writing a placement to the worker
    /// noticing it (worker poll granularity).
    pub dispatch_latency: Nanos,
    /// Whether a dedicated core is consumed by the dispatcher (Shinjuku,
    /// Skyloft-centralized, ghOSt global agent) — it cannot run tasks.
    pub dedicated_dispatcher: bool,
}

impl Platform {
    /// Skyloft per-CPU platform: user-space timer interrupts at `hz`
    /// (Table 5 uses 100 kHz), user-space switches and wakeups.
    pub fn skyloft_percpu(topo: Topology, hz: u64) -> Platform {
        Platform {
            name: "Skyloft",
            topo,
            mech: PreemptMechanism::UserTimer { hz },
            same_app_switch: SwitchCost::UTHREAD_SWITCH,
            cross_app_switch: SwitchCost::INTER_APP_SWITCH,
            wake_cost: SwitchCost::UTHREAD_WAKE,
            // An idle Skyloft core spins on the runqueue; reaction is the
            // poll-loop granularity.
            wake_latency: Nanos(100),
            dispatch_cost: Nanos::ZERO,
            dispatch_latency: Nanos::ZERO,
            dedicated_dispatcher: false,
        }
    }

    /// Skyloft centralized platform: a dispatcher core preempts workers
    /// with user IPIs (§5.2).
    pub fn skyloft_centralized(topo: Topology) -> Platform {
        Platform {
            name: "Skyloft-Shinjuku",
            topo,
            mech: PreemptMechanism::UserIpi,
            same_app_switch: SwitchCost::UTHREAD_SWITCH,
            cross_app_switch: SwitchCost::INTER_APP_SWITCH,
            wake_cost: SwitchCost::UTHREAD_WAKE,
            wake_latency: Nanos(100),
            // Dispatcher pop + shared-memory slot write.
            dispatch_cost: Nanos(120),
            // Worker spin-polls its slot.
            dispatch_latency: Nanos(100),
            dedicated_dispatcher: true,
        }
    }
}

/// Per-policy tunables (Table 5).
#[derive(Clone, Copy, Debug)]
pub struct SchedParams {
    /// Round-robin time slice (`time_slice`).
    pub time_slice: Nanos,
    /// CFS/EEVDF minimum granularity / base slice (`min_granularity`,
    /// `base_slice`).
    pub min_granularity: Nanos,
    /// CFS scheduling-latency target (`sched_latency`).
    pub sched_latency: Nanos,
    /// CFS wakeup granularity (`sched_wakeup_granularity`): a woken task
    /// preempts the running one only if its vruntime is behind by more
    /// than this. Linux's default is ~4 ms on a 24-core box (1 ms ×
    /// log-scaling) and Table 5's tuning does not touch it — which is why
    /// even "tuned" Linux CFS cannot reach μs wakeup latency.
    pub wakeup_gran: Nanos,
}

impl SchedParams {
    /// Skyloft RR (Table 5): 100 kHz timer, 50 μs slice.
    pub const SKYLOFT_RR: SchedParams = SchedParams {
        time_slice: Nanos::from_us(50),
        min_granularity: Nanos::from_us(50),
        sched_latency: Nanos::from_us(50),
        wakeup_gran: Nanos::from_us(25),
    };

    /// Skyloft CFS (Table 5): 12.5 μs granularity, 50 μs latency target.
    pub const SKYLOFT_CFS: SchedParams = SchedParams {
        time_slice: Nanos::from_us(50),
        min_granularity: Nanos(12_500),
        sched_latency: Nanos::from_us(50),
        wakeup_gran: Nanos::from_us(25),
    };

    /// Skyloft EEVDF (Table 5): 12.5 μs base slice.
    pub const SKYLOFT_EEVDF: SchedParams = SchedParams {
        time_slice: Nanos::from_us(50),
        min_granularity: Nanos(12_500),
        sched_latency: Nanos::from_us(50),
        wakeup_gran: Nanos::from_us(25),
    };

    /// Linux RR default (Table 5): 100 ms slice at 250 Hz.
    pub const LINUX_RR_DEFAULT: SchedParams = SchedParams {
        time_slice: Nanos::from_ms(100),
        min_granularity: Nanos::from_ms(100),
        sched_latency: Nanos::from_ms(100),
        wakeup_gran: Nanos::from_ms(4),
    };

    /// Linux CFS default (Table 5): 3 ms granularity, 24 ms latency.
    pub const LINUX_CFS_DEFAULT: SchedParams = SchedParams {
        time_slice: Nanos::from_ms(24),
        min_granularity: Nanos::from_ms(3),
        sched_latency: Nanos::from_ms(24),
        wakeup_gran: Nanos::from_ms(4),
    };

    /// Linux CFS tuned (Table 5): 12.5 μs granularity, 50 μs latency at
    /// 1000 Hz.
    pub const LINUX_CFS_TUNED: SchedParams = SchedParams {
        time_slice: Nanos::from_us(50),
        min_granularity: Nanos(12_500),
        sched_latency: Nanos::from_us(50),
        wakeup_gran: Nanos::from_ms(4),
    };

    /// Linux EEVDF default (Table 5): 3 ms base slice.
    pub const LINUX_EEVDF_DEFAULT: SchedParams = SchedParams {
        time_slice: Nanos::from_ms(3),
        min_granularity: Nanos::from_ms(3),
        sched_latency: Nanos::from_ms(24),
        wakeup_gran: Nanos::from_ms(4),
    };

    /// Linux EEVDF tuned (Table 5): 12.5 μs base slice.
    pub const LINUX_EEVDF_TUNED: SchedParams = SchedParams {
        time_slice: Nanos(12_500),
        min_granularity: Nanos(12_500),
        sched_latency: Nanos::from_us(50),
        wakeup_gran: Nanos::from_ms(4),
    };
}

/// Core-allocation configuration for multi-application runs (§5.2,
/// Shenango-style congestion detection).
#[derive(Clone, Copy, Debug)]
pub struct CoreAllocConfig {
    /// Allocator decision period (Shenango/Caladan use 5 μs).
    pub interval: Nanos,
    /// Queueing delay above which the LC application is congested and
    /// reclaims a core from the BE application.
    pub congestion_delay: Nanos,
    /// Consecutive idle checks before a core is granted to the BE
    /// application.
    pub grant_after_idle_checks: u32,
}

impl Default for CoreAllocConfig {
    fn default() -> Self {
        CoreAllocConfig {
            interval: Nanos::from_us(5),
            congestion_delay: Nanos::from_us(10),
            grant_after_idle_checks: 4,
        }
    }
}

/// Per-application SLO class (DESIGN.md §16).
///
/// Registered on an application via `Machine::set_slo_class`; every
/// class-aware overload decision reads it: deadline admission sheds a
/// request against *its own application's* `slo` rather than a machine
/// global, the load generator scales its per-class retry token bucket by
/// `retry_frac`, and the runqueue AQM treats applications with a looser
/// SLO as sheddable before tighter ones. Applications without a class
/// behave exactly as before this type existed — every consumer falls back
/// to its pre-class global path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloClass {
    /// The application's service-level objective: the response-time bound
    /// its requests are admitted against.
    pub slo: Nanos,
    /// Relative weight among classes (1024 = baseline). Reserved for
    /// weighted shedding; recorded per class so policy experiments can
    /// read it back.
    pub weight: u32,
    /// Fraction of this class's offered load it may spend on retries,
    /// in permille (‰) of generated requests.
    pub retry_frac: u32,
}

impl SloClass {
    /// A latency-critical class: tight SLO, full weight, modest retries.
    pub fn latency_critical(slo: Nanos) -> Self {
        SloClass {
            slo,
            weight: 1024,
            retry_frac: 100,
        }
    }

    /// A batch/best-effort class: loose SLO, reduced weight, few retries.
    pub fn batch(slo: Nanos) -> Self {
        SloClass {
            slo,
            weight: 256,
            retry_frac: 20,
        }
    }
}

/// Runqueue-AQM configuration (the scheduler-side containment ring,
/// DESIGN.md §16).
///
/// The RX-ring CoDel (DESIGN.md §13) bounds sojourn for load that enters
/// through the NIC; load injected directly via `spawn_request` bypasses
/// it. This second ring watches the *runqueues* instead: every
/// `poll_every`, the machine measures each application's worst queued-task
/// sojourn (the policies' unified `queue_delay` clock) and feeds it into a
/// per-application CoDel instance. Past target/interval the AQM sheds the
/// oldest queued request of a *sheddable* application — one whose
/// [`SloClass::slo`] is at least `sheddable_slo` (unclassed applications
/// are never shed) — and feeds the sojourn into the brownout controller
/// so scheduler-side congestion also revokes BE cores.
#[derive(Clone, Copy, Debug)]
pub struct RunqueueAqmConfig {
    /// CoDel target: runqueue sojourn below this is acceptable. An
    /// application with an [`SloClass`] uses `slo / 2` as its personal
    /// target instead.
    pub target: Nanos,
    /// CoDel initial interval: sojourn must stay above target this long
    /// before the first shed.
    pub interval: Nanos,
    /// How often the machine samples the runqueues.
    pub poll_every: Nanos,
    /// Applications whose class SLO is at least this loose are sheddable.
    pub sheddable_slo: Nanos,
}

impl Default for RunqueueAqmConfig {
    fn default() -> Self {
        RunqueueAqmConfig {
            target: Nanos::from_us(50),
            interval: Nanos::from_us(500),
            poll_every: Nanos::from_us(10),
            sheddable_slo: Nanos::from_ms(1),
        }
    }
}

/// Brownout controller configuration (overload control, DESIGN.md §13).
///
/// The polling core feeds the machine a congestion sample per poll visit
/// (max head-of-ring sojourn plus whether any worker window was
/// backpressured); the machine folds it into an EWMA and, while the EWMA
/// sits above `enter_sojourn`, treats the best-effort application as if
/// the LC app were congested: BE cores are revoked and grants are
/// suppressed — *shed BE share before touching LC requests*. Hysteresis
/// comes from two sides so the controller cannot chatter at the
/// threshold: re-admission requires the EWMA below the (lower)
/// `exit_sojourn`, and no transition may follow another within
/// `min_dwell`.
#[derive(Clone, Copy, Debug)]
pub struct BrownoutConfig {
    /// EWMA of ring sojourn above which the brownout engages.
    pub enter_sojourn: Nanos,
    /// EWMA below which the brownout releases (must be `< enter_sojourn`
    /// for hysteresis).
    pub exit_sojourn: Nanos,
    /// EWMA weight as a right-shift (3 → α = ⅛ per sample).
    pub ewma_shift: u32,
    /// Minimum time between brownout state transitions.
    pub min_dwell: Nanos,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            enter_sojourn: Nanos::from_us(50),
            exit_sojourn: Nanos::from_us(10),
            ewma_shift: 3,
            min_dwell: Nanos::from_us(100),
        }
    }
}

/// Tunables of the fault-recovery mechanisms (consumed by the `chaos`
/// feature's watchdog and retry machinery; see `crate::chaos`).
///
/// The defaults are the "recovery on" configuration used by the
/// `chaos_sweep` bench; [`RecoveryConfig::disabled`] turns every mechanism
/// off so injected faults run their full course (the degradation baseline).
#[derive(Clone, Copy, Debug)]
pub struct RecoveryConfig {
    /// Period of the machine-wide watchdog that scans worker cores for a
    /// lost §3.2 arming (empty PIR) and for stalled workers. The watchdog
    /// models a monitor thread on a non-isolated core, so its scans cost
    /// the workers nothing.
    pub watchdog_period: Nanos,
    /// Re-arm a `UserTimer` worker whose PIR the watchdog finds empty
    /// (the handler's self-`SENDUIPI` was lost).
    pub rearm_timers: bool,
    /// Minimum no-progress window before a worker counts as stalled. The
    /// effective threshold is `max(stall_detect_after, 8 x tick period)`
    /// so slow-tick platforms are not misdiagnosed.
    pub stall_detect_after: Nanos,
    /// Migrate the runqueue of a stalled worker to its siblings.
    pub migrate_on_stall: bool,
    /// How long after sending a §5.2 revoke IPI the allocator waits for
    /// the grant state to clear before resending.
    pub revoke_retry_timeout: Nanos,
    /// Maximum revoke resends (with doubling backoff) before the allocator
    /// abandons the cycle and lets a later congestion tick start over.
    pub revoke_retry_budget: u32,
    /// Re-run the dispatcher's quantum check one quantum after it sends a
    /// preempt IPI, so a dropped IPI delays a preemption by one quantum
    /// instead of losing it.
    pub preempt_recheck: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            watchdog_period: Nanos::from_us(25),
            rearm_timers: true,
            stall_detect_after: Nanos::from_us(100),
            migrate_on_stall: true,
            revoke_retry_timeout: Nanos::from_us(5),
            revoke_retry_budget: 3,
            preempt_recheck: true,
        }
    }
}

impl RecoveryConfig {
    /// Every recovery mechanism off: faults degrade the machine unchecked.
    pub fn disabled() -> Self {
        RecoveryConfig {
            watchdog_period: Nanos::from_us(25),
            rearm_timers: false,
            stall_detect_after: Nanos::from_us(100),
            migrate_on_stall: false,
            revoke_retry_timeout: Nanos::from_us(5),
            revoke_retry_budget: 0,
            preempt_recheck: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skyloft_percpu_platform_shape() {
        let p = Platform::skyloft_percpu(Topology::single(4), 100_000);
        assert!(matches!(
            p.mech,
            PreemptMechanism::UserTimer { hz: 100_000 }
        ));
        assert!(!p.dedicated_dispatcher);
        assert_eq!(p.same_app_switch, Nanos(37));
        assert_eq!(p.cross_app_switch, Nanos(1_905));
    }

    #[test]
    fn centralized_platform_has_dispatcher() {
        let p = Platform::skyloft_centralized(Topology::single(21));
        assert!(p.dedicated_dispatcher);
        assert!(matches!(p.mech, PreemptMechanism::UserIpi));
    }

    #[test]
    fn table5_parameters() {
        assert_eq!(SchedParams::SKYLOFT_CFS.min_granularity, Nanos(12_500));
        assert_eq!(SchedParams::SKYLOFT_RR.time_slice, Nanos::from_us(50));
        assert_eq!(
            SchedParams::LINUX_CFS_DEFAULT.sched_latency,
            Nanos::from_ms(24)
        );
        assert_eq!(
            SchedParams::LINUX_RR_DEFAULT.time_slice,
            Nanos::from_ms(100)
        );
    }

    #[test]
    fn core_alloc_defaults_match_shenango() {
        let c = CoreAllocConfig::default();
        assert_eq!(c.interval, Nanos::from_us(5));
    }

    #[test]
    fn slo_class_presets() {
        let lc = SloClass::latency_critical(Nanos::from_us(200));
        let be = SloClass::batch(Nanos::from_ms(5));
        assert!(lc.slo < be.slo);
        assert!(lc.weight > be.weight);
        assert!(lc.retry_frac > be.retry_frac);
    }

    #[test]
    fn runqueue_aqm_defaults_are_ordered() {
        let c = RunqueueAqmConfig::default();
        assert!(c.target < c.interval);
        assert!(c.poll_every < c.interval);
        assert!(c.sheddable_slo > c.target, "only loose classes shed");
    }

    #[test]
    fn disabled_recovery_turns_every_mechanism_off() {
        let r = RecoveryConfig::disabled();
        assert!(!r.rearm_timers);
        assert!(!r.migrate_on_stall);
        assert!(!r.preempt_recheck);
        assert_eq!(r.revoke_retry_budget, 0);
        let on = RecoveryConfig::default();
        assert!(on.rearm_timers && on.migrate_on_stall && on.preempt_recheck);
        assert!(on.revoke_retry_budget > 0);
    }
}
