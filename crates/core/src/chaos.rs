//! Deterministic fault injection and recovery (the "chaos" layer).
//!
//! Skyloft's correctness rests on fragile per-event disciplines: the §3.2
//! SN-armed-PIR timer trick silently degrades to run-to-completion if a
//! single self-IPI is lost, the Single Binding Rule dies with a stalled
//! kernel thread, and §6's blocking events take a core out mid-request.
//! This module makes those failure modes *first-class and reproducible*:
//!
//! * A seeded [`FaultPlan`] describes which faults to inject — dropped or
//!   delayed timer-arming self-IPIs, dropped/delayed preempt and revoke
//!   IPIs, page faults of running kernel threads, execution stalls of
//!   whole cores. Plans draw from their own deterministic RNG
//!   ([`ChaosEngine`]), so a `(machine seed, plan seed)` pair replays
//!   bit-identically.
//! * The recovery half ([`crate::conf::RecoveryConfig`]) is the framework
//!   learning to survive them: a watchdog that re-arms a lost §3.2 arming
//!   and migrates the runqueue of a stalled worker, bounded
//!   retry-with-backoff on §5.2 revoke IPIs, and end-to-end wiring of the
//!   §6 [`FaultMonitor`] so a page fault parks the thread and a substitute
//!   application's thread takes the core mid-run.
//!
//! Injection happens at the existing `Machine::handle` choke points, and
//! every recovery action flows through the `trace` layer, so the runtime
//! invariant checker validates the machine *through* each fault, not just
//! around it. The whole module sits behind the `chaos` cargo feature (on
//! by default); `--no-default-features` compiles it out entirely, leaving
//! zero cost on the event hot path. Even when compiled in, nothing fires
//! until [`Machine::install_fault_plan`] is called — machines without a
//! plan process exactly the same event stream as a chaos-free build.
//!
//! [`FaultMonitor`]: skyloft_kmod::FaultMonitor

use skyloft_hw::CoreId;
use skyloft_kmod::{KthreadState, Tid};
use skyloft_sim::{Distribution, EventQueue, Nanos, Rng};

use crate::conf::PreemptMechanism;
use crate::machine::{CoreRole, Event, IpiPurpose, Machine};
use crate::ops::{EnqueueFlags, PolicyKind};
use crate::task::{AppId, TaskId, TaskState};
#[cfg(feature = "trace")]
use crate::trace::TraceKind;

/// A recurring injected fault: occurrences arrive as a Poisson process
/// with the given mean interval, each lasting `duration`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeriodicFault {
    /// Mean gap between occurrences (exponentially distributed).
    pub mean_interval: Nanos,
    /// How long each occurrence lasts.
    pub duration: Nanos,
}

/// A seeded, deterministic description of which faults to inject.
///
/// All probabilities are per-opportunity: `drop_arming_p` is evaluated at
/// every delivered user-timer interrupt, the IPI knobs at every sent
/// preempt/revoke notification. The default plan injects nothing (useful
/// to enable the recovery machinery without faults).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injection RNG (independent of the machine seed).
    pub seed: u64,
    /// Probability that the §3.2 handler's re-arm self-IPI is lost before
    /// reaching the PIR (evaluated per delivered timer interrupt).
    pub drop_arming_p: f64,
    /// Probability that a preempt IPI notification is lost in the fabric.
    pub drop_preempt_p: f64,
    /// With probability `.0`, delay a preempt IPI by `.1`.
    pub delay_preempt: Option<(f64, Nanos)>,
    /// Probability that a §5.2 revoke IPI notification is lost.
    pub drop_revoke_p: f64,
    /// With probability `.0`, delay a revoke IPI by `.1`.
    pub delay_revoke: Option<(f64, Nanos)>,
    /// Page-fault a running kernel thread on a random worker (§6).
    pub page_fault: Option<PeriodicFault>,
    /// Stall a random busy worker (SMI / host-interference model).
    pub stall: Option<PeriodicFault>,
    /// Probability that an RX-ring poll visit is skipped entirely
    /// (evaluated per poll round; models a distracted polling core).
    pub drop_rx_poll_p: f64,
    /// With probability `.0`, add `.1` of latency to a poll round's
    /// drained batch before hand-off to the workers.
    pub delay_rx_poll: Option<(f64, Nanos)>,
    /// Periodically wedge an RSS indirection-table entry onto a fixed
    /// ring for the fault's duration (models a stuck NIC redirection
    /// update), concentrating load on one RX ring.
    pub stuck_indirection: Option<PeriodicFault>,
    /// Scope core-level faults (arming drops, IPI drops/delays, page
    /// faults, stalls) to cores whose *active application* is this one;
    /// `None` (the default) injects machine-wide. Scoping is
    /// draw-then-filter: the injection RNG is consumed exactly as in an
    /// unscoped run and only the fault's *effect* is suppressed on
    /// non-matching cores, so adding a scope never perturbs the fault
    /// schedule other apps would have seen — the RNG-neutrality the
    /// replay tests in `tests/chaos.rs` pin down. Data-plane faults
    /// (RX-poll drops/delays, indirection sticks) hit the shared NIC and
    /// are deliberately *not* scoped.
    pub target_app: Option<AppId>,
}

impl FaultPlan {
    /// An empty plan drawing from `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the arming-drop probability.
    pub fn drop_arming(mut self, p: f64) -> Self {
        self.drop_arming_p = p;
        self
    }

    /// Sets the preempt-IPI drop probability.
    pub fn drop_preempt(mut self, p: f64) -> Self {
        self.drop_preempt_p = p;
        self
    }

    /// Delays preempt IPIs by `d` with probability `p`.
    pub fn delay_preempt(mut self, p: f64, d: Nanos) -> Self {
        self.delay_preempt = Some((p, d));
        self
    }

    /// Sets the revoke-IPI drop probability.
    pub fn drop_revoke(mut self, p: f64) -> Self {
        self.drop_revoke_p = p;
        self
    }

    /// Delays revoke IPIs by `d` with probability `p`.
    pub fn delay_revoke(mut self, p: f64, d: Nanos) -> Self {
        self.delay_revoke = Some((p, d));
        self
    }

    /// Page-faults a random running kernel thread for `duration`, at mean
    /// intervals of `mean_interval`.
    pub fn page_faults(mut self, mean_interval: Nanos, duration: Nanos) -> Self {
        self.page_fault = Some(PeriodicFault {
            mean_interval,
            duration,
        });
        self
    }

    /// Stalls a random busy worker for `duration`, at mean intervals of
    /// `mean_interval`.
    pub fn stalls(mut self, mean_interval: Nanos, duration: Nanos) -> Self {
        self.stall = Some(PeriodicFault {
            mean_interval,
            duration,
        });
        self
    }

    /// Sets the RX-poll drop probability (whole poll visits skipped).
    pub fn drop_rx_polls(mut self, p: f64) -> Self {
        self.drop_rx_poll_p = p;
        self
    }

    /// Delays an RX poll round's hand-off by `d` with probability `p`.
    pub fn delay_rx_polls(mut self, p: f64, d: Nanos) -> Self {
        self.delay_rx_poll = Some((p, d));
        self
    }

    /// Wedges an RSS indirection entry for `duration`, at mean intervals
    /// of `mean_interval`.
    pub fn stuck_indirections(mut self, mean_interval: Nanos, duration: Nanos) -> Self {
        self.stuck_indirection = Some(PeriodicFault {
            mean_interval,
            duration,
        });
        self
    }

    /// Scopes core-level faults to cores actively running `app` (see
    /// [`FaultPlan::target_app`] for the exact semantics).
    pub fn scope_to_app(mut self, app: AppId) -> Self {
        self.target_app = Some(app);
        self
    }
}

/// Counters of faults actually injected while a plan ran.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosStats {
    /// §3.2 re-arm self-IPIs dropped.
    pub armings_dropped: u64,
    /// Preempt IPI notifications dropped.
    pub preempts_dropped: u64,
    /// Preempt IPI notifications delayed.
    pub preempts_delayed: u64,
    /// Revoke IPI notifications dropped.
    pub revokes_dropped: u64,
    /// Revoke IPI notifications delayed.
    pub revokes_delayed: u64,
    /// Page faults injected into running kernel threads.
    pub page_faults_injected: u64,
    /// Core stalls injected.
    pub stalls_injected: u64,
    /// RX-ring poll visits skipped.
    pub rx_polls_dropped: u64,
    /// RX poll rounds delayed before hand-off.
    pub rx_polls_delayed: u64,
    /// RSS indirection-table entries wedged.
    pub indirection_sticks: u64,
}

/// An installed [`FaultPlan`] plus its RNG and injection counters.
#[derive(Clone, Debug)]
pub struct ChaosEngine {
    /// The plan being executed.
    pub plan: FaultPlan,
    /// What was injected so far.
    pub stats: ChaosStats,
    rng: Rng,
    /// When the next indirection-stick fires (lazily drawn: the data
    /// plane is poller-driven, not event-driven, so the schedule advances
    /// only as polls ask).
    next_indirection_stick: Option<Nanos>,
}

impl ChaosEngine {
    /// Builds an engine for `plan`, seeding the injection RNG from it.
    pub fn new(plan: FaultPlan) -> Self {
        ChaosEngine {
            rng: Rng::seed_from_u64(plan.seed ^ 0xC4A0_5BAD),
            plan,
            stats: ChaosStats::default(),
            next_indirection_stick: None,
        }
    }
}

/// Chaos-layer simulation events, wrapped as [`Event::Chaos`].
#[derive(Clone, Copy, Debug)]
pub enum ChaosEvent {
    /// Periodic recovery scan: re-arm lost §3.2 armings, detect stalled
    /// workers (models a monitor thread on a non-isolated core).
    Watchdog,
    /// Injector tick: page-fault a random running kernel thread.
    PageFaultTick,
    /// Injector tick: stall a random busy worker.
    StallTick,
    /// An injected page fault resolved (the userfaultfd monitor served the
    /// page); the blocked thread becomes parked again.
    FaultResolve {
        /// Core the faulted thread is bound to.
        core: CoreId,
        /// The faulted kernel thread.
        tid: Tid,
    },
    /// Bounded-retry timer for an in-flight §5.2 revoke.
    RevokeRetry {
        /// Core being revoked.
        core: CoreId,
        /// Revoke-cycle generation (stale retries are ignored).
        epoch: u32,
        /// Resends performed so far.
        attempt: u32,
    },
}

impl Machine {
    /// Installs a fault plan. Must be called before [`Machine::start`];
    /// starting a machine with a plan installed also activates the
    /// recovery machinery configured in [`Machine::recovery`]
    /// (set `recovery = RecoveryConfig::disabled()` to watch the faults
    /// run their course).
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        assert!(!self.started, "install fault plans before start()");
        self.chaos = Some(ChaosEngine::new(plan));
    }

    /// Whether core `core`'s §3.2 arming is currently known-lost to an
    /// injected fault (the invariant checker tolerates an empty PIR only
    /// in this state).
    pub fn core_arming_lost(&self, core: CoreId) -> bool {
        self.cores[core].arming_lost
    }

    /// Schedules the chaos machinery at start time. Nothing is scheduled
    /// without an installed plan, so plan-free machines process exactly
    /// the event stream a chaos-free build would.
    pub(crate) fn chaos_start(&mut self, q: &mut EventQueue<Event>) {
        if self.chaos.is_none() {
            return;
        }
        let watchdog_useful = (self.recovery.rearm_timers
            && matches!(self.plat.mech, PreemptMechanism::UserTimer { .. }))
            || (self.recovery.migrate_on_stall && self.policy.kind() == PolicyKind::PerCpu);
        if watchdog_useful {
            q.schedule_after(
                self.recovery.watchdog_period,
                Event::Chaos(ChaosEvent::Watchdog),
            );
        }
        let eng = self.chaos.as_mut().expect("plan installed");
        if let Some(pf) = eng.plan.page_fault {
            let gap = Distribution::Exponential(pf.mean_interval).sample(&mut eng.rng);
            q.schedule_after(gap.max(Nanos(1)), Event::Chaos(ChaosEvent::PageFaultTick));
        }
        if let Some(st) = eng.plan.stall {
            let gap = Distribution::Exponential(st.mean_interval).sample(&mut eng.rng);
            q.schedule_after(gap.max(Nanos(1)), Event::Chaos(ChaosEvent::StallTick));
        }
    }

    /// Dispatches a chaos event to its handler.
    pub(crate) fn on_chaos_event(&mut self, ev: ChaosEvent, q: &mut EventQueue<Event>) {
        match ev {
            ChaosEvent::Watchdog => self.on_watchdog(q),
            ChaosEvent::PageFaultTick => self.on_page_fault_tick(q),
            ChaosEvent::StallTick => self.on_stall_tick(q),
            ChaosEvent::FaultResolve { core, tid } => self.on_fault_resolve(q, core, tid),
            ChaosEvent::RevokeRetry {
                core,
                epoch,
                attempt,
            } => self.on_revoke_retry(q, core, epoch, attempt),
        }
    }

    // ------------------------------------------------------------------
    // Injection hooks (called from the machine's event handlers)
    // ------------------------------------------------------------------

    /// Whether `core` is outside the plan's fault scope: a `target_app`
    /// is set and the core is not actively running it. Scoped-out cores
    /// still consume the same injection RNG draws (draw-then-filter);
    /// only the fault's effect is suppressed.
    fn chaos_scoped_out(&self, core: CoreId) -> bool {
        match self.chaos.as_ref().and_then(|e| e.plan.target_app) {
            Some(app) => self.cores[core].cur_app != Some(app),
            None => false,
        }
    }

    /// Whether the §3.2 handler's re-arm self-IPI should be dropped now.
    /// Marks the core's arming as lost so the watchdog (and the invariant
    /// checker's budget) know the empty PIR is an injected state.
    pub(crate) fn chaos_drop_arming(&mut self, core: CoreId) -> bool {
        let scoped_out = self.chaos_scoped_out(core);
        let Some(eng) = self.chaos.as_mut() else {
            return false;
        };
        if !eng.rng.chance(eng.plan.drop_arming_p) {
            return false;
        }
        if scoped_out {
            return false;
        }
        eng.stats.armings_dropped += 1;
        self.cores[core].arming_lost = true;
        true
    }

    /// Fate of a preempt/revoke notification to `core`: `None` means the
    /// fabric lost it (any posted PIR bit stays set, but the core is never
    /// interrupted); `Some(d)` adds `d` of extra delivery latency. Both
    /// chance draws happen before the scope filter so scoped plans stay
    /// RNG-aligned with unscoped ones.
    pub(crate) fn chaos_ipi_extra_delay(
        &mut self,
        core: CoreId,
        purpose: IpiPurpose,
    ) -> Option<Nanos> {
        let scoped_out = self.chaos_scoped_out(core);
        let Some(eng) = self.chaos.as_mut() else {
            return Some(Nanos::ZERO);
        };
        let (drop_p, delay) = match purpose {
            IpiPurpose::Preempt => (eng.plan.drop_preempt_p, eng.plan.delay_preempt),
            IpiPurpose::Revoke => (eng.plan.drop_revoke_p, eng.plan.delay_revoke),
        };
        if eng.rng.chance(drop_p) {
            if scoped_out {
                return Some(Nanos::ZERO);
            }
            match purpose {
                IpiPurpose::Preempt => eng.stats.preempts_dropped += 1,
                IpiPurpose::Revoke => eng.stats.revokes_dropped += 1,
            }
            return None;
        }
        if let Some((p, d)) = delay {
            if eng.rng.chance(p) {
                if scoped_out {
                    return Some(Nanos::ZERO);
                }
                match purpose {
                    IpiPurpose::Preempt => eng.stats.preempts_delayed += 1,
                    IpiPurpose::Revoke => eng.stats.revokes_delayed += 1,
                }
                return Some(d);
            }
        }
        Some(Nanos::ZERO)
    }

    /// Fate of one RX-ring poll visit: `None` skips the visit entirely
    /// (the ring keeps aging), `Some(d)` proceeds with `d` of extra
    /// hand-off latency (`ZERO` normally). When the data-plane knobs are
    /// unset this returns without touching the injection RNG, so plans
    /// written before these knobs existed replay bit-identically.
    pub fn chaos_rx_poll_fate(&mut self) -> Option<Nanos> {
        let Some(eng) = self.chaos.as_mut() else {
            return Some(Nanos::ZERO);
        };
        if eng.plan.drop_rx_poll_p == 0.0 && eng.plan.delay_rx_poll.is_none() {
            return Some(Nanos::ZERO);
        }
        if eng.rng.chance(eng.plan.drop_rx_poll_p) {
            eng.stats.rx_polls_dropped += 1;
            return None;
        }
        if let Some((p, d)) = eng.plan.delay_rx_poll {
            if eng.rng.chance(p) {
                eng.stats.rx_polls_delayed += 1;
                return Some(d);
            }
        }
        Some(Nanos::ZERO)
    }

    /// Asks whether an RSS indirection-stick fault fires at `now`; if so,
    /// returns how long the wedged entry should stay stuck. Poller-driven
    /// (the NIC lives outside this crate), so the Poisson schedule is
    /// drawn lazily on first call and advanced per firing. Consumes no
    /// RNG when the knob is unset.
    pub fn chaos_indirection_stick(&mut self, now: Nanos) -> Option<Nanos> {
        let eng = self.chaos.as_mut()?;
        let si = eng.plan.stuck_indirection?;
        let next = match eng.next_indirection_stick {
            Some(t) => t,
            None => {
                let gap = Distribution::Exponential(si.mean_interval).sample(&mut eng.rng);
                let t = now + gap.max(Nanos(1));
                eng.next_indirection_stick = Some(t);
                t
            }
        };
        if now < next {
            return None;
        }
        let gap = Distribution::Exponential(si.mean_interval).sample(&mut eng.rng);
        eng.next_indirection_stick = Some(now + gap.max(Nanos(1)));
        eng.stats.indirection_sticks += 1;
        Some(si.duration)
    }

    /// If `core` is inside an injected stall, the instant it resumes.
    pub(crate) fn stall_resume_at(&self, core: CoreId, now: Nanos) -> Option<Nanos> {
        let until = self.cores[core].stalled_until;
        (until > now).then_some(until)
    }

    /// Records a progress heartbeat for `core` (tick processed, task
    /// switched in, segment completed) — the watchdog's stall signal.
    pub(crate) fn note_progress(&mut self, core: CoreId, now: Nanos) {
        self.cores[core].last_progress = now;
    }

    /// Whether application `app` can take core `core` right now: either
    /// its kernel thread is already active there, or it is parked and
    /// wakeable/switchable (not fault-blocked).
    pub(crate) fn kthread_ready(&self, core: CoreId, app: AppId) -> bool {
        let c = &self.cores[core];
        if c.cur_app == Some(app) {
            return true;
        }
        match c.kthreads.get(app) {
            Some(&tid) => matches!(
                self.kmod.kthread(tid).map(|t| t.state),
                Ok(KthreadState::Inactive)
            ),
            None => false,
        }
    }

    /// Whether the centralized dispatcher may place work on `core`: cores
    /// with an unresolved fault-blocked thread are skipped (conservative —
    /// the §6 substitute may still run its own app's queued work through
    /// the per-core loop).
    pub(crate) fn core_usable(&self, core: CoreId) -> bool {
        self.kmod.fault_blocked_on(core).is_none()
    }

    /// Dequeue-side readiness filter for the per-CPU loop: skips tasks
    /// whose application cannot take `core` right now (its kernel thread
    /// is fault-blocked), re-queueing them for after resolution. A no-op
    /// without an installed plan.
    pub(crate) fn filter_ready(
        &mut self,
        core: CoreId,
        first: Option<TaskId>,
        now: Nanos,
    ) -> Option<TaskId> {
        if self.chaos.is_none() {
            return first;
        }
        let mut skipped = Vec::new();
        let mut cand = first;
        while let Some(t) = cand {
            if self.kthread_ready(core, self.tasks.get(t).app) {
                break;
            }
            skipped.push(t);
            cand = self.policy.task_dequeue(&mut self.tasks, core, now);
        }
        for t in skipped {
            self.policy
                .task_enqueue(&mut self.tasks, t, Some(core), EnqueueFlags::Preempted, now);
            self.dispatch_gen += 1;
        }
        cand
    }

    /// Arms the bounded revoke-retry timer after the §5.2 allocator sends
    /// a revoke IPI. Retries only run while a fault plan is installed (the
    /// only source of lost revokes in this simulated world).
    pub(crate) fn after_revoke_sent(&mut self, q: &mut EventQueue<Event>, core: CoreId) {
        if self.chaos.is_none() || self.recovery.revoke_retry_budget == 0 {
            return;
        }
        let epoch = self.cores[core].revoke_epoch.wrapping_add(1);
        self.cores[core].revoke_epoch = epoch;
        q.schedule_after(
            self.recovery.revoke_retry_timeout,
            Event::Chaos(ChaosEvent::RevokeRetry {
                core,
                epoch,
                attempt: 0,
            }),
        );
    }

    // ------------------------------------------------------------------
    // Direct injection (also used by the periodic injector ticks)
    // ------------------------------------------------------------------

    /// Page-faults the kernel thread active on `core` (§6 blocking event):
    /// the running task is frozen and re-enqueued, the thread blocks in
    /// the kernel, and — if another application has a parked thread on the
    /// core — the [`FaultMonitor`] wakes it as a substitute. The fault
    /// resolves after `duration`. Returns whether a fault was injected
    /// (`false` when the core has no active thread or is mid-stall).
    ///
    /// [`FaultMonitor`]: skyloft_kmod::FaultMonitor
    pub fn inject_page_fault(
        &mut self,
        q: &mut EventQueue<Event>,
        core: CoreId,
        duration: Nanos,
    ) -> bool {
        let now = q.now();
        if core >= self.cores.len() || self.cores[core].role != CoreRole::Worker {
            return false;
        }
        if self.stall_resume_at(core, now).is_some() {
            return false;
        }
        let Some(app) = self.cores[core].cur_app else {
            return false;
        };
        let tid = self.cores[core].kthreads[app];
        if self.kmod.kthread(tid).map(|t| t.state) != Ok(KthreadState::Active) {
            return false;
        }

        // Freeze whatever is running: the kernel thread is about to leave
        // the runnable set mid-segment.
        let stopped = self.cores[core].current.take();
        self.refresh_idle(core);
        if let Some(t) = stopped {
            if let Some(tok) = self.cores[core].done_token.take() {
                q.cancel(tok);
            }
            self.close_busy(now, core);
            let remaining = self.cores[core].seg_end.saturating_sub(now);
            let task = self.tasks.get_mut(t);
            let executed = task.remaining.saturating_sub(remaining);
            task.total_ran += executed;
            task.remaining = remaining;
            task.state = TaskState::Runnable;
            task.preempt_count += 1;
            task.runnable_since = now;
        }

        let sub = self
            .fault_monitor
            .on_fault(&mut self.kmod, tid)
            .expect("fault preconditions checked above");
        self.stats.fault_blocks += 1;
        #[cfg(feature = "trace")]
        self.trace_emit(now, Some(core), stopped, TraceKind::FaultBlock);
        match sub {
            Some(s) => {
                let sub_app = self.kmod.kthread(s).expect("substitute exists").app;
                self.cores[core].cur_app = Some(sub_app);
                self.stats.fault_substitutions += 1;
            }
            None => self.cores[core].cur_app = None,
        }
        // The frozen task goes back to the queues; the readiness guards
        // keep it from being run while its kernel thread is blocked.
        if let Some(t) = stopped {
            if Some(t) != self.cores[core].be_task {
                self.enqueue_task(q, t, EnqueueFlags::Preempted, None);
            }
            // A BE spin task stays machine-managed and parked-in-place.
        }
        // Let the substitute look for runnable work of its own.
        if sub.is_some() && self.cores[core].is_idle() {
            self.schedule_loop(q, core, Nanos::ZERO);
        }
        q.schedule_after(
            duration,
            Event::Chaos(ChaosEvent::FaultResolve { core, tid }),
        );
        true
    }

    /// Stalls `core` for `duration`: the current segment is extended and
    /// timer/IPI processing is suppressed until the stall ends (SMI or
    /// host-interference model). Returns whether a stall was injected
    /// (`false` on an idle or already-stalled core).
    pub fn inject_stall(
        &mut self,
        q: &mut EventQueue<Event>,
        core: CoreId,
        duration: Nanos,
    ) -> bool {
        let now = q.now();
        if core >= self.cores.len() || self.cores[core].role != CoreRole::Worker {
            return false;
        }
        if self.cores[core].current.is_none() || self.stall_resume_at(core, now).is_some() {
            return false;
        }
        self.cores[core].stalled_until = now + duration;
        self.delay_current(q, core, duration);
        true
    }

    // ------------------------------------------------------------------
    // Recovery handlers
    // ------------------------------------------------------------------

    /// The periodic recovery scan: re-arm workers whose PIR an injected
    /// drop emptied, and migrate the runqueues of workers that stopped
    /// making progress.
    fn on_watchdog(&mut self, q: &mut EventQueue<Event>) {
        q.schedule_after(
            self.recovery.watchdog_period,
            Event::Chaos(ChaosEvent::Watchdog),
        );
        let now = q.now();
        if self.recovery.rearm_timers
            && matches!(self.plat.mech, PreemptMechanism::UserTimer { .. })
        {
            for i in 0..self.worker_cores.len() {
                let core = self.worker_cores[i];
                let Some(upid) = self.cores[core].upid else {
                    continue;
                };
                if self.uintr.pir_armed(upid) {
                    continue;
                }
                let arm = self.cores[core]
                    .arm_entry
                    .expect("UserTimer worker is configured");
                self.uintr.senduipi(arm);
                self.cores[core].arming_lost = false;
                self.stats.timer_rearms += 1;
                #[cfg(feature = "trace")]
                self.trace_emit(
                    now,
                    Some(core),
                    self.cores[core].current,
                    TraceKind::TimerRearm,
                );
            }
        }
        if self.recovery.migrate_on_stall && self.policy.kind() == PolicyKind::PerCpu {
            for i in 0..self.worker_cores.len() {
                let core = self.worker_cores[i];
                let Some(threshold) = self.stall_threshold(core) else {
                    continue;
                };
                if self.cores[core].current.is_none() {
                    continue;
                }
                if now.saturating_sub(self.cores[core].last_progress) <= threshold {
                    continue;
                }
                self.migrate_runqueue(q, core, now);
            }
        }
    }

    /// No-progress window after which a busy worker counts as stalled:
    /// at least `stall_detect_after`, scaled up on slow-tick platforms so
    /// a healthy worker between ticks is never misdiagnosed. `None` on
    /// mechanisms without a periodic heartbeat.
    fn stall_threshold(&self, core: CoreId) -> Option<Nanos> {
        let tick = match self.plat.mech {
            PreemptMechanism::UserTimer { .. } | PreemptMechanism::KernelTick { .. } => {
                if !self.apic.timer_active(core) {
                    return None;
                }
                self.apic.timer(core).period()
            }
            PreemptMechanism::UserIpi => self.utimer_period?,
            _ => return None,
        };
        Some(
            self.recovery
                .stall_detect_after
                .max(Nanos(tick.0.saturating_mul(8))),
        )
    }

    /// Drains the runqueue of a stalled worker onto its healthy siblings.
    fn migrate_runqueue(&mut self, q: &mut EventQueue<Event>, core: CoreId, now: Nanos) {
        let n = self.worker_cores.len();
        let mut migrated = 0u64;
        let mut cursor = 0usize;
        while let Some(t) = self.policy.task_dequeue(&mut self.tasks, core, now) {
            let app = self.tasks.get(t).app;
            let mut target = None;
            for k in 0..n {
                let cand = self.worker_cores[(core + 1 + cursor + k) % n];
                if cand == core
                    || self.stall_resume_at(cand, now).is_some()
                    || !self.kthread_ready(cand, app)
                {
                    continue;
                }
                target = Some(cand);
                cursor += k + 1;
                break;
            }
            let Some(target) = target else {
                // No healthy sibling can take it; put it back and stop.
                self.policy.task_enqueue(
                    &mut self.tasks,
                    t,
                    Some(core),
                    EnqueueFlags::Preempted,
                    now,
                );
                self.dispatch_gen += 1;
                break;
            };
            self.policy.task_enqueue(
                &mut self.tasks,
                t,
                Some(target),
                EnqueueFlags::Preempted,
                now,
            );
            self.dispatch_gen += 1;
            self.tasks.get_mut(t).last_cpu = Some(target);
            migrated += 1;
            #[cfg(feature = "trace")]
            self.trace_emit(now, Some(target), Some(t), TraceKind::TaskMigrated);
            if self.cores[target].is_idle() {
                self.cores[target].incoming = true;
                self.refresh_idle(target);
                q.schedule_after(self.plat.wake_latency, Event::StartCore { core: target });
            }
        }
        if migrated > 0 {
            self.stats.stalls_detected += 1;
            self.stats.tasks_migrated += migrated;
            #[cfg(feature = "trace")]
            self.trace_emit(
                now,
                Some(core),
                self.cores[core].current,
                TraceKind::WorkerStalled,
            );
        }
    }

    /// An injected page fault resolved: the blocked thread becomes parked
    /// again (it does *not* preempt the substitute), and an idle core is
    /// kicked so queued work held back by the readiness guards can run.
    fn on_fault_resolve(&mut self, q: &mut EventQueue<Event>, core: CoreId, tid: Tid) {
        if self.fault_monitor.on_resolved(&mut self.kmod, tid).is_err() {
            return;
        }
        self.stats.fault_resolves += 1;
        #[cfg(feature = "trace")]
        self.trace_emit(
            q.now(),
            Some(core),
            self.cores[core].current,
            TraceKind::FaultResolve,
        );
        if self.cores[core].is_idle() {
            self.cores[core].incoming = true;
            self.refresh_idle(core);
            q.schedule_after(self.plat.wake_latency, Event::StartCore { core });
        }
    }

    /// Bounded retry-with-backoff for a §5.2 revoke whose IPI never took
    /// effect. Stale epochs (a newer cycle started) and completed revokes
    /// are ignored; at budget exhaustion the in-flight marker clears so a
    /// later congestion tick can start a fresh cycle.
    fn on_revoke_retry(
        &mut self,
        q: &mut EventQueue<Event>,
        core: CoreId,
        epoch: u32,
        attempt: u32,
    ) {
        let c = &self.cores[core];
        if c.revoke_epoch != epoch || !c.revoking || !c.granted_to_be {
            return;
        }
        if attempt >= self.recovery.revoke_retry_budget {
            self.cores[core].revoking = false;
            return;
        }
        self.stats.ipi_retries += 1;
        #[cfg(feature = "trace")]
        self.trace_emit(
            q.now(),
            Some(core),
            self.cores[core].be_task,
            TraceKind::IpiRetry,
        );
        self.send_preempt_ipi(q, core, None, IpiPurpose::Revoke);
        let backoff = Nanos(
            self.recovery
                .revoke_retry_timeout
                .0
                .saturating_mul(1u64 << (attempt + 1).min(16)),
        );
        q.schedule_after(
            backoff,
            Event::Chaos(ChaosEvent::RevokeRetry {
                core,
                epoch,
                attempt: attempt + 1,
            }),
        );
    }

    // ------------------------------------------------------------------
    // Periodic injector ticks
    // ------------------------------------------------------------------

    fn on_page_fault_tick(&mut self, q: &mut EventQueue<Event>) {
        let (core, duration) = {
            let Some(eng) = self.chaos.as_mut() else {
                return;
            };
            let Some(pf) = eng.plan.page_fault else {
                return;
            };
            let gap = Distribution::Exponential(pf.mean_interval).sample(&mut eng.rng);
            q.schedule_after(gap.max(Nanos(1)), Event::Chaos(ChaosEvent::PageFaultTick));
            let idx = eng.rng.next_below(self.worker_cores.len() as u64) as usize;
            (self.worker_cores[idx], pf.duration)
        };
        // Draw-then-filter: the gap and victim draws above happened
        // regardless of scope, so scoped plans replay on the same
        // schedule; only the injection itself is suppressed.
        if self.chaos_scoped_out(core) {
            return;
        }
        if self.inject_page_fault(q, core, duration) {
            self.chaos
                .as_mut()
                .expect("plan installed")
                .stats
                .page_faults_injected += 1;
        }
    }

    fn on_stall_tick(&mut self, q: &mut EventQueue<Event>) {
        let (core, duration) = {
            let Some(eng) = self.chaos.as_mut() else {
                return;
            };
            let Some(st) = eng.plan.stall else {
                return;
            };
            let gap = Distribution::Exponential(st.mean_interval).sample(&mut eng.rng);
            q.schedule_after(gap.max(Nanos(1)), Event::Chaos(ChaosEvent::StallTick));
            let idx = eng.rng.next_below(self.worker_cores.len() as u64) as usize;
            (self.worker_cores[idx], st.duration)
        };
        // Draw-then-filter, as in on_page_fault_tick.
        if self.chaos_scoped_out(core) {
            return;
        }
        if self.inject_stall(q, core, duration) {
            self.chaos
                .as_mut()
                .expect("plan installed")
                .stats
                .stalls_injected += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_value_types_with_builders() {
        let p = FaultPlan::seeded(7)
            .drop_arming(0.01)
            .drop_preempt(0.05)
            .delay_preempt(0.1, Nanos::from_us(3))
            .drop_revoke(0.5)
            .page_faults(Nanos::from_ms(2), Nanos::from_us(100))
            .stalls(Nanos::from_ms(5), Nanos::from_us(50));
        assert_eq!(p.seed, 7);
        assert_eq!(p.drop_arming_p, 0.01);
        assert_eq!(
            p.page_fault,
            Some(PeriodicFault {
                mean_interval: Nanos::from_ms(2),
                duration: Nanos::from_us(100),
            })
        );
        assert_eq!(p, p.clone());
        assert_eq!(FaultPlan::default().drop_arming_p, 0.0);
    }

    #[test]
    fn engines_draw_deterministically_from_the_plan_seed() {
        let mut a = ChaosEngine::new(FaultPlan::seeded(11).drop_arming(0.5));
        let mut b = ChaosEngine::new(FaultPlan::seeded(11).drop_arming(0.5));
        let da: Vec<bool> = (0..64).map(|_| a.rng.chance(0.5)).collect();
        let db: Vec<bool> = (0..64).map(|_| b.rng.chance(0.5)).collect();
        assert_eq!(da, db);
        assert!(da.iter().any(|&x| x) && da.iter().any(|&x| !x));
    }
}
