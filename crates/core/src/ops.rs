//! The general scheduling operations (§3.4, Table 2).
//!
//! A scheduling policy implements [`Policy`]; the framework (the per-core
//! main loops, the preemption handler of Listing 1, the multi-application
//! switcher) calls these operations and never looks inside a policy's
//! runqueues. Per-CPU policies implement `sched_timer_tick` +
//! `sched_balance`; centralized policies implement `sched_poll` and are
//! driven by a dispatcher core. This split is exactly Table 2's.

use skyloft_sim::Nanos;

use crate::task::{TaskId, TaskTable};

/// Core index within the machine.
pub type CoreId = usize;

/// Why a task is being enqueued (the `flags` argument of `task_enqueue`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EnqueueFlags {
    /// Newly created task.
    New,
    /// Task was just woken from a blocked state.
    Wakeup,
    /// Task was preempted (timer tick or dispatcher quantum).
    Preempted,
    /// Task voluntarily yielded.
    Yield,
}

/// Whether a policy is per-CPU (Figure 2a) or centralized (Figure 2b).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PolicyKind {
    /// Per-CPU runqueues; preemption by CPU-local timer interrupts;
    /// optional load balancing via `sched_balance`.
    PerCpu,
    /// Single global queue; a dedicated dispatcher core distributes tasks
    /// via `sched_poll` and preempts workers by sending user IPIs.
    Centralized,
}

/// Static description the framework reads once at `sched_init`.
#[derive(Clone, Debug)]
pub struct SchedEnv {
    /// Worker cores this scheduler manages (excludes the dispatcher).
    pub worker_cores: Vec<CoreId>,
    /// The dispatcher core for centralized policies.
    pub dispatcher: Option<CoreId>,
}

/// The Table 2 scheduling operations.
///
/// All operations receive the shared [`TaskTable`] (the paper's
/// shared-memory task structures) and the current virtual time. Policies
/// keep only `TaskId`s in their internal queues.
pub trait Policy {
    /// Human-readable policy name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Per-CPU or centralized.
    fn kind(&self) -> PolicyKind;

    /// `sched_init`: initializes policy state for the given environment.
    fn sched_init(&mut self, env: &SchedEnv);

    /// `task_init`: initializes the policy-defined field of a new task.
    fn task_init(&mut self, tasks: &mut TaskTable, t: TaskId, now: Nanos);

    /// `task_terminate`: releases policy state for a finished task.
    fn task_terminate(&mut self, tasks: &mut TaskTable, t: TaskId, now: Nanos);

    /// `task_enqueue`: puts a runnable task into a runqueue.
    ///
    /// `cpu_hint` is the core on which the enqueue happens (or the woken
    /// task's preferred core); per-CPU policies choose the actual queue.
    fn task_enqueue(
        &mut self,
        tasks: &mut TaskTable,
        t: TaskId,
        cpu_hint: Option<CoreId>,
        flags: EnqueueFlags,
        now: Nanos,
    );

    /// `task_dequeue`: selects and removes the next task to run on `cpu`.
    fn task_dequeue(&mut self, tasks: &mut TaskTable, cpu: CoreId, now: Nanos) -> Option<TaskId>;

    /// Batched `task_enqueue` for a burst of tasks that become runnable at
    /// the same instant (a same-timestamp event batch). The default is a
    /// loop of singles; policies with aggregate bookkeeping (EEVDF's
    /// weighted-average accumulators, CFS's cached counters) override it to
    /// fold the whole burst into one aggregate update. Overrides MUST be
    /// decision-identical to the serial loop — the batch differential
    /// proptests in `tests/differential.rs` hold them to it.
    fn enqueue_batch(
        &mut self,
        tasks: &mut TaskTable,
        batch: &[(TaskId, Option<CoreId>, EnqueueFlags)],
        now: Nanos,
    ) {
        for &(t, hint, flags) in batch {
            self.task_enqueue(tasks, t, hint, flags, now);
        }
    }

    /// Batched `task_dequeue`: picks up to `max` tasks from `cpu`'s queue,
    /// appending them to `out` in pick order. The default is a loop of
    /// singles; overrides may defer per-pick floor/aggregate maintenance to
    /// once per batch but MUST return the exact serial pick sequence.
    fn pick_batch(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CoreId,
        max: usize,
        now: Nanos,
        out: &mut Vec<TaskId>,
    ) {
        for _ in 0..max {
            match self.task_dequeue(tasks, cpu, now) {
                Some(t) => out.push(t),
                None => break,
            }
        }
    }

    /// `task_block`: the current task on `cpu` suspended itself.
    fn task_block(&mut self, _tasks: &mut TaskTable, _t: TaskId, _cpu: CoreId, _now: Nanos) {}

    /// `task_wakeup`: a blocked task becomes runnable. The default
    /// delegates to `task_enqueue` with [`EnqueueFlags::Wakeup`], matching
    /// Table 2's description ("wakes up the task and puts it back to the
    /// runqueue").
    fn task_wakeup(&mut self, tasks: &mut TaskTable, t: TaskId, hint: Option<CoreId>, now: Nanos) {
        self.task_enqueue(tasks, t, hint, EnqueueFlags::Wakeup, now);
    }

    /// `sched_timer_tick`: called from the user-interrupt handler
    /// (Listing 1). `ran` is how long the current task has run since it was
    /// last scheduled. Returns `true` if the current task must be
    /// preempted.
    fn sched_timer_tick(
        &mut self,
        _tasks: &mut TaskTable,
        _cpu: CoreId,
        _current: TaskId,
        _ran: Nanos,
        _now: Nanos,
    ) -> bool {
        false
    }

    /// `sched_balance`: per-CPU only; invoked on an idle core, may migrate
    /// (steal) a task for `cpu` from another queue.
    fn sched_balance(
        &mut self,
        _tasks: &mut TaskTable,
        _cpu: CoreId,
        _now: Nanos,
    ) -> Option<TaskId> {
        None
    }

    /// `sched_poll`: centralized only; the dispatcher distributes tasks
    /// from the global queue to `idle_workers`, appending the chosen
    /// placements to `out`. The caller provides (and reuses) the output
    /// buffer so polling at dispatch rate stays allocation-free.
    fn sched_poll(
        &mut self,
        _tasks: &mut TaskTable,
        _idle_workers: &[CoreId],
        _now: Nanos,
        _out: &mut Vec<(CoreId, TaskId)>,
    ) {
    }

    /// The preemption quantum for centralized policies; the dispatcher
    /// checks running workers on this period. `None` disables preemption.
    fn quantum(&self) -> Option<Nanos> {
        None
    }

    /// Wakeup-preemption check (per-CPU policies): `woken` was enqueued on
    /// `cpu` where `current` has been running for `ran`. Returning `true`
    /// makes the framework send a rescheduling interrupt to `cpu` (CFS's
    /// `check_preempt_wakeup` path).
    fn check_wakeup_preempt(
        &mut self,
        _tasks: &TaskTable,
        _woken: TaskId,
        _cpu: CoreId,
        _current: TaskId,
        _ran: Nanos,
        _now: Nanos,
    ) -> bool {
        false
    }

    /// Queueing delay of the oldest waiting task, used by the core
    /// allocator's congestion check (§5.2) and the runqueue AQM.
    ///
    /// # Contract (uniform across every shipped policy)
    ///
    /// The reported value is the *sojourn* of the oldest queued task:
    /// `now − runnable_since` of the task that has waited longest across
    /// **all** of the policy's runqueues (centralized policies have one;
    /// per-CPU policies take the max over cores). Whenever a task is
    /// queued the probe reports `Some`; with nothing queued it reports
    /// `None`, except that a smoothing policy (e.g. Shenango-style EWMA)
    /// may keep reporting its decaying residue briefly after the queue
    /// empties. Smoothing may push the reported value *above* the
    /// instantaneous worst sojourn, never below — overload detectors
    /// tolerate a pessimistic signal but a queue hidden below its true
    /// age defeats both the congestion check and the AQM. The
    /// cross-policy conformance test (`tests/policy_conformance.rs`)
    /// holds every shipped policy to this contract.
    fn queue_delay(&self, _tasks: &TaskTable, _now: Nanos) -> Option<Nanos> {
        None
    }

    /// Number of queued (runnable, not running) tasks, if the policy can
    /// report it cheaply. Used for congestion statistics.
    fn queue_len(&self) -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial global-FIFO policy used to exercise trait defaults.
    struct Fifo {
        q: std::collections::VecDeque<TaskId>,
    }

    impl Policy for Fifo {
        fn name(&self) -> &'static str {
            "test-fifo"
        }
        fn kind(&self) -> PolicyKind {
            PolicyKind::PerCpu
        }
        fn sched_init(&mut self, _env: &SchedEnv) {}
        fn task_init(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}
        fn task_terminate(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}
        fn task_enqueue(
            &mut self,
            _tasks: &mut TaskTable,
            t: TaskId,
            _cpu: Option<CoreId>,
            _flags: EnqueueFlags,
            _now: Nanos,
        ) {
            self.q.push_back(t);
        }
        fn task_dequeue(
            &mut self,
            _tasks: &mut TaskTable,
            _cpu: CoreId,
            _now: Nanos,
        ) -> Option<TaskId> {
            self.q.pop_front()
        }
    }

    #[test]
    fn default_wakeup_enqueues() {
        use crate::task::Task;
        let mut tasks = TaskTable::new();
        let id = tasks.insert(|id| Task::bare(id, 0));
        let mut p = Fifo {
            q: Default::default(),
        };
        p.task_wakeup(&mut tasks, id, None, Nanos(5));
        assert_eq!(p.task_dequeue(&mut tasks, 0, Nanos(6)), Some(id));
    }

    #[test]
    fn defaults_are_inert() {
        let mut p = Fifo {
            q: Default::default(),
        };
        let mut tasks = TaskTable::new();
        assert!(!p.sched_timer_tick(
            &mut tasks,
            0,
            TaskId {
                idx: 0,
                generation: 0
            },
            Nanos(1),
            Nanos(1)
        ));
        assert!(p.sched_balance(&mut tasks, 0, Nanos(1)).is_none());
        let mut placements = Vec::new();
        p.sched_poll(&mut tasks, &[0], Nanos(1), &mut placements);
        assert!(placements.is_empty());
        assert_eq!(p.quantum(), None);
        assert_eq!(p.queue_delay(&tasks, Nanos(1)), None);
    }

    #[test]
    fn default_batch_ops_are_loops_of_singles() {
        use crate::task::Task;
        let mut tasks = TaskTable::new();
        let mut p = Fifo {
            q: Default::default(),
        };
        let ids: Vec<TaskId> = (0..3)
            .map(|_| tasks.insert(|id| Task::bare(id, 0)))
            .collect();
        let batch: Vec<(TaskId, Option<CoreId>, EnqueueFlags)> = ids
            .iter()
            .map(|&t| (t, Some(0), EnqueueFlags::New))
            .collect();
        p.enqueue_batch(&mut tasks, &batch, Nanos(1));
        let mut picked = Vec::new();
        p.pick_batch(&mut tasks, 0, 2, Nanos(2), &mut picked);
        assert_eq!(picked, &ids[..2]);
        // `max` larger than the queue drains it and stops.
        p.pick_batch(&mut tasks, 0, 10, Nanos(3), &mut picked);
        assert_eq!(picked, ids);
    }
}
