//! User-thread (task) model: the fundamental scheduling unit (§3.1).
//!
//! A task mirrors the paper's user thread structure: fields *shared* with
//! every application's scheduler instance (state, owning application, the
//! policy-defined data slot) and *private* fields (the execution context —
//! here, the task's [`Behavior`] program and its remaining compute time).

use skyloft_sim::Nanos;

/// Owning application id (index into the machine's application table).
pub type AppId = usize;

/// Generational task handle. Indexes a slot in the [`TaskTable`]; the
/// generation makes handles to recycled slots detectably stale.
///
/// The `Ord` implementation gives policies a stable, unique tie-break key
/// for ordered runqueues (e.g. CFS's vruntime tree).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId {
    pub(crate) idx: u32,
    pub(crate) generation: u32,
}

impl std::fmt::Debug for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}v{}", self.idx, self.generation)
    }
}

/// Lifecycle state of a user thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskState {
    /// In a runqueue, waiting for a core.
    Runnable,
    /// Executing on a core.
    Running,
    /// Waiting for [`crate::machine::Machine`]-level wakeup.
    Blocked,
    /// Finished; the slot is about to be recycled.
    Exited,
}

/// What a task asks the scheduler to do next, returned by
/// [`Behavior::step`].
#[derive(Debug)]
pub enum Step {
    /// Execute for the given duration (preemptible at any nanosecond).
    Compute(Nanos),
    /// Voluntarily yield the core, staying runnable.
    Yield,
    /// Block until another task (or the framework) wakes this task.
    Block,
    /// Wake the given task, then continue stepping (consumes the wake-path
    /// cost but no simulated compute).
    Wake(TaskId),
    /// Terminate.
    Exit,
}

/// A task's program: a small coroutine the framework repeatedly steps.
///
/// Behaviors model application code. They run in the single-threaded
/// simulation, so they may share state via `Rc<RefCell<..>>`.
pub trait Behavior {
    /// Produces the task's next action. `now` is virtual time;
    /// `self_id` the task's own handle.
    fn step(&mut self, now: Nanos, self_id: TaskId) -> Step;

    /// Hands the behavior box back for reuse if it is a plain [`OneShot`].
    ///
    /// RPC workloads create and destroy a `OneShot` per request — the
    /// machine keeps a free list of these boxes so the request hot path
    /// does not allocate (see `Machine::pooled_oneshot`). Other behaviors
    /// return `None` and are dropped as before.
    fn recycle(self: Box<Self>) -> Option<Box<OneShot>> {
        None
    }
}

/// A one-shot request body: compute for the service time, then exit. This is
/// the behavior of every RPC-style request in the evaluation workloads.
pub struct OneShot {
    service: Option<Nanos>,
}

impl OneShot {
    /// Creates a request that computes `service` then exits.
    pub fn new(service: Nanos) -> Self {
        OneShot {
            service: Some(service),
        }
    }

    /// Re-arms a recycled request body with a fresh service time.
    pub fn reset(&mut self, service: Nanos) {
        self.service = Some(service);
    }
}

impl Behavior for OneShot {
    fn step(&mut self, _now: Nanos, _id: TaskId) -> Step {
        match self.service.take() {
            Some(s) => Step::Compute(s),
            None => Step::Exit,
        }
    }

    fn recycle(self: Box<Self>) -> Option<Box<OneShot>> {
        Some(self)
    }
}

/// Request accounting attached to RPC-style tasks.
#[derive(Clone, Copy, Debug)]
pub struct RequestMeta {
    /// Arrival time (load generator timestamp).
    pub arrival: Nanos,
    /// Total service demand, for slowdown computation.
    pub service: Nanos,
    /// Workload-defined class (e.g. 0 = GET, 1 = SCAN).
    pub class: u8,
}

/// Policy-defined per-task data (§3.4: "an extra field reserved for
/// policy-defined data"). A fixed slot rather than a boxed any: policies in
/// the paper store a handful of scalars (vruntime, deadline, lag, slice).
#[derive(Clone, Copy, Debug, Default)]
pub struct PolicyData {
    /// CFS virtual runtime / EEVDF virtual runtime (ns, weighted).
    pub vruntime: u64,
    /// EEVDF virtual deadline.
    pub deadline: u64,
    /// EEVDF lag (can be negative).
    pub lag: i64,
    /// Time executed in the current slice.
    pub slice_used: Nanos,
    /// Scheduling weight (nice-derived; 1024 = nice 0).
    pub weight: u32,
    /// Runqueue slot index, owned by the policy currently queueing the
    /// task: the task's position (or insertion sequence) inside that
    /// policy's queue structure, kept up to date by the structure itself.
    /// It buys O(1)/O(log n) removal of a *specific* task where a naive
    /// queue would pay a linear `retain`/`position` scan. Only meaningful
    /// while the task is queued; stale otherwise.
    pub rq_slot: u32,
    /// Free scratch words for custom policies.
    pub scratch: [u64; 2],
}

/// One user thread.
pub struct Task {
    /// This task's handle.
    pub id: TaskId,
    /// Owning application (shared field).
    pub app: AppId,
    /// Lifecycle state (shared field).
    pub state: TaskState,
    /// Policy-defined data (shared field).
    pub pd: PolicyData,
    /// The task's program (private field).
    pub behavior: Option<Box<dyn Behavior>>,
    /// Remaining nanoseconds of the current compute segment; nonzero when
    /// the task was preempted mid-segment.
    pub remaining: Nanos,
    /// Request accounting, if this task is an RPC-style request.
    pub req: Option<RequestMeta>,
    /// When the task last became runnable (wakeup-latency measurement).
    pub runnable_since: Nanos,
    /// Set when the task was woken and has not run since (so the machine
    /// records its wakeup latency exactly once per wake).
    pub measure_wakeup: bool,
    /// Whether this task's wakeup latencies go into the wakeup histogram
    /// (schbench measures workers, not the message thread).
    pub record_wakeup: bool,
    /// Core the task last ran on (cache-affinity hints for per-CPU
    /// policies).
    pub last_cpu: Option<usize>,
    /// Core the task was spawned pinned to, when any. Completion
    /// accounting (`Stats::finished_by_core`) is credited here rather
    /// than to the core that happened to run the task, so the NIC data
    /// plane's per-worker backpressure window stays consistent even under
    /// policies that migrate pinned tasks.
    pub home: Option<usize>,
    /// Number of times the task was preempted.
    pub preempt_count: u32,
    /// Total time the task has executed.
    pub total_ran: Nanos,
    /// Marked by the runqueue AQM: this queued task is condemned and must
    /// be terminated (not run) the next time a scheduling path dequeues
    /// it. Lazy shedding — the AQM cannot reach inside a policy's queue
    /// structure, so it flags the task and the machine collects it.
    pub shed: bool,
}

impl Task {
    /// Builds a minimal runnable task with no behavior — handy for policy
    /// unit tests that only exercise queue logic.
    pub fn bare(id: TaskId, app: AppId) -> Task {
        Task {
            id,
            app,
            state: TaskState::Runnable,
            pd: PolicyData {
                weight: 1024,
                ..PolicyData::default()
            },
            behavior: None,
            remaining: Nanos::ZERO,
            req: None,
            runnable_since: Nanos::ZERO,
            measure_wakeup: false,
            record_wakeup: true,
            last_cpu: None,
            home: None,
            preempt_count: 0,
            total_ran: Nanos::ZERO,
            shed: false,
        }
    }
}

/// Slab arena of tasks with generational handles.
#[derive(Default)]
pub struct TaskTable {
    slots: Vec<Option<Task>>,
    generations: Vec<u32>,
    free: Vec<u32>,
    live: usize,
}

impl TaskTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        TaskTable::default()
    }

    /// Number of live tasks.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no tasks are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts a task built from its future id.
    pub fn insert(&mut self, build: impl FnOnce(TaskId) -> Task) -> TaskId {
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(None);
                self.generations.push(0);
                (self.slots.len() - 1) as u32
            }
        };
        let id = TaskId {
            idx,
            generation: self.generations[idx as usize],
        };
        let task = build(id);
        debug_assert_eq!(task.id, id, "task must carry the id it was built with");
        self.slots[idx as usize] = Some(task);
        self.live += 1;
        id
    }

    /// Removes a task, recycling its slot.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale or the slot is empty.
    pub fn remove(&mut self, id: TaskId) -> Task {
        assert_eq!(
            self.generations[id.idx as usize], id.generation,
            "stale task handle {id:?}"
        );
        let t = self.slots[id.idx as usize]
            .take()
            .expect("removing an empty task slot");
        self.generations[id.idx as usize] = self.generations[id.idx as usize].wrapping_add(1);
        self.free.push(id.idx);
        self.live -= 1;
        t
    }

    /// Whether `id` refers to a live task.
    pub fn contains(&self, id: TaskId) -> bool {
        (id.idx as usize) < self.slots.len()
            && self.generations[id.idx as usize] == id.generation
            && self.slots[id.idx as usize].is_some()
    }

    /// Immutable access.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    pub fn get(&self, id: TaskId) -> &Task {
        assert_eq!(
            self.generations[id.idx as usize], id.generation,
            "stale task handle {id:?}"
        );
        self.slots[id.idx as usize]
            .as_ref()
            .expect("accessing an empty task slot")
    }

    /// Mutable access.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    pub fn get_mut(&mut self, id: TaskId) -> &mut Task {
        assert_eq!(
            self.generations[id.idx as usize], id.generation,
            "stale task handle {id:?}"
        );
        self.slots[id.idx as usize]
            .as_mut()
            .expect("accessing an empty task slot")
    }

    /// Iterates over live tasks.
    pub fn iter(&self) -> impl Iterator<Item = &Task> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(table: &mut TaskTable, app: AppId) -> TaskId {
        table.insert(|id| {
            let mut t = Task::bare(id, app);
            t.behavior = Some(Box::new(OneShot::new(Nanos(100))));
            t
        })
    }

    #[test]
    fn insert_get_remove() {
        let mut t = TaskTable::new();
        let a = mk(&mut t, 0);
        let b = mk(&mut t, 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a).app, 0);
        assert_eq!(t.get(b).app, 1);
        t.remove(a);
        assert_eq!(t.len(), 1);
        assert!(!t.contains(a));
        assert!(t.contains(b));
    }

    #[test]
    fn recycled_slot_gets_new_generation() {
        let mut t = TaskTable::new();
        let a = mk(&mut t, 0);
        t.remove(a);
        let b = mk(&mut t, 7);
        assert_eq!(a.idx, b.idx, "slot should be recycled");
        assert_ne!(a.generation, b.generation);
        assert!(!t.contains(a));
        assert!(t.contains(b));
    }

    #[test]
    #[should_panic(expected = "stale task handle")]
    fn stale_access_panics() {
        let mut t = TaskTable::new();
        let a = mk(&mut t, 0);
        t.remove(a);
        mk(&mut t, 1);
        let _ = t.get(a);
    }

    #[test]
    fn oneshot_computes_then_exits() {
        let mut b = OneShot::new(Nanos(42));
        let id = TaskId {
            idx: 0,
            generation: 0,
        };
        match b.step(Nanos::ZERO, id) {
            Step::Compute(n) => assert_eq!(n, Nanos(42)),
            other => panic!("expected Compute, got {other:?}"),
        }
        assert!(matches!(b.step(Nanos::ZERO, id), Step::Exit));
    }

    #[test]
    fn iter_sees_live_only() {
        let mut t = TaskTable::new();
        let a = mk(&mut t, 0);
        mk(&mut t, 1);
        t.remove(a);
        let apps: Vec<AppId> = t.iter().map(|x| x.app).collect();
        assert_eq!(apps, vec![1]);
    }
}
