//! Machine-wide measurement state.

use skyloft_metrics::Histogram;
use skyloft_sim::Nanos;

/// Number of request classes tracked separately (e.g. GET/SET or GET/SCAN).
pub const MAX_CLASSES: usize = 4;

/// Counters and histograms populated while the machine runs.
#[derive(Clone, Debug)]
pub struct Stats {
    /// Wakeup latency: time from a task being woken to it first running
    /// (schbench's metric, Figures 5–6).
    pub wakeup_hist: Histogram,
    /// Response latency of completed requests (arrival → completion).
    pub resp_hist: Histogram,
    /// Response latency split by request class.
    pub resp_by_class: Vec<Histogram>,
    /// Slowdown × 1000 (fixed point) split by request class (Figure 8b).
    pub slowdown_by_class: Vec<Histogram>,
    /// Slowdown × 1000 across all classes.
    pub slowdown_hist: Histogram,
    /// Completed request count.
    pub completed: u64,
    /// Preemptions performed (timer or IPI).
    pub preemptions: u64,
    /// Inter-application (kernel-module) switches.
    pub app_switches: u64,
    /// Same-application user-level switches.
    pub uthread_switches: u64,
    /// Timer interrupts delivered to user space.
    pub timer_delivered: u64,
    /// Timer interrupts lost to an un-armed PIR (§3.2 pitfall; should stay
    /// zero when the framework arms correctly).
    pub timer_lost: u64,
    /// Preemption IPIs that arrived after their target had already left the
    /// core.
    pub spurious_ipis: u64,
    /// Core-allocator grants of a core to the best-effort application.
    pub be_grants: u64,
    /// Core-allocator revocations back to the latency-critical application.
    pub be_revokes: u64,
    /// Watchdog re-arms of a lost §3.2 timer arming (chaos recovery).
    pub timer_rearms: u64,
    /// Revoke-IPI resends by the §5.2 allocator's retry machinery.
    pub ipi_retries: u64,
    /// Kernel threads page-fault-blocked by injected faults (§6).
    pub fault_blocks: u64,
    /// Fault resolutions (the blocked thread became parked again).
    pub fault_resolves: u64,
    /// Faults where a substitute application's thread took the core.
    pub fault_substitutions: u64,
    /// Stalled workers detected by the watchdog.
    pub stalls_detected: u64,
    /// Tasks migrated off stalled workers.
    pub tasks_migrated: u64,
    /// Requests whose packet the (lossy) NIC model dropped; they are
    /// recorded in the latency histograms at their client-side timeout.
    pub net_dropped: u64,
    /// Requests duplicated by the NIC model (the duplicate consumes
    /// service time but is not counted as a completion).
    pub net_duplicated: u64,
    /// Timed-out requests recorded via [`Stats::record_timeout`].
    pub timeouts: u64,
    /// Datagrams the NIC data plane attempted to steer into an RX ring
    /// (duplicates count once per copy; wire-dropped packets never reach
    /// the NIC and are not counted). Preserved across [`Stats::reset`] so
    /// the conservation invariant `net_generated == net_delivered +
    /// rx_ring_drops + net_in_flight` holds at every instant of a run.
    pub net_generated: u64,
    /// Datagrams the polling core handed to a worker as a spawned task.
    /// Preserved across [`Stats::reset`].
    pub net_delivered: u64,
    /// Datagrams tail-dropped by a full RX ring. Preserved across
    /// [`Stats::reset`].
    pub rx_ring_drops: u64,
    /// Datagrams currently queued in RX rings (steered but not yet handed
    /// to a worker). Preserved across [`Stats::reset`].
    pub net_in_flight: u64,
    /// Datagrams shed by the CoDel drop law at the polling core (the AQM
    /// half of overload control). Preserved across [`Stats::reset`] for
    /// the same reason as the other conservation buckets.
    pub aqm_drops: u64,
    /// Requests shed by deadline-aware admission at poll time (their
    /// remaining SLO budget could not cover the worker's backlog).
    /// Preserved across [`Stats::reset`].
    pub admission_sheds: u64,
    /// Retry datagrams that reached the NIC. A retry is a *terminal*
    /// ledger bucket: the attempt is counted here at arrival and nowhere
    /// else, so `net_generated == net_delivered + rx_ring_drops +
    /// aqm_drops + admission_sheds + net_in_flight + retries_spent` holds
    /// at every instant. Preserved across [`Stats::reset`].
    pub retries_spent: u64,
    /// Per-class split of `net_generated` (index = request class, clamped
    /// to [`MAX_CLASSES`]). Together with the other `*_by_class` arrays
    /// this forms the per-class conservation ledger checked by trace
    /// invariant 9: each class's ledger must balance on its own *and*
    /// the class arrays must sum to their global counters. Preserved
    /// across [`Stats::reset`] like every conservation bucket.
    pub generated_by_class: [u64; MAX_CLASSES],
    /// Per-class split of `net_delivered`. Preserved across reset.
    pub delivered_by_class: [u64; MAX_CLASSES],
    /// Per-class split of `rx_ring_drops`. Preserved across reset.
    pub rx_drops_by_class: [u64; MAX_CLASSES],
    /// Per-class split of `aqm_drops`. Preserved across reset.
    pub aqm_drops_by_class: [u64; MAX_CLASSES],
    /// Per-class split of `admission_sheds`. Preserved across reset.
    pub sheds_by_class: [u64; MAX_CLASSES],
    /// Per-class split of `net_in_flight`. Preserved across reset.
    pub in_flight_by_class: [u64; MAX_CLASSES],
    /// Per-class split of `retries_spent`. Preserved across reset.
    pub retries_by_class: [u64; MAX_CLASSES],
    /// Requests shed from the *runqueues* by the scheduler-side AQM
    /// (DESIGN.md §16). Unlike the NIC-side buckets these are not part of
    /// the datagram conservation ledger — a runqueue-shed request was
    /// already counted delivered when the poller handed it to a worker —
    /// but they are preserved across [`Stats::reset`] so shed ordering
    /// can be audited across the warmup boundary.
    pub rq_sheds: u64,
    /// Per-class split of `rq_sheds`. Preserved across reset.
    pub rq_sheds_by_class: [u64; MAX_CLASSES],
    /// Per-class count of *completed* requests (the class split of
    /// `completed`, but preserved across [`Stats::reset`]): the
    /// admission controller's per-class backlog resync reads
    /// `delivered − completed − rq_sheds` per class, and all three
    /// operands must survive the warmup boundary together or the
    /// backlog estimate jumps when measurement restarts.
    pub completed_by_class: [u64; MAX_CLASSES],
    /// Response latency of *completed* requests only — unlike
    /// [`Stats::resp_hist`], timed-out requests never enter it. Goodput
    /// (completions within the SLO) is `served_hist.count_le(slo)`;
    /// "LC p99 of what was actually served" is its 99th percentile.
    pub served_hist: Histogram,
    /// Ring occupancy observed at each polling-core visit, across all
    /// rings (tail mass here means the rings are absorbing a burst; a
    /// maxed-out histogram means tail drops are imminent).
    pub rx_occ_hist: Histogram,
    /// Requests finished per core, indexed by core id. Sized by the
    /// machine at construction; preserved across [`Stats::reset`] because
    /// the data plane's backpressure window (handed − finished) must not
    /// jump at the warmup boundary.
    pub finished_by_core: Vec<u64>,
    /// Busy nanoseconds per application, accumulated when tasks stop.
    pub busy_by_app: Vec<u64>,
    /// Time at which measurement (re)started.
    pub since: Nanos,
    /// Completion time of the most recent request.
    pub last_completion: Nanos,
}

impl Default for Stats {
    fn default() -> Self {
        Self::new()
    }
}

/// Clamps a request class to a valid `*_by_class` index.
#[inline]
pub fn class_slot(class: u8) -> usize {
    (class as usize).min(MAX_CLASSES - 1)
}

impl Stats {
    /// Fresh, empty statistics.
    pub fn new() -> Self {
        Stats {
            wakeup_hist: Histogram::new(),
            resp_hist: Histogram::new(),
            resp_by_class: vec![Histogram::new(); MAX_CLASSES],
            slowdown_by_class: vec![Histogram::new(); MAX_CLASSES],
            slowdown_hist: Histogram::new(),
            completed: 0,
            preemptions: 0,
            app_switches: 0,
            uthread_switches: 0,
            timer_delivered: 0,
            timer_lost: 0,
            spurious_ipis: 0,
            be_grants: 0,
            be_revokes: 0,
            timer_rearms: 0,
            ipi_retries: 0,
            fault_blocks: 0,
            fault_resolves: 0,
            fault_substitutions: 0,
            stalls_detected: 0,
            tasks_migrated: 0,
            net_dropped: 0,
            net_duplicated: 0,
            timeouts: 0,
            net_generated: 0,
            net_delivered: 0,
            rx_ring_drops: 0,
            net_in_flight: 0,
            aqm_drops: 0,
            admission_sheds: 0,
            retries_spent: 0,
            generated_by_class: [0; MAX_CLASSES],
            delivered_by_class: [0; MAX_CLASSES],
            rx_drops_by_class: [0; MAX_CLASSES],
            aqm_drops_by_class: [0; MAX_CLASSES],
            sheds_by_class: [0; MAX_CLASSES],
            in_flight_by_class: [0; MAX_CLASSES],
            retries_by_class: [0; MAX_CLASSES],
            rq_sheds: 0,
            rq_sheds_by_class: [0; MAX_CLASSES],
            completed_by_class: [0; MAX_CLASSES],
            served_hist: Histogram::new(),
            rx_occ_hist: Histogram::new(),
            finished_by_core: Vec::new(),
            busy_by_app: Vec::new(),
            since: Nanos::ZERO,
            last_completion: Nanos::ZERO,
        }
    }

    /// Records one completed request.
    pub fn record_request(&mut self, class: u8, response: Nanos, service: Nanos) {
        self.completed += 1;
        self.resp_hist.record(response.0);
        self.served_hist.record(response.0);
        let c = class_slot(class);
        self.completed_by_class[c] += 1;
        self.resp_by_class[c].record(response.0);
        let slow = (skyloft_metrics::slowdown(response.0, service.0) * 1000.0) as u64;
        self.slowdown_by_class[c].record(slow);
        self.slowdown_hist.record(slow);
    }

    /// Records a request whose response never arrived: it enters the
    /// latency histograms at its client-side timeout instead of silently
    /// vanishing from the denominator (which would make a lossy run look
    /// *faster* than a lossless one). Timed-out requests do not count as
    /// completions.
    pub fn record_timeout(&mut self, class: u8, timeout: Nanos, service: Nanos) {
        self.timeouts += 1;
        self.resp_hist.record(timeout.0);
        let c = class_slot(class);
        self.resp_by_class[c].record(timeout.0);
        let slow = (skyloft_metrics::slowdown(timeout.0, service.0) * 1000.0) as u64;
        self.slowdown_by_class[c].record(slow);
        self.slowdown_hist.record(slow);
    }

    /// Clears all measurements (warmup boundary), keeping `since` at `now`.
    ///
    /// The data-plane conservation counters (`net_generated`,
    /// `net_delivered`, `rx_ring_drops`, `net_in_flight`) and the per-core
    /// finish counters survive the reset: they describe *current* queue
    /// state, not an interval, and zeroing them mid-run would break both
    /// the conservation invariant and the poller's backpressure window.
    pub fn reset(&mut self, now: Nanos) {
        let napps = self.busy_by_app.len();
        let net_generated = self.net_generated;
        let net_delivered = self.net_delivered;
        let rx_ring_drops = self.rx_ring_drops;
        let net_in_flight = self.net_in_flight;
        let aqm_drops = self.aqm_drops;
        let admission_sheds = self.admission_sheds;
        let retries_spent = self.retries_spent;
        let generated_by_class = self.generated_by_class;
        let delivered_by_class = self.delivered_by_class;
        let rx_drops_by_class = self.rx_drops_by_class;
        let aqm_drops_by_class = self.aqm_drops_by_class;
        let sheds_by_class = self.sheds_by_class;
        let in_flight_by_class = self.in_flight_by_class;
        let retries_by_class = self.retries_by_class;
        let rq_sheds = self.rq_sheds;
        let rq_sheds_by_class = self.rq_sheds_by_class;
        let completed_by_class = self.completed_by_class;
        let finished_by_core = std::mem::take(&mut self.finished_by_core);
        *self = Stats::new();
        self.busy_by_app = vec![0; napps];
        self.net_generated = net_generated;
        self.net_delivered = net_delivered;
        self.rx_ring_drops = rx_ring_drops;
        self.net_in_flight = net_in_flight;
        self.aqm_drops = aqm_drops;
        self.admission_sheds = admission_sheds;
        self.retries_spent = retries_spent;
        self.generated_by_class = generated_by_class;
        self.delivered_by_class = delivered_by_class;
        self.rx_drops_by_class = rx_drops_by_class;
        self.aqm_drops_by_class = aqm_drops_by_class;
        self.sheds_by_class = sheds_by_class;
        self.in_flight_by_class = in_flight_by_class;
        self.retries_by_class = retries_by_class;
        self.rq_sheds = rq_sheds;
        self.rq_sheds_by_class = rq_sheds_by_class;
        self.completed_by_class = completed_by_class;
        self.finished_by_core = finished_by_core;
        self.since = now;
    }

    /// Achieved throughput in requests/second since the last reset.
    pub fn achieved_rps(&self, now: Nanos) -> f64 {
        let dt = (now - self.since).as_secs();
        if dt <= 0.0 {
            0.0
        } else {
            self.completed as f64 / dt
        }
    }
}

// NOTE: CPU-share computation lives in `Machine::app_share` (which also
// counts the open busy intervals of still-running tasks); `Stats` only
// stores the closed-interval counters it builds on.

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_request_updates_class_and_slowdown() {
        let mut s = Stats::new();
        s.record_request(1, Nanos(2_000), Nanos(1_000));
        assert_eq!(s.completed, 1);
        assert_eq!(s.resp_by_class[1].count(), 1);
        assert_eq!(s.resp_by_class[0].count(), 0);
        // Slowdown 2.0 stored as 2000.
        let p = s.slowdown_by_class[1].percentile(50.0);
        assert!((1_950..=2_050).contains(&p), "slowdown {p}");
    }

    #[test]
    fn record_timeout_enters_histograms_without_completing() {
        let mut s = Stats::new();
        s.record_timeout(0, Nanos::from_ms(1), Nanos::from_us(10));
        assert_eq!(s.completed, 0);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.resp_hist.count(), 1);
        // Slowdown 100.0 stored as 100_000 fixed-point.
        let p = s.slowdown_hist.percentile(50.0);
        assert!((95_000..=105_000).contains(&p), "slowdown {p}");
    }

    #[test]
    fn class_overflow_clamps() {
        let mut s = Stats::new();
        s.record_request(200, Nanos(10), Nanos(10));
        assert_eq!(s.resp_by_class[MAX_CLASSES - 1].count(), 1);
    }

    #[test]
    fn reset_preserves_app_slots_and_since() {
        let mut s = Stats::new();
        s.busy_by_app = vec![5, 6];
        s.completed = 10;
        s.reset(Nanos(1_000));
        assert_eq!(s.completed, 0);
        assert_eq!(s.busy_by_app, vec![0, 0]);
        assert_eq!(s.since, Nanos(1_000));
    }

    #[test]
    fn reset_preserves_conservation_counters() {
        let mut s = Stats::new();
        s.net_generated = 100;
        s.net_delivered = 85;
        s.rx_ring_drops = 4;
        s.net_in_flight = 6;
        s.aqm_drops = 2;
        s.admission_sheds = 1;
        s.retries_spent = 2;
        s.finished_by_core = vec![40, 50];
        s.rx_occ_hist.record(12);
        s.served_hist.record(1_000);
        s.completed = 85;
        s.reset(Nanos(1_000));
        assert_eq!(s.completed, 0, "interval counters clear");
        assert_eq!(s.rx_occ_hist.count(), 0, "occupancy histogram clears");
        assert_eq!(s.served_hist.count(), 0, "served histogram clears");
        assert_eq!(
            (
                s.net_generated,
                s.net_delivered,
                s.rx_ring_drops,
                s.net_in_flight,
                s.aqm_drops,
                s.admission_sheds,
                s.retries_spent
            ),
            (100, 85, 4, 6, 2, 1, 2),
            "conservation counters survive the warmup reset"
        );
        assert_eq!(s.finished_by_core, vec![40, 50]);
    }

    #[test]
    fn reset_preserves_per_class_ledgers() {
        let mut s = Stats::new();
        s.generated_by_class = [10, 20, 0, 0];
        s.delivered_by_class = [8, 15, 0, 0];
        s.rx_drops_by_class = [1, 2, 0, 0];
        s.sheds_by_class = [0, 2, 0, 0];
        s.in_flight_by_class = [1, 1, 0, 0];
        s.rq_sheds = 3;
        s.rq_sheds_by_class = [0, 3, 0, 0];
        s.completed_by_class = [7, 12, 0, 0];
        s.reset(Nanos(5_000));
        assert_eq!(s.generated_by_class, [10, 20, 0, 0]);
        assert_eq!(s.delivered_by_class, [8, 15, 0, 0]);
        assert_eq!(s.rx_drops_by_class, [1, 2, 0, 0]);
        assert_eq!(s.sheds_by_class, [0, 2, 0, 0]);
        assert_eq!(s.in_flight_by_class, [1, 1, 0, 0]);
        assert_eq!(s.rq_sheds, 3);
        assert_eq!(s.rq_sheds_by_class, [0, 3, 0, 0]);
        assert_eq!(s.completed_by_class, [7, 12, 0, 0]);
    }

    #[test]
    fn class_slot_clamps() {
        assert_eq!(class_slot(0), 0);
        assert_eq!(class_slot(3), 3);
        assert_eq!(class_slot(200), MAX_CLASSES - 1);
    }

    #[test]
    fn achieved_rps_math() {
        let mut s = Stats::new();
        s.since = Nanos::ZERO;
        s.completed = 500;
        let rps = s.achieved_rps(Nanos::from_secs(1));
        assert!((rps - 500.0).abs() < 1e-9);
        assert_eq!(s.achieved_rps(Nanos::ZERO), 0.0);
    }
}
