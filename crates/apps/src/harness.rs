//! Load-sweep harness shared by the figure benches (§5.2–§5.3).
//!
//! For each offered rate: build a fresh machine, install the open-loop
//! arrival process, warm up, reset measurements, measure, and collect a
//! [`LoadPoint`]. The same harness drives every system (Skyloft,
//! Shinjuku, ghOSt, Shenango, Linux) so comparisons differ only in the
//! machine builder passed in.
//!
//! Sweep points are independent simulations, so the harness can fan them
//! out across host threads ([`run_sweep_threaded`], or `SKYLOFT_THREADS`
//! for the default [`run_sweep`] path). Each point is seeded from
//! `(spec.seed, rate)` alone — never from which thread ran it — and
//! results are collected in rate order, so the parallel sweep is
//! bit-identical to the serial one.

use skyloft::machine::{Event, Machine};
use skyloft_metrics::{LoadPoint, Series};
use skyloft_net::loadgen::{NetProfile, OpenLoop};
use skyloft_sim::{Distribution, EventQueue, Nanos};

use crate::synthetic::{install_open_loop_net, Placement};

/// Sweep parameters.
#[derive(Clone)]
pub struct SweepSpec {
    /// Series name (system under test).
    pub name: String,
    /// Offered rates in requests per second.
    pub rates: Vec<f64>,
    /// Service-time distribution.
    pub service: Distribution,
    /// Class threshold (see [`OpenLoop`]).
    pub class_threshold: Nanos,
    /// Request placement.
    pub placement: Placement,
    /// Target application id.
    pub app: usize,
    /// Warmup time before measurement.
    pub warmup: Nanos,
    /// Measurement window.
    pub measure: Nanos,
    /// Base RNG seed.
    pub seed: u64,
    /// Dump the scheduling trace of each measured point as Chrome-trace
    /// JSON. Each point writes its own file,
    /// `<path>.<system>.<rate>.json`, so a multi-system multi-rate run
    /// keeps every trace instead of the last machine overwriting all the
    /// others (and concurrent sweep threads never share a file).
    pub trace: Option<std::path::PathBuf>,
    /// Lossy-network profile; `None` models the perfect wire. Timed-out
    /// requests enter the histograms at the timeout value (see
    /// [`crate::synthetic::install_open_loop_net`]).
    pub net: Option<NetProfile>,
}

impl SweepSpec {
    /// A reasonable default window: 50 ms warmup, 300 ms measurement.
    ///
    /// The spec honors a `--trace <path>` flag on the binary's command
    /// line (see [`trace_arg`]), so every sweep-driven bench binary can
    /// dump a Perfetto-loadable trace without its own plumbing.
    pub fn new(name: impl Into<String>, rates: Vec<f64>, service: Distribution) -> Self {
        SweepSpec {
            name: name.into(),
            rates,
            service,
            class_threshold: Nanos::from_us(100),
            placement: Placement::Queue,
            app: 0,
            warmup: Nanos::from_ms(50),
            measure: Nanos::from_ms(300),
            seed: SKY_SEED,
            trace: trace_arg(),
            net: None,
        }
    }
}

const SKY_SEED: u64 = 0x5359_4c4f_4654; // "SYLOFT"

/// The path given by a `--trace <path>` (or `--trace=<path>`) argument on
/// the current process's command line, if any.
pub fn trace_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace" {
            let path = args.next();
            if path.is_none() {
                // Called once per sweep spec; warn once per process.
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| eprintln!("warning: --trace given without a path; ignoring"));
            }
            return path.map(Into::into);
        }
        if let Some(p) = a.strip_prefix("--trace=") {
            return Some(p.into());
        }
    }
    None
}

/// A machine/queue factory for sweep points. `Sync` so independent
/// points can be built from worker threads ([`run_sweep_threaded`]).
pub type Builder<'a> = &'a (dyn Fn() -> (Machine, EventQueue<Event>) + Sync);

/// Number of sweep worker threads requested via `SKYLOFT_THREADS`
/// (default 1, i.e. serial).
pub fn sweep_threads() -> usize {
    std::env::var("SKYLOFT_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Per-point trace file: `<base>.<system>.<rate>.json`, with the system
/// name sanitized to a filename-safe slug.
fn point_trace_path(base: &std::path::Path, system: &str, rate: f64) -> std::path::PathBuf {
    let slug: String = system
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    std::path::PathBuf::from(format!("{}.{slug}.{}.json", base.display(), rate as u64))
}

/// Runs one load point on a freshly built machine and returns its
/// measurements.
pub fn run_point(spec: &SweepSpec, rate: f64, build: Builder<'_>) -> LoadPoint {
    let (mut m, mut q) = build();
    let gen = OpenLoop::new(
        rate,
        spec.service.clone(),
        spec.class_threshold,
        spec.seed ^ (rate as u64),
    );
    let end = spec.warmup + spec.measure;
    install_open_loop_net(
        &mut q,
        gen,
        spec.app,
        spec.placement.clone(),
        end,
        spec.net.clone(),
    );
    m.run(&mut q, spec.warmup);
    m.reset_stats(q.now());
    // Arrivals stop exactly at `end`; requests still in flight then are
    // counted against throughput, as an open-loop client would observe.
    m.run(&mut q, end);
    let now = q.now();
    let mut p = LoadPoint::from_hist(rate, m.stats.achieved_rps(now), &m.stats.resp_hist);
    if m.stats.slowdown_hist.count() > 0 {
        p.slowdown_p999 = Some(m.stats.slowdown_hist.percentile(99.9) as f64 / 1000.0);
    }
    let be = m.apps.iter().position(|a| a.kind == skyloft::AppKind::Be);
    if let Some(be) = be {
        p.be_share = Some(m.app_share(be, now));
    }
    if let Some(base) = &spec.trace {
        let path = point_trace_path(base, &spec.name, rate);
        match m.write_trace(&path) {
            Ok(()) => eprintln!(
                "trace: wrote {} ({} rps point of {})",
                path.display(),
                rate,
                spec.name
            ),
            Err(e) => eprintln!("trace: failed to write {}: {}", path.display(), e),
        }
    }
    p
}

/// Runs the full sweep, fanning points across `SKYLOFT_THREADS` host
/// threads (serial by default). Output is bit-identical regardless of
/// thread count — see [`run_sweep_threaded`].
pub fn run_sweep(spec: &SweepSpec, build: Builder<'_>) -> Series {
    run_sweep_threaded(spec, build, sweep_threads())
}

/// Runs the full sweep on `threads` worker threads.
///
/// Determinism argument: every point's simulation is seeded from
/// `(spec.seed, rate)` only, each point gets a freshly built machine and
/// queue, and results land in a slot indexed by the point's position in
/// `spec.rates`. Thread count and scheduling order therefore cannot
/// change any point's value or the order of the returned series — the
/// result is bit-identical to the serial sweep.
pub fn run_sweep_threaded(spec: &SweepSpec, build: Builder<'_>, threads: usize) -> Series {
    let mut series = Series::new(spec.name.clone());
    for p in par_map(&spec.rates, threads, &|&rate| run_point(spec, rate, build)) {
        series.push(p);
    }
    series
}

/// Maps `f` over `items` on `threads` host threads, returning results in
/// input order (bit-identical to the serial map). Jobs are pulled from a
/// shared atomic counter, so threads stay busy even when job runtimes are
/// skewed. With `threads <= 1` this is a plain serial loop.
pub fn par_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: &(dyn Fn(&T) -> R + Sync),
) -> Vec<R> {
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|s| {
        for _ in 0..threads.min(items.len()) {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                *slots[i].lock().expect("slot poisoned") = Some(f(item));
            });
        }
    })
    .expect("parallel map worker panicked");
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot poisoned")
                .expect("every job filled its slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyloft::builtin::CentralizedFcfs;
    use skyloft::machine::{AppKind, MachineConfig};
    use skyloft::Platform;
    use skyloft_hw::Topology;

    fn builder() -> (Machine, EventQueue<Event>) {
        let cfg = MachineConfig {
            plat: Platform::skyloft_centralized(Topology::single(5)),
            n_workers: 4,
            seed: 77,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(
            cfg,
            Box::new(CentralizedFcfs::new(Some(Nanos::from_us(30)))),
        );
        m.add_app("lc", AppKind::Lc);
        let mut q = EventQueue::new();
        m.start(&mut q);
        (m, q)
    }

    #[test]
    fn latency_grows_with_load() {
        let spec = SweepSpec {
            warmup: Nanos::from_ms(10),
            measure: Nanos::from_ms(80),
            ..SweepSpec::new(
                "fcfs",
                vec![50_000.0, 350_000.0],
                Distribution::Constant(Nanos::from_us(10)),
            )
        };
        let s = run_sweep(&spec, &builder);
        assert_eq!(s.points.len(), 2);
        // 4 workers x 10us = 400k rps capacity; at 50k the system idles,
        // at 350k it queues.
        assert!(s.points[0].p99_us < s.points[1].p99_us);
        assert!(s.points[0].achieved_rps > 40_000.0);
        assert!(s.points[1].achieved_rps > 250_000.0);
    }

    #[test]
    fn points_are_deterministic() {
        let spec = SweepSpec {
            warmup: Nanos::from_ms(5),
            measure: Nanos::from_ms(20),
            ..SweepSpec::new(
                "det",
                vec![100_000.0],
                Distribution::Constant(Nanos::from_us(5)),
            )
        };
        let a = run_point(&spec, 100_000.0, &builder);
        let b = run_point(&spec, 100_000.0, &builder);
        assert_eq!(a, b);
    }

    #[test]
    fn threaded_sweep_is_bit_identical_to_serial() {
        let spec = SweepSpec {
            warmup: Nanos::from_ms(5),
            measure: Nanos::from_ms(30),
            ..SweepSpec::new(
                "par",
                vec![50_000.0, 150_000.0, 250_000.0, 350_000.0, 380_000.0],
                Distribution::Constant(Nanos::from_us(10)),
            )
        };
        let serial = run_sweep_threaded(&spec, &builder, 1);
        let par = run_sweep_threaded(&spec, &builder, 8);
        assert_eq!(serial.name, par.name);
        assert_eq!(serial.points, par.points);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..37).collect();
        let serial = par_map(&items, 1, &|&x| x * x);
        let par = par_map(&items, 8, &|&x| x * x);
        assert_eq!(serial, par);
        assert_eq!(par[36], 36 * 36);
    }
}
