//! RocksDB server with the bimodal workload (§5.3, Figure 8b).
//!
//! The paper's client sends 50% GET and 50% SCAN requests with processing
//! times of 0.95 μs and 591 μs — a *heavy-tailed* (bimodal, high
//! dispersion) workload where the 99.9th-percentile **slowdown**
//! (response / service) is the SLO metric. Without preemption, a GET that
//! lands behind a SCAN waits up to 591 μs, a slowdown over 600×; with
//! Skyloft's 5 μs quantum the wait collapses to quantum scale, which is
//! how Skyloft sustains 1.9× Shenango's load at the 50× slowdown SLO.
//!
//! The sorted store below is a real ordered map exercised through the wire
//! codec in tests (point lookups and range scans), while the simulation
//! charges the paper's service times.

use std::collections::BTreeMap;

use bytes::Bytes;
use skyloft_net::packet::{KvOp, KvRequest};
use skyloft_sim::{Distribution, Nanos};

/// GET service time (paper: 0.95 μs).
pub const GET_SERVICE: Nanos = Nanos(950);
/// SCAN service time (paper: 591 μs).
pub const SCAN_SERVICE: Nanos = Nanos(591_000);
/// SCAN fraction of the bimodal mix.
pub const SCAN_FRACTION: f64 = 0.5;

/// The §5.3 bimodal distribution: 50% GET / 50% SCAN.
pub fn bimodal_distribution() -> Distribution {
    Distribution::Bimodal {
        p_long: SCAN_FRACTION,
        short: GET_SERVICE,
        long: SCAN_SERVICE,
    }
}

/// Class threshold: SCANs are class 1.
pub fn bimodal_threshold() -> Nanos {
    Nanos::from_us(10)
}

/// A sorted KV store supporting point reads and range scans (the
/// operations the workload exercises on RocksDB).
#[derive(Default)]
pub struct SortedStore {
    map: BTreeMap<Bytes, Bytes>,
}

impl SortedStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SortedStore::default()
    }

    /// Loads `n` sequential keys (`key-000000` style), as the paper's
    /// setup pre-populates the database.
    pub fn populate(&mut self, n: usize) {
        for i in 0..n {
            let k = Bytes::from(format!("key-{i:06}"));
            let v = Bytes::from(format!("value-{i:06}"));
            self.map.insert(k, v);
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &Bytes) -> Option<&Bytes> {
        self.map.get(key)
    }

    /// Range scan: up to `limit` pairs starting at `start`.
    pub fn scan(&self, start: &Bytes, limit: usize) -> Vec<(&Bytes, &Bytes)> {
        self.map.range(start.clone()..).take(limit).collect()
    }

    /// Executes a parsed wire request.
    pub fn execute(&self, req: &KvRequest) -> usize {
        match req.op {
            KvOp::Get => usize::from(self.get(&req.key).is_some()),
            KvOp::Scan => self.scan(&req.key, 100).len(),
            KvOp::Set => 0,
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_mean_is_296us() {
        let d = bimodal_distribution();
        assert!((d.mean() - 295_975.0).abs() < 1.0);
    }

    #[test]
    fn scan_returns_range_in_order() {
        let mut s = SortedStore::new();
        s.populate(1_000);
        let start = Bytes::from_static(b"key-000500");
        let rows = s.scan(&start, 100);
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[0].0, &Bytes::from_static(b"key-000500"));
        assert_eq!(rows[99].0, &Bytes::from_static(b"key-000599"));
    }

    #[test]
    fn get_via_wire_codec() {
        let mut s = SortedStore::new();
        s.populate(10);
        let req = KvRequest {
            id: 7,
            op: KvOp::Get,
            key: Bytes::from_static(b"key-000003"),
            value: Bytes::new(),
        };
        // Encode through the packet pool, as the server's TX path would.
        let mut pool = skyloft_net::PacketPool::new(8);
        let dgram = pool.encode(&req, 1, 2);
        let (_, parsed) = KvRequest::decode_datagram(dgram.clone()).unwrap();
        pool.reclaim(dgram);
        assert_eq!(s.execute(&parsed), 1);
        let missing = KvRequest {
            id: 8,
            op: KvOp::Get,
            key: Bytes::from_static(b"nope"),
            value: Bytes::new(),
        };
        assert_eq!(s.execute(&missing), 0);
    }

    #[test]
    fn scan_at_end_is_short() {
        let mut s = SortedStore::new();
        s.populate(50);
        let start = Bytes::from_static(b"key-000048");
        assert_eq!(s.scan(&start, 100).len(), 2);
    }
}
