//! schbench model (§5.1, Figures 5 and 6).
//!
//! schbench v1.0 creates M message threads and T worker threads. A worker
//! performs ~2300 μs of simulated work per request (matrix multiplication
//! in the original), notifies its message thread, and sleeps until woken
//! for the next request; the message thread re-wakes workers as they
//! complete. The reported metric is the *wakeup latency*: the time from a
//! worker being woken to it actually running — dominated by queueing when
//! workers outnumber cores, which is exactly where the scheduler's
//! preemption granularity shows (Figure 6: latency ∝ time slice).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use skyloft::machine::{Event, Machine};
use skyloft::task::{Behavior, Step, TaskId};
use skyloft::SpawnOpts;
use skyloft_sim::{EventQueue, Nanos};

/// Default per-request work, matching the paper's "approximately 2300 μs
/// per request" note on schbench's default parameters.
pub const DEFAULT_WORK: Nanos = Nanos::from_us(2_300);

/// State shared between one message thread and its workers.
#[derive(Default)]
pub struct Mailbox {
    /// Workers that completed a request and await re-waking.
    completed: VecDeque<TaskId>,
    /// The message thread's task id (filled in after spawning).
    messenger: Option<TaskId>,
}

/// Shared handle to a [`Mailbox`].
pub type SharedMailbox = Rc<RefCell<Mailbox>>;

/// A schbench worker thread.
pub struct Worker {
    mailbox: SharedMailbox,
    work: Nanos,
    phase: WorkerPhase,
}

enum WorkerPhase {
    Work,
    Notify,
    Sleep,
}

impl Behavior for Worker {
    fn step(&mut self, _now: Nanos, id: TaskId) -> Step {
        match self.phase {
            WorkerPhase::Work => {
                self.phase = WorkerPhase::Notify;
                Step::Compute(self.work)
            }
            WorkerPhase::Notify => {
                self.phase = WorkerPhase::Sleep;
                let mut mb = self.mailbox.borrow_mut();
                mb.completed.push_back(id);
                match mb.messenger {
                    Some(m) => Step::Wake(m),
                    None => Step::Block,
                }
            }
            WorkerPhase::Sleep => {
                self.phase = WorkerPhase::Work;
                Step::Block
            }
        }
    }
}

/// A schbench message thread: drains completions, re-waking each worker.
pub struct Messenger {
    mailbox: SharedMailbox,
    /// Per-wake bookkeeping cost on the messenger (futex and queue walk in
    /// the original).
    pub wake_work: Nanos,
    pending_work: bool,
}

impl Behavior for Messenger {
    fn step(&mut self, _now: Nanos, _id: TaskId) -> Step {
        if self.pending_work {
            self.pending_work = false;
            return Step::Compute(self.wake_work);
        }
        let next = self.mailbox.borrow_mut().completed.pop_front();
        match next {
            Some(w) => {
                self.pending_work = self.wake_work > Nanos::ZERO;
                Step::Wake(w)
            }
            None => Step::Block,
        }
    }
}

/// Spawns a schbench instance (1 message thread + `workers` worker
/// threads) into application `app` on the machine. Returns the shared
/// mailbox.
pub fn spawn(
    m: &mut Machine,
    q: &mut EventQueue<Event>,
    app: usize,
    workers: usize,
    work: Nanos,
) -> SharedMailbox {
    let mailbox: SharedMailbox = Rc::new(RefCell::new(Mailbox::default()));
    let messenger = m.spawn(
        q,
        Box::new(Messenger {
            mailbox: Rc::clone(&mailbox),
            wake_work: Nanos(1_000),
            pending_work: false,
        }),
        SpawnOpts {
            record_wakeup: false,
            ..SpawnOpts::app(app)
        },
    );
    mailbox.borrow_mut().messenger = Some(messenger);
    for _ in 0..workers {
        m.spawn(
            q,
            Box::new(Worker {
                mailbox: Rc::clone(&mailbox),
                work,
                phase: WorkerPhase::Work,
            }),
            SpawnOpts::app(app),
        );
    }
    mailbox
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyloft::builtin::GlobalFifo;
    use skyloft::machine::{AppKind, MachineConfig};
    use skyloft::Platform;
    use skyloft_hw::Topology;

    fn machine(workers: usize) -> (Machine, EventQueue<Event>) {
        let cfg = MachineConfig {
            plat: Platform::skyloft_percpu(Topology::single(workers), 100_000),
            n_workers: workers,
            seed: 1,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(cfg, Box::new(GlobalFifo::new()));
        m.add_app("schbench", AppKind::Lc);
        let mut q = EventQueue::new();
        m.start(&mut q);
        (m, q)
    }

    #[test]
    fn workers_cycle_and_wakeups_are_measured() {
        let (mut m, mut q) = machine(2);
        spawn(&mut m, &mut q, 0, 4, Nanos::from_us(100));
        m.run(&mut q, Nanos::from_ms(10));
        // 4 workers at 100us work on 2 cores for 10 ms: many cycles.
        let wakes = m.stats.wakeup_hist.count();
        assert!(wakes > 50, "only {wakes} wakeups recorded");
        // The system stays live: no deadlock, all tasks still present.
        assert_eq!(m.apps[0].live_tasks, 5);
    }

    #[test]
    fn oversubscription_inflates_wakeup_latency() {
        // 1 core, 1 worker: wakeup latency ~ wake path only.
        let (mut m1, mut q1) = machine(1);
        spawn(&mut m1, &mut q1, 0, 1, Nanos::from_us(100));
        m1.run(&mut q1, Nanos::from_ms(20));
        let lone = m1.stats.wakeup_hist.percentile(99.0);

        // 1 core, 8 workers, FIFO: woken workers wait for whole requests.
        let (mut m8, mut q8) = machine(1);
        spawn(&mut m8, &mut q8, 0, 8, Nanos::from_us(100));
        m8.run(&mut q8, Nanos::from_ms(20));
        let crowded = m8.stats.wakeup_hist.percentile(99.0);
        assert!(
            crowded > 3 * lone,
            "oversubscribed p99 {crowded} vs lone {lone}"
        );
    }
}
