//! Memcached with the USR workload (§5.3, Figure 8a).
//!
//! The USR workload (Atikoglu et al., SIGMETRICS'12 — Meta's production
//! trace) is 99.8% GET / 0.2% SET with small keys and values: a
//! *light-tailed* workload where run-to-completion scheduling already does
//! well, so Skyloft's goal is simply to match Shenango (within 2% of its
//! maximum throughput, with slightly lower tails at low load).
//!
//! Service times are ESTIMATEs consistent with published kernel-bypass
//! memcached measurements (~1–2 μs per operation); the paper does not list
//! them. The store itself is a real hash map exercised through the
//! `skyloft-net` codec in unit tests, so the parse → lookup → respond path
//! exists, while the simulation charges the calibrated service times.

use std::collections::HashMap;

use bytes::Bytes;
use skyloft_net::packet::{KvOp, KvRequest};
use skyloft_sim::{Distribution, Nanos};

/// ESTIMATE — GET service time on the paper's hardware class.
pub const GET_SERVICE: Nanos = Nanos(1_500);
/// ESTIMATE — SET service time.
pub const SET_SERVICE: Nanos = Nanos(2_000);
/// USR workload SET fraction.
pub const SET_FRACTION: f64 = 0.002;

/// The USR service-time distribution (99.8% GET / 0.2% SET).
pub fn usr_distribution() -> Distribution {
    Distribution::Bimodal {
        p_long: SET_FRACTION,
        short: GET_SERVICE,
        long: SET_SERVICE,
    }
}

/// Class threshold: SETs (2 μs) are class 1.
pub fn usr_threshold() -> Nanos {
    Nanos(1_750)
}

/// A minimal in-memory KV store with the Memcached operations the
/// workload uses.
#[derive(Default)]
pub struct Store {
    map: HashMap<Bytes, Bytes>,
    /// GET hits.
    pub hits: u64,
    /// GET misses.
    pub misses: u64,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Executes one parsed request, returning the response value for GETs.
    pub fn execute(&mut self, req: &KvRequest) -> Option<Bytes> {
        match req.op {
            KvOp::Get => match self.map.get(&req.key) {
                Some(v) => {
                    self.hits += 1;
                    Some(v.clone())
                }
                None => {
                    self.misses += 1;
                    None
                }
            },
            KvOp::Set => {
                self.map.insert(req.key.clone(), req.value.clone());
                None
            }
            KvOp::Scan => None,
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usr_mix() {
        let d = usr_distribution();
        // Mean ≈ 0.998*1.5 + 0.002*2.0 μs.
        assert!((d.mean() - 1_501.0).abs() < 1.0);
        assert!(GET_SERVICE < usr_threshold());
        assert!(SET_SERVICE >= usr_threshold());
    }

    #[test]
    fn store_set_then_get_via_wire_format() {
        let mut s = Store::new();
        let set = KvRequest {
            id: 1,
            op: KvOp::Set,
            key: Bytes::from_static(b"user:1"),
            value: Bytes::from_static(b"v1"),
        };
        // Round-trip through the datagram codec via pooled buffers, as the
        // server would.
        let mut pool = skyloft_net::PacketPool::new(8);
        let d = pool.encode(&set, 9, 11211);
        let (_, parsed) = KvRequest::decode_datagram(d.clone()).unwrap();
        pool.reclaim(d);
        s.execute(&parsed);
        let get = KvRequest {
            id: 2,
            op: KvOp::Get,
            key: Bytes::from_static(b"user:1"),
            value: Bytes::new(),
        };
        let d = pool.encode(&get, 9, 11211);
        let (_, parsed) = KvRequest::decode_datagram(d.clone()).unwrap();
        pool.reclaim(d);
        assert_eq!(pool.idle(), 1, "storage reclaimed once views dropped");
        assert_eq!(s.execute(&parsed), Some(Bytes::from_static(b"v1")));
        assert_eq!(s.hits, 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn miss_counted() {
        let mut s = Store::new();
        let get = KvRequest {
            id: 3,
            op: KvOp::Get,
            key: Bytes::from_static(b"absent"),
            value: Bytes::new(),
        };
        assert_eq!(s.execute(&get), None);
        assert_eq!(s.misses, 1);
    }
}
