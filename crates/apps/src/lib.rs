//! Workload applications for the evaluation (§5).
//!
//! * [`schbench`] — the scheduler benchmark of §5.1 (Figures 5–6): message
//!   threads waking worker threads, measuring wakeup latency.
//! * [`synthetic`] — the open-loop dispersive workload of §5.2 (Figure 7):
//!   99.5% × 4 μs + 0.5% × 10 ms requests.
//! * [`memcached`] — the USR workload of §5.3 (Figure 8a): 99.8% GET /
//!   0.2% SET against an in-memory KV store.
//! * [`rocksdb`] — the bimodal workload of §5.3 (Figure 8b): 50% GET
//!   (0.95 μs) / 50% SCAN (591 μs).
//! * [`batch`] — the best-effort batch application co-located in §5.2.
//! * [`harness`] — load-sweep machinery shared by the figure benches.

#![warn(missing_docs)]

pub mod batch;
pub mod harness;
pub mod memcached;
pub mod rocksdb;
pub mod schbench;
pub mod synthetic;
