//! Open-loop synthetic workloads (§5.2, Figure 7).
//!
//! The dispersive workload follows the ghOSt paper's setup, reused by
//! Skyloft: 99.5% short requests of 4 μs and 0.5% long requests of 10 ms,
//! arriving as a Poisson process. Requests run as one-shot tasks on the
//! machine; this module turns an [`OpenLoop`] generator into a
//! self-rescheduling chain of simulation events.
//!
//! Two ingress paths exist:
//!
//! * **The NIC data plane** ([`Placement::Rss`]): datagrams transit the
//!   wire (a [`wire_draw`] each), are RSS-steered into the bounded
//!   per-core RX rings of a [`MultiQueueNic`], and a polling core drains
//!   them in bursts toward workers with room in their in-service window.
//!   Overload tail-drops at the rings (client times out) instead of
//!   accumulating unbounded queues inside the simulator.
//! * **The teleport path** ([`Placement::Queue`],
//!   [`Placement::RssDirect`]): requests spawn directly at their arrival
//!   instant, with wire and stack costs folded in as accounting. Queues
//!   are unbounded — fine below saturation, unphysical above it. Kept for
//!   policy-comparison studies where the NIC must not be a variable, and
//!   as the pre-data-plane baseline in `netbench`.
//!
//! Both paths charge [`WIRE_LATENCY`] on *both* directions of every
//! delivered request: a client measures request→response round trip, and
//! omitting the wire understated every latency figure by ~2 μs.

use std::cell::RefCell;
use std::rc::Rc;

use skyloft::machine::{Call, Event, Machine, NetTrace, Recur};
use skyloft::task::RequestMeta;
use skyloft::SpawnOpts;
use skyloft_net::dataplane::{MultiQueueNic, NicConfig};
use skyloft_net::loadgen::{NetProfile, OpenLoop};
use skyloft_net::nic::{stack_overhead, wire_draw, PacketFate, WIRE_LATENCY};
use skyloft_net::rss::RssHasher;
use skyloft_sim::{Distribution, EventQueue, Nanos, Rng};

/// The §5.2 dispersive service-time distribution.
pub fn dispersive() -> Distribution {
    Distribution::Bimodal {
        p_long: 0.005,
        short: Nanos::from_us(4),
        long: Nanos::from_ms(10),
    }
}

/// Class threshold separating short from long requests for dispersive
/// workloads.
pub fn dispersive_threshold() -> Nanos {
    Nanos::from_us(100)
}

/// The client and server endpoints every synthetic flow runs between; the
/// varying source port is what spreads flows across rings.
const CLIENT_IP: u32 = 0x0a00_0001;
const SERVER_IP: u32 = 0x0a00_0002;
const SERVER_PORT: u16 = 11_211;

/// Seed of the wire-transit jitter RNG. A fixed constant, not wall-clock
/// derived: a sweep point must replay identically whether it runs on the
/// serial or the threaded harness.
const WIRE_SEED: u64 = 0x57A6_6E12_D1CE_0001;

/// How arriving requests are placed onto cores.
#[derive(Clone)]
pub enum Placement {
    /// No placement hint: the policy decides (centralized queues).
    Queue,
    /// The kernel-bypass NIC path (§3.5): each request's flow is
    /// Toeplitz-hashed through the indirection table onto one of `n`
    /// bounded RX rings, and the polling core hands it to the ring's
    /// worker. Overload tail-drops at the rings.
    Rss {
        /// Worker (ring) count.
        n: usize,
    },
    /// Legacy RSS placement: the flow hash pins the request, but it
    /// spawns directly with no ring, no polling core, and no drop — the
    /// full per-request network overhead is added to the executed
    /// segment. Queues are unbounded past saturation.
    RssDirect {
        /// Worker count.
        n: usize,
    },
}

/// Installs an open-loop arrival process into the machine: each generated
/// request spawns a one-shot task of its service time for application
/// `app`; generation stops at `until` (virtual time).
pub fn install_open_loop(
    q: &mut EventQueue<Event>,
    gen: OpenLoop,
    app: usize,
    placement: Placement,
    until: Nanos,
) {
    install_open_loop_net(q, gen, app, placement, until, None);
}

/// [`install_open_loop`] with an optional lossy network: each request
/// datagram draws a fate from the profile's [`skyloft_net::LossModel`].
/// Dropped requests never reach the server; the client times out and the
/// request is *recorded at the timeout value* in the latency histograms
/// (`stats.timeouts`, `stats.net_dropped`) — excluding it would understate
/// the tail exactly when the system is misbehaving. Duplicated requests
/// cost the server a second execution whose response is discarded
/// (`stats.net_duplicated`); the copy transits the wire independently, so
/// it arrives staggered from its original, never at the same instant.
pub fn install_open_loop_net(
    q: &mut EventQueue<Event>,
    gen: OpenLoop,
    app: usize,
    placement: Placement,
    until: Nanos,
    net: Option<NetProfile>,
) {
    match placement {
        Placement::Rss { n } => {
            install_open_loop_nic(q, gen, app, NicConfig::for_workers(n), until, net)
        }
        Placement::Queue => schedule_next_direct(q, gen, app, None, until, net),
        Placement::RssDirect { n } => {
            schedule_next_direct(q, gen, app, Some(RssHasher::new(n)), until, net)
        }
    }
}

// ---------------------------------------------------------------------------
// The teleport path (Placement::Queue / Placement::RssDirect).
// ---------------------------------------------------------------------------

fn schedule_next_direct(
    q: &mut EventQueue<Event>,
    mut gen: OpenLoop,
    app: usize,
    rss: Option<RssHasher>,
    until: Nanos,
    mut net: Option<NetProfile>,
) {
    let base = q.now();
    let Some(first) = gen.next() else { return };
    let first_at = base + first.at;
    if first_at >= until {
        return;
    }
    // One self-rescheduling closure carries the generator for the whole
    // run: each firing delivers the pending request, draws the next
    // arrival, and returns its time so the machine re-schedules the same
    // box — the arrival chain allocates once, not once per request.
    let mut pending = first;
    let mut seq: u64 = 0;
    let mut wire = Rng::seed_from_u64(WIRE_SEED);
    let hook = move |m: &mut Machine, q: &mut EventQueue<Event>| {
        let req = pending;
        let fate = match net.as_mut() {
            Some(p) => p.loss.fate(),
            None => PacketFate::Deliver,
        };
        let (pin, overhead) = match &rss {
            Some(h) => {
                // Model a distinct client flow per request (varying
                // source port), hashed by the NIC onto a worker ring.
                let src_port = 20_000u16.wrapping_add((seq % 20_000) as u16);
                let core = h.ring_for_flow(CLIENT_IP, SERVER_IP, src_port, SERVER_PORT);
                (Some(core), skyloft_net::nic::per_request_overhead())
            }
            None => (None, Nanos::ZERO),
        };
        seq += 1;
        match fate {
            PacketFate::Drop => {
                // The request never reaches the server; the client
                // learns at its timeout and the sample enters the
                // histograms at that value.
                m.stats.net_dropped += 1;
                let timeout = net.as_ref().expect("drop implies profile").timeout;
                let class = req.class;
                let service = req.service;
                q.schedule_after(
                    timeout,
                    Event::Call(Call(Box::new(move |m: &mut Machine, _q| {
                        m.stats.record_timeout(class, timeout, service);
                    }))),
                );
            }
            PacketFate::Deliver | PacketFate::Duplicate => {
                // The teleport path has no physical wire events; both
                // transits of the round trip are charged by backdating
                // the arrival, so response = wire + server time + wire.
                let meta = RequestMeta {
                    arrival: q.now().saturating_sub(WIRE_LATENCY * 2),
                    service: req.service,
                    class: req.class,
                };
                let body = m.pooled_oneshot(req.service + overhead);
                m.spawn(
                    q,
                    body,
                    SpawnOpts {
                        app,
                        pin,
                        req: Some(meta),
                        weight: 1024,
                        record_wakeup: false,
                    },
                );
                if fate == PacketFate::Duplicate {
                    // The server does the work twice; the client keeps
                    // the first response, so the copy carries no request
                    // accounting. The copy took its own trip through the
                    // wire — an independent transit draw, surfacing here
                    // as a spawn offset — so it contends with its
                    // original realistically instead of materializing at
                    // the same instant.
                    m.stats.net_duplicated += 1;
                    let stagger = wire_draw(&mut wire);
                    let service = req.service;
                    q.schedule_after(
                        stagger,
                        Event::Call(Call(Box::new(move |m: &mut Machine, q| {
                            let body = m.pooled_oneshot(service + overhead);
                            m.spawn(
                                q,
                                body,
                                SpawnOpts {
                                    app,
                                    pin,
                                    req: None,
                                    weight: 1024,
                                    record_wakeup: false,
                                },
                            );
                        }))),
                    );
                }
            }
        }
        let next = gen.next()?;
        let at = base + next.at;
        if at >= until {
            return None;
        }
        pending = next;
        Some(at)
    };
    q.schedule(first_at, Event::Recur(Recur(Box::new(hook))));
}

// ---------------------------------------------------------------------------
// The NIC data plane path (Placement::Rss).
// ---------------------------------------------------------------------------

/// A request datagram in flight through the wire or an RX ring.
#[derive(Clone, Copy, Debug)]
struct Pkt {
    /// Client send instant (the client's latency clock starts here).
    send: Nanos,
    service: Nanos,
    class: u8,
    src_port: u16,
    /// Whether this is the second delivery of a duplicated datagram.
    copy: bool,
}

/// Driver state shared between the arrival chain, the in-flight wire
/// events, and the polling core. One per installed load; the simulation
/// is single-threaded, so `Rc<RefCell<..>>` suffices.
struct PlaneState {
    nic: MultiQueueNic<Pkt>,
    /// Packets handed to each worker core since install; `handed[c] -
    /// stats.finished_by_core[c]` is the worker's in-service backlog the
    /// poller backpressures on.
    handed: Vec<u64>,
    wire_rng: Rng,
    /// Datagrams currently transiting the wire toward the NIC.
    wire_pending: u64,
    /// The arrival chain has generated its last request.
    gen_done: bool,
    /// Client abandon timeout for ring-dropped requests.
    timeout: Nanos,
}

/// Installs an open-loop arrival process routed through an explicitly
/// configured [`MultiQueueNic`]: wire transit, RSS steering into bounded
/// RX rings, burst-draining polling core, per-worker backpressure.
/// [`Placement::Rss`] is this with [`NicConfig::for_workers`].
pub fn install_open_loop_nic(
    q: &mut EventQueue<Event>,
    mut gen: OpenLoop,
    app: usize,
    cfg: NicConfig,
    until: Nanos,
    mut net: Option<NetProfile>,
) {
    let base = q.now();
    let Some(first) = gen.next() else { return };
    let first_at = base + first.at;
    if first_at >= until {
        return;
    }
    let timeout = net.as_ref().map_or(cfg.client_timeout, |p| p.timeout);
    let poll_interval = cfg.poll_interval;
    let poll_batch = cfg.poll_batch;
    let worker_depth = cfg.worker_depth;
    let st = Rc::new(RefCell::new(PlaneState {
        handed: vec![0; cfg.n_rings],
        nic: MultiQueueNic::new(cfg),
        wire_rng: Rng::seed_from_u64(WIRE_SEED),
        wire_pending: 0,
        gen_done: false,
        timeout,
    }));

    // The arrival chain: one Recur carrying the generator, as on the
    // teleport path, but deliveries become wire-transit events toward the
    // NIC instead of immediate spawns.
    let mut pending = first;
    let mut seq: u64 = 0;
    let st_arr = st.clone();
    let hook = move |m: &mut Machine, q: &mut EventQueue<Event>| {
        let req = pending;
        let fate = match net.as_mut() {
            Some(p) => p.loss.fate(),
            None => PacketFate::Deliver,
        };
        let src_port = 20_000u16.wrapping_add((seq % 20_000) as u16);
        seq += 1;
        let now = q.now();
        match fate {
            PacketFate::Drop => {
                // Lost on the wire: the datagram never reaches the NIC
                // (so it never enters the conservation ledger); the
                // client times out.
                m.stats.net_dropped += 1;
                let timeout = net.as_ref().expect("drop implies profile").timeout;
                let class = req.class;
                let service = req.service;
                q.schedule_after(
                    timeout,
                    Event::Call(Call(Box::new(move |m: &mut Machine, _q| {
                        m.stats.record_timeout(class, timeout, service);
                    }))),
                );
            }
            PacketFate::Deliver | PacketFate::Duplicate => {
                let copies = if fate == PacketFate::Duplicate {
                    m.stats.net_duplicated += 1;
                    2
                } else {
                    1
                };
                let mut s = st_arr.borrow_mut();
                for copy in 0..copies {
                    // Each datagram — the duplicate included — transits
                    // the wire independently, so copies arrive staggered.
                    let transit = wire_draw(&mut s.wire_rng);
                    s.wire_pending += 1;
                    let pkt = Pkt {
                        send: now,
                        service: req.service,
                        class: req.class,
                        src_port,
                        copy: copy == 1,
                    };
                    let st_rx = st_arr.clone();
                    q.schedule_after(
                        transit,
                        Event::Call(Call(Box::new(move |m: &mut Machine, q| {
                            nic_rx(m, q, &st_rx, pkt);
                        }))),
                    );
                }
            }
        }
        match gen.next() {
            Some(next) => {
                let at = base + next.at;
                if at >= until {
                    st_arr.borrow_mut().gen_done = true;
                    None
                } else {
                    pending = next;
                    Some(at)
                }
            }
            None => {
                st_arr.borrow_mut().gen_done = true;
                None
            }
        }
    };
    q.schedule(first_at, Event::Recur(Recur(Box::new(hook))));

    // The polling core: visits the rings every poll_interval, drains a
    // burst from each ring whose worker has room, and hands the burst
    // over once the per-packet poll cost has been paid on the (serial)
    // polling core.
    let st_poll = st;
    let poller = move |m: &mut Machine, q: &mut EventQueue<Event>| {
        let now = q.now();
        let mut s = st_poll.borrow_mut();
        for ring in 0..s.nic.n_rings() {
            m.stats.rx_occ_hist.record(s.nic.occupancy(ring) as u64);
            if s.nic.occupancy(ring) == 0 {
                continue;
            }
            let finished = m.stats.finished_by_core.get(ring).copied().unwrap_or(0);
            let outstanding = s.handed[ring].saturating_sub(finished) as usize;
            let take = worker_depth.saturating_sub(outstanding).min(poll_batch);
            if take == 0 {
                continue; // backpressure: leave packets in the ring
            }
            let mut batch = Vec::with_capacity(take);
            let k = s.nic.drain(ring, take, &mut batch);
            if k == 0 {
                continue;
            }
            s.handed[ring] += k as u64;
            let handoff = s.nic.poller_admit(now, k);
            m.note_net(now, Some(ring), NetTrace::RxPoll);
            q.schedule(
                handoff,
                Event::Call(Call(Box::new(move |m: &mut Machine, q| {
                    for pkt in batch {
                        m.stats.net_in_flight -= 1;
                        m.stats.net_delivered += 1;
                        let body = m.pooled_oneshot(pkt.service + stack_overhead());
                        // The forward wire and all queueing are physical
                        // on this path; backdating covers only the
                        // response's return transit.
                        let req = (!pkt.copy).then(|| RequestMeta {
                            arrival: pkt.send.saturating_sub(WIRE_LATENCY),
                            service: pkt.service,
                            class: pkt.class,
                        });
                        m.spawn(
                            q,
                            body,
                            SpawnOpts {
                                app,
                                pin: Some(ring),
                                req,
                                weight: 1024,
                                record_wakeup: false,
                            },
                        );
                    }
                }))),
            );
        }
        if s.gen_done && s.wire_pending == 0 && s.nic.total_occupancy() == 0 {
            // Everything generated has been delivered or dropped; stop
            // polling so runs can drain to an empty event queue.
            return None;
        }
        Some(now + poll_interval)
    };
    q.schedule(
        first_at + poll_interval,
        Event::Recur(Recur(Box::new(poller))),
    );
}

/// A datagram reaches the NIC: RSS-steer it into its ring, or tail-drop
/// it if the ring is full (the client times out; a dropped *copy* costs
/// nothing extra — the original is still in play).
fn nic_rx(m: &mut Machine, q: &mut EventQueue<Event>, st: &Rc<RefCell<PlaneState>>, pkt: Pkt) {
    let mut s = st.borrow_mut();
    s.wire_pending -= 1;
    m.stats.net_generated += 1;
    match s
        .nic
        .enqueue_flow(CLIENT_IP, SERVER_IP, pkt.src_port, SERVER_PORT, pkt)
    {
        Ok(ring) => {
            m.stats.net_in_flight += 1;
            m.note_net(q.now(), Some(ring), NetTrace::RxEnqueue);
        }
        Err(ring) => {
            m.stats.rx_ring_drops += 1;
            m.note_net(q.now(), Some(ring), NetTrace::RxDrop);
            if !pkt.copy {
                let timeout = s.timeout;
                let class = pkt.class;
                let service = pkt.service;
                let fires = (pkt.send + timeout).max(q.now());
                q.schedule(
                    fires,
                    Event::Call(Call(Box::new(move |m: &mut Machine, _q| {
                        m.stats.record_timeout(class, timeout, service);
                    }))),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyloft::builtin::{CentralizedFcfs, GlobalFifo};
    use skyloft::machine::{AppKind, MachineConfig};
    use skyloft::Platform;
    use skyloft_hw::Topology;

    #[test]
    fn dispersive_mean_matches_paper() {
        // 0.995 * 4us + 0.005 * 10ms = 53.98 us.
        assert!((dispersive().mean() - 53_980.0).abs() < 1.0);
    }

    #[test]
    fn open_loop_drives_centralized_machine() {
        let cfg = MachineConfig {
            plat: Platform::skyloft_centralized(Topology::single(5)),
            n_workers: 4,
            seed: 3,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(
            cfg,
            Box::new(CentralizedFcfs::new(Some(Nanos::from_us(30)))),
        );
        m.add_app("lc", AppKind::Lc);
        let mut q = EventQueue::new();
        m.start(&mut q);
        let gen = OpenLoop::new(
            50_000.0,
            Distribution::Constant(Nanos::from_us(10)),
            Nanos::from_us(100),
            9,
        );
        install_open_loop(&mut q, gen, 0, Placement::Queue, Nanos::from_ms(20));
        m.run(&mut q, Nanos::from_ms(40));
        // ~50k rps for 20 ms = ~1000 requests.
        assert!(
            (800..1200).contains(&(m.stats.completed as usize)),
            "completed {}",
            m.stats.completed
        );
        // Response includes the round-trip wire charge: an uncontended
        // 10 us request takes at least 10 us + 2 us of wire.
        let p50 = m.stats.resp_hist.percentile(50.0);
        assert!(p50 >= 12_000, "p50 {p50}");
    }

    #[test]
    fn lossy_net_accounts_timeouts_in_the_tail() {
        let build = || {
            let cfg = MachineConfig {
                plat: Platform::skyloft_centralized(Topology::single(5)),
                n_workers: 4,
                seed: 3,
                core_alloc: None,
                utimer_period: None,
            };
            let mut m = Machine::new(
                cfg,
                Box::new(CentralizedFcfs::new(Some(Nanos::from_us(30)))),
            );
            m.add_app("lc", AppKind::Lc);
            let mut q = EventQueue::new();
            m.start(&mut q);
            (m, q)
        };
        let gen = || {
            OpenLoop::new(
                50_000.0,
                Distribution::Constant(Nanos::from_us(10)),
                Nanos::from_us(100),
                9,
            )
        };
        let timeout = Nanos::from_ms(1);
        let (mut lossy, mut q) = build();
        install_open_loop_net(
            &mut q,
            gen(),
            0,
            Placement::Queue,
            Nanos::from_ms(20),
            Some(NetProfile::lossy(4, 0.10, 0.05, timeout)),
        );
        lossy.run(&mut q, Nanos::from_ms(40));
        assert!(
            lossy.stats.net_dropped > 50,
            "drops {}",
            lossy.stats.net_dropped
        );
        assert!(
            lossy.stats.net_duplicated > 20,
            "dups {}",
            lossy.stats.net_duplicated
        );
        assert_eq!(
            lossy.stats.timeouts, lossy.stats.net_dropped,
            "every drop surfaces as a timeout sample"
        );
        // Timeouts sit in the histogram at the timeout value, so the tail
        // reflects the loss instead of silently excluding it.
        let (mut clean, mut q2) = build();
        install_open_loop_net(
            &mut q2,
            gen(),
            0,
            Placement::Queue,
            Nanos::from_ms(20),
            None,
        );
        clean.run(&mut q2, Nanos::from_ms(40));
        assert_eq!(clean.stats.timeouts, 0);
        let lossy_count = lossy.stats.resp_hist.count();
        assert_eq!(
            lossy_count,
            lossy.stats.completed + lossy.stats.timeouts,
            "histogram denominator = completions + timeouts"
        );
        assert!(
            lossy.stats.resp_hist.percentile(99.0) >= timeout.0,
            "p99 {} should be dominated by {} ns timeouts",
            lossy.stats.resp_hist.percentile(99.0),
            timeout.0
        );
        assert!(clean.stats.resp_hist.percentile(99.0) < timeout.0 / 2);
    }

    #[test]
    fn duplicates_run_but_do_not_complete_twice() {
        let cfg = MachineConfig {
            plat: Platform::skyloft_centralized(Topology::single(5)),
            n_workers: 4,
            seed: 3,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(
            cfg,
            Box::new(CentralizedFcfs::new(Some(Nanos::from_us(30)))),
        );
        m.add_app("lc", AppKind::Lc);
        let mut q = EventQueue::new();
        m.start(&mut q);
        let gen = OpenLoop::new(
            20_000.0,
            Distribution::Constant(Nanos::from_us(5)),
            Nanos::from_us(100),
            21,
        );
        // Duplicate every single datagram.
        install_open_loop_net(
            &mut q,
            gen,
            0,
            Placement::Queue,
            Nanos::from_ms(20),
            Some(NetProfile::lossy(5, 0.0, 1.0, Nanos::from_ms(1))),
        );
        m.run(&mut q, Nanos::from_ms(40));
        assert!(m.stats.completed > 300, "completed {}", m.stats.completed);
        assert_eq!(
            m.stats.net_duplicated, m.stats.completed,
            "every request was duplicated exactly once"
        );
        // Copies burn server time (~2x busy) but never enter the
        // histograms: the client keeps only the first response.
        assert_eq!(m.stats.resp_hist.count(), m.stats.completed);
        let busy: u64 = m.stats.busy_by_app.iter().sum();
        let expected = 2 * m.stats.completed * Nanos::from_us(5).0;
        assert!(
            busy as f64 > 0.9 * expected as f64,
            "busy {busy} vs 2x-work expectation {expected}"
        );
    }

    #[test]
    fn rss_placement_spreads_work() {
        let cfg = MachineConfig {
            plat: Platform::skyloft_percpu(Topology::single(4), 100_000),
            n_workers: 4,
            seed: 3,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(cfg, Box::new(GlobalFifo::new()));
        m.add_app("kv", AppKind::Lc);
        let mut q = EventQueue::new();
        m.start(&mut q);
        let gen = OpenLoop::new(
            200_000.0,
            Distribution::Constant(Nanos::from_us(2)),
            Nanos::from_us(100),
            10,
        );
        install_open_loop(&mut q, gen, 0, Placement::Rss { n: 4 }, Nanos::from_ms(10));
        m.run(&mut q, Nanos::from_ms(20));
        assert!(m.stats.completed > 1500, "completed {}", m.stats.completed);
        // Response includes both wire transits (~2 us), the service
        // (2 us), the worker stack overhead, and the poll pipeline.
        let p50 = m.stats.resp_hist.percentile(50.0);
        assert!(p50 >= 4_400, "p50 {p50}");
        // Nothing was lost: at this load the rings never fill.
        assert_eq!(m.stats.rx_ring_drops, 0);
        assert_eq!(m.stats.net_generated, m.stats.net_delivered);
        assert_eq!(m.stats.net_in_flight, 0);
    }

    #[test]
    fn rss_direct_placement_still_spreads_work() {
        let cfg = MachineConfig {
            plat: Platform::skyloft_percpu(Topology::single(4), 100_000),
            n_workers: 4,
            seed: 3,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(cfg, Box::new(GlobalFifo::new()));
        m.add_app("kv", AppKind::Lc);
        let mut q = EventQueue::new();
        m.start(&mut q);
        let gen = OpenLoop::new(
            200_000.0,
            Distribution::Constant(Nanos::from_us(2)),
            Nanos::from_us(100),
            10,
        );
        install_open_loop(
            &mut q,
            gen,
            0,
            Placement::RssDirect { n: 4 },
            Nanos::from_ms(10),
        );
        m.run(&mut q, Nanos::from_ms(20));
        assert!(m.stats.completed > 1500, "completed {}", m.stats.completed);
        // Teleport path: service + per-request overhead + 2x wire
        // backdate, no rings involved.
        let p50 = m.stats.resp_hist.percentile(50.0);
        assert!(p50 >= 4_530, "p50 {p50}");
        assert_eq!(m.stats.net_generated, 0, "no NIC on the direct path");
    }

    #[test]
    fn overloaded_rings_drop_and_bound_the_backlog() {
        let cfg = MachineConfig {
            plat: Platform::skyloft_percpu(Topology::single(4), 100_000),
            n_workers: 4,
            seed: 3,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(cfg, Box::new(GlobalFifo::new()));
        m.add_app("kv", AppKind::Lc);
        let mut q = EventQueue::new();
        m.start(&mut q);
        // 4 workers x 2 us service saturate at 2M rps; offer 4M.
        let gen = OpenLoop::new(
            4_000_000.0,
            Distribution::Constant(Nanos::from_us(2)),
            Nanos::from_us(100),
            10,
        );
        let mut nic = NicConfig::for_workers(4);
        nic.client_timeout = Nanos::from_ms(1);
        install_open_loop_nic(&mut q, gen, 0, nic, Nanos::from_ms(10), None);
        m.run(&mut q, Nanos::from_ms(30));
        let s = &m.stats;
        assert!(s.rx_ring_drops > 0, "2x overload must tail-drop");
        assert_eq!(
            s.net_generated,
            s.net_delivered + s.rx_ring_drops + s.net_in_flight,
            "datagram conservation"
        );
        assert_eq!(s.net_in_flight, 0, "drained by end of run");
        assert_eq!(
            s.timeouts, s.rx_ring_drops,
            "every ring-dropped original times out at the client"
        );
        // Bounded rings bound the tail: nothing waits longer than the
        // client timeout plus slack for the in-ring + in-service path.
        let p999 = s.resp_hist.percentile(99.9);
        assert!(
            p999 <= Nanos::from_ms(1).0 + 100_000,
            "p99.9 {p999} not bounded by the client timeout"
        );
        // Occupancy telemetry saw the rings fill.
        assert!(
            s.rx_occ_hist.max() >= 200,
            "occ max {}",
            s.rx_occ_hist.max()
        );
    }
}
